#!/usr/bin/env python
"""Micro-benchmark: crash handling and recovery on a loaded engine.

Builds a deterministic 2k-active-request engine (the bench_serve
scenario) and drives repeated node crash / repair cycles through the
fault path added in PR 9:

* ``fail_node`` — mass-eviction throughput: chains evicted per second
  of wall-clock eviction work (exact-inverse retraction per chain).
* ``recover`` — one :class:`~repro.faults.recovery.LeastLoadedReadmit`
  episode per crash (relocate stranded VNFs + warm-start re-admit);
  the headline is the p99 wall-clock latency per episode.

Each cycle fails the next node in a round-robin over the nodes that
host at least one VNF, recovers, then repairs the node — so every
cycle sees a healthy fleet and a full active set.

Usage::

    PYTHONPATH=src python benchmarks/bench_faults.py [--quick] [--out FILE]

``--max-p99-ms`` gates on the recovery p99 (default 0: report-only;
CI runs the quick smoke, the acceptance number comes from the full run
recorded in ``BENCH_TRAJECTORY.json``).
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

try:  # pragma: no cover - path bootstrap for direct script runs
    import repro  # noqa: F401
except ImportError:  # pragma: no cover
    sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))

import numpy as np

from bench_core import DEFAULT_SEED
from repro.core.incremental import DeploymentEngine
from repro.faults.recovery import LeastLoadedReadmit, MigrationBudget
from repro.workload.generator import WorkloadGenerator


def _build(num_active: int, num_nodes: int, num_vnfs: int, seed: int):
    """An engine warmed to ``num_active`` requests."""
    gen = WorkloadGenerator(np.random.default_rng(seed))
    w = gen.workload(
        num_vnfs=num_vnfs, num_nodes=num_nodes, num_requests=num_active
    )
    engine = DeploymentEngine(
        w.vnfs, w.capacities, list(w.requests), target_utilization=None
    )
    return engine, w


def _crash_cycles(engine, cycles: int):
    """Round-robin crash/recover cycles; returns per-cycle timings."""
    policy = LeastLoadedReadmit()
    evict_times = []
    evict_counts = []
    recover_times = []
    readmitted = 0
    pending = 0
    cycle = 0
    while cycle < cycles:
        hosted = sorted(set(engine.placement.values()), key=str)
        victim = hosted[cycle % len(hosted)]

        start = time.perf_counter()
        evicted = engine.fail_node(victim)
        evict_times.append(time.perf_counter() - start)
        evict_counts.append(len(evicted))

        budget = MigrationBudget(max_migrations=10_000)
        start = time.perf_counter()
        outcome = policy.recover(engine, evicted, budget=budget)
        recover_times.append(time.perf_counter() - start)
        readmitted += len(outcome.readmitted)
        pending += len(outcome.pending)

        engine.recover_node(victim)
        cycle += 1
    return evict_times, evict_counts, recover_times, readmitted, pending


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick",
        action="store_true",
        help="small scenario + fewer cycles (CI smoke)",
    )
    parser.add_argument("--out", type=Path, help="write the JSON report here")
    parser.add_argument("--seed", type=int, default=DEFAULT_SEED)
    parser.add_argument(
        "--max-p99-ms",
        type=float,
        default=0.0,
        help="exit non-zero if recovery p99 exceeds this many ms "
        "(default 0: report only)",
    )
    args = parser.parse_args(argv)

    if args.quick:
        num_active, num_nodes, num_vnfs, cycles = 200, 24, 12, 6
    else:
        num_active, num_nodes, num_vnfs, cycles = 2000, 24, 12, 48

    print(
        f"building engine: {num_active} active requests, {num_nodes} "
        f"nodes, {num_vnfs} VNFs (seed {args.seed})",
        file=sys.stderr,
    )
    engine, w = _build(num_active, num_nodes, num_vnfs, args.seed)

    evict_times, evict_counts, recover_times, readmitted, pending = (
        _crash_cycles(engine, cycles)
    )
    total_evicted = int(sum(evict_counts))
    evictions_per_sec = (
        total_evicted / sum(evict_times) if sum(evict_times) else 0.0
    )
    recovery_ms = 1e3 * np.asarray(recover_times)
    recovery_p99_ms = float(np.percentile(recovery_ms, 99))

    results = {
        "fail_node": {
            "cycles": cycles,
            "total_evicted": total_evicted,
            "mean_evicted_per_crash": total_evicted / cycles,
            "evictions_per_sec": evictions_per_sec,
            "speedup": None,
        },
        "recover": {
            "cycles": cycles,
            "readmitted": readmitted,
            "pending": pending,
            "mean_ms": float(recovery_ms.mean()),
            "p99_ms": recovery_p99_ms,
            "speedup": None,
        },
    }
    print(
        f"{'fail_node':<12} {total_evicted} evictions over {cycles} "
        f"crashes  ({evictions_per_sec:,.0f} evictions/s)",
        file=sys.stderr,
    )
    print(
        f"{'recover':<12} mean {recovery_ms.mean():9.3f} ms   "
        f"p99 {recovery_p99_ms:9.3f} ms   "
        f"({readmitted} readmitted, {pending} pending)",
        file=sys.stderr,
    )

    report = {
        "scenario": {
            "num_requests": num_active,
            "num_nodes": num_nodes,
            "num_vnfs": num_vnfs,
            "cycles": cycles,
            "seed": args.seed,
            "quick": args.quick,
        },
        "headline": {
            "recovery_p99_ms": recovery_p99_ms,
            "evictions_per_sec": evictions_per_sec,
        },
        "results": results,
    }
    payload = json.dumps(report, indent=2)
    print(payload)
    if args.out:
        args.out.write_text(payload + "\n")
        print(f"wrote {args.out}", file=sys.stderr)

    if args.max_p99_ms and recovery_p99_ms > args.max_p99_ms:
        print(
            f"recovery p99 {recovery_p99_ms:.3f} ms exceeds "
            f"{args.max_p99_ms} ms",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
