#!/usr/bin/env python
"""Micro-benchmark: columnar metric paths vs the pre-refactor object walk.

Builds one deterministic joint deployment (default: 2000 requests on
200 nodes), cross-checks that the vectorized and pre-refactor paths
agree to 1e-12 relative, then times both with ``time.perf_counter``:

* ``evaluate_deployment`` — the full Eq. (13)-(16) scorecard,
* ``total_inter_node_hops`` — the local-search inner loop,
* ``schedule_all_vnfs`` — joint ``z``-map construction,
* ``PlacementResult.node_loads`` — Eq. (13)/(14) ingredients.

Usage::

    PYTHONPATH=src python benchmarks/bench_core.py [--quick] [--out FILE]

``--quick`` shrinks the scenario for CI smoke runs; ``--out`` writes the
JSON report to a file (it always prints to stdout).  Pass
``--min-speedup`` to turn the report into a gate — the acceptance bar
for ``evaluate_deployment`` on the full scenario is 5x; tiny quick-mode
inputs can make overhead-dominated metrics like ``node_loads`` dip
below 1x, which is why the default is report-only.
"""

from __future__ import annotations

import argparse
import json
import statistics
import sys
import time
from pathlib import Path

try:  # pragma: no cover - path bootstrap for direct script runs
    import repro  # noqa: F401
except ImportError:  # pragma: no cover
    sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))

import numpy as np

from _reference_impl import (
    reference_evaluate_deployment,
    reference_node_loads,
    reference_schedule_all_vnfs,
    reference_total_inter_node_hops,
)
from repro.core.evaluation import evaluate_deployment
from repro.core.joint import JointOptimizer
from repro.core.local_search import total_inter_node_hops
from repro.nfv.request import Request
from repro.scheduling.base import schedule_all_vnfs
from repro.scheduling.least_loaded import LeastLoadedScheduler
from repro.workload.generator import WorkloadGenerator

DEFAULT_SEED = 20170605  # ICDCS'17


def _rescale_for_stability(vnfs, requests, target=0.7):
    """Scale arrival rates so every VNF's aggregate load is stable.

    The generated 1-100 pps rates can overload small VNFs; the benchmark
    wants the no-shedding hot path, so cap the per-VNF aggregate
    utilization ``sum_r lambda_r/P_r / (M_f mu_f)`` at ``target``.
    """
    load = {f.name: 0.0 for f in vnfs}
    for request in requests:
        for vnf_name in request.chain:
            load[vnf_name] += request.effective_rate
    worst = max(
        load[f.name] / (f.num_instances * f.service_rate)
        for f in vnfs
        if f.num_instances * f.service_rate > 0
    )
    if worst <= target:
        return list(requests)
    scale = target / worst
    return [
        Request(
            request_id=r.request_id,
            chain=r.chain,
            arrival_rate=r.arrival_rate * scale,
            delivery_probability=r.delivery_probability,
        )
        for r in requests
    ]


def build_scenario(num_requests, num_nodes, num_vnfs, seed=DEFAULT_SEED):
    """A solved joint deployment over a stable generated workload."""
    gen = WorkloadGenerator(rng=np.random.default_rng(seed))
    workload = gen.workload(
        num_vnfs=num_vnfs,
        num_nodes=num_nodes,
        num_requests=num_requests,
        instance_range=(8, 25),
        tight_capacities=True,
    )
    requests = _rescale_for_stability(workload.vnfs, workload.requests)
    solution = JointOptimizer(scheduler=LeastLoadedScheduler()).optimize(
        workload.vnfs, requests, workload.capacities
    )
    return solution, workload.vnfs, requests


def _time(fn, repeats, warmup=1):
    for _ in range(warmup):
        fn()
    times = []
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        times.append(time.perf_counter() - start)
    return {
        "best_s": min(times),
        "mean_s": statistics.fmean(times),
        "repeats": repeats,
    }


def _compare(name, reference_fn, vectorized_fn, repeats, results):
    ref = _time(reference_fn, repeats)
    vec = _time(vectorized_fn, repeats)
    speedup = ref["best_s"] / vec["best_s"] if vec["best_s"] > 0 else float("inf")
    results[name] = {
        "reference": ref,
        "vectorized": vec,
        "speedup": round(speedup, 2),
    }
    print(
        f"{name:<24} reference {ref['best_s'] * 1e3:9.3f} ms   "
        f"vectorized {vec['best_s'] * 1e3:9.3f} ms   {speedup:7.1f}x",
        file=sys.stderr,
    )


def _rel_diff(a, b):
    if a == b:  # covers inf == inf and 0 == 0
        return 0.0
    return abs(a - b) / max(abs(a), abs(b), 1.0)


def check_parity(state, link_latency=1.0):
    """Assert the two evaluate paths agree to 1e-12 before timing them."""
    got = evaluate_deployment(state, link_latency=link_latency)
    want = reference_evaluate_deployment(state, link_latency=link_latency)
    worst = 0.0
    for field in (
        "average_node_utilization",
        "resource_occupation",
        "average_response_latency",
        "max_instance_utilization",
        "total_latency",
        "average_total_latency",
    ):
        worst = max(worst, _rel_diff(getattr(got, field), getattr(want, field)))
    if worst > 1e-12:
        raise SystemExit(f"parity check failed: worst rel diff {worst:.3e}")
    if (got.nodes_in_service, got.num_rejected) != (
        want.nodes_in_service,
        want.num_rejected,
    ):
        raise SystemExit("parity check failed: integer metrics differ")
    return worst


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick",
        action="store_true",
        help="small scenario + fewer repeats (CI smoke)",
    )
    parser.add_argument("--out", type=Path, help="write the JSON report here")
    parser.add_argument("--seed", type=int, default=DEFAULT_SEED)
    parser.add_argument(
        "--min-speedup",
        type=float,
        default=0.0,
        help="exit non-zero if any benchmark falls below this speedup "
        "(default 0: report only)",
    )
    args = parser.parse_args(argv)

    if args.quick:
        num_requests, num_nodes, num_vnfs, repeats = 300, 50, 20, 3
    else:
        num_requests, num_nodes, num_vnfs, repeats = 2000, 200, 40, 5

    print(
        f"building scenario: {num_requests} requests, {num_nodes} nodes, "
        f"{num_vnfs} VNFs (seed {args.seed})",
        file=sys.stderr,
    )
    solution, vnfs, requests = build_scenario(
        num_requests, num_nodes, num_vnfs, seed=args.seed
    )
    state = solution.state
    worst_rel = check_parity(state)

    scheduler = LeastLoadedScheduler()
    z_new = schedule_all_vnfs(vnfs, requests, scheduler)
    z_old = reference_schedule_all_vnfs(vnfs, requests, scheduler)
    if z_new != z_old:
        raise SystemExit("schedule_all_vnfs z-map mismatch vs reference")

    results = {}
    _compare(
        "evaluate_deployment",
        lambda: reference_evaluate_deployment(state, link_latency=1.0),
        lambda: evaluate_deployment(state, link_latency=1.0),
        repeats,
        results,
    )
    _compare(
        "total_inter_node_hops",
        lambda: reference_total_inter_node_hops(state),
        lambda: total_inter_node_hops(state),
        repeats,
        results,
    )
    _compare(
        "schedule_all_vnfs",
        lambda: reference_schedule_all_vnfs(vnfs, requests, scheduler),
        lambda: schedule_all_vnfs(vnfs, requests, scheduler),
        repeats,
        results,
    )
    placement_result = solution.placement_result
    _compare(
        "node_loads",
        lambda: reference_node_loads(placement_result),
        lambda: placement_result.node_loads(),
        repeats,
        results,
    )

    report = {
        "scenario": {
            "num_requests": num_requests,
            "num_nodes": num_nodes,
            "num_vnfs": num_vnfs,
            "num_schedule_entries": len(state.schedule),
            "seed": args.seed,
            "quick": args.quick,
        },
        "parity_worst_rel_diff": worst_rel,
        "results": results,
    }
    payload = json.dumps(report, indent=2)
    print(payload)
    if args.out:
        args.out.write_text(payload + "\n")
        print(f"wrote {args.out}", file=sys.stderr)

    slow = [
        name
        for name, entry in results.items()
        if entry["speedup"] < args.min_speedup
    ]
    if slow:
        print(
            f"speedup below {args.min_speedup}x for: {', '.join(slow)}",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
