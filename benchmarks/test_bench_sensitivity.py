"""Benchmark + shape check for the model-sensitivity experiment."""

from repro.experiments import sensitivity


def test_bench_sensitivity(benchmark):
    result = benchmark.pedantic(
        sensitivity.run, kwargs={"horizon": 800.0}, rounds=1, iterations=1
    )
    service = {
        float(r["value"]): float(r["model_error"])
        for r in result.rows
        if r["dimension"] == "service_cv2"
    }
    burst = {
        float(r["value"]): float(r["model_error"])
        for r in result.rows
        if r["dimension"] == "burst_ratio"
    }
    # Exponential service: no error by construction.
    assert abs(service[1.0]) < 1e-9
    # Deterministic service: M/M/1 over-estimates; heavy-tailed: under.
    assert service[0.0] > 0.3
    assert service[4.0] < -0.3
    # Poisson arrivals: small simulation error only.
    assert abs(burst[1.0]) < 0.2
    # Burstiness makes the model increasingly optimistic.
    assert burst[8.0] < burst[2.0] < 0.0
