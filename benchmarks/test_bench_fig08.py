"""Benchmark + shape check for Fig. 8 (nodes in service vs #nodes)."""

from conftest import mean_of

from repro.experiments import fig08

REPS = 5


def test_bench_fig08(benchmark):
    result = benchmark.pedantic(
        fig08.run, kwargs={"repetitions": REPS}, rounds=1, iterations=1
    )
    bfdsu = mean_of(result, "BFDSU", "nodes_in_service")
    nah = mean_of(result, "NAH", "nodes_in_service")
    ffd = mean_of(result, "FFD", "nodes_in_service")
    # Paper ordering: BFDSU 8.56 < NAH 10.55 < FFD 10.80.
    assert bfdsu < nah < ffd
