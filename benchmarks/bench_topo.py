#!/usr/bin/env python
"""Micro-benchmark: APSP-gather topology evaluation vs the Router loop.

Builds one deterministic solved scenario and a random fabric whose
compute nodes match the scenario's placement nodes, parity-checks the
vectorized topology Eq. (16) (:func:`total_latency_on_topology`) against
the per-request Router walk (``total_latency_on_topology_scalar``) at
1e-9 relative, then times:

* ``topology_total_latency`` — the Eq. (16) total with measured
  shortest-path latencies: scalar per-request Router walk vs one gather
  from the precomputed compute-pair latency matrix,
* ``apsp_build`` — the one-time ``TopologyArrays.build`` sweep (dense
  all-pairs Dijkstra + hop counts + link index), reported for context
  (no reference column),
* ``link_loads`` — :meth:`NetworkModel.link_loads`: full routed-flow
  accounting for every chain-adjacent VNF pair via the path-link CSR.

Usage::

    PYTHONPATH=src python benchmarks/bench_topo.py [--quick] [--out FILE]

``--quick`` shrinks the scenario for CI smoke runs; ``--out`` writes the
JSON report to a file (it always prints to stdout).  ``--min-speedup``
gates on the ``topology_total_latency`` speedup; the acceptance bar on
the full scenario (2000 requests / 200 nodes) is 10x, but quick-mode
inputs are overhead-dominated, so the default is report-only.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

try:  # pragma: no cover - path bootstrap for direct script runs
    import repro  # noqa: F401
except ImportError:  # pragma: no cover
    sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))

import numpy as np

from bench_core import DEFAULT_SEED, _compare, _time, build_scenario
from repro.core.topology_eval import (
    total_latency_on_topology,
    total_latency_on_topology_scalar,
)
from repro.topology.arrays import TopologyArrays
from repro.topology.network import NetworkModel
from repro.topology.random_topology import random_datacenter


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick",
        action="store_true",
        help="small scenario + fewer repeats (CI smoke)",
    )
    parser.add_argument("--out", type=Path, help="write the JSON report here")
    parser.add_argument("--seed", type=int, default=DEFAULT_SEED)
    parser.add_argument(
        "--min-speedup",
        type=float,
        default=0.0,
        help="exit non-zero if topology_total_latency falls below this "
        "speedup (default 0: report only)",
    )
    args = parser.parse_args(argv)

    if args.quick:
        num_requests, num_nodes, num_vnfs, repeats = 300, 50, 20, 3
    else:
        num_requests, num_nodes, num_vnfs, repeats = 2000, 200, 40, 5

    print(
        f"building scenario: {num_requests} requests, {num_nodes} nodes, "
        f"{num_vnfs} VNFs (seed {args.seed})",
        file=sys.stderr,
    )
    solution, vnfs, requests = build_scenario(
        num_requests, num_nodes, num_vnfs, seed=args.seed
    )
    state = solution.state
    # A fabric whose compute nodes are exactly the scenario's nodes.
    topo = random_datacenter(
        num_nodes,
        rng=np.random.default_rng(args.seed),
        capacities=[
            state.node_capacities[f"node{i}"] for i in range(num_nodes)
        ],
    )
    topo.arrays()  # precompute outside the timed region, as the hot path sees it

    # ------------------------------------------------------------------
    # Parity before timing: vectorized must match the Router walk.
    # ------------------------------------------------------------------
    vec = total_latency_on_topology(state, topo)
    ref = total_latency_on_topology_scalar(state, topo)
    rel = abs(vec - ref) / max(abs(ref), 1e-30)
    if not rel <= 1e-9:
        raise SystemExit(
            f"parity check failed: vectorized {vec!r} vs scalar {ref!r} "
            f"(rel {rel:.3e})"
        )
    print(f"parity ok: topology_total_latency (rel {rel:.1e})", file=sys.stderr)

    # ------------------------------------------------------------------
    # Timings.
    # ------------------------------------------------------------------
    results = {}
    _compare(
        "topology_total_latency",
        lambda: total_latency_on_topology_scalar(state, topo),
        lambda: total_latency_on_topology(state, topo),
        repeats,
        results,
    )

    build_stats = _time(lambda: TopologyArrays.build(topo), max(repeats, 2))
    results["apsp_build"] = {"vectorized": build_stats, "speedup": None}
    print(
        f"{'apsp_build':<24} (one-time)  "
        f"vectorized {build_stats['best_s'] * 1e3:9.3f} ms",
        file=sys.stderr,
    )

    network = NetworkModel.for_deployment(state, topo)
    placement_vec = network.placement_vector(state.placement)
    network.link_loads(placement_vec)  # warm the path-link CSR
    loads_stats = _time(lambda: network.link_loads(placement_vec), repeats)
    results["link_loads"] = {"vectorized": loads_stats, "speedup": None}
    print(
        f"{'link_loads':<24} (no ref)    "
        f"vectorized {loads_stats['best_s'] * 1e3:9.3f} ms",
        file=sys.stderr,
    )

    arrays = topo.arrays()
    report = {
        "scenario": {
            "num_requests": num_requests,
            "num_nodes": num_nodes,
            "num_vnfs": num_vnfs,
            "num_vertices": arrays.num_vertices,
            "num_links": arrays.num_links,
            "seed": args.seed,
            "quick": args.quick,
        },
        "results": results,
    }
    payload = json.dumps(report, indent=2)
    print(payload)
    if args.out:
        args.out.write_text(payload + "\n")
        print(f"wrote {args.out}", file=sys.stderr)

    speedup = results["topology_total_latency"]["speedup"]
    if speedup < args.min_speedup:
        print(
            f"topology_total_latency speedup {speedup}x below "
            f"{args.min_speedup}x",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
