"""Ablation: the analytic Jackson model vs the discrete-event simulator.

abl-jackson in DESIGN.md: the closed forms the optimizer relies on must
match independently measured packet-level behaviour.  The benchmark
times a full simulation run; the assertions bound the model error.
"""

import pytest

from repro.nfv.chain import ServiceChain
from repro.nfv.request import Request
from repro.nfv.vnf import VNF
from repro.queueing.jackson import ChainFeedbackModel
from repro.sim.simulator import ChainSimulator, SimulationConfig

RATE = 30.0
MUS = (90.0, 70.0)
P = 0.95


def _run_simulation():
    vnfs = [VNF(f"v{i}", 1.0, 1, mu) for i, mu in enumerate(MUS)]
    chain = ServiceChain([f.name for f in vnfs])
    request = Request("r0", chain, RATE, delivery_probability=P)
    schedule = {("r0", f.name): 0 for f in vnfs}
    simulator = ChainSimulator(
        vnfs,
        [request],
        schedule,
        SimulationConfig(duration=1500.0, warmup=150.0, seed=17),
    )
    return simulator.run()


def test_bench_sim_vs_analytic(benchmark):
    metrics = benchmark.pedantic(_run_simulation, rounds=1, iterations=1)
    model = ChainFeedbackModel(
        external_rate=RATE, service_rates=MUS, delivery_probability=P
    )
    measured = metrics.mean_end_to_end()
    analytic = model.total_response_time()
    assert measured == pytest.approx(analytic, rel=0.15)
    # Per-station utilization matches lambda / (P mu).
    for i, mu in enumerate(MUS):
        util = metrics.instance(f"v{i}", 0).utilization
        assert util == pytest.approx(RATE / (P * mu), abs=0.05)
