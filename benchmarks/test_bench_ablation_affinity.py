"""Ablation: chain-affinity weighting in BFDSU (beyond-paper extension).

Measures what the affinity boost buys on the coordinated objective: the
fraction of chain hops that cross nodes (each costing ``L`` in Eq. 16),
at what consolidation cost.
"""

import numpy as np

from repro.placement.bfdsu import BFDSUPlacement
from repro.placement.chain_affinity import ChainAffinityBFDSU
from repro.workload.scenarios import PlacementScenario

REPS = 15


def _cross_node_hop_fraction(algo_factory, reps=REPS):
    scenario = PlacementScenario(num_vnfs=15, num_nodes=10, seed=41)
    crossing = 0
    total = 0
    nodes_used = []
    for rep in range(reps):
        problem = scenario.build(rep)
        result = algo_factory(rep).place(problem)
        nodes_used.append(result.num_used_nodes)
        for chain in problem.chains:
            for a, b in chain.hops():
                total += 1
                if result.placement[a] != result.placement[b]:
                    crossing += 1
    return crossing / max(1, total), float(np.mean(nodes_used))


def test_bench_ablation_chain_affinity(benchmark):
    affinity_frac, affinity_nodes = benchmark.pedantic(
        _cross_node_hop_fraction,
        args=(
            lambda rep: ChainAffinityBFDSU(
                rng=np.random.default_rng(rep), affinity_boost=8.0
            ),
        ),
        rounds=1,
        iterations=1,
    )
    plain_frac, plain_nodes = _cross_node_hop_fraction(
        lambda rep: BFDSUPlacement(rng=np.random.default_rng(rep))
    )
    # Affinity never increases cross-node hops ...
    assert affinity_frac <= plain_frac + 0.02
    # ... and costs at most one extra node of consolidation on average.
    assert affinity_nodes <= plain_nodes + 1.0
