#!/usr/bin/env python
"""Macro-benchmark: the million-request pipeline, end to end.

One pass over the scale path this PR wires together — no object
scenario is ever built:

1. ``construct``  — :func:`repro.workload.stream.stream_scenario` with
   the lean int32/float32 dtype policy, then
   :func:`~repro.workload.stream.rescale_to_stability`.
2. ``place``      — BFDSU with batched uniform draws
   (``draw_block``), on the VNF/node tables only.
3. ``schedule``   — :func:`repro.scheduling.kernels.schedule_columns`
   (exact least-loaded heap semantics per VNF).
4. ``refine``     — :func:`repro.core.local_search.refine_placement_columns`
   and :func:`repro.scheduling.swap_refine.swap_refine_columns`, the
   lean-column local-search passes (``--refine-rounds 0`` skips).
5. ``evaluate``   — :func:`repro.core.evaluation.evaluate_columns`
   (state-free Eq. 14/16/17 scoring).
6. ``simulate``   — :func:`repro.sim.scale.simulate_columns` over a
   horizon sized to ``--sim-packets`` generated packets, sharded over
   ``--jobs`` worker processes.

The report is wall-clock per stage plus headline numbers: pipeline
``requests_per_sec`` (requests / total seconds, construction through
simulation) and ``peak_rss_mb`` (``ru_maxrss`` of this process merged
with its reaped children — the bounded-memory claim covers the shard
workers too).  With ``--jobs N > 1`` the simulation also re-runs at
``jobs=1`` as a parity gate (the merged metrics must be byte-identical
at any worker count) and the report gains a ``sim_speedup`` headline.
A small-scale parity check runs first and fails the benchmark if the
scale path ever drifts from the object path.

Usage::

    PYTHONPATH=src python benchmarks/bench_scale.py [--quick] [--out FILE]

Defaults exercise 1,000,000 requests / 10,000 nodes / 2,000 VNFs;
``--quick`` shrinks to 100,000 / 1,000 / 400 for the CI smoke, which
also gates on ``--max-seconds`` / ``--max-rss-mb`` budgets (0 = off).
"""

from __future__ import annotations

import argparse
import json
import resource
import sys
import time
from pathlib import Path

try:  # pragma: no cover - path bootstrap for direct script runs
    import repro  # noqa: F401
except ImportError:  # pragma: no cover
    sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))

import numpy as np

from bench_core import DEFAULT_SEED
from repro.core.dtypes import LEAN_POLICY
from repro.core.evaluation import evaluate_columns
from repro.core.local_search import refine_placement_columns
from repro.placement.base import PlacementProblem
from repro.placement.bfdsu import BFDSUPlacement
from repro.scheduling.kernels import schedule_columns
from repro.scheduling.swap_refine import swap_refine_columns
from repro.sim.scale import simulate_columns
from repro.sim.simulator import SimulationConfig
from repro.workload.stream import rescale_to_stability, stream_scenario

#: Uniform doubles pre-drawn per block in the BFDSU weighted draws.
DRAW_BLOCK = 4096

#: Stability target fed to rescale_to_stability before simulating.
STABILITY = 0.7


def peak_rss_mb() -> float:
    """Peak resident set of this process *and* its children, in MiB.

    ``RUSAGE_CHILDREN`` reports the largest ``ru_maxrss`` over reaped
    child processes (the shard workers of ``--jobs N``); summing it
    with our own peak bounds the aggregate footprint the
    ``--max-rss-mb`` budget is meant to police — self alone would let
    worker bloat pass unnoticed.  Linux reports KiB; macOS bytes.
    """
    rss_kb = (
        resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
        + resource.getrusage(resource.RUSAGE_CHILDREN).ru_maxrss
    )
    if sys.platform == "darwin":  # pragma: no cover - ru_maxrss in bytes
        return rss_kb / (1024.0 * 1024.0)
    return rss_kb / 1024.0


def parity_check(seed: int) -> None:
    """Fail fast if the scale path drifts from the object path.

    Small scenario, default dtypes: streamed columns must equal the
    object build over the materialized requests exactly; batched BFDSU
    must place identically to scalar draws; evaluate_columns must match
    evaluate_deployment to float64 round-off.
    """
    from repro.core.arrays import ScenarioArrays
    from repro.core.evaluation import evaluate_deployment
    from repro.nfv.state import DeploymentState
    from repro.scheduling.base import schedule_all_vnfs
    from repro.scheduling.least_loaded import LeastLoadedScheduler
    from repro.workload.stream import materialize_requests

    scn = stream_scenario(
        num_vnfs=12, num_nodes=20, num_requests=300,
        rng=np.random.default_rng(seed),
    )
    requests = materialize_requests(scn)
    ref = ScenarioArrays.build(scn.vnfs, requests, scn.capacities)
    for col in ("lambda_r", "P_r", "chain_req", "chain_vnf", "chain_ptr"):
        np.testing.assert_array_equal(
            getattr(scn.arrays, col), getattr(ref, col), err_msg=col
        )

    problem = PlacementProblem(vnfs=scn.vnfs, capacities=scn.capacities)
    plain = BFDSUPlacement(rng=np.random.default_rng(seed)).place(problem)
    batched = BFDSUPlacement(
        rng=np.random.default_rng(seed), draw_block=DRAW_BLOCK
    ).place(problem)
    if batched.placement != plain.placement:
        raise AssertionError("batched BFDSU diverged from scalar draws")

    sched = schedule_columns(scn.arrays, policy="least_loaded")
    state = DeploymentState(
        vnfs=scn.vnfs,
        requests=requests,
        node_capacities=scn.capacities,
        placement=plain.placement,
        schedule=schedule_all_vnfs(
            scn.vnfs, requests, LeastLoadedScheduler()
        ),
    )
    want = evaluate_deployment(state, with_admission=False)
    got = evaluate_columns(
        scn.arrays, scn.arrays.placement_vector(plain.placement), sched
    )
    for field in (
        "average_node_utilization",
        "resource_occupation",
        "max_instance_utilization",
        "total_latency",
    ):
        a, b = getattr(got, field), getattr(want, field)
        if np.isfinite(b) and abs(a - b) > 1e-9 * max(1.0, abs(b)):
            raise AssertionError(f"parity drift on {field}: {a} != {b}")


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick",
        action="store_true",
        help="100k requests / 1k nodes (CI smoke)",
    )
    parser.add_argument("--out", type=Path, help="write the JSON report here")
    parser.add_argument("--seed", type=int, default=DEFAULT_SEED)
    parser.add_argument(
        "--requests", type=int, default=0,
        help="override the request count (0: scale default)",
    )
    parser.add_argument(
        "--sim-packets", type=float, default=5e6,
        help="size the simulation horizon to ~this many generated "
        "packets (default 5e6)",
    )
    parser.add_argument(
        "--jobs", type=int, default=1,
        help="shard the trace simulation over this many worker "
        "processes (0: auto, default 1: in-process); results are "
        "byte-identical at any value and gated by a jobs=1 re-run",
    )
    parser.add_argument(
        "--refine-rounds", type=int, default=2,
        help="local-search rounds for the lean-column refine stage "
        "(default 2; 0 skips the stage)",
    )
    parser.add_argument(
        "--max-seconds", type=float, default=0.0,
        help="exit non-zero if the pipeline exceeds this wall-clock "
        "budget (default 0: report only)",
    )
    parser.add_argument(
        "--max-rss-mb", type=float, default=0.0,
        help="exit non-zero if peak RSS exceeds this budget "
        "(default 0: report only)",
    )
    args = parser.parse_args(argv)

    if args.quick:
        num_requests, num_nodes, num_vnfs = 100_000, 1_000, 400
    else:
        num_requests, num_nodes, num_vnfs = 1_000_000, 10_000, 2_000
    if args.requests:
        num_requests = args.requests

    print("parity check (small scale, default dtypes)...", file=sys.stderr)
    parity_check(args.seed)

    stages = {}

    def _stage(name, fn):
        start = time.perf_counter()
        value = fn()
        stages[name] = time.perf_counter() - start
        print(
            f"{name:<10} {stages[name]:9.2f} s   "
            f"(rss {peak_rss_mb():,.0f} MiB)",
            file=sys.stderr,
        )
        return value

    print(
        f"scale run: {num_requests:,} requests / {num_nodes:,} nodes / "
        f"{num_vnfs:,} VNFs (seed {args.seed}, lean dtypes)",
        file=sys.stderr,
    )
    def _construct():
        scenario = stream_scenario(
            num_vnfs=num_vnfs,
            num_nodes=num_nodes,
            num_requests=num_requests,
            rng=np.random.default_rng(args.seed),
            dtypes=LEAN_POLICY,
        )
        rescale_to_stability(scenario, target=STABILITY)
        return scenario

    scn = _stage("construct", _construct)
    arrays = scn.arrays

    placement = _stage(
        "place",
        lambda: BFDSUPlacement(
            rng=np.random.default_rng(args.seed), draw_block=DRAW_BLOCK
        ).place(
            PlacementProblem(vnfs=scn.vnfs, capacities=scn.capacities)
        ),
    )
    sched = _stage(
        "schedule", lambda: schedule_columns(arrays, policy="least_loaded")
    )

    placement_vec = arrays.placement_vector(placement.placement)
    refine_moves = swap_moves = 0
    if args.refine_rounds > 0:
        def _refine():
            nonlocal sched, refine_moves, swap_moves
            report = refine_placement_columns(
                arrays, placement_vec, max_rounds=args.refine_rounds
            )
            refine_moves = report.moves_applied
            sched, swap_moves = swap_refine_columns(
                arrays, sched, max_rounds=args.refine_rounds
            )
            return report
        _stage("refine", _refine)

    report_eval = _stage(
        "evaluate",
        lambda: evaluate_columns(arrays, placement_vec, sched),
    )

    total_rate = float(np.asarray(arrays.lambda_r, dtype=np.float64).sum())
    horizon = max(0.25, args.sim_packets / max(total_rate, 1.0))
    cfg = SimulationConfig(
        duration=horizon, warmup=0.1 * horizon, seed=args.seed
    )
    metrics = _stage(
        "simulate",
        lambda: simulate_columns(arrays, sched, cfg, jobs=args.jobs),
    )

    sim_speedup = None
    if args.jobs is not None and args.jobs != 1:
        # Parity gate + speedup headline: the sharded run must merge to
        # the byte-identical metrics of the in-process run.
        serial = _stage(
            "simulate1",
            lambda: simulate_columns(arrays, sched, cfg, jobs=1),
        )
        for field in (
            "generated", "delivered", "retransmitted", "latency_sum",
            "instance_arrivals", "instance_departures",
            "instance_mean_sojourn", "instance_utilization",
        ):
            a, b = getattr(metrics, field), getattr(serial, field)
            same = (
                a == b if np.isscalar(a) or a is None
                else np.array_equal(np.asarray(a), np.asarray(b))
            )
            if not same:
                raise AssertionError(
                    f"sharded simulate (jobs={args.jobs}) diverged from "
                    f"jobs=1 on {field}"
                )
        sim_speedup = stages["simulate1"] / max(stages["simulate"], 1e-9)
        print(
            f"sim parity ok: jobs={args.jobs} byte-identical to jobs=1 "
            f"({sim_speedup:.2f}x speedup)",
            file=sys.stderr,
        )

    # The jobs=1 parity re-run is a gate, not pipeline work: exclude it
    # from the throughput denominator.
    total_s = sum(v for k, v in stages.items() if k != "simulate1")
    rss_mb = peak_rss_mb()
    headline = {
        "requests_per_sec": num_requests / total_s,
        "peak_rss_mb": rss_mb,
    }
    if sim_speedup is not None:
        headline["sim_speedup"] = sim_speedup
        headline["sim_jobs"] = args.jobs
    report = {
        "scenario": {
            "num_requests": num_requests,
            "num_nodes": num_nodes,
            "num_vnfs": num_vnfs,
            "seed": args.seed,
            "quick": args.quick,
            "stability_target": STABILITY,
            "sim_horizon_s": horizon,
            "sim_jobs": args.jobs,
            "refine_rounds": args.refine_rounds,
        },
        "stages_s": stages,
        "total_s": total_s,
        "headline": headline,
        "results": {},
        "pipeline": {
            "used_nodes": placement.num_used_nodes,
            "bfdsu_draws": placement.iterations,
            "refine_relocations": refine_moves,
            "refine_swap_moves": swap_moves,
            "max_instance_utilization": report_eval.max_instance_utilization,
            "avg_node_utilization": report_eval.average_node_utilization,
            "sim_generated": int(metrics.generated),
            "sim_delivered": int(metrics.total_delivered),
            "sim_mean_latency_s": float(metrics.mean_latency),
        },
    }
    print(
        f"total      {total_s:9.2f} s   "
        f"{headline['requests_per_sec']:,.0f} requests/s   "
        f"peak rss {rss_mb:,.0f} MiB   "
        f"({metrics.generated:,} packets simulated)",
        file=sys.stderr,
    )
    payload = json.dumps(report, indent=2)
    print(payload)
    if args.out:
        args.out.write_text(payload + "\n")
        print(f"wrote {args.out}", file=sys.stderr)

    status = 0
    if args.max_seconds and total_s > args.max_seconds:
        print(
            f"pipeline took {total_s:.1f} s, over the "
            f"{args.max_seconds:.1f} s budget",
            file=sys.stderr,
        )
        status = 1
    if args.max_rss_mb and rss_mb > args.max_rss_mb:
        print(
            f"peak RSS {rss_mb:,.0f} MiB, over the "
            f"{args.max_rss_mb:,.0f} MiB budget",
            file=sys.stderr,
        )
        status = 1
    return status


if __name__ == "__main__":
    raise SystemExit(main())
