#!/usr/bin/env python
"""Append a bench report's speedups to the tracked BENCH_TRAJECTORY.json.

The raw ``bench_*.json`` artifacts are gitignored; this helper distills
one into a trajectory entry (headline speedups only) so the tracked
history stays small::

    PYTHONPATH=src python benchmarks/bench_topo.py --out report.json
    python benchmarks/update_trajectory.py --pr 6 --bench bench_topo report.json

An existing entry with the same ``(pr, bench)`` pair is replaced.
"""

from __future__ import annotations

import argparse
import json
from pathlib import Path

TRAJECTORY = Path(__file__).resolve().parents[1] / "BENCH_TRAJECTORY.json"


def distill(report: dict) -> dict:
    """Speedups, scale headlines and scenario line from one bench report."""
    speedups = {
        name: entry["speedup"]
        for name, entry in report.get("results", {}).items()
        if entry.get("speedup") is not None
    }
    scenario = report.get("scenario", {})
    parts = []
    for key in ("num_requests", "num_nodes", "num_vnfs"):
        if key in scenario:
            parts.append(f"{scenario[key]} {key.removeprefix('num_')}")
    entry = {
        "scenario": " / ".join(parts) or "(unknown)",
        "speedups": speedups,
    }
    # Macro benchmarks report absolute headline numbers instead of
    # speedups — pipeline requests/s and peak RSS (bench_scale),
    # recovery latency and eviction throughput (bench_faults).
    headline = {
        key: round(float(value), 2)
        for key, value in report.get("headline", {}).items()
        if key
        in (
            "requests_per_sec",
            "peak_rss_mb",
            "sim_speedup",
            "sim_jobs",
            "recovery_p99_ms",
            "evictions_per_sec",
        )
    }
    if headline:
        entry["headline"] = headline
    return entry


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("report", type=Path, help="bench JSON report to distill")
    parser.add_argument("--pr", type=int, required=True, help="PR number")
    parser.add_argument(
        "--bench", required=True, help="bench name, e.g. bench_topo"
    )
    parser.add_argument(
        "--trajectory", type=Path, default=TRAJECTORY, help=f"({TRAJECTORY})"
    )
    args = parser.parse_args(argv)

    report = json.loads(args.report.read_text())
    if report.get("scenario", {}).get("quick"):
        parser.error("refusing to record a --quick run in the trajectory")
    entry = {"pr": args.pr, "bench": args.bench, **distill(report)}
    entry["source"] = f"benchmarks/{args.bench}.py (PR {args.pr})"

    trajectory = json.loads(args.trajectory.read_text())
    entries = [
        e
        for e in trajectory["entries"]
        if (e["pr"], e["bench"]) != (args.pr, args.bench)
    ]
    entries.append(entry)
    entries.sort(key=lambda e: (e["pr"], e["bench"]))
    trajectory["entries"] = entries
    args.trajectory.write_text(json.dumps(trajectory, indent=2) + "\n")
    print(f"recorded {args.bench} (PR {args.pr}) -> {args.trajectory}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
