"""Microbenchmarks: single placement / scheduling calls.

These measure the raw algorithm cost the paper's Section IV-D analyses:
BFDSU O(m(log m + n log n)), RCKK O(n m log m), and the baselines.
"""

import numpy as np
import pytest

from repro.placement.bfd import BFDPlacement
from repro.placement.bfdsu import BFDSUPlacement
from repro.placement.ffd import FFDPlacement
from repro.placement.nah import NAHPlacement
from repro.scheduling.cga import CGAScheduler
from repro.scheduling.least_loaded import LeastLoadedScheduler
from repro.scheduling.rckk import RCKKScheduler


@pytest.mark.parametrize(
    "algo_factory",
    [
        lambda: BFDSUPlacement(rng=np.random.default_rng(0)),
        lambda: FFDPlacement(),
        lambda: NAHPlacement(),
        lambda: BFDPlacement(),
    ],
    ids=["BFDSU", "FFD", "NAH", "BFD"],
)
def test_bench_placement_call(benchmark, algo_factory, bench_placement_problem):
    algo = algo_factory()
    result = benchmark(algo.place, bench_placement_problem)
    result.validate()


@pytest.mark.parametrize(
    "algo_factory",
    [
        lambda: RCKKScheduler(),
        lambda: CGAScheduler(),
        lambda: LeastLoadedScheduler(),
    ],
    ids=["RCKK", "CGA", "LeastLoaded"],
)
def test_bench_scheduling_call(
    benchmark, algo_factory, bench_scheduling_problem
):
    algo = algo_factory()
    result = benchmark(algo.schedule, bench_scheduling_problem)
    result.validate()


def test_bench_rckk_scales_near_linear(benchmark):
    """RCKK at n=400, m=10 — the complexity claim's large end."""
    from repro.workload.scenarios import SchedulingScenario

    problem = SchedulingScenario(
        num_requests=400, num_instances=10, seed=3
    ).build(0)
    result = benchmark(RCKKScheduler().schedule, problem)
    result.validate()
