"""Benchmark + shape check for Fig. 13 (response time vs #instances, P=0.98)."""

from repro.experiments import fig13

REPS = 40


def test_bench_fig13(benchmark):
    result = benchmark.pedantic(
        fig13.run, kwargs={"repetitions": REPS}, rounds=1, iterations=1
    )
    enh = [
        float(row["enhancement"])
        for row in result.rows
        if row["algorithm"] == "RCKK"
    ]
    # Paper: advantage widens 5.24% -> 25.05% as instances grow.
    assert enh[-1] > enh[0]
    assert enh[-1] > 0.1
