"""Benchmark + shape check for Fig. 6 (utilization vs #VNFs)."""

from conftest import mean_of

from repro.experiments import fig06

REPS = 5


def test_bench_fig06(benchmark):
    result = benchmark.pedantic(
        fig06.run, kwargs={"repetitions": REPS}, rounds=1, iterations=1
    )
    bfdsu = mean_of(result, "BFDSU", "utilization")
    ffd = mean_of(result, "FFD", "utilization")
    nah = mean_of(result, "NAH", "utilization")
    # Paper: +31.61% vs FFD and +33.41% vs NAH on average.
    assert (bfdsu - ffd) / ffd > 0.2
    assert (bfdsu - nah) / nah > 0.2
