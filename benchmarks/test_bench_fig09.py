"""Benchmark + shape check for Fig. 9 (resource occupation vs #nodes)."""

from conftest import series

from repro.experiments import fig09

REPS = 5


def test_bench_fig09(benchmark):
    result = benchmark.pedantic(
        fig09.run, kwargs={"repetitions": REPS}, rounds=1, iterations=1
    )
    bfdsu = series(result, "BFDSU", "occupation")
    ffd = series(result, "FFD", "occupation")
    nah = series(result, "NAH", "occupation")
    # Paper: BFDSU stably low; FFD and NAH grow with the pool.
    assert max(bfdsu) < 1.6 * min(bfdsu)
    assert ffd[-1] > ffd[0]
    assert nah[-1] > nah[0]
    assert ffd[-1] > 1.5 * bfdsu[-1]
