"""Benchmark + check for the abstract's headline claims."""

from repro.experiments import headline

PLACEMENT_REPS = 5
SCHED_REPS = 40


def _value(result, metric):
    for row in result.rows:
        if row["metric"] == metric:
            return float(row["value"])
    raise KeyError(metric)


def test_bench_headline(benchmark):
    result = benchmark.pedantic(
        headline.run,
        kwargs={
            "placement_repetitions": PLACEMENT_REPS,
            "scheduling_repetitions": SCHED_REPS,
        },
        rounds=1,
        iterations=1,
    )
    # Paper: +31.61% / +33.41% utilization, -19.9% latency.  We require
    # the same direction and at least half the paper's magnitude.
    assert _value(result, "utilization gain vs FFD") > 0.15
    assert _value(result, "utilization gain vs NAH") > 0.15
    assert _value(result, "avg latency reduction (RCKK vs CGA)") > 0.05
