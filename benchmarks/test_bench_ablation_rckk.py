"""Ablation: RCKK's reverse-order combine (abl-reverse in DESIGN.md).

Quantifies how much of RCKK's balance quality comes specifically from
pairing each partition's largest way with the other's smallest way, by
comparing against the deliberately weakened forward-combine variant and
against plain greedy.
"""

import numpy as np

from repro.partition.greedy import greedy_partition
from repro.partition.rckk import forward_ckk_partition, rckk_partition

REPS = 200


def _mean_spread(algo, reps=REPS, n=30, m=5, seed=13):
    rng = np.random.default_rng(seed)
    spreads = []
    for _ in range(reps):
        values = list(rng.uniform(1.0, 100.0, size=n))
        spreads.append(algo(values, m).spread)
    return float(np.mean(spreads))


def test_bench_ablation_reverse_combine(benchmark):
    reverse = benchmark.pedantic(
        _mean_spread, args=(rckk_partition,), rounds=1, iterations=1
    )
    forward = _mean_spread(forward_ckk_partition)
    # The reverse alignment is the load-bearing design choice: forward
    # combining is dramatically less balanced.
    assert reverse < forward / 2.0


def test_bench_ablation_rckk_vs_greedy(benchmark):
    rckk = benchmark.pedantic(
        _mean_spread, args=(rckk_partition,), rounds=1, iterations=1
    )
    greedy = _mean_spread(greedy_partition)
    # Differencing beats LPT on balance at equal asymptotic cost.
    assert rckk <= greedy
