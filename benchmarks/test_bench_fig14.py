"""Benchmark + shape check for Fig. 14 (response time vs #instances, P=1.00)."""

from repro.experiments import fig14

REPS = 40


def test_bench_fig14(benchmark):
    result = benchmark.pedantic(
        fig14.run, kwargs={"repetitions": REPS}, rounds=1, iterations=1
    )
    enh = [
        float(row["enhancement"])
        for row in result.rows
        if row["algorithm"] == "RCKK"
    ]
    # Paper: advantage widens 3.16% -> 18.53% as instances grow.
    assert enh[-1] > enh[0]
    assert enh[-1] > 0.08
