"""Benchmark + shape check for Fig. 7 (utilization vs #nodes)."""

from conftest import series

from repro.experiments import fig07

REPS = 5


def test_bench_fig07(benchmark):
    result = benchmark.pedantic(
        fig07.run, kwargs={"repetitions": REPS}, rounds=1, iterations=1
    )
    bfdsu = series(result, "BFDSU", "utilization")
    ffd = series(result, "FFD", "utilization")
    nah = series(result, "NAH", "utilization")
    # Paper: BFDSU stable; FFD and NAH decay as the pool grows.
    assert max(bfdsu) - min(bfdsu) < 0.1
    assert ffd[0] - ffd[-1] > 0.15
    assert nah[0] - nah[-1] > 0.15
