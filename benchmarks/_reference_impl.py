"""Pre-refactor scalar metric paths, preserved for benchmarking.

These are the object-graph implementations exactly as they stood before
the columnar :mod:`repro.core.arrays` refactor (see the git history of
``src/repro/core/evaluation.py``), including the linear duplicate scan
the old ``ServiceInstance.assign`` performed.  ``bench_core.py`` times
them against the vectorized replacements and cross-checks parity; the
property tests in ``tests/core/test_metric_parity.py`` hold the two
paths within 1e-12 relative error.
"""

from __future__ import annotations

import math
from typing import Dict, Hashable, List, Tuple

from repro.core.admission import apply_admission_control
from repro.core.evaluation import EvaluationReport
from repro.exceptions import SchedulingError, ValidationError
from repro.nfv.instance import ServiceInstance
from repro.nfv.state import DeploymentState
from repro.scheduling.base import SchedulingProblem
from repro.topology.graph import DEFAULT_LINK_LATENCY


def reference_instances(state: DeploymentState) -> List[ServiceInstance]:
    """Materialize instances the pre-refactor way (linear duplicate scan)."""
    table: Dict[Tuple[str, int], ServiceInstance] = {}
    for vnf in state.vnfs:
        for k in range(vnf.num_instances):
            table[(vnf.name, k)] = ServiceInstance(vnf=vnf, index=k)
    by_id = {r.request_id: r for r in state.requests}
    for (request_id, vnf_name), k in state.schedule.items():
        request = by_id.get(request_id)
        if request is None:
            raise ValidationError(
                f"schedule references unknown request {request_id!r}"
            )
        instance = table.get((vnf_name, k))
        if instance is None:
            raise ValidationError(
                f"schedule references unknown instance ({vnf_name!r}, {k})"
            )
        if not request.uses(vnf_name):
            raise SchedulingError(
                f"request {request_id!r} does not use VNF {vnf_name!r}; "
                "cannot schedule it here"
            )
        if any(r.request_id == request_id for r in instance.requests):
            raise SchedulingError(
                f"request {request_id!r} already scheduled on "
                f"instance {instance.key!r}"
            )
        instance.requests.append(request)
    return list(table.values())


def reference_average_node_utilization(state: DeploymentState) -> float:
    """Pre-refactor Eq. (13): python loop over nodes in service."""
    used = state.nodes_in_service()
    if not used:
        return 0.0
    return sum(state.node_utilization(v) for v in used) / len(used)


def reference_per_request_response_time(
    state: DeploymentState, instances: List[ServiceInstance]
) -> Dict[str, float]:
    """Pre-refactor first term of Eq. (16): dict walk per chain entry."""
    instance_w: Dict[Tuple[str, int], float] = {}
    for inst in instances:
        if inst.requests:
            instance_w[inst.key] = (
                inst.mean_response_time if inst.is_stable else math.inf
            )
    totals: Dict[str, float] = {}
    for request in state.requests:
        total = 0.0
        for vnf_name in request.chain:
            k = state.schedule.get((request.request_id, vnf_name))
            if k is None:
                raise SchedulingError(
                    f"request {request.request_id!r} unscheduled on "
                    f"VNF {vnf_name!r}"
                )
            total += instance_w[(vnf_name, k)]
        totals[request.request_id] = total
    return totals


def reference_total_latency(
    state: DeploymentState,
    link_latency: float,
    instances: List[ServiceInstance] = None,
) -> float:
    """Pre-refactor Eq. (16): per-request python accumulation."""
    if instances is None:
        instances = reference_instances(state)
    response = reference_per_request_response_time(state, instances)
    total = 0.0
    for request in state.requests:
        hops = state.inter_node_hops(request.request_id)
        total += response[request.request_id] + hops * link_latency
    return total


def reference_total_inter_node_hops(state: DeploymentState) -> int:
    """Pre-refactor hop count: one chain walk per request."""
    return sum(state.inter_node_hops(r.request_id) for r in state.requests)


def reference_evaluate_deployment(
    state: DeploymentState,
    link_latency: float = DEFAULT_LINK_LATENCY,
    with_admission: bool = True,
) -> EvaluationReport:
    """The pre-refactor object-path ``evaluate_deployment``, verbatim."""
    state.validate()
    instances = reference_instances(state)
    serving = [inst for inst in instances if inst.requests]

    num_rejected = 0
    rejection_rate = 0.0
    latency_instances = serving
    if with_admission:
        outcome = apply_admission_control(serving)
        num_rejected = outcome.num_rejected
        rejection_rate = outcome.rejection_rate
        latency_instances = [
            inst for inst in outcome.instances if inst.requests
        ]

    if latency_instances and all(i.is_stable for i in latency_instances):
        avg_w = sum(i.mean_response_time for i in latency_instances) / len(
            latency_instances
        )
    else:
        avg_w = math.inf

    max_util = max((i.utilization for i in serving), default=0.0)

    if math.isfinite(avg_w) and not num_rejected:
        total = reference_total_latency(state, link_latency, instances)
        avg_total = total / len(state.requests) if state.requests else 0.0
    else:
        total = math.inf
        avg_total = math.inf

    return EvaluationReport(
        average_node_utilization=reference_average_node_utilization(state),
        nodes_in_service=len(state.nodes_in_service()),
        resource_occupation=sum(
            state.node_capacities[v] for v in state.nodes_in_service()
        ),
        average_response_latency=avg_w,
        max_instance_utilization=max_util,
        total_latency=total,
        average_total_latency=avg_total,
        num_rejected=num_rejected,
        rejection_rate=rejection_rate,
    )


def reference_node_loads(result) -> Dict[Hashable, float]:
    """Pre-refactor ``PlacementResult.node_loads``: per-VNF dict loop."""
    loads: Dict[Hashable, float] = {}
    for vnf in result.problem.vnfs:
        node = result.placement.get(vnf.name)
        if node is None:
            continue
        loads[node] = loads.get(node, 0.0) + vnf.total_demand
    return loads


def reference_average_utilization(result) -> float:
    """Pre-refactor ``PlacementResult.average_utilization``."""
    loads = reference_node_loads(result)
    if not loads:
        return 0.0
    total = 0.0
    for node, load in loads.items():
        capacity = result.problem.capacities[node]
        total += load / capacity if capacity > 0 else 0.0
    return total / len(loads)


def reference_instance_rates(result) -> List[float]:
    """Pre-refactor ``ScheduleResult.instance_rates``: object aggregation."""
    instances = [
        ServiceInstance(vnf=result.problem.vnf, index=k)
        for k in range(result.problem.vnf.num_instances)
    ]
    for request in result.problem.requests:
        k = result.assignment.get(request.request_id)
        if k is None or not 0 <= k < len(instances):
            raise SchedulingError(
                f"request {request.request_id!r} has no valid instance"
            )
        instances[k].requests.append(request)
    return [inst.equivalent_arrival_rate for inst in instances]


def reference_schedule_all_vnfs(vnfs, requests, algorithm):
    """Pre-refactor ``schedule_all_vnfs``: quadratic per-VNF user scan."""
    joint: Dict[Tuple[str, str], int] = {}
    for vnf in vnfs:
        users = [r for r in requests if r.uses(vnf.name)]
        if not users:
            continue
        result = algorithm.schedule(SchedulingProblem(vnf=vnf, requests=users))
        result.validate()
        for request_id, k in result.assignment.items():
            joint[(request_id, vnf.name)] = k
    return joint
