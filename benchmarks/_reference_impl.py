"""Pre-refactor scalar metric paths, preserved for benchmarking.

These are the object-graph implementations exactly as they stood before
the columnar :mod:`repro.core.arrays` refactor (see the git history of
``src/repro/core/evaluation.py``), including the linear duplicate scan
the old ``ServiceInstance.assign`` performed.  ``bench_core.py`` times
them against the vectorized replacements and cross-checks parity; the
property tests in ``tests/core/test_metric_parity.py`` hold the two
paths within 1e-12 relative error.

The second half of the module preserves the pre-kernel *solver* paths
(legacy BFDSU, full-recount local search, per-candidate swap refine;
the tuple-based ``karmarkar_karp_multiway`` stays in the library and is
aliased here).  ``bench_solvers.py`` times them against the array
kernels and ``tests/core/test_solver_kernel_parity.py`` pins
seed-for-seed byte-identical outputs.
"""

from __future__ import annotations

import math
from typing import Dict, Hashable, List, Tuple

from repro.core.admission import apply_admission_control
from repro.core.evaluation import EvaluationReport
from repro.exceptions import SchedulingError, ValidationError
from repro.nfv.instance import ServiceInstance
from repro.nfv.state import DeploymentState
from repro.scheduling.base import SchedulingProblem
from repro.topology.graph import DEFAULT_LINK_LATENCY


def reference_instances(state: DeploymentState) -> List[ServiceInstance]:
    """Materialize instances the pre-refactor way (linear duplicate scan)."""
    table: Dict[Tuple[str, int], ServiceInstance] = {}
    for vnf in state.vnfs:
        for k in range(vnf.num_instances):
            table[(vnf.name, k)] = ServiceInstance(vnf=vnf, index=k)
    by_id = {r.request_id: r for r in state.requests}
    for (request_id, vnf_name), k in state.schedule.items():
        request = by_id.get(request_id)
        if request is None:
            raise ValidationError(
                f"schedule references unknown request {request_id!r}"
            )
        instance = table.get((vnf_name, k))
        if instance is None:
            raise ValidationError(
                f"schedule references unknown instance ({vnf_name!r}, {k})"
            )
        if not request.uses(vnf_name):
            raise SchedulingError(
                f"request {request_id!r} does not use VNF {vnf_name!r}; "
                "cannot schedule it here"
            )
        if any(r.request_id == request_id for r in instance.requests):
            raise SchedulingError(
                f"request {request_id!r} already scheduled on "
                f"instance {instance.key!r}"
            )
        instance.requests.append(request)
    return list(table.values())


def reference_average_node_utilization(state: DeploymentState) -> float:
    """Pre-refactor Eq. (13): python loop over nodes in service."""
    used = state.nodes_in_service()
    if not used:
        return 0.0
    return sum(state.node_utilization(v) for v in used) / len(used)


def reference_per_request_response_time(
    state: DeploymentState, instances: List[ServiceInstance]
) -> Dict[str, float]:
    """Pre-refactor first term of Eq. (16): dict walk per chain entry."""
    instance_w: Dict[Tuple[str, int], float] = {}
    for inst in instances:
        if inst.requests:
            instance_w[inst.key] = (
                inst.mean_response_time if inst.is_stable else math.inf
            )
    totals: Dict[str, float] = {}
    for request in state.requests:
        total = 0.0
        for vnf_name in request.chain:
            k = state.schedule.get((request.request_id, vnf_name))
            if k is None:
                raise SchedulingError(
                    f"request {request.request_id!r} unscheduled on "
                    f"VNF {vnf_name!r}"
                )
            total += instance_w[(vnf_name, k)]
        totals[request.request_id] = total
    return totals


def reference_total_latency(
    state: DeploymentState,
    link_latency: float,
    instances: List[ServiceInstance] = None,
) -> float:
    """Pre-refactor Eq. (16): per-request python accumulation."""
    if instances is None:
        instances = reference_instances(state)
    response = reference_per_request_response_time(state, instances)
    total = 0.0
    for request in state.requests:
        hops = state.inter_node_hops(request.request_id)
        total += response[request.request_id] + hops * link_latency
    return total


def reference_total_inter_node_hops(state: DeploymentState) -> int:
    """Pre-refactor hop count: one chain walk per request."""
    return sum(state.inter_node_hops(r.request_id) for r in state.requests)


def reference_evaluate_deployment(
    state: DeploymentState,
    link_latency: float = DEFAULT_LINK_LATENCY,
    with_admission: bool = True,
) -> EvaluationReport:
    """The pre-refactor object-path ``evaluate_deployment``, verbatim."""
    state.validate()
    instances = reference_instances(state)
    serving = [inst for inst in instances if inst.requests]

    num_rejected = 0
    rejection_rate = 0.0
    latency_instances = serving
    if with_admission:
        outcome = apply_admission_control(serving)
        num_rejected = outcome.num_rejected
        rejection_rate = outcome.rejection_rate
        latency_instances = [
            inst for inst in outcome.instances if inst.requests
        ]

    if latency_instances and all(i.is_stable for i in latency_instances):
        avg_w = sum(i.mean_response_time for i in latency_instances) / len(
            latency_instances
        )
    else:
        avg_w = math.inf

    max_util = max((i.utilization for i in serving), default=0.0)

    if math.isfinite(avg_w) and not num_rejected:
        total = reference_total_latency(state, link_latency, instances)
        avg_total = total / len(state.requests) if state.requests else 0.0
    else:
        total = math.inf
        avg_total = math.inf

    return EvaluationReport(
        average_node_utilization=reference_average_node_utilization(state),
        nodes_in_service=len(state.nodes_in_service()),
        resource_occupation=sum(
            state.node_capacities[v] for v in state.nodes_in_service()
        ),
        average_response_latency=avg_w,
        max_instance_utilization=max_util,
        total_latency=total,
        average_total_latency=avg_total,
        num_rejected=num_rejected,
        rejection_rate=rejection_rate,
    )


def reference_node_loads(result) -> Dict[Hashable, float]:
    """Pre-refactor ``PlacementResult.node_loads``: per-VNF dict loop."""
    loads: Dict[Hashable, float] = {}
    for vnf in result.problem.vnfs:
        node = result.placement.get(vnf.name)
        if node is None:
            continue
        loads[node] = loads.get(node, 0.0) + vnf.total_demand
    return loads


def reference_average_utilization(result) -> float:
    """Pre-refactor ``PlacementResult.average_utilization``."""
    loads = reference_node_loads(result)
    if not loads:
        return 0.0
    total = 0.0
    for node, load in loads.items():
        capacity = result.problem.capacities[node]
        total += load / capacity if capacity > 0 else 0.0
    return total / len(loads)


def reference_instance_rates(result) -> List[float]:
    """Pre-refactor ``ScheduleResult.instance_rates``: object aggregation."""
    instances = [
        ServiceInstance(vnf=result.problem.vnf, index=k)
        for k in range(result.problem.vnf.num_instances)
    ]
    for request in result.problem.requests:
        k = result.assignment.get(request.request_id)
        if k is None or not 0 <= k < len(instances):
            raise SchedulingError(
                f"request {request.request_id!r} has no valid instance"
            )
        instances[k].requests.append(request)
    return [inst.equivalent_arrival_rate for inst in instances]


def reference_schedule_all_vnfs(vnfs, requests, algorithm):
    """Pre-refactor ``schedule_all_vnfs``: quadratic per-VNF user scan."""
    joint: Dict[Tuple[str, str], int] = {}
    for vnf in vnfs:
        users = [r for r in requests if r.uses(vnf.name)]
        if not users:
            continue
        result = algorithm.schedule(SchedulingProblem(vnf=vnf, requests=users))
        result.validate()
        for request_id, k in result.assignment.items():
            joint[(request_id, vnf.name)] = k
    return joint


# ----------------------------------------------------------------------
# Pre-kernel solver paths (PR 3), preserved verbatim from git history:
# the per-object BFDSU construction loop, the full-recount local-search
# hill climb, and the per-candidate swap-refine scan.  The multi-way KK
# legacy reference needs no copy — the tuple-based
# ``repro.partition.karmarkar_karp.karmarkar_karp_multiway`` stays in
# the library unchanged and is aliased here for symmetry.
# ----------------------------------------------------------------------

from typing import Optional  # noqa: E402

from repro.core.local_search import (  # noqa: E402
    RefinementReport,
    total_inter_node_hops,
)
from repro.exceptions import MaxRestartsExceededError  # noqa: E402
from repro.partition.karmarkar_karp import karmarkar_karp_multiway  # noqa: E402
from repro.placement.base import (  # noqa: E402
    PlacementProblem,
    PlacementResult,
    demand_sorted_vnfs,
)
from repro.placement.bfdsu import WEIGHT_OFFSET, placement_weights  # noqa: E402
from repro.seeding import RngLike, resolve_rng  # noqa: E402

#: The tuple-based multi-way KK differencing is the RCKK legacy path.
reference_kk_multiway = karmarkar_karp_multiway


class ReferenceBFDSU:
    """Pre-kernel BFDSU: dict residuals, used/spare lists, per-draw sort."""

    name = "BFDSU"

    def __init__(
        self,
        rng: Optional[RngLike] = None,
        max_restarts: int = 200,
        weight_offset: float = WEIGHT_OFFSET,
    ) -> None:
        self._rng = resolve_rng(rng)
        self._max_restarts = max_restarts
        self._weight_offset = weight_offset

    def place(self, problem: PlacementProblem) -> PlacementResult:
        problem.check_necessary_feasibility()
        vnfs = demand_sorted_vnfs(problem)
        attempts = 0
        draws = 0
        while attempts <= self._max_restarts:
            attempts += 1
            placement, attempt_draws = self._attempt(problem, vnfs)
            draws += attempt_draws
            if placement is not None:
                result = PlacementResult(
                    placement=placement,
                    problem=problem,
                    iterations=draws,
                    algorithm=self.name,
                )
                result.validate()
                return result
        raise MaxRestartsExceededError(
            f"BFDSU failed to find a feasible placement within "
            f"{self._max_restarts} restarts"
        )

    def _attempt(self, problem, vnfs):
        residual = dict(problem.capacities)
        used = []
        used_set = set()
        spare = list(problem.capacities.keys())
        placement = {}
        draws = 0

        for vnf in vnfs:
            demand = vnf.total_demand
            candidates = [v for v in used if residual[v] >= demand - 1e-9]
            if not candidates:
                candidates = [v for v in spare if residual[v] >= demand - 1e-9]
            if not candidates:
                return None, draws
            draws += 1
            target = self._weighted_draw(candidates, residual, demand)
            placement[vnf.name] = target
            residual[target] -= demand
            if target not in used_set:
                used_set.add(target)
                used.append(target)
                spare.remove(target)
        return placement, draws

    def _weighted_draw(self, candidates, residual, demand):
        ordered = sorted(candidates, key=lambda v: (residual[v], str(v)))
        weights = placement_weights(
            [residual[v] for v in ordered], demand, self._weight_offset
        )
        prob_sum = sum(weights)
        xi = self._rng.uniform(0.0, prob_sum)
        cumulative = 0.0
        for node, weight in zip(ordered, weights):
            cumulative += weight
            if xi < cumulative:
                return node
        return ordered[-1]


def reference_bfdsu_place(
    problem: PlacementProblem,
    rng: Optional[RngLike] = None,
    max_restarts: int = 200,
    weight_offset: float = WEIGHT_OFFSET,
) -> PlacementResult:
    """One legacy BFDSU run (convenience wrapper over the class)."""
    return ReferenceBFDSU(
        rng=rng, max_restarts=max_restarts, weight_offset=weight_offset
    ).place(problem)


def reference_refine_placement(
    state: DeploymentState,
    max_rounds: int = 10,
    trace=None,
) -> RefinementReport:
    """Pre-kernel relocate hill climb: full hop recount per candidate.

    Verbatim legacy loop (including the linear-scan fit check) plus the
    same optional ``trace`` hook the kernel exposes, so the parity tests
    can compare move sequences.
    """
    if max_rounds < 1:
        raise ValidationError(f"max_rounds must be >= 1, got {max_rounds!r}")
    state.validate()

    initial_hops = total_inter_node_hops(state)
    current_hops = initial_hops
    moves = 0

    nodes = list(state.node_capacities.keys())
    for _ in range(max_rounds):
        improved_this_round = False
        for vnf in state.vnfs:
            source = state.placement[vnf.name]
            best_target = None
            best_hops = current_hops
            for target in nodes:
                if target == source:
                    continue
                if not _reference_fits_after_move(state, vnf.name, target):
                    continue
                state.placement[vnf.name] = target
                hops = total_inter_node_hops(state)
                if hops < best_hops:
                    best_hops = hops
                    best_target = target
                state.placement[vnf.name] = source
            if best_target is not None:
                state.placement[vnf.name] = best_target
                current_hops = best_hops
                moves += 1
                improved_this_round = True
                if trace is not None:
                    trace.append((vnf.name, source, best_target))
        if not improved_this_round:
            break

    state.validate()
    return RefinementReport(
        moves_applied=moves,
        initial_hops=initial_hops,
        final_hops=current_hops,
        hops_saved=initial_hops - current_hops,
    )


def _reference_fits_after_move(
    state: DeploymentState, vnf_name: str, target: Hashable
) -> bool:
    vnf = next(f for f in state.vnfs if f.name == vnf_name)
    capacity = state.node_capacities.get(target)
    if capacity is None:
        return False
    load = sum(
        f.total_demand
        for f in state.vnfs
        if f.name != vnf_name and state.placement.get(f.name) == target
    )
    return load + vnf.total_demand <= capacity + 1e-9


def reference_refine_assignment(
    rates: List[float],
    assignment: List[int],
    num_ways: int,
    max_rounds: int = 20,
) -> Tuple[List[int], int]:
    """Pre-kernel move/swap scan: per-candidate makespan recomputation."""
    if max_rounds < 1:
        raise ValidationError(f"max_rounds must be >= 1, got {max_rounds!r}")
    current = list(assignment)
    sums = [0.0] * num_ways
    members = [[] for _ in range(num_ways)]
    for idx, way in enumerate(current):
        sums[way] += rates[idx]
        members[way].append(idx)

    def makespan_with(changes):
        return max(
            sums[w] + changes.get(w, 0.0) for w in range(num_ways)
        )

    moves = 0
    for _ in range(max_rounds):
        worst = max(range(num_ways), key=lambda w: sums[w])
        makespan = sums[worst]
        best_delta = 0.0
        best_action = None

        for idx in members[worst]:
            r = rates[idx]
            for target in range(num_ways):
                if target == worst:
                    continue
                delta = makespan - makespan_with({worst: -r, target: +r})
                if delta > best_delta + 1e-12:
                    best_delta = delta
                    best_action = ("move", idx, -1, target)
                for jdx in members[target]:
                    s = rates[jdx]
                    if s >= r:
                        continue
                    delta = makespan - makespan_with(
                        {worst: s - r, target: r - s}
                    )
                    if delta > best_delta + 1e-12:
                        best_delta = delta
                        best_action = ("swap", idx, jdx, target)

        if best_action is None:
            break
        kind, idx, jdx, target = best_action
        if kind == "move":
            members[worst].remove(idx)
            members[target].append(idx)
            sums[worst] -= rates[idx]
            sums[target] += rates[idx]
            current[idx] = target
        else:
            members[worst].remove(idx)
            members[target].remove(jdx)
            members[worst].append(jdx)
            members[target].append(idx)
            sums[worst] += rates[jdx] - rates[idx]
            sums[target] += rates[idx] - rates[jdx]
            current[idx], current[jdx] = target, worst
        moves += 1
    return current, moves
