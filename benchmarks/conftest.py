"""Shared fixtures and helpers for the benchmark suite.

Each ``test_bench_figNN`` benchmark runs the real experiment pipeline for
that figure (with reduced Monte-Carlo repetitions so the suite stays
fast), asserts the paper's qualitative shape on the measured output, and
reports the wall-clock cost via pytest-benchmark.  Algorithm-level
microbenchmarks measure single placement/scheduling calls.
"""

from __future__ import annotations

import numpy as np
import pytest


def series(result, algorithm: str, column: str):
    """Extract one algorithm's series from an ExperimentResult."""
    return [
        float(row[column])
        for row in result.rows
        if row["algorithm"] == algorithm
    ]


def mean_of(result, algorithm: str, column: str) -> float:
    """Sweep-mean of one algorithm's metric."""
    return float(np.mean(series(result, algorithm, column)))


@pytest.fixture
def bench_placement_problem():
    """A paper-scale placement instance (15 VNFs, 10 nodes)."""
    from repro.workload.scenarios import PlacementScenario

    return PlacementScenario(num_vnfs=15, num_nodes=10, seed=7).build(0)


@pytest.fixture
def bench_scheduling_problem():
    """A paper-scale scheduling instance (100 requests, 5 instances)."""
    from repro.workload.scenarios import SchedulingScenario

    return SchedulingScenario(
        num_requests=100, num_instances=5, seed=7
    ).build(0)
