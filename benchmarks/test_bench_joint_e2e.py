"""Benchmark + shape check for the joint end-to-end pipeline comparison."""

from repro.experiments import joint_e2e

REPS = 5


def _row(result, pipeline):
    for row in result.rows:
        if row["pipeline"] == pipeline:
            return row
    raise KeyError(pipeline)


def test_bench_joint_e2e(benchmark):
    result = benchmark.pedantic(
        joint_e2e.run, kwargs={"repetitions": REPS}, rounds=1, iterations=1
    )
    ours = _row(result, "BFDSU+RCKK")
    ffd = _row(result, "FFD+CGA")
    nah = _row(result, "NAH+CGA")
    # The joint system wins on every coordinated metric (Eq. 16):
    assert ours["utilization"] > ffd["utilization"]
    assert ours["utilization"] > nah["utilization"]
    assert ours["nodes"] < ffd["nodes"]
    assert ours["avg_total_latency"] < ffd["avg_total_latency"]
    assert ours["avg_total_latency"] < nah["avg_total_latency"]
