"""Benchmark + shape check for the 99th-percentile tail statistics."""


from repro.experiments import tail

REPS = 100


def test_bench_tail(benchmark):
    result = benchmark.pedantic(
        tail.run, kwargs={"repetitions": REPS}, rounds=1, iterations=1
    )
    for n in sorted({row["requests"] for row in result.rows}):
        by_algo = {
            row["algorithm"]: float(row["p99_w"])
            for row in result.filtered(requests=n)
        }
        # Paper: RCKK's tail is never worse; 44.54% -> 5.18% better.
        assert by_algo["RCKK"] <= by_algo["CGA"] * 1.05
    first = [r for r in result.rows if r["algorithm"] == "RCKK"][0]
    assert float(first["enhancement"]) > 0.1
