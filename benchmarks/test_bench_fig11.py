"""Benchmark + shape check for Fig. 11 (response time vs #requests, P=0.98)."""

from repro.experiments import fig11

REPS = 40


def _enhancements(result):
    return [
        float(row["enhancement"])
        for row in result.rows
        if row["algorithm"] == "RCKK"
    ]


def test_bench_fig11(benchmark):
    result = benchmark.pedantic(
        fig11.run, kwargs={"repetitions": REPS}, rounds=1, iterations=1
    )
    enh = _enhancements(result)
    # Paper: enhancement declines 41.89% -> 2.10% as requests grow.
    assert enh[0] > 0.15
    assert enh[-1] < 0.05
    assert enh[0] > enh[-1]
