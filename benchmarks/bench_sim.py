#!/usr/bin/env python
"""Micro-benchmark: trace-driven Lindley backend vs the event loop.

Builds one deterministic chained scenario (default: 1000 requests,
100 s horizon, ~1.2M events on the event backend), cross-checks that
the two backends agree on the statistics the parity contract covers
(delivery ratio, mean end-to-end latency, mean instance utilization —
distributional agreement, see docs/SIM_BACKENDS.md), then times both:

* ``backend="events"`` — the per-packet reference event loop,
* ``backend="trace"``  — pre-sampled arrays through the Lindley kernel.

Usage::

    PYTHONPATH=src python benchmarks/bench_sim.py [--quick] [--out FILE]

``--quick`` shrinks the scenario for CI smoke runs; ``--out`` writes
the JSON report to a file (it always prints to stdout).  Pass
``--min-speedup`` to turn the report into a gate — the acceptance bar
for the default large scenario is 20x; quick-mode scenarios are too
small to amortize the trace backend's setup and may sit well below the
full-scale speedup.
"""

from __future__ import annotations

import argparse
import json
import math
import statistics
import sys
import time
from pathlib import Path

try:  # pragma: no cover - path bootstrap for direct script runs
    import repro  # noqa: F401
except ImportError:  # pragma: no cover
    sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))

from repro.nfv.chain import ServiceChain
from repro.nfv.request import Request
from repro.nfv.vnf import VNF
from repro.queueing.feedback import effective_arrival_rates
from repro.sim.simulator import ChainSimulator, SimulationConfig

DEFAULT_SEED = 20170605  # ICDCS'17

#: Scenario shape (catalog size, chain length, per-instance target load).
NUM_VNFS, CHAIN_LEN, TARGET_RHO = 8, 3, 0.6
RATE, MU, DELIVERY_P = 2.0, 150.0, 0.97


def build_scenario(num_requests):
    """Cyclic chains round-robined over instances sized for TARGET_RHO."""
    names = [f"v{j}" for j in range(NUM_VNFS)]
    chains = [
        [names[(i + d) % NUM_VNFS] for d in range(CHAIN_LEN)]
        for i in range(num_requests)
    ]
    effective = effective_arrival_rates(
        [RATE] * num_requests, [DELIVERY_P] * num_requests
    )
    offered = {name: 0.0 for name in names}
    for chain, rate in zip(chains, effective):
        for name in chain:
            offered[name] += float(rate)
    vnfs = [
        VNF(name, 1.0, max(1, math.ceil(offered[name] / (TARGET_RHO * MU))), MU)
        for name in names
    ]
    instances = {f.name: f.num_instances for f in vnfs}
    requests, schedule, counters = [], {}, {name: 0 for name in names}
    for i, chain in enumerate(chains):
        rid = f"r{i:05d}"
        requests.append(
            Request(rid, ServiceChain(chain), RATE, delivery_probability=DELIVERY_P)
        )
        for name in chain:
            schedule[(rid, name)] = counters[name] % instances[name]
            counters[name] += 1
    return vnfs, requests, schedule


def _run(vnfs, requests, schedule, config, backend):
    sim = ChainSimulator(vnfs, requests, schedule, config, backend=backend)
    start = time.perf_counter()
    metrics = sim.run()
    return metrics, time.perf_counter() - start


def _summary(metrics):
    utilizations = [s.utilization for s in metrics.instances]
    return {
        "generated": metrics.generated,
        "delivered": metrics.total_delivered,
        "delivery_ratio": metrics.total_delivered / max(1, metrics.generated),
        "mean_end_to_end": metrics.mean_end_to_end(),
        "mean_utilization": statistics.fmean(utilizations),
    }


def _rel_diff(a, b):
    if a == b:
        return 0.0
    return abs(a - b) / max(abs(a), abs(b), 1e-12)


def check_parity(events_summary, trace_summary, tolerances):
    """Distributional cross-check gate: means must agree within bounds."""
    worst = {}
    for field, bound in tolerances.items():
        diff = _rel_diff(events_summary[field], trace_summary[field])
        worst[field] = diff
        if diff > bound:
            raise SystemExit(
                f"backend cross-check failed on {field}: events "
                f"{events_summary[field]:.6g} vs trace "
                f"{trace_summary[field]:.6g} (rel diff {diff:.3f} > {bound})"
            )
    return worst


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick",
        action="store_true",
        help="small scenario + fewer repeats (CI smoke)",
    )
    parser.add_argument("--out", type=Path, help="write the JSON report here")
    parser.add_argument("--seed", type=int, default=DEFAULT_SEED)
    parser.add_argument(
        "--min-speedup",
        type=float,
        default=0.0,
        help="exit non-zero if the trace backend's speedup falls below "
        "this (default 0: report only)",
    )
    args = parser.parse_args(argv)

    if args.quick:
        num_requests, horizon, repeats = 200, 20.0, 2
    else:
        num_requests, horizon, repeats = 1000, 100.0, 3

    vnfs, requests, schedule = build_scenario(num_requests)
    config = SimulationConfig(
        duration=horizon, warmup=0.1 * horizon, seed=args.seed
    )
    print(
        f"scenario: {num_requests} requests x {RATE} pps over {horizon} s, "
        f"{sum(f.num_instances for f in vnfs)} instances, P={DELIVERY_P} "
        f"(seed {args.seed})",
        file=sys.stderr,
    )

    events_metrics, events_s = _run(vnfs, requests, schedule, config, "events")
    trace_times = []
    for _ in range(repeats):
        trace_metrics, elapsed = _run(vnfs, requests, schedule, config, "trace")
        trace_times.append(elapsed)
    trace_s = min(trace_times)

    events_summary = _summary(events_metrics)
    trace_summary = _summary(trace_metrics)
    # Mean latency carries the documented cross-pass approximation on
    # top of Monte-Carlo noise; ratios/utilizations are unbiased.
    crosscheck = check_parity(
        events_summary,
        trace_summary,
        tolerances={
            "delivery_ratio": 0.02,
            "mean_utilization": 0.05,
            "mean_end_to_end": 0.15,
        },
    )

    speedup = events_s / trace_s if trace_s > 0 else float("inf")
    print(
        f"events {events_s * 1e3:9.1f} ms   trace {trace_s * 1e3:9.1f} ms   "
        f"{speedup:7.1f}x",
        file=sys.stderr,
    )

    report = {
        "scenario": {
            "num_requests": num_requests,
            "horizon_s": horizon,
            "num_instances": int(sum(f.num_instances for f in vnfs)),
            "chain_length": CHAIN_LEN,
            "delivery_probability": DELIVERY_P,
            "seed": args.seed,
            "quick": args.quick,
        },
        "results": {
            "events": {"best_s": events_s, "repeats": 1, **events_summary},
            "trace": {
                "best_s": trace_s,
                "repeats": repeats,
                **trace_summary,
            },
            "speedup": round(speedup, 2),
        },
        "crosscheck_rel_diff": crosscheck,
    }
    payload = json.dumps(report, indent=2)
    print(payload)
    if args.out:
        args.out.write_text(payload + "\n")
        print(f"wrote {args.out}", file=sys.stderr)

    if speedup < args.min_speedup:
        print(
            f"speedup {speedup:.1f}x below required {args.min_speedup}x",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
