"""Benchmark + shape check for Fig. 12 (response time vs #requests, P=1.00)."""

from repro.experiments import fig12

REPS = 40


def test_bench_fig12(benchmark):
    result = benchmark.pedantic(
        fig12.run, kwargs={"repetitions": REPS}, rounds=1, iterations=1
    )
    enh = [
        float(row["enhancement"])
        for row in result.rows
        if row["algorithm"] == "RCKK"
    ]
    # Paper: enhancement declines 33.49% -> 1.17%.
    assert enh[0] > 0.15
    assert enh[-1] < 0.05
