"""Benchmark + shape check for Fig. 5 (utilization vs #requests)."""

from conftest import mean_of

from repro.experiments import fig05

REPS = 5


def test_bench_fig05(benchmark):
    result = benchmark.pedantic(
        fig05.run, kwargs={"repetitions": REPS}, rounds=1, iterations=1
    )
    bfdsu = mean_of(result, "BFDSU", "utilization")
    ffd = mean_of(result, "FFD", "utilization")
    nah = mean_of(result, "NAH", "utilization")
    # Paper shape: BFDSU ~0.92 far above FFD ~0.69 and NAH ~0.67.
    assert bfdsu > 0.8
    assert bfdsu > ffd + 0.15
    assert bfdsu > nah + 0.15
