"""Ablation: per-instance M/M/1 queues vs a pooled M/M/c station.

The paper models each of a VNF's ``M_f`` instances as its own M/M/1
queue with requests pinned to instances.  The classic alternative is a
single M/M/c station with a shared buffer.  Queueing theory says pooling
wins on latency at equal capacity; this ablation quantifies by how much
at the paper's operating points — i.e., what the pin-to-instance
architecture costs, and therefore how much of that cost good balancing
(RCKK) claws back versus bad balancing (round-robin).
"""

import numpy as np

from repro.queueing.mm1 import MM1Queue
from repro.queueing.mmc import MMCQueue
from repro.scheduling.metrics import schedule_report
from repro.scheduling.rckk import RCKKScheduler
from repro.scheduling.round_robin import RoundRobinScheduler
from repro.workload.scenarios import SchedulingScenario

M = 5
N = 50
RHO = 0.9
REPS = 50


def _mean_w(scheduler, reps=REPS):
    scenario = SchedulingScenario(
        num_requests=N, num_instances=M, rho=RHO, seed=23
    )
    ws = []
    for rep in range(reps):
        problem = scenario.build(rep)
        report = schedule_report(
            scheduler.schedule(problem), apply_admission=True
        )
        ws.append(report.average_response_time)
    return float(np.mean(ws))


def test_bench_ablation_pooling(benchmark):
    rckk_w = benchmark.pedantic(
        _mean_w, args=(RCKKScheduler(),), rounds=1, iterations=1
    )
    rr_w = _mean_w(RoundRobinScheduler())

    # Analytic references at the same load: perfect-balance M/M/1 vs
    # pooled M/M/c with the same per-server rate.
    scenario = SchedulingScenario(
        num_requests=N, num_instances=M, rho=RHO, seed=23
    )
    problem = scenario.build(0)
    mu = problem.vnf.service_rate
    lam_total = problem.total_effective_rate()
    split = MM1Queue(lam_total / M, mu).mean_response_time
    pooled = MMCQueue(lam_total, mu, servers=M).mean_response_time

    # Pooling strictly beats even a perfectly balanced split ...
    assert pooled < split
    # ... RCKK sits within ~20% of the perfect split at this load ...
    assert rckk_w < split * 1.2
    # ... while count-balancing round-robin pays a large premium.
    assert rr_w > rckk_w
