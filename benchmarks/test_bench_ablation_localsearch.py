"""Ablation: Eq. (16) local-search refinement on top of each placement.

Measures how many inter-node chain hops the relocate search recovers
from each placement algorithm's output — BFDSU (already consolidated,
little to gain) vs FFD (spread out, much to gain).
"""

import numpy as np

from repro.core.local_search import refine_placement, total_inter_node_hops
from repro.nfv.state import DeploymentState
from repro.placement.base import PlacementProblem
from repro.placement.bfdsu import BFDSUPlacement
from repro.placement.ffd import FFDPlacement
from repro.scheduling.base import schedule_all_vnfs
from repro.scheduling.rckk import RCKKScheduler
from repro.workload.generator import WorkloadGenerator

REPS = 8


def _hops_before_after(algo_factory, reps=REPS):
    before_total, after_total = 0, 0
    for rep in range(reps):
        gen = WorkloadGenerator(np.random.default_rng(1000 + rep))
        w = gen.workload(num_vnfs=10, num_nodes=8, num_requests=40)
        placement = algo_factory(rep).place(
            PlacementProblem(
                vnfs=w.vnfs, capacities=w.capacities, chains=w.chains
            )
        )
        schedule = schedule_all_vnfs(w.vnfs, w.requests, RCKKScheduler())
        state = DeploymentState(
            vnfs=w.vnfs,
            requests=w.requests,
            node_capacities=w.capacities,
            placement=dict(placement.placement),
            schedule=schedule,
        )
        before_total += total_inter_node_hops(state)
        report = refine_placement(state)
        after_total += report.final_hops
    return before_total, after_total


def test_bench_ablation_local_search(benchmark):
    ffd_before, ffd_after = benchmark.pedantic(
        _hops_before_after,
        args=(lambda rep: FFDPlacement(),),
        rounds=1,
        iterations=1,
    )
    bfdsu_before, bfdsu_after = _hops_before_after(
        lambda rep: BFDSUPlacement(rng=np.random.default_rng(rep))
    )
    # Refinement never increases hops and recovers a meaningful share.
    assert ffd_after <= ffd_before
    assert bfdsu_after <= bfdsu_before
    assert ffd_before - ffd_after > 0
    # The spread-out baseline has (weakly) more to recover.
    assert (ffd_before - ffd_after) >= (bfdsu_before - bfdsu_after) - 2
