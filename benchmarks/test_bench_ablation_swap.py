"""Ablation: move/swap refinement on top of RCKK.

Measures how much residual makespan the local search recovers from
RCKK's one-pass differencing, and confirms the refined schedule closes
most of the gap to the two-way optimum (where CKK provides it).
"""

import numpy as np

from repro.scheduling.ckk import CKKScheduler
from repro.scheduling.rckk import RCKKScheduler
from repro.scheduling.swap_refine import SwapRefinedScheduler
from repro.workload.scenarios import SchedulingScenario

REPS = 60


def _mean_makespan(scheduler, m, reps=REPS):
    scenario = SchedulingScenario(
        num_requests=24, num_instances=m, rho=0.9, seed=53
    )
    peaks = []
    for rep in range(reps):
        problem = scenario.build(rep)
        peaks.append(max(scheduler.schedule(problem).instance_rates()))
    return float(np.mean(peaks))


def test_bench_ablation_swap_refinement(benchmark):
    refined = benchmark.pedantic(
        _mean_makespan,
        args=(SwapRefinedScheduler(), 5),
        rounds=1,
        iterations=1,
    )
    plain = _mean_makespan(RCKKScheduler(), 5)
    # Refinement never hurts and typically trims the residual peak.
    assert refined <= plain + 1e-9


def test_bench_ablation_swap_vs_optimal_two_way(benchmark):
    refined = benchmark.pedantic(
        _mean_makespan,
        args=(SwapRefinedScheduler(), 2),
        rounds=1,
        iterations=1,
    )
    optimal = _mean_makespan(CKKScheduler(), 2)
    # Within half a percent of the (near-)optimal two-way makespan.
    assert refined <= optimal * 1.005
