#!/usr/bin/env python
"""Micro-benchmark: incremental serving engine throughput and latency.

Builds deterministic scenarios at two active-set sizes (2k and 20k
requests; shrunk under ``--quick``) and times the
:class:`~repro.core.incremental.DeploymentEngine` operations the
serving layer leans on:

* ``admit_vs_resolve_2k`` — one warm-start admit against one
  from-scratch two-phase solve at 2k active requests (reference =
  the re-solve, vectorized = the admit): the headline speedup and the
  ISSUE acceptance bar (>= 50x).
* ``admit_depart_2k`` / ``admit_depart_20k`` — paired admit+depart
  round trips at a constant active-set size; the per-op time prices
  sustained churn throughput.
* ``rebalance_2k`` / ``rebalance_20k`` — one full re-optimization over
  the active set (the periodic warm-start reset).

Usage::

    PYTHONPATH=src python benchmarks/bench_serve.py [--quick] [--out FILE]

``--min-speedup`` gates on ``admit_vs_resolve_2k`` (default 0:
report-only; CI runs the quick smoke, the acceptance number comes from
the full run recorded in ``BENCH_TRAJECTORY.json``).
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

try:  # pragma: no cover - path bootstrap for direct script runs
    import repro  # noqa: F401
except ImportError:  # pragma: no cover
    sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))

import numpy as np

from bench_core import DEFAULT_SEED, _time
from repro.core.incremental import DeploymentEngine, solve_joint
from repro.workload.generator import WorkloadGenerator


def _build(num_active: int, num_nodes: int, num_vnfs: int, seed: int):
    """An engine warmed to ``num_active`` requests + a churn reserve."""
    gen = WorkloadGenerator(np.random.default_rng(seed))
    reserve = max(200, num_active // 10)
    w = gen.workload(
        num_vnfs=num_vnfs,
        num_nodes=num_nodes,
        num_requests=num_active + reserve,
    )
    base = list(w.requests[:num_active])
    extra = list(w.requests[num_active:])
    engine = DeploymentEngine(
        w.vnfs, w.capacities, base, target_utilization=None
    )
    return engine, w, base, extra


def _churn_per_op(engine, extra, rounds: int) -> float:
    """Best per-op seconds over paired admit+depart sweeps.

    Each sweep admits every reserve request then departs it again, so
    the active-set size the ops see stays constant and no state leaks
    between repeats.
    """
    best = float("inf")
    for _ in range(rounds):
        start = time.perf_counter()
        for request in extra:
            engine.admit(request)
        for request in extra:
            engine.depart(request.request_id)
        elapsed = time.perf_counter() - start
        best = min(best, elapsed / (2 * len(extra)))
    return best


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick",
        action="store_true",
        help="small scenarios + fewer repeats (CI smoke)",
    )
    parser.add_argument("--out", type=Path, help="write the JSON report here")
    parser.add_argument("--seed", type=int, default=DEFAULT_SEED)
    parser.add_argument(
        "--min-speedup",
        type=float,
        default=0.0,
        help="exit non-zero if admit_vs_resolve falls below this speedup "
        "(default 0: report only)",
    )
    args = parser.parse_args(argv)

    if args.quick:
        sizes = {"small": 200, "large": 1000}
        num_nodes, num_vnfs, repeats, churn_rounds = 24, 12, 2, 2
    else:
        sizes = {"2k": 2000, "20k": 20000}
        num_nodes, num_vnfs, repeats, churn_rounds = 24, 12, 3, 3

    results = {}
    first_label = next(iter(sizes))
    for label, num_active in sizes.items():
        print(
            f"building engine: {num_active} active requests, "
            f"{num_nodes} nodes, {num_vnfs} VNFs (seed {args.seed})",
            file=sys.stderr,
        )
        engine, w, base, extra = _build(
            num_active, num_nodes, num_vnfs, args.seed
        )

        if label == first_label:
            # Headline: admit vs from-scratch re-solve at this size.
            resolve = _time(
                lambda: solve_joint(w.vnfs, base, w.capacities), repeats
            )
            admit_s = _churn_per_op(engine, extra[:200], churn_rounds)
            speedup = resolve["best_s"] / admit_s
            results[f"admit_vs_resolve_{label}"] = {
                "reference": resolve,
                "vectorized": {
                    "best_s": admit_s,
                    "mean_s": admit_s,
                    "repeats": churn_rounds,
                },
                "speedup": speedup,
            }
            print(
                f"{'admit_vs_resolve_' + label:<24} "
                f"resolve {resolve['best_s'] * 1e3:9.3f} ms   "
                f"admit {admit_s * 1e6:9.3f} us   "
                f"speedup {speedup:8.1f}x",
                file=sys.stderr,
            )

        per_op = _churn_per_op(engine, extra, churn_rounds)
        results[f"admit_depart_{label}"] = {
            "vectorized": {
                "best_s": per_op,
                "mean_s": per_op,
                "repeats": churn_rounds,
            },
            "ops_per_s": 1.0 / per_op,
            "speedup": None,
        }
        print(
            f"{'admit_depart_' + label:<24} (no ref)    "
            f"{per_op * 1e6:9.3f} us/op  "
            f"({1.0 / per_op:,.0f} ops/s)",
            file=sys.stderr,
        )

        rebalance = _time(lambda: engine.rebalance(), repeats)
        results[f"rebalance_{label}"] = {
            "vectorized": rebalance,
            "speedup": None,
        }
        print(
            f"{'rebalance_' + label:<24} (one-time)  "
            f"{rebalance['best_s'] * 1e3:9.3f} ms",
            file=sys.stderr,
        )

    report = {
        "scenario": {
            "active_sizes": dict(sizes),
            "num_nodes": num_nodes,
            "num_vnfs": num_vnfs,
            "seed": args.seed,
            "quick": args.quick,
        },
        "results": results,
    }
    payload = json.dumps(report, indent=2)
    print(payload)
    if args.out:
        args.out.write_text(payload + "\n")
        print(f"wrote {args.out}", file=sys.stderr)

    speedup = results[f"admit_vs_resolve_{first_label}"]["speedup"]
    if speedup < args.min_speedup:
        print(
            f"admit_vs_resolve_{first_label} speedup {speedup:.1f}x below "
            f"{args.min_speedup}x",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
