"""Benchmark + shape check for Fig. 16 (job rejection, P=0.984)."""

import numpy as np
from conftest import series

from repro.experiments import fig15, fig16

REPS = 40


def test_bench_fig16(benchmark):
    result = benchmark.pedantic(
        fig16.run, kwargs={"repetitions": REPS}, rounds=1, iterations=1
    )
    rckk = np.mean(series(result, "RCKK", "rejection_rate"))
    cga = np.mean(series(result, "CGA", "rejection_rate"))
    # Paper: CGA 28.28% vs RCKK 4.87% — ordering preserved here.
    assert cga > rckk
    # Higher loss rejects more than Fig. 15's CGA.
    low = fig15.run(repetitions=REPS)
    cga_low = np.mean(series(low, "CGA", "rejection_rate"))
    assert cga > cga_low
