#!/usr/bin/env python
"""Micro-benchmark: array-native solver kernels vs the pre-kernel loops.

Builds one deterministic scenario (default: 2000 requests on 200 nodes,
the scale the acceptance gates target), cross-checks that kernel and
legacy paths produce byte-identical solutions, then times both:

* ``bfdsu_place`` — Algorithm 1 construction (residual-vector kernel vs
  dict/list loops), same seed per run so both draw identically,
* ``rckk_partition`` — Algorithm 2 multi-way differencing (flat-array
  kernel vs tuple partitions) on the full request-rate vector,
* ``local_search_refine`` — relocate hill climb (neighbor-count delta
  kernel vs full hop recount per candidate),
* ``swap_refine`` — move/swap makespan refinement (broadcast candidate
  grid vs per-candidate scan).

Usage::

    PYTHONPATH=src python benchmarks/bench_solvers.py [--quick] [--out FILE]

``--quick`` shrinks the scenario for CI smoke runs; ``--out`` writes the
JSON report to a file (it always prints to stdout).  ``--min-speedup``
turns the report into a gate; the acceptance bars on the full scenario
are 5x for local-search refinement and 3x for BFDSU, but quick-mode
inputs are overhead-dominated, so the default is report-only.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

try:  # pragma: no cover - path bootstrap for direct script runs
    import repro  # noqa: F401
except ImportError:  # pragma: no cover
    sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))

import numpy as np

from _reference_impl import (
    ReferenceBFDSU,
    reference_kk_multiway,
    reference_refine_assignment,
    reference_refine_placement,
)
from bench_core import DEFAULT_SEED, _compare, build_scenario
from repro.core.local_search import refine_placement
from repro.partition.rckk import rckk_partition
from repro.placement.base import PlacementProblem
from repro.placement.bfdsu import BFDSUPlacement
from repro.scheduling.swap_refine import refine_assignment


def _check(name, ok):
    if not ok:
        raise SystemExit(f"parity check failed: {name}")
    print(f"parity ok: {name}", file=sys.stderr)


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick",
        action="store_true",
        help="small scenario + fewer repeats (CI smoke)",
    )
    parser.add_argument("--out", type=Path, help="write the JSON report here")
    parser.add_argument("--seed", type=int, default=DEFAULT_SEED)
    parser.add_argument(
        "--min-speedup",
        type=float,
        default=0.0,
        help="exit non-zero if any benchmark falls below this speedup "
        "(default 0: report only)",
    )
    args = parser.parse_args(argv)

    if args.quick:
        num_requests, num_nodes, num_vnfs, repeats = 300, 50, 20, 3
    else:
        num_requests, num_nodes, num_vnfs, repeats = 2000, 200, 40, 5

    print(
        f"building scenario: {num_requests} requests, {num_nodes} nodes, "
        f"{num_vnfs} VNFs (seed {args.seed})",
        file=sys.stderr,
    )
    solution, vnfs, requests = build_scenario(
        num_requests, num_nodes, num_vnfs, seed=args.seed
    )
    state = solution.state
    problem = PlacementProblem(
        vnfs=vnfs, capacities=state.node_capacities
    )
    rates = [r.effective_rate for r in requests]
    num_ways = max(f.num_instances for f in vnfs)
    start_assignment = [i % num_ways for i in range(len(rates))]

    # ------------------------------------------------------------------
    # Parity before timing: kernel output must be byte-identical.
    # ------------------------------------------------------------------
    kernel_bfdsu = BFDSUPlacement(rng=np.random.default_rng(args.seed)).place(
        problem
    )
    legacy_bfdsu = ReferenceBFDSU(rng=np.random.default_rng(args.seed)).place(
        problem
    )
    _check(
        "bfdsu placement + iterations",
        kernel_bfdsu.placement == legacy_bfdsu.placement
        and kernel_bfdsu.iterations == legacy_bfdsu.iterations,
    )

    kernel_part = rckk_partition(rates, num_ways)
    legacy_part = reference_kk_multiway(rates, num_ways, reverse_combine=True)
    _check(
        "rckk subsets + iterations",
        kernel_part.subsets == legacy_part.subsets
        and kernel_part.iterations == legacy_part.iterations,
    )

    baseline_placement = dict(state.placement)

    def _restore():
        state.placement.clear()
        state.placement.update(baseline_placement)

    kernel_trace, legacy_trace = [], []
    kernel_report = refine_placement(state, trace=kernel_trace)
    kernel_final = dict(state.placement)
    _restore()
    legacy_report = reference_refine_placement(state, trace=legacy_trace)
    legacy_final = dict(state.placement)
    _restore()
    _check(
        "local-search trace + report + final placement",
        kernel_trace == legacy_trace
        and kernel_report == legacy_report
        and kernel_final == legacy_final,
    )

    _check(
        "swap-refine assignment + moves",
        refine_assignment(rates, start_assignment, num_ways)
        == reference_refine_assignment(rates, start_assignment, num_ways),
    )

    # ------------------------------------------------------------------
    # Timings.
    # ------------------------------------------------------------------
    results = {}
    _compare(
        "bfdsu_place",
        lambda: ReferenceBFDSU(rng=np.random.default_rng(args.seed)).place(
            problem
        ),
        lambda: BFDSUPlacement(rng=np.random.default_rng(args.seed)).place(
            problem
        ),
        repeats,
        results,
    )
    _compare(
        "rckk_partition",
        lambda: reference_kk_multiway(rates, num_ways, reverse_combine=True),
        lambda: rckk_partition(rates, num_ways),
        repeats,
        results,
    )

    def _legacy_refine():
        _restore()
        return reference_refine_placement(state)

    def _kernel_refine():
        _restore()
        return refine_placement(state)

    _compare(
        "local_search_refine", _legacy_refine, _kernel_refine, repeats, results
    )
    _restore()
    _compare(
        "swap_refine",
        lambda: reference_refine_assignment(rates, start_assignment, num_ways),
        lambda: refine_assignment(rates, start_assignment, num_ways),
        repeats,
        results,
    )

    report = {
        "scenario": {
            "num_requests": num_requests,
            "num_nodes": num_nodes,
            "num_vnfs": num_vnfs,
            "num_ways": num_ways,
            "local_search_moves": kernel_report.moves_applied,
            "bfdsu_iterations": kernel_bfdsu.iterations,
            "seed": args.seed,
            "quick": args.quick,
        },
        "results": results,
    }
    payload = json.dumps(report, indent=2)
    print(payload)
    if args.out:
        args.out.write_text(payload + "\n")
        print(f"wrote {args.out}", file=sys.stderr)

    slow = [
        name
        for name, entry in results.items()
        if entry["speedup"] < args.min_speedup
    ]
    if slow:
        print(
            f"speedup below {args.min_speedup}x for: {', '.join(slow)}",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
