"""Ablation: BFDSU's weighted random draw and Used/Spare priority.

Two DESIGN.md ablations in one harness:

* abl-weighted — does the weighted random choice beat deterministic
  best-fit (BFD) on feasibility and match it on consolidation?
* abl-usedlist — does the Used-before-Spare candidate priority matter
  versus plain best-fit over all nodes?
"""

import numpy as np

from repro.placement.bfd import BFDPlacement
from repro.placement.bfdsu import BFDSUPlacement
from repro.workload.scenarios import PlacementScenario

REPS = 10


def _sweep(algo_factory, reps=REPS):
    scenario = PlacementScenario(num_vnfs=15, num_nodes=10, seed=31)
    utils, nodes = [], []
    for rep in range(reps):
        problem = scenario.build(rep)
        result = algo_factory(rep).place(problem)
        utils.append(result.average_utilization)
        nodes.append(result.num_used_nodes)
    return float(np.mean(utils)), float(np.mean(nodes))


def test_bench_ablation_weighted_draw(benchmark):
    """BFDSU's randomization costs little consolidation vs strict BFD."""
    bfdsu_util, bfdsu_nodes = benchmark.pedantic(
        _sweep,
        args=(lambda rep: BFDSUPlacement(rng=np.random.default_rng(rep)),),
        rounds=1,
        iterations=1,
    )
    bfd_util, bfd_nodes = _sweep(lambda rep: BFDPlacement())
    # The weighted draw gives up at most a few points of utilization
    # against the deterministic tightest-fit choice ...
    assert bfdsu_util > bfd_util - 0.1
    # ... and stays within one node of its consolidation.
    assert bfdsu_nodes <= bfd_nodes + 1.0


def test_bench_ablation_used_list(benchmark):
    """The Used/Spare priority is what consolidates onto few nodes."""
    with_used_util, with_used_nodes = benchmark.pedantic(
        _sweep,
        args=(lambda rep: BFDPlacement(use_used_list=True),),
        rounds=1,
        iterations=1,
    )
    without_util, without_nodes = _sweep(
        lambda rep: BFDPlacement(use_used_list=False)
    )
    # Plain best-fit is allowed to match, but never to consolidate
    # meaningfully better than the used-first variant.
    assert with_used_nodes <= without_nodes + 0.5
