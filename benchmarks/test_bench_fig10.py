"""Benchmark + shape check for Fig. 10 (iterations vs #requests)."""

from conftest import mean_of

from repro.experiments import fig10

REPS = 5


def test_bench_fig10(benchmark):
    result = benchmark.pedantic(
        fig10.run, kwargs={"repetitions": REPS}, rounds=1, iterations=1
    )
    ffd = mean_of(result, "FFD", "iterations")
    bfdsu = mean_of(result, "BFDSU", "iterations")
    nah = mean_of(result, "NAH", "iterations")
    # Paper ordering: FFD 1 << BFDSU ~11 < NAH ~32.
    assert ffd == 1.0
    assert ffd < bfdsu < nah
