"""Benchmark + shape check for Fig. 15 (job rejection, P=0.997)."""

import numpy as np
from conftest import series

from repro.experiments import fig15

REPS = 40


def test_bench_fig15(benchmark):
    result = benchmark.pedantic(
        fig15.run, kwargs={"repetitions": REPS}, rounds=1, iterations=1
    )
    rckk = series(result, "RCKK", "rejection_rate")
    cga = series(result, "CGA", "rejection_rate")
    # Paper: RCKK near zero throughout; CGA positive.
    assert max(rckk) < 0.01
    assert np.mean(cga) > 0.005
