#!/usr/bin/env python3
"""Export a reproducible experiment: workload, solution and metrics to JSON.

Shows the persistence workflow a research artifact needs: generate a
workload, optimize it, save both the inputs and the full joint solution
to JSON, reload them in a fresh process, and verify the reloaded
deployment scores identically — no pickles, no hidden state.

Run with::

    python examples/export_experiment.py [output_dir]
"""

import sys
import tempfile
from pathlib import Path

import numpy as np

from repro import JointOptimizer, WorkloadGenerator, io
from repro.core.evaluation import evaluate_deployment


def main() -> None:
    out_dir = Path(sys.argv[1]) if len(sys.argv) > 1 else Path(
        tempfile.mkdtemp(prefix="repro-export-")
    )
    out_dir.mkdir(parents=True, exist_ok=True)

    # 1. Generate and solve.
    gen = WorkloadGenerator(np.random.default_rng(123))
    workload = gen.workload(num_vnfs=9, num_nodes=7, num_requests=45)
    solution = JointOptimizer().optimize(
        workload.vnfs, workload.requests, workload.capacities
    )
    report = evaluate_deployment(solution.state)

    # 2. Persist inputs and outputs.
    workload_path = out_dir / "workload.json"
    solution_path = out_dir / "solution.json"
    io.save_json(io.workload_to_dict(workload), workload_path)
    io.save_json(io.state_to_dict(solution.state), solution_path)
    print(f"wrote {workload_path}")
    print(f"wrote {solution_path}")

    # 3. Reload and re-score — the metrics must match exactly.
    reloaded = io.state_from_dict(io.load_json(solution_path))
    re_report = evaluate_deployment(reloaded)
    print("\nmetric                     original   reloaded")
    rows = [
        ("avg node utilization",
         report.average_node_utilization, re_report.average_node_utilization),
        ("nodes in service",
         report.nodes_in_service, re_report.nodes_in_service),
        ("avg response latency (ms)",
         report.average_response_latency * 1e3,
         re_report.average_response_latency * 1e3),
    ]
    for label, a, b in rows:
        print(f"{label:26s} {a:9.4f}  {b:9.4f}")
        assert abs(a - b) < 1e-12, "round trip changed a metric!"
    print("\nround trip exact — the artifact is self-contained.")


if __name__ == "__main__":
    main()
