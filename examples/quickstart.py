#!/usr/bin/env python3
"""Quickstart: place VNF chains and schedule requests in a few lines.

Generates a random-but-reproducible workload (VNFs from the catalog,
chains of up to six functions, Poisson requests at 1-100 pps), runs the
paper's two-phase optimizer (BFDSU placement + RCKK scheduling) and
prints every evaluation metric.

Run with::

    python examples/quickstart.py
"""

import numpy as np

from repro import JointOptimizer, WorkloadGenerator


def main() -> None:
    # 1. A reproducible workload: 10 VNFs, 8 compute nodes, 60 requests.
    generator = WorkloadGenerator(np.random.default_rng(seed=42))
    workload = generator.workload(num_vnfs=10, num_nodes=8, num_requests=60)
    print(f"VNFs:      {[f.name for f in workload.vnfs]}")
    print(f"requests:  {len(workload.requests)}")
    print(f"demand:    {workload.total_demand:.0f} units "
          f"of {workload.total_capacity:.0f} available")

    # 2. The paper's two-phase pipeline: BFDSU placement, RCKK scheduling.
    optimizer = JointOptimizer()
    solution = optimizer.optimize(
        workload.vnfs, workload.requests, workload.capacities
    )

    # 3. Where did everything go?
    print("\nPlacement (VNF -> node):")
    for vnf in workload.vnfs:
        print(f"  {vnf.name:24s} -> {solution.state.placement[vnf.name]}")

    # 4. Score it on every paper metric.
    report = solution.evaluate()
    print("\nEvaluation:")
    print(f"  avg node utilization   {report.average_node_utilization:.1%}")
    print(f"  nodes in service       {report.nodes_in_service}")
    print(f"  avg response latency   {report.average_response_latency * 1e3:.3f} ms")
    print(f"  avg total latency      {report.average_total_latency * 1e3:.3f} ms")
    print(f"  max instance load      {report.max_instance_utilization:.1%}")
    print(f"  job rejection rate     {report.rejection_rate:.1%}")


if __name__ == "__main__":
    main()
