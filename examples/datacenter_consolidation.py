#!/usr/bin/env python3
"""Consolidation study on a leaf-spine datacenter fabric.

Builds a 4-leaf x 4-spine fabric with heterogeneous servers, places the
same VNF set with BFDSU, FFD and NAH, and compares consolidation
(nodes in service, utilization, occupied capacity) plus the end-to-end
total latency of Eq. (16) with the link constant ``L`` calibrated from
the actual fabric's average pairwise path latency.

Run with::

    python examples/datacenter_consolidation.py
"""

import numpy as np

from repro import JointOptimizer
from repro.placement import BFDSUPlacement, FFDPlacement, NAHPlacement
from repro.scheduling import RCKKScheduler
from repro.topology import Router, leaf_spine
from repro.workload.generator import WorkloadGenerator


def main() -> None:
    rng = np.random.default_rng(seed=7)

    # A leaf-spine fabric: 16 servers with capacities spread 800-4000.
    fabric = leaf_spine(
        num_leaves=4,
        num_spines=4,
        servers_per_leaf=4,
        capacity_fn=lambda i: float(rng.uniform(800.0, 4000.0)),
    )
    router = Router(fabric)
    link_latency = router.average_pairwise_latency()
    print(f"fabric: {fabric!r}")
    print(f"calibrated per-hop latency L = {link_latency * 1e6:.1f} us\n")

    # One workload shared by all three placement algorithms.
    generator = WorkloadGenerator(rng)
    vnfs = generator.vnfs(12, instance_range=(8, 25))
    chains = generator.chains(vnfs, 4)
    requests = generator.requests(chains, 80, delivery_probability=0.99)
    capacities = fabric.capacities()

    header = (
        f"{'algorithm':10s} {'nodes':>5s} {'avg util':>9s} "
        f"{'occupied':>9s} {'avg total latency':>18s}"
    )
    print(header)
    print("-" * len(header))
    for placement in [
        BFDSUPlacement(rng=np.random.default_rng(1)),
        FFDPlacement(),
        NAHPlacement(),
    ]:
        optimizer = JointOptimizer(
            placement=placement,
            scheduler=RCKKScheduler(),
            link_latency=link_latency,
        )
        solution = optimizer.optimize(vnfs, requests, capacities)
        report = solution.evaluate()
        print(
            f"{placement.name:10s} {report.nodes_in_service:5d} "
            f"{report.average_node_utilization:9.1%} "
            f"{report.resource_occupation:9.0f} "
            f"{report.average_total_latency * 1e3:15.3f} ms"
        )

    print(
        "\nBFDSU consolidates onto the fewest, fullest servers, which also"
        "\nminimizes the inter-node hops each chain pays in Eq. (16)."
    )


if __name__ == "__main__":
    main()
