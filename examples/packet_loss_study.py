#!/usr/bin/env python3
"""Packet-loss feedback: analytic model vs discrete-event simulation.

Reproduces the paper's Fig. 3 setting — a request traversing a two-VNF
chain with end-to-end loss and NACK retransmission — and shows that the
closed-form open-Jackson results,

    E[T_i] = 1 / (P * mu_i - lambda_0),

agree with an independent packet-level simulation, across a sweep of
delivery probabilities.

Run with::

    python examples/packet_loss_study.py
"""

from repro import ChainSimulator, Request, ServiceChain, SimulationConfig, VNF
from repro.queueing import ChainFeedbackModel


def main() -> None:
    arrival_rate = 40.0  # packets/s
    service_rates = (90.0, 70.0)

    print(
        f"chain: lambda0={arrival_rate} pps -> "
        f"VNF1(mu={service_rates[0]}) -> VNF2(mu={service_rates[1]})\n"
    )
    header = (
        f"{'P':>6s} {'analytic E[T]':>14s} {'simulated E[T]':>15s} "
        f"{'error':>7s} {'retransmit %':>13s}"
    )
    print(header)
    print("-" * len(header))

    for p in (1.0, 0.995, 0.99, 0.98):
        analytic = ChainFeedbackModel(
            external_rate=arrival_rate,
            service_rates=service_rates,
            delivery_probability=p,
        )
        expected = analytic.total_response_time()

        chain = ServiceChain(["vnf1", "vnf2"])
        vnfs = [
            VNF("vnf1", demand_per_instance=1.0, num_instances=1,
                service_rate=service_rates[0]),
            VNF("vnf2", demand_per_instance=1.0, num_instances=1,
                service_rate=service_rates[1]),
        ]
        request = Request(
            request_id="r0",
            chain=chain,
            arrival_rate=arrival_rate,
            delivery_probability=p,
        )
        simulator = ChainSimulator(
            vnfs=vnfs,
            requests=[request],
            schedule={("r0", "vnf1"): 0, ("r0", "vnf2"): 0},
            config=SimulationConfig(duration=3000.0, warmup=300.0, seed=11),
        )
        metrics = simulator.run()
        # The analytic E[T] counts one pass through the chain per *visit*;
        # the simulated end-to-end time of a delivered packet includes its
        # retransmission passes, so compare per-pass sojourn sums.
        per_pass = sum(
            metrics.instance("vnf1", 0).mean_sojourn
            + metrics.instance("vnf2", 0).mean_sojourn
            for _ in (0,)
        )
        retrans = sum(metrics.retransmitted.values())
        delivered = metrics.total_delivered
        error = abs(per_pass - expected) / expected
        print(
            f"{p:6.3f} {expected:11.4f} s  {per_pass:12.4f} s  "
            f"{error:6.1%} {retrans / max(1, delivered):12.2%}"
        )

    print(
        "\nLoss feedback inflates every VNF's equivalent arrival rate to"
        "\nlambda0 / P, so even a 2% loss rate visibly lengthens queues"
        "\nnear capacity."
    )


if __name__ == "__main__":
    main()
