#!/usr/bin/env python3
"""Elastic scale-out: replicas as new VNFs (Section III-A of the paper).

The paper's scale-out rule: when a VNF's instances cannot cope with its
offered load, place replicas on different nodes and "regard each replica
as a new VNF".  This example takes a firewall facing far more traffic
than one node's worth of instances can serve, sizes it, splits it into
replicas, and runs the ordinary two-phase pipeline on the rewritten
problem — no special cases downstream.

Run with::

    python examples/elastic_scaling.py
"""

import numpy as np

from repro import JointOptimizer, Request, ServiceChain, VNF
from repro.core.scaling import required_instances, scale_out
from repro.placement import BFDSUPlacement


def main() -> None:
    # One firewall, mu = 100 pps per instance; 60 requests at ~40 pps
    # each offer ~2400 pps -> needs ~27 instances at 90% utilization.
    # (mu must exceed the largest single request's rate: requests are
    # unsplittable, see repro.core.scaling.unservable_requests.)
    firewall = VNF("firewall", demand_per_instance=25.0, num_instances=1,
                   service_rate=100.0)
    chain = ServiceChain(["firewall"])
    rng = np.random.default_rng(5)
    requests = [
        Request(f"r{i}", chain, float(rng.uniform(20.0, 60.0)),
                delivery_probability=0.99)
        for i in range(60)
    ]

    needed = required_instances(firewall, requests)
    print(f"offered load needs {needed} instances of "
          f"{firewall.name!r} (mu={firewall.service_rate} pps each)")

    # One node hosts at most 10 instances -> split into replicas.
    plan = scale_out(
        [firewall], requests, max_instances_per_vnf=10
    )
    print(f"scale-out: {plan.replicas_of('firewall')}")
    for vnf in plan.vnfs:
        served = sum(
            1 for r in plan.requests if r.uses(vnf.name)
        )
        print(f"  {vnf.name:12s} M_f={vnf.num_instances:2d} "
              f"demand={vnf.total_demand:6.0f} serving {served} requests")

    # The rewritten problem drops straight into the standard pipeline.
    capacities = {f"node{i}": 600.0 for i in range(6)}
    solution = JointOptimizer(
        placement=BFDSUPlacement(rng=np.random.default_rng(1))
    ).optimize(plan.vnfs, plan.requests, capacities)
    report = solution.evaluate()

    print("\nafter joint optimization:")
    for vnf in plan.vnfs:
        print(f"  {vnf.name:12s} -> {solution.state.placement[vnf.name]}")
    print(f"  avg node utilization  {report.average_node_utilization:.1%}")
    print(f"  avg response latency  {report.average_response_latency * 1e3:.2f} ms")
    print(f"  max instance load     {report.max_instance_utilization:.1%}")
    print(f"  job rejection rate    {report.rejection_rate:.1%}")


if __name__ == "__main__":
    main()
