#!/usr/bin/env python3
"""Online arrivals with periodic RCKK rebalancing.

The paper schedules a known request set offline; in operation requests
churn.  This example drives an arrival/departure stream through three
policies — pure online least-loaded, online + periodic RCKK rebalance,
and oracle (rebalance after every event) — and prints how far each stays
from perfect balance, plus the migration cost the rebalancing pays.

Run with::

    python examples/online_rebalancing.py
"""

import numpy as np

from repro import Request, ServiceChain, VNF
from repro.core.online import OnlineScheduler

CHAIN = ServiceChain(["firewall"])
VNF_UNDER_TEST = VNF("firewall", 1.0, 5, 1e6)


def drive(scheduler: OnlineScheduler, seed: int = 0) -> OnlineScheduler:
    """Feed a fixed churn pattern: 120 arrivals, departures interleaved."""
    rng = np.random.default_rng(seed)
    active = []
    for i in range(120):
        rate = float(rng.uniform(1.0, 100.0))
        scheduler.arrive(Request(f"r{i}", CHAIN, rate))
        active.append(f"r{i}")
        # After warm-up, each arrival is matched by a random departure
        # with probability 0.7 (sustained churn around ~40 active).
        if len(active) > 40 and rng.uniform() < 0.7:
            victim = active.pop(int(rng.integers(0, len(active))))
            scheduler.depart(victim)
    return scheduler


def main() -> None:
    policies = [
        ("online only", OnlineScheduler(VNF_UNDER_TEST)),
        ("rebalance/20", OnlineScheduler(VNF_UNDER_TEST, rebalance_every=20)),
        ("rebalance/5", OnlineScheduler(VNF_UNDER_TEST, rebalance_every=5)),
    ]
    print(f"{'policy':14s} {'mean spread':>12s} {'final spread':>13s} "
          f"{'migrations':>11s}")
    print("-" * 54)
    for name, scheduler in policies:
        drive(scheduler, seed=7)
        spreads = [snap.spread for snap in scheduler.history]
        print(
            f"{name:14s} {np.mean(spreads):12.2f} "
            f"{scheduler.spread():13.2f} "
            f"{scheduler.total_migrations:11d}"
        )
    print(
        "\nPeriodic RCKK keeps the instance loads near-balanced through"
        "\nchurn; the knob trades migration traffic for balance quality."
    )


if __name__ == "__main__":
    main()
