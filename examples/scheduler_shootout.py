#!/usr/bin/env python3
"""Scheduler shootout: every request-scheduling policy on one problem.

Schedules the same request set onto a VNF's instances with all six
policies in the library and compares balance quality, average and
worst-case response time, and job rejection under admission control.

Run with::

    python examples/scheduler_shootout.py
"""

import numpy as np

from repro.scheduling import (
    CGAScheduler,
    LeastLoadedScheduler,
    RandomScheduler,
    RCKKScheduler,
    RoundRobinScheduler,
)
from repro.scheduling.metrics import schedule_report
from repro.workload.scenarios import SchedulingScenario


def main() -> None:
    scenario = SchedulingScenario(
        num_requests=40,
        num_instances=5,
        delivery_probability=0.98,
        rho=0.9,
        seed=2024,
    )
    problem = scenario.build()
    print(
        f"{problem.num_requests} requests onto "
        f"{problem.num_instances} instances of "
        f"{problem.vnf.name!r} (mu={problem.vnf.service_rate:.1f} pps, "
        f"P={problem.requests[0].delivery_probability})\n"
    )

    schedulers = [
        RCKKScheduler(),
        CGAScheduler(),
        CGAScheduler(max_nodes=200_000, presort=True),  # deep bounded search
        LeastLoadedScheduler(),
        RoundRobinScheduler(),
        RandomScheduler(rng=np.random.default_rng(3)),
    ]
    labels = ["RCKK", "CGA", "CGA-deep", "LeastLoaded", "RoundRobin", "Random"]

    header = (
        f"{'scheduler':12s} {'spread(pps)':>12s} {'avg W (ms)':>11s} "
        f"{'max W (ms)':>11s} {'rejected':>9s}"
    )
    print(header)
    print("-" * len(header))
    for label, scheduler in zip(labels, schedulers):
        report = schedule_report(
            scheduler.schedule(problem), apply_admission=True
        )
        print(
            f"{label:12s} {report.spread:12.2f} "
            f"{report.average_response_time * 1e3:11.3f} "
            f"{report.max_response_time * 1e3:11.3f} "
            f"{report.num_rejected:9d}"
        )

    print(
        "\nRCKK's differencing gets within a whisker of the exact optimum"
        "\nat a fraction of the cost; count-based policies (round-robin)"
        "\nleave an order of magnitude more imbalance."
    )


if __name__ == "__main__":
    main()
