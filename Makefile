.PHONY: install test bench bench-core bench-solvers bench-sim bench-topo bench-serve bench-scale bench-faults lint experiments examples ci clean

PYTHON ?= python

install:
	$(PYTHON) -m pip install -e . || $(PYTHON) setup.py develop

test:
	$(PYTHON) -m pytest tests/

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only

bench-core:
	PYTHONPATH=src $(PYTHON) benchmarks/bench_core.py --out benchmarks/bench_core.json

bench-solvers:
	PYTHONPATH=src $(PYTHON) benchmarks/bench_solvers.py --out benchmarks/bench_solvers.json

bench-sim:
	PYTHONPATH=src $(PYTHON) benchmarks/bench_sim.py --out benchmarks/bench_sim.json

bench-topo:
	PYTHONPATH=src $(PYTHON) benchmarks/bench_topo.py --out benchmarks/bench_topo.json

bench-serve:
	PYTHONPATH=src $(PYTHON) benchmarks/bench_serve.py --out benchmarks/bench_serve.json

bench-scale:
	PYTHONPATH=src $(PYTHON) benchmarks/bench_scale.py --jobs 0 --out benchmarks/bench_scale.json

bench-faults:
	PYTHONPATH=src $(PYTHON) benchmarks/bench_faults.py --out benchmarks/bench_faults.json

# Lint via ruff when available (config in pyproject.toml); the runtime
# image ships without it, so the gate degrades to a skip, not a failure.
lint:
	@if command -v ruff >/dev/null 2>&1; then \
		ruff check src tests benchmarks; \
	else \
		echo "ruff not installed; skipping lint (pip install ruff)"; \
	fi

experiments:
	$(PYTHON) -m repro.experiments.runall

experiments-paper:
	$(PYTHON) -m repro.experiments.runall --paper

ci: lint
	PYTHONPATH=src $(PYTHON) -m pytest -x -q
	PYTHONPATH=src $(PYTHON) -m repro.experiments.runall --only fig05 --jobs 2 --seed 7
	PYTHONPATH=src $(PYTHON) benchmarks/bench_core.py --quick --out benchmarks/bench_core.json
	PYTHONPATH=src $(PYTHON) benchmarks/bench_solvers.py --quick --out benchmarks/bench_solvers.json
	PYTHONPATH=src $(PYTHON) benchmarks/bench_sim.py --quick --out benchmarks/bench_sim.json
	PYTHONPATH=src $(PYTHON) benchmarks/bench_topo.py --quick --out benchmarks/bench_topo.json
	PYTHONPATH=src $(PYTHON) benchmarks/bench_serve.py --quick --min-speedup 50 --out benchmarks/bench_serve.json
	PYTHONPATH=src $(PYTHON) benchmarks/bench_scale.py --quick --jobs 2 --sim-packets 1e6 --max-seconds 300 --max-rss-mb 6144 --out benchmarks/bench_scale.json
	PYTHONPATH=src $(PYTHON) benchmarks/bench_faults.py --quick --max-p99-ms 2000 --out benchmarks/bench_faults.json

examples:
	@for f in examples/*.py; do echo "== $$f =="; $(PYTHON) $$f; echo; done

clean:
	rm -rf build dist *.egg-info src/*.egg-info .pytest_cache .hypothesis
	find . -name __pycache__ -type d -exec rm -rf {} +
