.PHONY: install test bench experiments examples ci clean

PYTHON ?= python

install:
	$(PYTHON) -m pip install -e . || $(PYTHON) setup.py develop

test:
	$(PYTHON) -m pytest tests/

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only

experiments:
	$(PYTHON) -m repro.experiments.runall

experiments-paper:
	$(PYTHON) -m repro.experiments.runall --paper

ci:
	PYTHONPATH=src $(PYTHON) -m pytest -x -q
	PYTHONPATH=src $(PYTHON) -m repro.experiments.runall --only fig05 --jobs 2 --seed 7

examples:
	@for f in examples/*.py; do echo "== $$f =="; $(PYTHON) $$f; echo; done

clean:
	rm -rf build dist *.egg-info src/*.egg-info .pytest_cache .hypothesis
	find . -name __pycache__ -type d -exec rm -rf {} +
