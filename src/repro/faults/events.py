"""Seeded failure-event streams — crashes and repairs in simulated time.

The serving layer's churn traces (:mod:`repro.serve.events`) model a
healthy fleet; this module adds the component-failure dimension of
ROADMAP item 5: node crash/recover and single-instance crash windows
drawn from exponential MTBF/MTTR processes, plus optional *correlated*
rack failures (a whole node group crashing together — the top-of-rack
switch abstraction).  Everything routes through the central
:mod:`repro.seeding` policy, so a stream is a pure function of its
seed: same seed, same timeline, at any parallelism.

:func:`merge_timeline` folds failure events into a churn trace under
one total order — recoveries before crashes before arrivals before
departures at equal timestamps — which is the order
:class:`~repro.serve.service.ServingLayer` replays.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.exceptions import ValidationError
from repro.seeding import RngLike, resolve_rng

__all__ = [
    "FaultEvent",
    "failure_events",
    "instance_failures",
    "merge_timeline",
]

#: Total-order rank per event kind at equal timestamps: repairs first
#: (capacity is back before anything else happens in that instant),
#: then crashes (an arrival coincident with a crash sees the crash),
#: then the churn convention (arrivals before departures).
_KIND_PRIORITY: Dict[str, int] = {
    "node_up": 0,
    "instance_up": 1,
    "node_down": 2,
    "instance_down": 3,
    "arrival": 4,
    "departure": 5,
}


@dataclass(frozen=True)
class FaultEvent:
    """One component failure or repair in simulated time."""

    #: Simulated timestamp (seconds).
    time: float
    #: ``"node_down"`` / ``"node_up"`` / ``"instance_down"`` /
    #: ``"instance_up"``.
    kind: str
    #: The node key (node events only).
    node: object = None
    #: The VNF name (instance events only).
    vnf: Optional[str] = None
    #: The instance index ``k`` (instance events only).
    instance: Optional[int] = None


def _validate_process(duration: float, mtbf: float, mttr: float) -> None:
    if duration <= 0.0:
        raise ValidationError(f"duration must be > 0, got {duration!r}")
    if mtbf <= 0.0 or mttr <= 0.0:
        raise ValidationError(
            f"mtbf and mttr must be > 0, got {mtbf!r} / {mttr!r}"
        )


def _down_windows(
    generator: np.random.Generator,
    duration: float,
    mtbf: float,
    mttr: float,
) -> List[Tuple[float, float]]:
    """Alternating up/down windows of one renewal process.

    Starts healthy; uptimes are Exp(``mtbf``), repair times
    Exp(``mttr``), both drawn one at a time in alternation so the
    stream consumption is a pure function of the horizon.  Windows are
    clipped to ``duration`` (a repair past the horizon never emits its
    ``*_up`` event).
    """
    windows: List[Tuple[float, float]] = []
    t = 0.0
    while True:
        t += float(generator.exponential(mtbf))
        if t >= duration:
            break
        down_at = t
        t += float(generator.exponential(mttr))
        windows.append((down_at, min(t, duration)))
        if t >= duration:
            break
    return windows


def _merge_windows(
    windows: List[Tuple[float, float]],
) -> List[Tuple[float, float]]:
    """Union of possibly-overlapping down windows (sorted, disjoint)."""
    merged: List[Tuple[float, float]] = []
    for start, end in sorted(windows):
        if merged and start <= merged[-1][1]:
            merged[-1] = (merged[-1][0], max(merged[-1][1], end))
        else:
            merged.append((start, end))
    return merged


def failure_events(
    nodes: Sequence,
    *,
    duration: float,
    mtbf: float,
    mttr: float,
    rng: RngLike = None,
    racks: Optional[Sequence[Sequence]] = None,
    rack_mtbf: Optional[float] = None,
    rack_mttr: Optional[float] = None,
) -> List[FaultEvent]:
    """Node crash/repair events over ``duration`` seconds.

    Each node runs an independent renewal process — Exp(``mtbf``)
    uptime, Exp(``mttr``) repair — drawn in node order from one
    resolved RNG.  With ``racks`` (sequences of node keys), every rack
    additionally runs a *correlated* process (``rack_mtbf`` /
    ``rack_mttr``, defaulting to the node parameters) whose down
    windows crash every member simultaneously; overlapping per-node and
    rack windows are merged before events are emitted, so each node's
    down/up events strictly alternate.

    Returns the events sorted by :func:`merge_timeline`'s total order.
    """
    _validate_process(duration, mtbf, mttr)
    if not len(nodes):
        raise ValidationError("failure_events needs at least one node")
    generator = resolve_rng(rng)

    per_node: Dict[object, List[Tuple[float, float]]] = {
        node: _down_windows(generator, duration, mtbf, mttr)
        for node in nodes
    }
    if racks:
        r_mtbf = mtbf if rack_mtbf is None else rack_mtbf
        r_mttr = mttr if rack_mttr is None else rack_mttr
        _validate_process(duration, r_mtbf, r_mttr)
        known = set(per_node)
        for rack in racks:
            windows = _down_windows(generator, duration, r_mtbf, r_mttr)
            for node in rack:
                if node not in known:
                    raise ValidationError(
                        f"rack member {node!r} is not in nodes"
                    )
                per_node[node].extend(windows)

    events: List[FaultEvent] = []
    for node in nodes:
        for start, end in _merge_windows(per_node[node]):
            events.append(FaultEvent(time=start, kind="node_down", node=node))
            if end < duration:
                events.append(FaultEvent(time=end, kind="node_up", node=node))
    return merge_timeline(events)


def instance_failures(
    vnfs: Sequence,
    *,
    duration: float,
    mtbf: float,
    mttr: float,
    rng: RngLike = None,
) -> List[FaultEvent]:
    """Single-instance crash/repair events over ``duration`` seconds.

    One independent renewal process per instance ``(f, k)``, drawn in
    VNF order then instance order.  ``vnfs`` are
    :class:`~repro.nfv.vnf.VNF` objects (or anything with ``name`` and
    ``num_instances``).
    """
    _validate_process(duration, mtbf, mttr)
    if not len(vnfs):
        raise ValidationError("instance_failures needs at least one VNF")
    generator = resolve_rng(rng)
    events: List[FaultEvent] = []
    for vnf in vnfs:
        for k in range(int(vnf.num_instances)):
            for start, end in _down_windows(
                generator, duration, mtbf, mttr
            ):
                events.append(
                    FaultEvent(
                        time=start,
                        kind="instance_down",
                        vnf=vnf.name,
                        instance=k,
                    )
                )
                if end < duration:
                    events.append(
                        FaultEvent(
                            time=end,
                            kind="instance_up",
                            vnf=vnf.name,
                            instance=k,
                        )
                    )
    return merge_timeline(events)


def merge_timeline(*streams: Iterable) -> List:
    """Merge event streams into one totally-ordered timeline.

    Accepts any mix of :class:`FaultEvent` and
    :class:`~repro.serve.events.ChurnEvent` iterables.  The order is
    ``(time, kind priority)`` with a stable sort over the concatenated
    streams, so coincident events resolve deterministically: repairs,
    then crashes, then arrivals, then departures — and ties within a
    kind keep their stream order.
    """
    merged: List = []
    for stream in streams:
        merged.extend(stream)
    for event in merged:
        if event.kind not in _KIND_PRIORITY:
            raise ValidationError(f"unknown event kind {event.kind!r}")
    merged.sort(key=lambda e: (e.time, _KIND_PRIORITY[e.kind]))
    return merged
