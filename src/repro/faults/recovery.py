"""Crash recovery — repair the surviving embedding, don't re-solve it.

When :meth:`~repro.core.incremental.DeploymentEngine.fail_node` crashes
a node, every chain touching it is evicted with the exact inverse
retraction and the node leaves the candidate set.  A
:class:`RecoveryPolicy` then *repairs* the embedding — the
re-embedding-over-a-previous-solution workflow of B-JointSP and the
online joint-placement regime of Xu et al. (PAPERS.md) — instead of
re-solving from scratch:

* :class:`LeastLoadedReadmit` re-homes each stranded VNF on the
  healthy node with the most residual capacity, then re-admits the
  evicted chains through the engine's O(chain) admit.
* :class:`WarmStartRelocate` picks relocation targets with the batch
  solvers' own :func:`~repro.core.deltas.relocate_scores` kernel
  (hop-count-aware, capacity-gated) masked to healthy nodes.
* :class:`DeferredRecovery` does nothing — evicted chains stay pending
  until the next periodic rebalance re-solves over the survivors.

Every move and re-admission is priced against a
:class:`MigrationBudget` (``max_migrations`` / ``max_moved_load``):
what does not fit stays pending.  The same budget object gates
:meth:`DeploymentEngine.rebalance`, so recovery and periodic
re-optimization share one migration-cost vocabulary (see
``docs/RESILIENCE.md``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from repro.core.deltas import FIT_EPS, best_allowed_target, relocate_scores
from repro.core.incremental import DeploymentEngine
from repro.nfv.request import Request

__all__ = [
    "DeferredRecovery",
    "LeastLoadedReadmit",
    "MigrationBudget",
    "RecoveryOutcome",
    "RecoveryPolicy",
    "WarmStartRelocate",
]


class MigrationBudget:
    """A migration-cost ledger: move only what the budget pays for.

    Two independent caps, both optional: ``max_migrations`` bounds the
    *count* of moved entities (VNF relocations, chain re-admissions,
    rebalance migrations), ``max_moved_load`` bounds their aggregate
    load (``M_f D_f`` per moved VNF, the effective rate per moved
    chain).  Charging is all-or-nothing: :meth:`try_charge` either
    books the full cost or leaves the ledger untouched.

    The ledger is cumulative until :meth:`reset`; the serving layer
    resets it at the start of each recovery or rebalance episode so the
    caps are per-episode, not per-run.
    """

    def __init__(
        self,
        max_migrations: Optional[int] = None,
        max_moved_load: Optional[float] = None,
    ) -> None:
        self.max_migrations = max_migrations
        self.max_moved_load = max_moved_load
        self.spent_migrations = 0
        self.spent_load = 0.0

    def can_charge(self, migrations: int, moved_load: float) -> bool:
        """Would :meth:`try_charge` succeed for this cost?"""
        if (
            self.max_migrations is not None
            and self.spent_migrations + migrations > self.max_migrations
        ):
            return False
        if (
            self.max_moved_load is not None
            and self.spent_load + moved_load > self.max_moved_load
        ):
            return False
        return True

    def try_charge(self, migrations: int, moved_load: float) -> bool:
        """Book the cost if it fits both caps; False leaves it unbooked."""
        if not self.can_charge(migrations, moved_load):
            return False
        self.spent_migrations += int(migrations)
        self.spent_load += float(moved_load)
        return True

    def reset(self) -> None:
        """Open a fresh episode window (spent counters back to zero)."""
        self.spent_migrations = 0
        self.spent_load = 0.0


@dataclass
class RecoveryOutcome:
    """What one :meth:`RecoveryPolicy.recover` invocation achieved."""

    #: Request ids re-admitted, in attempt (arrival) order.
    readmitted: List[str] = field(default_factory=list)
    #: Request ids still pending (no fit, or over budget).
    pending: List[str] = field(default_factory=list)
    #: VNF relocations committed.
    vnf_moves: int = 0
    #: Aggregate load moved (relocated ``M_f D_f`` + re-admitted rates).
    moved_load: float = 0.0


class RecoveryPolicy:
    """Contract: repair the engine after evictions, within budget.

    ``recover(engine, evicted, budget=None)`` attempts to bring the
    ``evicted`` requests (arrival order) back into service, possibly
    relocating stranded VNFs first, charging every move against
    ``budget`` when one is given.  It must never raise on an
    unrecoverable request — unrecoverable means *pending*, and the
    caller retries on the next repair opportunity.
    """

    name = "abstract"

    def recover(
        self,
        engine: DeploymentEngine,
        evicted: List[Request],
        budget: Optional[MigrationBudget] = None,
    ) -> RecoveryOutcome:
        raise NotImplementedError

    # ------------------------------------------------------------------
    # Shared helpers
    # ------------------------------------------------------------------
    @staticmethod
    def _stranded(engine: DeploymentEngine) -> List[str]:
        """VNFs still placed on failed nodes, in VNF-column order."""
        failed = engine.failed_nodes
        if not failed:
            return []
        index = engine.arrays.vnf_index
        return sorted(
            (
                name
                for name, node in engine.placement.items()
                if node in failed
            ),
            key=index.get,
        )

    @staticmethod
    def _healthy_mask(engine: DeploymentEngine) -> np.ndarray:
        arrays = engine.arrays
        healthy = np.ones(len(arrays.node_keys), dtype=bool)
        for node in engine.failed_nodes:
            healthy[arrays.node_index[node]] = False
        return healthy

    @staticmethod
    def _readmit(
        engine: DeploymentEngine,
        evicted: List[Request],
        budget: Optional[MigrationBudget],
        outcome: RecoveryOutcome,
    ) -> None:
        """Re-admit evicted chains in order, charging the budget."""
        for request in evicted:
            eff = float(request.effective_rate)
            if budget is not None and not budget.can_charge(1, eff):
                outcome.pending.append(request.request_id)
                continue
            report = engine.admit(request)
            if report.admitted:
                if budget is not None:
                    budget.try_charge(1, eff)
                outcome.readmitted.append(request.request_id)
                outcome.moved_load += eff
            else:
                outcome.pending.append(request.request_id)

    def _relocate(
        self,
        engine: DeploymentEngine,
        budget: Optional[MigrationBudget],
        outcome: RecoveryOutcome,
    ) -> None:
        """Move stranded VNFs to targets chosen by :meth:`_target_for`."""
        stranded = self._stranded(engine)
        if not stranded:
            return
        arrays = engine.arrays
        healthy = self._healthy_mask(engine)
        if not healthy.any():
            return
        for name in stranded:
            fi = arrays.vnf_index[name]
            demand = float(arrays.total_demand_f[fi])
            pvec = engine.placement_vector()
            loads = arrays.node_loads(pvec)
            target = self._target_for(
                engine, fi, demand, pvec, loads, healthy
            )
            if target < 0:
                continue
            if budget is not None and not budget.can_charge(1, demand):
                continue
            if engine.move_vnf(name, arrays.node_keys[target]):
                if budget is not None:
                    budget.try_charge(1, demand)
                outcome.vnf_moves += 1
                outcome.moved_load += demand

    def _target_for(
        self,
        engine: DeploymentEngine,
        fi: int,
        demand: float,
        pvec: np.ndarray,
        loads: np.ndarray,
        healthy: np.ndarray,
    ) -> int:  # pragma: no cover - overridden
        raise NotImplementedError


class LeastLoadedReadmit(RecoveryPolicy):
    """Re-home stranded VNFs on the emptiest healthy node, re-admit.

    The target is the healthy node with the largest residual capacity
    that still fits the VNF's ``M_f D_f`` (first index on ties); the
    evicted chains then go back through the engine's warm-start admit
    in arrival order.
    """

    name = "least-loaded"

    def _target_for(self, engine, fi, demand, pvec, loads, healthy):
        arrays = engine.arrays
        residual = arrays.A_v - loads
        feasible = healthy & (residual + FIT_EPS >= demand)
        if not feasible.any():
            return -1
        return int(np.argmax(np.where(feasible, residual, -np.inf)))

    def recover(self, engine, evicted, budget=None):
        outcome = RecoveryOutcome()
        self._relocate(engine, budget, outcome)
        self._readmit(engine, evicted, budget, outcome)
        return outcome


class WarmStartRelocate(RecoveryPolicy):
    """Relocate with the batch solvers' hop-count delta kernel.

    Targets come from :func:`~repro.core.deltas.relocate_scores` — the
    same bincount kernel the local-search refiner runs — masked to
    healthy nodes via :func:`~repro.core.deltas.best_allowed_target`,
    so the repaired embedding minimizes the Eq. (16) communication
    delta of each move instead of just balancing load.  Falls back to
    the least-loaded target when no chain neighbor survives (the kernel
    is then score-blind).
    """

    name = "warm-start"

    def _target_for(self, engine, fi, demand, pvec, loads, healthy):
        arrays = engine.arrays
        ptr, nbr = arrays.vnf_chain_neighbors()
        source = int(pvec[fi])
        _, scores = relocate_scores(
            pvec,
            nbr[ptr[fi] : ptr[fi + 1]],
            demand,
            loads,
            arrays.A_v + FIT_EPS,
            len(arrays.node_keys),
            source,
        )
        return best_allowed_target(scores, healthy)

    def recover(self, engine, evicted, budget=None):
        outcome = RecoveryOutcome()
        self._relocate(engine, budget, outcome)
        self._readmit(engine, evicted, budget, outcome)
        return outcome


class DeferredRecovery(RecoveryPolicy):
    """Do nothing now; the next periodic rebalance repairs everything.

    Every evicted chain stays pending — the cheapest possible crash
    response (zero immediate migrations), at the cost of downtime until
    the next :meth:`~repro.core.incremental.DeploymentEngine.rebalance`
    re-solves over the survivors and the serving layer re-admits the
    pending chains.
    """

    name = "deferred"

    def recover(self, engine, evicted, budget=None):
        return RecoveryOutcome(
            pending=[request.request_id for request in evicted]
        )
