"""Fault injection, crash recovery and SLA-tracked resilience.

The serving layer (:mod:`repro.serve`) assumes a healthy fleet; this
package adds the failure dimension of ROADMAP item 5 — and the
robustness leftovers of item 1 — on top of the incremental
:class:`~repro.core.incremental.DeploymentEngine`:

* :mod:`repro.faults.events` — seeded failure-event streams: node and
  single-instance crash/repair windows from exponential MTBF/MTTR
  draws, optional correlated rack failures, and
  :func:`~repro.faults.events.merge_timeline` to fold them into a
  churn trace under one total order.
* :mod:`repro.faults.recovery` — pluggable crash-recovery policies
  (least-loaded re-admit, warm-start relocate on the batch delta
  kernels, deferred-until-rebalance) and the
  :class:`~repro.faults.recovery.MigrationBudget` that prices every
  repair move.
* :mod:`repro.faults.sla` — :class:`~repro.faults.sla.SLATracker`,
  integrating downtime, rejection spells and latency excursions into
  availability / violation-minutes on a
  :class:`~repro.faults.sla.ResilienceReport`.

Wire a stream and a spec into
:class:`~repro.serve.service.ServingLayer` (``faults=`` / ``sla=``);
with both left ``None`` every pre-fault result is byte-identical.
See ``docs/RESILIENCE.md``.
"""

from repro.faults.events import (
    FaultEvent,
    failure_events,
    instance_failures,
    merge_timeline,
)
from repro.faults.recovery import (
    DeferredRecovery,
    LeastLoadedReadmit,
    MigrationBudget,
    RecoveryOutcome,
    RecoveryPolicy,
    WarmStartRelocate,
)
from repro.faults.sla import ResilienceReport, SLASpec, SLATracker

__all__ = [
    "DeferredRecovery",
    "FaultEvent",
    "failure_events",
    "instance_failures",
    "LeastLoadedReadmit",
    "merge_timeline",
    "MigrationBudget",
    "RecoveryOutcome",
    "RecoveryPolicy",
    "ResilienceReport",
    "SLASpec",
    "SLATracker",
    "WarmStartRelocate",
]
