"""SLA accounting over the serving timeline — availability & violations.

The serving layer counts admits and rejections; an operator's SLA is
about *time*: what fraction of the seconds a customer wanted service
did they actually get (availability), and for how many minutes did the
served latency exceed its bound (violation-minutes).
:class:`SLATracker` integrates three spell types over the replayed
event timeline:

* **downtime spells** — a chain evicted by a crash is down from the
  eviction until its re-admission (or its departure, when it is lost);
* **rejection spells** — a rejected arrival is down for its entire
  would-be lifetime (arrival to departure);
* **latency excursions** — step-integration of how many active chains
  exceed ``latency_threshold`` under the live Eq. (14/16) response
  times (:meth:`~repro.core.incremental.DeploymentEngine
  .request_response_times`).

Demanded seconds are every request's arrival-to-departure interval
(requests alive at the end of the trace are clipped to the horizon);
availability is ``1 - downtime / demanded``.  All integration is in
*simulated* time; the recovery wall-clock latencies live on
:class:`~repro.serve.service.ServeReport` instead.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.exceptions import ValidationError

__all__ = ["ResilienceReport", "SLASpec", "SLATracker"]


@dataclass(frozen=True)
class SLASpec:
    """What the operator promised."""

    #: Per-chain response-time bound in seconds (Eq. 14/16 terms);
    #: ``None`` disables latency tracking.
    latency_threshold: Optional[float] = None
    #: Availability objective in ``(0, 1]`` (``0.999`` = "three nines").
    availability_target: float = 0.999
    #: Per-hop link latency fed to the Eq. (16) communication term when
    #: sampling response times.
    link_latency: float = 0.0
    #: Sample latencies every this many processed events (``1`` = every
    #: event); fault boundaries and the end of the trace always sample.
    check_every: int = 1

    def __post_init__(self) -> None:
        if not 0.0 < self.availability_target <= 1.0:
            raise ValidationError(
                "availability_target must be in (0, 1], got "
                f"{self.availability_target!r}"
            )
        if self.latency_threshold is not None and self.latency_threshold <= 0:
            raise ValidationError(
                f"latency_threshold must be > 0, got "
                f"{self.latency_threshold!r}"
            )
        if self.check_every < 1:
            raise ValidationError(
                f"check_every must be >= 1, got {self.check_every!r}"
            )


@dataclass
class ResilienceReport:
    """Integrated SLA outcome of one serving run."""

    #: Seconds of service demanded (sum of request lifetimes).
    demanded_seconds: float = 0.0
    #: Seconds of demanded service not delivered (rejection + eviction
    #: spells).
    downtime_seconds: float = 0.0
    #: Chain-seconds spent above the latency threshold.
    violation_seconds: float = 0.0
    #: Crash events processed (node + instance).
    crashes: int = 0
    #: Chains evicted by crashes.
    evictions: int = 0
    #: Evicted chains brought back into service.
    readmissions: int = 0
    #: Evicted chains that departed while still pending.
    lost: int = 0
    #: Simulated seconds from each eviction to its re-admission.
    recovery_spells: List[float] = field(default_factory=list)
    #: The spec this run was tracked against.
    availability_target: float = 0.999

    @property
    def served_seconds(self) -> float:
        return max(self.demanded_seconds - self.downtime_seconds, 0.0)

    @property
    def availability(self) -> float:
        """Served over demanded seconds (1.0 when nothing was demanded)."""
        if self.demanded_seconds <= 0.0:
            return 1.0
        return self.served_seconds / self.demanded_seconds

    @property
    def availability_met(self) -> bool:
        return self.availability >= self.availability_target

    @property
    def downtime_minutes(self) -> float:
        return self.downtime_seconds / 60.0

    @property
    def violation_minutes(self) -> float:
        """Chain-minutes above the latency threshold."""
        return self.violation_seconds / 60.0

    @property
    def mean_recovery_spell(self) -> float:
        if not self.recovery_spells:
            return 0.0
        return float(np.mean(self.recovery_spells))


class SLATracker:
    """Integrate SLA spells while the serving layer replays events.

    The layer calls the ``on_*`` hooks as it processes the timeline
    (times must be non-decreasing) and :meth:`finish` once at the end;
    :attr:`report` then holds the integrated metrics.  The tracker is
    deterministic — pure bookkeeping, no randomness, no wall clock.
    """

    def __init__(self, spec: SLASpec) -> None:
        self.spec = spec
        self.report = ResilienceReport(
            availability_target=spec.availability_target
        )
        #: Arrival time per request still owed demanded-seconds.
        self._arrived: Dict[str, float] = {}
        #: Open downtime spell start per request (rejection or eviction).
        self._down_since: Dict[str, float] = {}
        #: Requests whose open spell is an eviction (recovery spell on
        #: close); the others are rejection spells.
        self._evicted: set = set()
        # Latency step-integration state.
        self._last_sample_time: Optional[float] = None
        self._violating = 0
        self._events_since_sample = 0

    # ------------------------------------------------------------------
    # Lifecycle hooks
    # ------------------------------------------------------------------
    def on_arrival(self, request_id: str, time: float) -> None:
        self._arrived[request_id] = time

    def on_reject(self, request_id: str, time: float) -> None:
        """A rejected arrival: down for its entire would-be lifetime."""
        self._down_since[request_id] = time

    def on_evict(self, request_id: str, time: float) -> None:
        self.report.evictions += 1
        self._down_since[request_id] = time
        self._evicted.add(request_id)

    def on_readmit(self, request_id: str, time: float) -> None:
        start = self._down_since.pop(request_id, None)
        if start is None:
            return
        self.report.downtime_seconds += time - start
        if request_id in self._evicted:
            self._evicted.discard(request_id)
            self.report.recovery_spells.append(time - start)
            self.report.readmissions += 1

    def on_crash(self, time: float) -> None:
        self.report.crashes += 1

    def on_departure(self, request_id: str, time: float) -> None:
        """Close the request: demanded seconds and any open spell."""
        arrived = self._arrived.pop(request_id, None)
        if arrived is not None:
            self.report.demanded_seconds += time - arrived
        start = self._down_since.pop(request_id, None)
        if start is not None:
            self.report.downtime_seconds += time - start
            if request_id in self._evicted:
                self._evicted.discard(request_id)
                self.report.lost += 1

    # ------------------------------------------------------------------
    # Latency integration
    # ------------------------------------------------------------------
    def sample_latency(self, time: float, engine, force: bool = False) -> None:
        """Step-integrate the latency-violation count up to ``time``.

        Between samples the previous violation count is held constant
        (the step convention); a sample is taken every
        ``spec.check_every`` calls, or always with ``force=True``.
        No-op when the spec has no latency threshold.
        """
        threshold = self.spec.latency_threshold
        if threshold is None:
            return
        self._events_since_sample += 1
        if not force and self._events_since_sample < self.spec.check_every:
            return
        self._events_since_sample = 0
        if self._last_sample_time is not None:
            self.report.violation_seconds += self._violating * (
                time - self._last_sample_time
            )
        _, latencies = engine.request_response_times(
            link_latency=self.spec.link_latency
        )
        self._violating = int(np.count_nonzero(latencies > threshold))
        self._last_sample_time = time

    # ------------------------------------------------------------------
    # Finalization
    # ------------------------------------------------------------------
    def finish(self, end_time: float, engine=None) -> ResilienceReport:
        """Close every open spell at the horizon and return the report."""
        if engine is not None:
            self.sample_latency(end_time, engine, force=True)
        elif self._last_sample_time is not None:
            self.report.violation_seconds += self._violating * (
                end_time - self._last_sample_time
            )
            self._last_sample_time = end_time
        for request_id, arrived in self._arrived.items():
            self.report.demanded_seconds += end_time - arrived
        self._arrived.clear()
        for request_id, start in self._down_since.items():
            self.report.downtime_seconds += end_time - start
        self._down_since.clear()
        self._evicted.clear()
        return self.report
