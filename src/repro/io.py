"""JSON serialization for workloads and joint solutions.

Experiments worth publishing need their inputs and outputs on disk:
this module round-trips the domain objects through plain-JSON dicts —
no pickling, no code execution on load, stable across versions.

* :func:`workload_to_dict` / :func:`workload_from_dict`
* :func:`state_to_dict` / :func:`state_from_dict`
* :func:`save_json` / :func:`load_json` — thin file helpers.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, Union

from repro.exceptions import ValidationError
from repro.nfv.chain import ServiceChain
from repro.nfv.request import Request
from repro.nfv.state import DeploymentState
from repro.nfv.vnf import VNF, VNFCategory
from repro.workload.generator import GeneratedWorkload

#: Format marker written into every document for forward compatibility.
FORMAT_VERSION = 1


# ----------------------------------------------------------------------
# VNFs / requests
# ----------------------------------------------------------------------
def vnf_to_dict(vnf: VNF) -> Dict[str, Any]:
    """Serialize one VNF."""
    return {
        "name": vnf.name,
        "demand_per_instance": vnf.demand_per_instance,
        "num_instances": vnf.num_instances,
        "service_rate": vnf.service_rate,
        "category": vnf.category.value,
    }


def vnf_from_dict(data: Dict[str, Any]) -> VNF:
    """Deserialize one VNF."""
    try:
        return VNF(
            name=data["name"],
            demand_per_instance=float(data["demand_per_instance"]),
            num_instances=int(data["num_instances"]),
            service_rate=float(data["service_rate"]),
            category=VNFCategory(data.get("category", "other")),
        )
    except KeyError as exc:
        raise ValidationError(f"VNF document missing field {exc}") from exc


def request_to_dict(request: Request) -> Dict[str, Any]:
    """Serialize one request."""
    return {
        "request_id": request.request_id,
        "chain": list(request.chain.vnf_names),
        "arrival_rate": request.arrival_rate,
        "delivery_probability": request.delivery_probability,
    }


def request_from_dict(data: Dict[str, Any]) -> Request:
    """Deserialize one request."""
    try:
        return Request(
            request_id=data["request_id"],
            chain=ServiceChain(data["chain"]),
            arrival_rate=float(data["arrival_rate"]),
            delivery_probability=float(data.get("delivery_probability", 1.0)),
        )
    except KeyError as exc:
        raise ValidationError(f"request document missing field {exc}") from exc


# ----------------------------------------------------------------------
# Workloads
# ----------------------------------------------------------------------
def workload_to_dict(workload: GeneratedWorkload) -> Dict[str, Any]:
    """Serialize a complete workload."""
    return {
        "format_version": FORMAT_VERSION,
        "kind": "workload",
        "vnfs": [vnf_to_dict(f) for f in workload.vnfs],
        "chains": [list(c.vnf_names) for c in workload.chains],
        "requests": [request_to_dict(r) for r in workload.requests],
        "capacities": dict(workload.capacities),
    }


def workload_from_dict(data: Dict[str, Any]) -> GeneratedWorkload:
    """Deserialize a complete workload."""
    _check_kind(data, "workload")
    return GeneratedWorkload(
        vnfs=[vnf_from_dict(d) for d in data["vnfs"]],
        chains=[ServiceChain(names) for names in data["chains"]],
        requests=[request_from_dict(d) for d in data["requests"]],
        capacities={k: float(v) for k, v in data["capacities"].items()},
    )


# ----------------------------------------------------------------------
# Deployment states
# ----------------------------------------------------------------------
def state_to_dict(state: DeploymentState) -> Dict[str, Any]:
    """Serialize a joint deployment (placement + schedule)."""
    return {
        "format_version": FORMAT_VERSION,
        "kind": "deployment",
        "vnfs": [vnf_to_dict(f) for f in state.vnfs],
        "requests": [request_to_dict(r) for r in state.requests],
        "capacities": {
            str(k): float(v) for k, v in state.node_capacities.items()
        },
        "placement": {k: str(v) for k, v in state.placement.items()},
        "schedule": [
            {"request": rid, "vnf": vnf_name, "instance": k}
            for (rid, vnf_name), k in sorted(state.schedule.items())
        ],
    }


def state_from_dict(data: Dict[str, Any]) -> DeploymentState:
    """Deserialize a joint deployment and structurally validate it."""
    _check_kind(data, "deployment")
    state = DeploymentState(
        vnfs=[vnf_from_dict(d) for d in data["vnfs"]],
        requests=[request_from_dict(d) for d in data["requests"]],
        node_capacities={
            k: float(v) for k, v in data["capacities"].items()
        },
        placement=dict(data["placement"]),
        schedule={
            (entry["request"], entry["vnf"]): int(entry["instance"])
            for entry in data["schedule"]
        },
    )
    state.validate()
    return state


# ----------------------------------------------------------------------
# Files
# ----------------------------------------------------------------------
def save_json(document: Dict[str, Any], path: Union[str, Path]) -> None:
    """Write a serialized document to ``path`` (pretty-printed)."""
    Path(path).write_text(json.dumps(document, indent=2, sort_keys=True))


def load_json(path: Union[str, Path]) -> Dict[str, Any]:
    """Read a serialized document from ``path``."""
    try:
        return json.loads(Path(path).read_text())
    except json.JSONDecodeError as exc:
        raise ValidationError(f"{path} is not valid JSON: {exc}") from exc


def _check_kind(data: Dict[str, Any], expected: str) -> None:
    kind = data.get("kind")
    if kind != expected:
        raise ValidationError(
            f"expected a {expected!r} document, got kind={kind!r}"
        )
    version = data.get("format_version")
    if version != FORMAT_VERSION:
        raise ValidationError(
            f"unsupported format version {version!r} "
            f"(this build reads {FORMAT_VERSION})"
        )
