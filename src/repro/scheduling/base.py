"""Shared problem/result model for request scheduling.

A :class:`SchedulingProblem` is per-VNF: the set ``R_f`` of requests
whose chains include VNF ``f`` must be split across its ``M_f`` service
instances (Eq. 5) so the per-instance aggregate rates are as equal as
possible (Eq. 15's insight).  All algorithms implement
:class:`SchedulingAlgorithm` and return a :class:`ScheduleResult`.

:func:`schedule_all_vnfs` lifts a per-VNF scheduler over a whole problem
instance, producing the ``(request_id, vnf_name) -> k`` map a
:class:`~repro.nfv.state.DeploymentState` consumes.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Sequence, Tuple

import numpy as np

from repro.exceptions import SchedulingError, ValidationError
from repro.nfv.instance import ServiceInstance
from repro.nfv.request import Request
from repro.nfv.vnf import VNF

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.arrays import ScenarioArrays


@dataclass(frozen=True)
class SchedulingProblem:
    """Assign the requests using one VNF to its service instances.

    Parameters
    ----------
    vnf:
        The VNF ``f`` (supplies ``M_f`` and ``mu_f``).
    requests:
        The set ``R_f = {r : U_r^f = 1}``; every request's chain must
        include ``vnf.name``.
    """

    vnf: VNF
    requests: tuple

    def __init__(self, vnf: VNF, requests: Sequence[Request]) -> None:
        object.__setattr__(self, "vnf", vnf)
        object.__setattr__(self, "requests", tuple(requests))
        self._validate()

    def _validate(self) -> None:
        if not self.requests:
            raise ValidationError(
                f"scheduling problem for VNF {self.vnf.name!r} has no requests"
            )
        ids = [r.request_id for r in self.requests]
        if len(set(ids)) != len(ids):
            raise ValidationError("duplicate request ids in scheduling problem")
        for request in self.requests:
            if not request.uses(self.vnf.name):
                raise ValidationError(
                    f"request {request.request_id!r} does not use VNF "
                    f"{self.vnf.name!r}"
                )

    @property
    def num_instances(self) -> int:
        """``m = M_f``."""
        return self.vnf.num_instances

    @property
    def num_requests(self) -> int:
        """``n = |R_f|``."""
        return len(self.requests)

    def effective_rates(self) -> List[float]:
        """Per-request effective rates ``lambda_r / P_r`` — the MWNP values."""
        return [r.effective_rate for r in self.requests]

    def arrays(self) -> "ScenarioArrays":
        """The cached columnar view of this problem's request table."""
        from repro.core.arrays import ScenarioArrays, cached_arrays

        return cached_arrays(self, ScenarioArrays.from_scheduling_problem)

    def total_effective_rate(self) -> float:
        """``sum_r lambda_r / P_r`` across all requests of ``R_f``."""
        return sum(self.effective_rates())


@dataclass
class ScheduleResult:
    """A per-VNF schedule: the materialized ``z_{r,k}^f`` variables.

    Attributes
    ----------
    assignment:
        ``request_id -> instance index k``.
    problem:
        The problem solved.
    iterations:
        Algorithm-specific work units (combine steps / search nodes).
    algorithm:
        Display name for report rows.
    """

    assignment: Dict[str, int]
    problem: SchedulingProblem
    iterations: int = 0
    algorithm: str = ""

    def instances(self) -> List[ServiceInstance]:
        """Materialize the VNF's instances with their scheduled requests."""
        table = [
            ServiceInstance(vnf=self.problem.vnf, index=k)
            for k in range(self.problem.num_instances)
        ]
        for request in self.problem.requests:
            k = self.assignment.get(request.request_id)
            if k is None:
                raise SchedulingError(
                    f"request {request.request_id!r} left unassigned (Eq. 5)"
                )
            table[k].assign(request)
        return table

    def instance_rates(self) -> List[float]:
        """Per-instance equivalent arrival rates ``Lambda_k^f`` (Eq. 7).

        One ``np.bincount`` over the columnar request table; degenerate
        assignments (missing or out-of-range ``k``) drop to the object
        path so its legacy errors surface unchanged.
        """
        m = self.problem.num_instances
        k = np.fromiter(
            (
                self.assignment.get(r.request_id, -1)
                for r in self.problem.requests
            ),
            dtype=np.int64,
            count=self.problem.num_requests,
        )
        if ((k < 0) | (k >= m)).any():
            return [inst.equivalent_arrival_rate for inst in self.instances()]
        rates = np.bincount(
            k, weights=self.problem.arrays().eff_rate, minlength=m
        )
        return [float(rate) for rate in rates]

    def validate(self) -> None:
        """Check Eq. (5): every request mapped to exactly one valid instance.

        Raises
        ------
        ValidationError
            On a missing assignment or out-of-range instance index.
        """
        m = self.problem.num_instances
        for request in self.problem.requests:
            k = self.assignment.get(request.request_id)
            if k is None:
                raise ValidationError(
                    f"request {request.request_id!r} unassigned (Eq. 5)"
                )
            if not 0 <= k < m:
                raise ValidationError(
                    f"request {request.request_id!r}: instance {k} out of "
                    f"range [0, {m})"
                )
        extras = set(self.assignment) - {
            r.request_id for r in self.problem.requests
        }
        if extras:
            raise ValidationError(
                f"assignment contains unknown request ids: {sorted(extras)}"
            )


class SchedulingAlgorithm(abc.ABC):
    """Strategy interface implemented by every scheduling algorithm."""

    #: Stable display name used in experiment report rows.
    name: str = "scheduler"

    @abc.abstractmethod
    def schedule(self, problem: SchedulingProblem) -> ScheduleResult:
        """Solve ``problem``, returning a validated schedule."""

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"{type(self).__name__}(name={self.name!r})"


def schedule_all_vnfs(
    vnfs: Sequence[VNF],
    requests: Sequence[Request],
    algorithm: SchedulingAlgorithm,
) -> Dict[Tuple[str, str], int]:
    """Schedule every VNF's request set, yielding the joint ``z`` map.

    VNFs used by no request are skipped (they simply idle).  The result
    maps ``(request_id, vnf_name) -> k`` and is directly consumable by
    :class:`~repro.nfv.state.DeploymentState`.
    """
    # One pass over the requests builds the inverted U_r^f index; the
    # old per-VNF membership scan was O(|F| * |R|).  Iterating requests
    # in the outer loop keeps each VNF's user list in request order,
    # exactly as the scan produced it.
    users_by_vnf: Dict[str, List[Request]] = {}
    for request in requests:
        for vnf_name in request.chain:
            users_by_vnf.setdefault(vnf_name, []).append(request)

    joint: Dict[Tuple[str, str], int] = {}
    for vnf in vnfs:
        users = users_by_vnf.get(vnf.name)
        if not users:
            continue
        result = algorithm.schedule(SchedulingProblem(vnf=vnf, requests=users))
        result.validate()
        for request_id, k in result.assignment.items():
            joint[(request_id, vnf.name)] = k
    return joint
