"""Round-robin request scheduler.

Assigns requests to instances cyclically in arrival order — the simplest
stateless policy, included as a floor baseline: it balances *counts*,
not rates, so heavy-tailed arrival rates leave it far from Eq. (15)'s
optimum.
"""

from __future__ import annotations

from repro.scheduling.base import (
    SchedulingAlgorithm,
    SchedulingProblem,
    ScheduleResult,
)


class RoundRobinScheduler(SchedulingAlgorithm):
    """Cyclic assignment in request order."""

    name = "RoundRobin"

    def schedule(self, problem: SchedulingProblem) -> ScheduleResult:
        m = problem.num_instances
        assignment = {
            request.request_id: i % m
            for i, request in enumerate(problem.requests)
        }
        result = ScheduleResult(
            assignment=assignment,
            problem=problem,
            iterations=problem.num_requests,
            algorithm=self.name,
        )
        result.validate()
        return result
