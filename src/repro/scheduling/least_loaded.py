"""Join-the-least-loaded request scheduler.

Greedy in *given request order* (not sorted): each request joins the
instance with the smallest current aggregate rate.  This is the online
version of LPT; sorting first turns it into the greedy/LPT partition
(which is CGA's first leaf), so it sits between round-robin and CGA in
solution quality and serves as an online-policy reference.
"""

from __future__ import annotations

import heapq

from repro.scheduling.base import (
    SchedulingAlgorithm,
    SchedulingProblem,
    ScheduleResult,
)


class LeastLoadedScheduler(SchedulingAlgorithm):
    """Assign each request (in order) to the currently least-loaded instance."""

    name = "LeastLoaded"

    def schedule(self, problem: SchedulingProblem) -> ScheduleResult:
        heap = [(0.0, k) for k in range(problem.num_instances)]
        heapq.heapify(heap)
        assignment = {}
        for request in problem.requests:
            load, k = heapq.heappop(heap)
            assignment[request.request_id] = k
            heapq.heappush(heap, (load + request.effective_rate, k))
        result = ScheduleResult(
            assignment=assignment,
            problem=problem,
            iterations=problem.num_requests,
            algorithm=self.name,
        )
        result.validate()
        return result
