"""Join-the-least-loaded request scheduler.

Greedy in *given request order* (not sorted): each request joins the
instance with the smallest current aggregate rate.  This is the online
version of LPT; sorting first turns it into the greedy/LPT partition
(which is CGA's first leaf), so it sits between round-robin and CGA in
solution quality and serves as an online-policy reference.
"""

from __future__ import annotations

import heapq
from typing import Optional

import numpy as np

from repro.scheduling.base import (
    SchedulingAlgorithm,
    SchedulingProblem,
    ScheduleResult,
)


def least_loaded_admit(
    loads: np.ndarray,
    rate: float,
    capacity: Optional[float] = None,
    fit_eps: float = 1e-9,
) -> int:
    """Single-request warm-start admit: pick one instance for ``rate``.

    The O(M) kernel behind :class:`~repro.core.incremental
    .DeploymentEngine` — the generalization of the single-VNF
    ``OnlineScheduler.arrive`` rule to any instance-load vector:

    * the least-loaded instance wins, first index on ties
      (``np.argmin``), matching the heap tie-break above and the
      legacy scalar ``min(..., key=(load, index))``;
    * with ``capacity`` given, the join is admitted only if the winner
      stays within ``capacity + fit_eps`` (the Eq. (6) slack
      convention) — returns ``-1`` to signal rejection, leaving every
      caller-side residual untouched.

    ``loads`` is not modified; committing the join is the caller's
    ``loads[k] += rate``.
    """
    if not len(loads):
        return -1
    k = int(np.argmin(loads))
    if capacity is not None and loads[k] + rate > capacity + fit_eps:
        return -1
    return k


class LeastLoadedScheduler(SchedulingAlgorithm):
    """Assign each request (in order) to the currently least-loaded instance."""

    name = "LeastLoaded"

    def schedule(self, problem: SchedulingProblem) -> ScheduleResult:
        heap = [(0.0, k) for k in range(problem.num_instances)]
        heapq.heapify(heap)
        assignment = {}
        for request in problem.requests:
            load, k = heapq.heappop(heap)
            assignment[request.request_id] = k
            heapq.heappush(heap, (load + request.effective_rate, k))
        result = ScheduleResult(
            assignment=assignment,
            problem=problem,
            iterations=problem.num_requests,
            algorithm=self.name,
        )
        result.validate()
        return result
