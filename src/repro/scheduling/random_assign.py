"""Uniform random request scheduler — a statistical floor baseline."""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.scheduling.base import (
    SchedulingAlgorithm,
    SchedulingProblem,
    ScheduleResult,
)


class RandomScheduler(SchedulingAlgorithm):
    """Assign each request to a uniformly random instance."""

    name = "Random"

    def __init__(self, rng: Optional[np.random.Generator] = None) -> None:
        self._rng = rng if rng is not None else np.random.default_rng()

    def schedule(self, problem: SchedulingProblem) -> ScheduleResult:
        m = problem.num_instances
        assignment = {
            request.request_id: int(self._rng.integers(0, m))
            for request in problem.requests
        }
        result = ScheduleResult(
            assignment=assignment,
            problem=problem,
            iterations=problem.num_requests,
            algorithm=self.name,
        )
        result.validate()
        return result
