"""Uniform random request scheduler — a statistical floor baseline."""

from __future__ import annotations

from typing import Optional


from repro.scheduling.base import (
    SchedulingAlgorithm,
    SchedulingProblem,
    ScheduleResult,
)
from repro.seeding import RngLike, resolve_rng


class RandomScheduler(SchedulingAlgorithm):
    """Assign each request to a uniformly random instance."""

    name = "Random"

    def __init__(self, rng: Optional[RngLike] = None) -> None:
        # ``None`` means the documented default seed, not OS entropy.
        self._rng = resolve_rng(rng)

    def schedule(self, problem: SchedulingProblem) -> ScheduleResult:
        m = problem.num_instances
        assignment = {
            request.request_id: int(self._rng.integers(0, m))
            for request in problem.requests
        }
        result = ScheduleResult(
            assignment=assignment,
            problem=problem,
            iterations=problem.num_requests,
            algorithm=self.name,
        )
        result.validate()
        return result
