"""RCKK request scheduler — the paper's Algorithm 2 applied to a VNF.

Partitions the effective request rates ``lambda_r / P_r`` across the
``M_f`` instances with the Reverse Complete Karmarkar-Karp heuristic
(:mod:`repro.partition.rckk`), then reads the ``z_{r,k}^f`` assignment
off the final partition's provenance sets.
"""

from __future__ import annotations

from repro.partition.rckk import rckk_partition
from repro.scheduling.base import (
    SchedulingAlgorithm,
    SchedulingProblem,
    ScheduleResult,
)


class RCKKScheduler(SchedulingAlgorithm):
    """Reverse Complete Karmarkar-Karp request scheduling."""

    name = "RCKK"

    def schedule(self, problem: SchedulingProblem) -> ScheduleResult:
        partition = rckk_partition(
            problem.effective_rates(), problem.num_instances
        )
        assignment = {}
        for instance_index, subset in enumerate(partition.subsets):
            for request_index in subset:
                request = problem.requests[request_index]
                assignment[request.request_id] = instance_index
        result = ScheduleResult(
            assignment=assignment,
            problem=problem,
            iterations=partition.iterations,
            algorithm=self.name,
        )
        result.validate()
        return result
