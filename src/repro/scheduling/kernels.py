"""Column-native scheduling: build :class:`ScheduleArrays` directly.

``schedule_all_vnfs`` + ``ScenarioArrays.schedule_arrays`` produce the
``z`` map through a Python dict with one entry per (request, VNF) pair —
3.5M dict entries at 1M requests, costing more than every solver kernel
combined.  :func:`schedule_columns` goes straight from the scenario's
inverted ``U_r^f`` CSR (:meth:`ScenarioArrays.vnf_requests`) to the
index-form schedule, row-for-row identical to the dict route
(``tests/scheduling/test_schedule_columns.py`` pins the parity):

* each VNF's user list in :meth:`vnf_requests` is ascending request
  order, which equals the object path's in-request-order scan because
  chains never revisit a VNF (``U_r^f`` is binary);
* the dict route emits rows grouped by VNF (in VNF order) with each
  group in user-list order — exactly the CSR traversal order here.

The per-policy assignment kernels mirror their object twins exactly:
:func:`least_loaded_assign` replays ``LeastLoadedScheduler``'s heap
(same float64 arithmetic, same ``(load, k)`` tie-break) and
:func:`round_robin_assign` is the closed form ``i mod m``.  RCKK/CGA
stay object-only — their partition search is not worth replicating at
a scale where join-the-least-loaded is already within Eq. (15) noise.
"""

from __future__ import annotations

import heapq
from typing import Callable, Dict, Sequence, Union

import numpy as np

from repro.core.arrays import ScenarioArrays, ScheduleArrays
from repro.exceptions import SchedulingError, ValidationError

__all__ = [
    "least_loaded_assign",
    "round_robin_assign",
    "schedule_columns",
]

AssignKernel = Callable[[Sequence[float], int], np.ndarray]


def least_loaded_assign(rates: Sequence[float], m: int) -> np.ndarray:
    """Join-the-least-loaded instance index per request, in order.

    Bit-exact replay of ``LeastLoadedScheduler.schedule``: a heap of
    ``(aggregate load, k)`` pairs, each request joining the minimum and
    pushing back ``load + rate`` — Python-float arithmetic and the
    ``(load, k)`` lexicographic tie-break included, so the object and
    column paths agree even when accumulated loads collide exactly.
    """
    if m < 1:
        raise SchedulingError(f"need at least one instance, got {m}")
    heap = [(0.0, k) for k in range(m)]
    heapq.heapify(heap)
    out = np.empty(len(rates), dtype=np.int64)
    for i, rate in enumerate(rates):
        load, k = heapq.heappop(heap)
        out[i] = k
        heapq.heappush(heap, (load + rate, k))
    return out


def round_robin_assign(rates: Sequence[float], m: int) -> np.ndarray:
    """Cyclic instance index per request: ``i mod m`` in request order."""
    if m < 1:
        raise SchedulingError(f"need at least one instance, got {m}")
    return np.arange(len(rates), dtype=np.int64) % m


_POLICIES: Dict[str, AssignKernel] = {
    "least_loaded": least_loaded_assign,
    "round_robin": round_robin_assign,
}


def schedule_columns(
    arrays: ScenarioArrays,
    policy: Union[str, AssignKernel] = "least_loaded",
) -> ScheduleArrays:
    """Schedule every VNF's users straight into index form.

    ``policy`` names a built-in kernel (``"least_loaded"`` /
    ``"round_robin"``) or is a callable ``(rates, m) -> k`` applied per
    VNF to its users' effective rates (float64, user-list order).
    VNFs used by no request idle, exactly as
    :func:`~repro.scheduling.base.schedule_all_vnfs` skips them.
    """
    if isinstance(policy, str):
        kernel = _POLICIES.get(policy)
        if kernel is None:
            raise ValidationError(
                f"unknown scheduling policy {policy!r}; "
                f"expected one of {sorted(_POLICIES)}"
            )
    else:
        kernel = policy
    if arrays.chain_has_unknown:
        raise SchedulingError(
            "cannot schedule chains referencing unknown VNFs"
        )
    ptr, req_csr = arrays.vnf_requests()
    eff64 = arrays.eff_rate.astype(np.float64, copy=False)
    idt = arrays.index_dtype
    total = int(ptr[-1])
    req = np.empty(total, dtype=idt)
    vnf = np.empty(total, dtype=idt)
    k = np.empty(total, dtype=idt)
    for f in range(len(arrays.vnf_names)):
        lo, hi = int(ptr[f]), int(ptr[f + 1])
        if hi == lo:
            continue
        users = req_csr[lo:hi]
        assigned = kernel(eff64[users].tolist(), int(arrays.M_f[f]))
        if len(assigned) != hi - lo:
            raise SchedulingError(
                f"policy returned {len(assigned)} assignments for "
                f"{hi - lo} users of VNF {arrays.vnf_names[f]!r}"
            )
        req[lo:hi] = users.astype(idt, copy=False)
        vnf[lo:hi] = f
        k[lo:hi] = np.asarray(assigned).astype(idt, copy=False)
    inst = arrays.instance_offset[vnf] + k
    return ScheduleArrays(req=req, vnf=vnf, k=k, inst=inst)
