"""CGA request scheduler — the paper's baseline.

Partitions the effective request rates with Korf's Complete Greedy
Algorithm under a bounded node budget
(:mod:`repro.partition.cga`).  The paper notes CGA "does not scale well
as the number of instances increases"; the budget keeps its cost
comparable to RCKK's single pass, at which point RCKK's differencing
produces the better balance — the effect Figs. 11-14 measure.
"""

from __future__ import annotations

from typing import Optional

from repro.partition.cga import complete_greedy_partition
from repro.scheduling.base import (
    SchedulingAlgorithm,
    SchedulingProblem,
    ScheduleResult,
)


class CGAScheduler(SchedulingAlgorithm):
    """Complete Greedy Algorithm request scheduling.

    Parameters
    ----------
    max_nodes:
        Search budget forwarded to
        :func:`repro.partition.cga.complete_greedy_partition`.  ``None``
        (the default) budgets exactly one greedy descent — the anytime
        first solution, which is what a latency-constrained scheduler
        actually deploys and what the paper's baseline measurements
        reflect.  ``0`` or negative runs the complete search to
        optimality (exponential — small instances only).
    presort:
        ``True`` gives textbook Korf CGA (values sorted decreasing, first
        leaf = LPT).  The default ``False`` processes requests in arrival
        order — the behaviour the paper's CGA baseline exhibits: its
        imbalance stays on the order of one request's rate however many
        requests arrive, which is why the RCKK-over-CGA enhancement ratio
        in Figs. 11-14 shrinks only as fast as ``mu`` scales with ``n``.
    """

    name = "CGA"

    def __init__(
        self, max_nodes: Optional[int] = None, presort: bool = False
    ) -> None:
        self._max_nodes = max_nodes
        self._presort = presort

    def schedule(self, problem: SchedulingProblem) -> ScheduleResult:
        if self._max_nodes is None:
            # One greedy descent: root + one node per request + the leaf.
            budget = problem.num_requests + 2
        else:
            budget = self._max_nodes
        partition = complete_greedy_partition(
            problem.effective_rates(),
            problem.num_instances,
            max_nodes=budget,
            presort=self._presort,
        )
        assignment = {}
        for instance_index, subset in enumerate(partition.subsets):
            for request_index in subset:
                request = problem.requests[request_index]
                assignment[request.request_id] = instance_index
        result = ScheduleResult(
            assignment=assignment,
            problem=problem,
            iterations=partition.iterations,
            algorithm=self.name,
        )
        result.validate()
        return result
