"""CKK request scheduler — complete Karmarkar-Karp for two instances.

For VNFs deploying exactly two service instances, the two-way Complete
Karmarkar-Karp search (:mod:`repro.partition.karmarkar_karp`) finds the
*optimal* rate split in practice instantly at the paper's scales.  This
scheduler is the natural upgrade path the paper mentions alongside CGA
("such as CGA and CKK") and anchors the optimality comparisons in the
test suite: no heuristic may beat CKK at m=2.
"""

from __future__ import annotations

from typing import Optional

from repro.exceptions import SchedulingError
from repro.partition.karmarkar_karp import ckk_two_way
from repro.scheduling.base import (
    SchedulingAlgorithm,
    SchedulingProblem,
    ScheduleResult,
)


class CKKScheduler(SchedulingAlgorithm):
    """Complete Karmarkar-Karp scheduling for two-instance VNFs.

    Parameters
    ----------
    max_nodes:
        Search budget.  ``None`` (default) uses a 50 000-node anytime
        budget — effectively optimal at the paper's request counts while
        bounding the exponential worst case; ``0`` or negative runs the
        complete search unconditionally.
    """

    name = "CKK"

    #: Default anytime budget: plenty for n <= ~250 float-rate requests.
    DEFAULT_BUDGET = 50_000

    def __init__(self, max_nodes: Optional[int] = None) -> None:
        self._max_nodes = (
            max_nodes if max_nodes is not None else self.DEFAULT_BUDGET
        )

    def schedule(self, problem: SchedulingProblem) -> ScheduleResult:
        if problem.num_instances != 2:
            raise SchedulingError(
                f"CKK schedules exactly 2 instances; VNF "
                f"{problem.vnf.name!r} deploys {problem.num_instances}"
            )
        partition = ckk_two_way(
            problem.effective_rates(), max_nodes=self._max_nodes
        )
        assignment = {}
        for instance_index, subset in enumerate(partition.subsets):
            for request_index in subset:
                request = problem.requests[request_index]
                assignment[request.request_id] = instance_index
        result = ScheduleResult(
            assignment=assignment,
            problem=problem,
            iterations=partition.iterations,
            algorithm=self.name,
        )
        result.validate()
        return result
