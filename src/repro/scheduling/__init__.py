"""Request scheduling algorithms (Section IV-B of the paper).

Scheduling assigns each request requiring a VNF ``f`` to one of its
``M_f`` service instances — the MWNP balancing problem.  Provided
algorithms:

* :mod:`repro.scheduling.rckk` — **RCKK**, the paper's heuristic
  (Algorithm 2).
* :mod:`repro.scheduling.cga` — Complete Greedy Algorithm baseline.
* :mod:`repro.scheduling.round_robin` — arrival-order round-robin.
* :mod:`repro.scheduling.random_assign` — uniform random assignment.
* :mod:`repro.scheduling.least_loaded` — join-the-least-loaded greedy.
* :mod:`repro.scheduling.metrics` — the latency/rejection metrics of
  Figs. 11-16 plus tail statistics.
"""

from repro.scheduling.base import (
    SchedulingAlgorithm,
    SchedulingProblem,
    ScheduleResult,
    schedule_all_vnfs,
)
from repro.scheduling.cga import CGAScheduler
from repro.scheduling.ckk import CKKScheduler
from repro.scheduling.least_loaded import LeastLoadedScheduler
from repro.scheduling.metrics import schedule_report
from repro.scheduling.random_assign import RandomScheduler
from repro.scheduling.rckk import RCKKScheduler
from repro.scheduling.round_robin import RoundRobinScheduler
from repro.scheduling.swap_refine import SwapRefinedScheduler

__all__ = [
    "SwapRefinedScheduler",
    "SchedulingProblem",
    "ScheduleResult",
    "SchedulingAlgorithm",
    "RCKKScheduler",
    "CGAScheduler",
    "CKKScheduler",
    "RoundRobinScheduler",
    "RandomScheduler",
    "LeastLoadedScheduler",
    "schedule_report",
    "schedule_all_vnfs",
]
