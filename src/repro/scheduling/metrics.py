"""Scheduling evaluation metrics (Figs. 11-16 plus tail statistics).

:func:`schedule_report` reduces a :class:`ScheduleResult` to the paper's
latency metrics; when asked it first applies admission control
(:mod:`repro.core.admission`) so the job-rejection experiments
(Figs. 15-16) can overload instances safely.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.queueing.mm1 import mm1_mean_response_times
from repro.scheduling.base import ScheduleResult


@dataclass(frozen=True)
class ScheduleReport:
    """One report row: a schedule reduced to the paper's metrics.

    ``average_response_time`` is Eq. (15)'s objective — the mean
    ``W(f,k)`` over instances actually serving requests.  When any
    serving instance is unstable and admission control was not applied,
    the latency fields are ``inf``.
    """

    algorithm: str
    instance_rates: tuple
    utilizations: tuple
    average_response_time: float
    max_response_time: float
    makespan: float
    spread: float
    num_requests: int
    num_rejected: int
    iterations: int

    @property
    def rejection_rate(self) -> float:
        """Job rejection rate: rejected / offered (Figs. 15-16)."""
        if self.num_requests == 0:
            return 0.0
        return self.num_rejected / self.num_requests


def schedule_report(
    result: ScheduleResult, apply_admission: bool = False
) -> ScheduleReport:
    """Reduce a schedule to the paper's latency/rejection metrics.

    Parameters
    ----------
    result:
        The schedule to evaluate.
    apply_admission:
        When True, overloaded instances shed requests via
        :func:`repro.core.admission.apply_admission_control` before
        latency is computed, and the shed count feeds
        ``rejection_rate``.  When False, an unstable instance makes the
        latency fields infinite (no steady state exists).
    """
    problem = result.problem
    if not apply_admission:
        m = problem.num_instances
        k = np.fromiter(
            (
                result.assignment.get(r.request_id, -1)
                for r in problem.requests
            ),
            dtype=np.int64,
            count=problem.num_requests,
        )
        if not ((k < 0) | (k >= m)).any():
            arrays = problem.arrays()
            equivalent = np.bincount(
                k, weights=arrays.eff_rate, minlength=m
            )
            external = np.bincount(
                k, weights=arrays.lambda_r, minlength=m
            )
            serving = np.bincount(k, minlength=m) > 0
            mu = problem.vnf.service_rate
            utilizations = equivalent / mu
            if serving.any() and bool((utilizations[serving] < 1.0).all()):
                response_times = mm1_mean_response_times(
                    equivalent[serving], mu, external[serving]
                )
                average_w = float(
                    response_times.sum() / len(response_times)
                )
                max_w = float(response_times.max())
            else:
                average_w = math.inf
                max_w = math.inf
            rates = tuple(float(rate) for rate in equivalent)
            return ScheduleReport(
                algorithm=result.algorithm,
                instance_rates=rates,
                utilizations=tuple(float(u) for u in utilizations),
                average_response_time=average_w,
                max_response_time=max_w,
                makespan=max(rates) if rates else 0.0,
                spread=(max(rates) - min(rates)) if rates else 0.0,
                num_requests=problem.num_requests,
                num_rejected=0,
                iterations=result.iterations,
            )
        # Degenerate assignment: the object path raises legacy errors.

    instances = result.instances()
    num_requests = problem.num_requests
    num_rejected = 0
    if apply_admission:
        from repro.core.admission import apply_admission_control

        outcome = apply_admission_control(instances)
        instances = outcome.instances
        num_rejected = outcome.num_rejected

    serving = [inst for inst in instances if inst.requests]
    rates = tuple(inst.equivalent_arrival_rate for inst in instances)
    utils = tuple(inst.utilization for inst in instances)

    if serving and all(inst.is_stable for inst in serving):
        response_times = [inst.mean_response_time for inst in serving]
        average_w = sum(response_times) / len(response_times)
        max_w = max(response_times)
    else:
        average_w = math.inf
        max_w = math.inf

    return ScheduleReport(
        algorithm=result.algorithm,
        instance_rates=rates,
        utilizations=utils,
        average_response_time=average_w,
        max_response_time=max_w,
        makespan=max(rates) if rates else 0.0,
        spread=(max(rates) - min(rates)) if rates else 0.0,
        num_requests=num_requests,
        num_rejected=num_rejected,
        iterations=result.iterations,
    )


def enhancement_ratio(baseline_w: float, improved_w: float) -> float:
    """The paper's ``(W_CGA - W_RCKK) / W_CGA`` improvement metric."""
    if baseline_w == 0.0:
        return 0.0
    if math.isinf(baseline_w) and math.isinf(improved_w):
        return 0.0
    return (baseline_w - improved_w) / baseline_w
