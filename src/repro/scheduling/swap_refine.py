"""Swap/move refinement of a schedule — local search after RCKK.

One-pass differencing leaves residual imbalance; the classic cleanup is
local search over two move types:

* **move** — reassign one request from the most-loaded instance to a
  lighter one,
* **swap** — exchange two requests between the most-loaded instance and
  another,

accepting only moves that reduce the *makespan* (the largest instance
rate — the quantity Eq. (12) says dominates the worst ``W(f,k)``).
:class:`SwapRefinedScheduler` wraps any base scheduler with this
refinement, giving an anytime upgrade path between RCKK and the exact
search.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.exceptions import ValidationError
from repro.scheduling.base import (
    SchedulingAlgorithm,
    SchedulingProblem,
    ScheduleResult,
)
from repro.scheduling.rckk import RCKKScheduler


def refine_assignment(
    rates: List[float],
    assignment: List[int],
    num_ways: int,
    max_rounds: int = 20,
) -> Tuple[List[int], int]:
    """Hill-climb move/swap until the makespan stops improving.

    Parameters
    ----------
    rates:
        Per-item values (request effective rates).
    assignment:
        Item -> way indices; modified copies are returned, the input is
        untouched.
    num_ways:
        Number of ways (instances).
    max_rounds:
        Bound on improvement rounds.

    Returns
    -------
    (assignment, moves)
        The refined assignment and the number of accepted moves.
    """
    if max_rounds < 1:
        raise ValidationError(f"max_rounds must be >= 1, got {max_rounds!r}")
    current = list(assignment)
    sums = [0.0] * num_ways
    members: List[List[int]] = [[] for _ in range(num_ways)]
    for idx, way in enumerate(current):
        sums[way] += rates[idx]
        members[way].append(idx)

    def makespan_with(changes: Dict[int, float]) -> float:
        """Makespan if each way's sum moved by the given delta."""
        return max(
            sums[w] + changes.get(w, 0.0) for w in range(num_ways)
        )

    moves = 0
    for _ in range(max_rounds):
        worst = max(range(num_ways), key=lambda w: sums[w])
        makespan = sums[worst]
        best_delta = 0.0
        best_action: Optional[Tuple[str, int, int, int]] = None

        for idx in members[worst]:
            r = rates[idx]
            for target in range(num_ways):
                if target == worst:
                    continue
                # Move idx -> target.
                delta = makespan - makespan_with({worst: -r, target: +r})
                if delta > best_delta + 1e-12:
                    best_delta = delta
                    best_action = ("move", idx, -1, target)
                # Swap idx with one item of target.
                for jdx in members[target]:
                    s = rates[jdx]
                    if s >= r:
                        continue  # swap must shrink the worst way
                    delta = makespan - makespan_with(
                        {worst: s - r, target: r - s}
                    )
                    if delta > best_delta + 1e-12:
                        best_delta = delta
                        best_action = ("swap", idx, jdx, target)

        if best_action is None:
            break
        kind, idx, jdx, target = best_action
        if kind == "move":
            members[worst].remove(idx)
            members[target].append(idx)
            sums[worst] -= rates[idx]
            sums[target] += rates[idx]
            current[idx] = target
        else:
            members[worst].remove(idx)
            members[target].remove(jdx)
            members[worst].append(jdx)
            members[target].append(idx)
            sums[worst] += rates[jdx] - rates[idx]
            sums[target] += rates[idx] - rates[jdx]
            current[idx], current[jdx] = target, worst
        moves += 1
    return current, moves


class SwapRefinedScheduler(SchedulingAlgorithm):
    """A base scheduler followed by move/swap makespan refinement.

    Parameters
    ----------
    base:
        The scheduler producing the starting assignment (default RCKK).
    max_rounds:
        Refinement rounds per VNF.
    """

    name = "SwapRefined"

    def __init__(
        self,
        base: Optional[SchedulingAlgorithm] = None,
        max_rounds: int = 20,
    ) -> None:
        self._base = base if base is not None else RCKKScheduler()
        self._max_rounds = max_rounds
        self.name = f"SwapRefined({self._base.name})"

    def schedule(self, problem: SchedulingProblem) -> ScheduleResult:
        base_result = self._base.schedule(problem)
        ids = [r.request_id for r in problem.requests]
        rates = problem.effective_rates()
        assignment = [base_result.assignment[rid] for rid in ids]
        refined, moves = refine_assignment(
            rates, assignment, problem.num_instances, self._max_rounds
        )
        result = ScheduleResult(
            assignment={rid: way for rid, way in zip(ids, refined)},
            problem=problem,
            iterations=base_result.iterations + moves,
            algorithm=self.name,
        )
        result.validate()
        return result
