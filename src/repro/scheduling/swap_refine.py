"""Swap/move refinement of a schedule — local search after RCKK.

One-pass differencing leaves residual imbalance; the classic cleanup is
local search over two move types:

* **move** — reassign one request from the most-loaded instance to a
  lighter one,
* **swap** — exchange two requests between the most-loaded instance and
  another,

accepting only moves that reduce the *makespan* (the largest instance
rate — the quantity Eq. (12) says dominates the worst ``W(f,k)``).
:class:`SwapRefinedScheduler` wraps any base scheduler with this
refinement, giving an anytime upgrade path between RCKK and the exact
search.

Vectorized candidate scan
-------------------------
The legacy scan evaluated each (item, target[, partner]) candidate with
a fresh ``max`` over all way sums.  The kernel computes every
candidate's post-move makespan in one shot: with ``o(t)`` = the largest
sum over ways other than ``worst`` and ``t`` (two-argmax trick), a move
of rate ``r`` to ``t`` yields ``max(o(t), makespan - r, sums[t] + r)``
and a swap with partner rate ``s`` yields
``max(o(t), makespan + (s - r), sums[t] + (r - s))`` — each one numpy
broadcast over the full candidate grid, laid out in the exact legacy
enumeration order.  The legacy acceptance rule
(``delta > best + 1e-12``, best updated on accept) only ever accepts
strict prefix-maximum record breakers, so the kernel extracts the
record breakers with a ``maximum.accumulate`` prefix scan and replays
the margin rule on that short list — selecting the identical candidate,
hence the identical move sequence and final assignment.  The legacy
scan survives as ``reference_refine_assignment`` in
``benchmarks/_reference_impl.py``, pinned by
``tests/core/test_solver_kernel_parity.py``.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from repro.core.arrays import ScenarioArrays, ScheduleArrays
from repro.core.deltas import select_improving_record_breaker
from repro.core.dtypes import ensure_index_capacity
from repro.exceptions import ValidationError
from repro.scheduling.base import (
    SchedulingAlgorithm,
    SchedulingProblem,
    ScheduleResult,
)
from repro.scheduling.rckk import RCKKScheduler


def refine_assignment(
    rates: List[float],
    assignment: List[int],
    num_ways: int,
    max_rounds: int = 20,
) -> Tuple[List[int], int]:
    """Hill-climb move/swap until the makespan stops improving.

    Parameters
    ----------
    rates:
        Per-item values (request effective rates).
    assignment:
        Item -> way indices; modified copies are returned, the input is
        untouched.
    num_ways:
        Number of ways (instances).
    max_rounds:
        Bound on improvement rounds.

    Returns
    -------
    (assignment, moves)
        The refined assignment and the number of accepted moves.
    """
    if max_rounds < 1:
        raise ValidationError(f"max_rounds must be >= 1, got {max_rounds!r}")
    current = list(assignment)
    # Way sums stay an incrementally-updated Python float list with the
    # legacy update expressions, so accumulated rounding is identical.
    sums = [0.0] * num_ways
    members: List[List[int]] = [[] for _ in range(num_ways)]
    for idx, way in enumerate(current):
        sums[way] += rates[idx]
        members[way].append(idx)
    rates_arr = np.asarray(rates, dtype=np.float64)

    moves = 0
    for _ in range(max_rounds):
        worst = max(range(num_ways), key=lambda w: sums[w])
        makespan = sums[worst]
        row_items = members[worst]
        tlist = [t for t in range(num_ways) if t != worst]
        if not row_items or not tlist:
            break

        # o[t] = max sum over ways other than worst and t, via the
        # top-two of the sums with worst masked out.
        S = np.asarray(sums, dtype=np.float64)
        t_arr = np.asarray(tlist, dtype=np.int64)
        E = S.copy()
        E[worst] = -np.inf
        i1 = int(np.argmax(E))
        top1 = float(E[i1])
        E[i1] = -np.inf
        top2 = float(E.max())
        o = np.where(t_arr == i1, top2, top1)

        # Candidate grid layout: one row per item of the worst way, and
        # per target t a column block [move, swap(j) for j in members[t]]
        # — C-order ravel of the grid is the legacy enumeration order.
        R = rates_arr[row_items]
        lens = np.asarray([len(members[t]) for t in tlist], dtype=np.int64)
        j_all = np.asarray(
            [j for t in tlist for j in members[t]], dtype=np.int64
        )
        block_sizes = 1 + lens
        L = int(block_sizes.sum())
        col_tpos = np.repeat(np.arange(len(tlist)), block_sizes)
        pos_move = np.concatenate(([0], np.cumsum(block_sizes)[:-1]))
        pos_swap = np.delete(np.arange(L), pos_move)

        # Move idx -> t: max(o, makespan - r, sums[t] + r).
        move_new = np.maximum(
            o[None, :],
            np.maximum((makespan - R)[:, None], S[t_arr][None, :] + R[:, None]),
        )
        move_delta = makespan - move_new

        flat = np.empty((len(row_items), L), dtype=np.float64)
        flat[:, pos_move] = move_delta
        if len(j_all):
            # Swap idx <-> jdx: max(o, makespan + (s - r), sums[t] + (r - s)),
            # grouped exactly like the legacy change dict (s - r first).
            s = rates_arr[j_all]
            tpos_j = np.repeat(np.arange(len(tlist)), lens)
            swap_new = np.maximum(
                o[tpos_j][None, :],
                np.maximum(
                    makespan + (s[None, :] - R[:, None]),
                    S[t_arr[tpos_j]][None, :] + (R[:, None] - s[None, :]),
                ),
            )
            # Swaps must shrink the worst way (s < r); others never
            # existed in the legacy enumeration.
            flat[:, pos_swap] = np.where(
                s[None, :] < R[:, None], makespan - swap_new, -np.inf
            )

        # Accepted candidates under the sequential margin rule are all
        # strict prefix-max record breakers; replay the rule on just the
        # record breakers (identical winner, see module docstring).
        sel = select_improving_record_breaker(flat.ravel())
        if sel < 0:
            break

        col = sel % L
        idx = row_items[sel // L]
        target = tlist[int(col_tpos[col])]
        swap_pos = int(np.searchsorted(pos_swap, col))
        is_move = not (swap_pos < len(pos_swap) and pos_swap[swap_pos] == col)
        if is_move:
            members[worst].remove(idx)
            members[target].append(idx)
            sums[worst] -= rates[idx]
            sums[target] += rates[idx]
            current[idx] = target
        else:
            jdx = int(j_all[swap_pos])
            members[worst].remove(idx)
            members[target].remove(jdx)
            members[worst].append(jdx)
            members[target].append(idx)
            sums[worst] += rates[jdx] - rates[idx]
            sums[target] += rates[idx] - rates[jdx]
            current[idx], current[jdx] = target, worst
        moves += 1
    return current, moves


def swap_refine_columns(
    arrays: ScenarioArrays,
    sched: ScheduleArrays,
    max_rounds: int = 20,
) -> Tuple[ScheduleArrays, int]:
    """Move/swap makespan refinement straight on an index-form schedule.

    Runs :func:`refine_assignment` once per VNF over the schedule's
    rows, grouped with a stable sort so each VNF's users keep their
    schedule order — the object path's enumeration order for schedules
    built by :func:`~repro.scheduling.kernels.schedule_columns`.  The
    effective rates are widened to float64 *before* any way sum
    accumulates, so :data:`~repro.core.dtypes.LEAN_POLICY` columns
    (int32 indices, float32 rates) produce the byte-identical move
    sequence to the default policy whenever both hold the same values.

    Returns a new :class:`ScheduleArrays` preserving row order and the
    input's dtypes, plus the total number of accepted moves.  The
    refinement can assign a request to *any* of a VNF's ``M_f`` slots —
    not just slots already used — so the slot-index dtype must be able
    to hold the largest ``M_f``, guarded here via
    :func:`~repro.core.dtypes.ensure_index_capacity`.
    """
    if max_rounds < 1:
        raise ValidationError(f"max_rounds must be >= 1, got {max_rounds!r}")
    ensure_index_capacity(
        int(arrays.M_f.max(initial=0)),
        sched.k.dtype,
        "swap-refined instance slots",
    )
    new_k = sched.k.copy()
    moves = 0
    if len(sched):
        eff64 = arrays.eff_rate.astype(np.float64, copy=False)
        order = np.argsort(sched.vnf, kind="stable")
        vs = sched.vnf[order]
        starts = np.flatnonzero(np.r_[True, vs[1:] != vs[:-1]])
        bounds = np.r_[starts, len(vs)]
        for gi in range(len(starts)):
            lo, hi = int(bounds[gi]), int(bounds[gi + 1])
            m = int(arrays.M_f[int(vs[lo])])
            if m <= 1:
                continue
            rows = order[lo:hi]
            refined, applied = refine_assignment(
                eff64[sched.req[rows]],
                sched.k[rows].tolist(),
                m,
                max_rounds,
            )
            new_k[rows] = np.asarray(refined, dtype=new_k.dtype)
            moves += applied
    inst = (arrays.instance_offset[sched.vnf] + new_k).astype(
        sched.inst.dtype, copy=False
    )
    return (
        ScheduleArrays(
            req=sched.req.copy(), vnf=sched.vnf.copy(), k=new_k, inst=inst
        ),
        moves,
    )


class SwapRefinedScheduler(SchedulingAlgorithm):
    """A base scheduler followed by move/swap makespan refinement.

    Parameters
    ----------
    base:
        The scheduler producing the starting assignment (default RCKK).
    max_rounds:
        Refinement rounds per VNF.
    """

    name = "SwapRefined"

    def __init__(
        self,
        base: Optional[SchedulingAlgorithm] = None,
        max_rounds: int = 20,
    ) -> None:
        self._base = base if base is not None else RCKKScheduler()
        self._max_rounds = max_rounds
        self.name = f"SwapRefined({self._base.name})"

    def schedule(self, problem: SchedulingProblem) -> ScheduleResult:
        base_result = self._base.schedule(problem)
        ids = [r.request_id for r in problem.requests]
        rates = problem.effective_rates()
        assignment = [base_result.assignment[rid] for rid in ids]
        refined, moves = refine_assignment(
            rates, assignment, problem.num_instances, self._max_rounds
        )
        result = ScheduleResult(
            assignment={rid: way for rid, way in zip(ids, refined)},
            problem=problem,
            iterations=base_result.iterations + moves,
            algorithm=self.name,
        )
        result.validate()
        return result
