"""Column-native trace simulation for million-request scenarios.

The trace backend (:mod:`repro.sim.trace`) already replaced the event
loop with array kernels, but its orchestration is per-request Python:
one RNG spawn, one dict entry and one arrival array *per request*.  At
1M requests that is minutes of setup for seconds of kernel time.  This
backend keeps the same two-sweep structure — causal rounds × hop
levels establishing when every packet reaches every instance, then one
full-load measurement pass per instance — but works on whole-run
packet columns:

* arrivals are one vectorized draw: per-request Poisson *counts*, then
  uniform order statistics on ``[0, duration)`` (exactly the
  conditional law of a Poisson process given its count);
* each hop level is one ``(instance, time)`` lexsort plus one
  segmented Lindley pass (:func:`~repro.sim.kernels.segmented_lindley`)
  per instance shard at that level;
* cross-pass backlog (the trace backend's departure frontier) is one
  ``searchsorted`` per shard against its accumulated history, keyed by
  ``instance * span + time``;
* the measurement sweep is a lexsort + segmented Lindley per shard over
  every recorded (packet, hop, round) visit, merged back per packet in
  shard order.

Sharded execution (``jobs=N``)
------------------------------
The instance axis is partitioned once per run by a deterministic
:class:`~repro.sim.shard.ScaleShardPlan` (independent of the worker
count); each shard sweeps its instances with a private history and
private RNG streams, either in-process or on worker processes that
attach the scenario via :mod:`repro.experiments.shm` snapshots.  The
merged output is **byte-identical at any** ``jobs`` for the same seed
— see :mod:`repro.sim.shard` for the contract and docs/SCALE.md for
the operational guide.

RNG stream layout (documented, relied on by tests)
--------------------------------------------------
``SeedSequence(config.seed)`` spawns ``2 + 2 * S`` children for a plan
with ``S`` shards, in order:

* child ``0`` — arrival counts + times (master process);
* child ``1`` — delivery coins (master process);
* child ``2 + s`` — causal-sweep services of shard ``s``;
* child ``2 + S + s`` — measurement services of shard ``s``.

Each child seeds ONE generator consumed in deterministic (round,
level, sorted-sub-batch) order within its owner — unlike the trace
backend's per-request/per-instance spawns, so the two backends agree
in distribution only (the same contract the trace backend has with the
event engine; see docs/SCALE.md and docs/SIM_BACKENDS.md).  The layout
depends on the shard *plan*, never on ``jobs``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.core.arrays import ScenarioArrays, ScheduleArrays
from repro.exceptions import SimulationError
from repro.sim.shard import (
    ScaleShardPlan,
    _History,  # noqa: F401  (re-export; the frontier lived here pre-shard)
    merge_shard_measurements,
    open_shard_executor,
    partition_by_shard,
)
from repro.sim.trace import MAX_FEEDBACK_ROUNDS

__all__ = ["ScaleShardPlan", "ScaleSimMetrics", "simulate_columns"]


@dataclass
class ScaleSimMetrics:
    """Array-shaped statistics of one column-native simulation run.

    The dict-of-lists shape of
    :class:`~repro.sim.metrics.SimulationMetrics` (per-request latency
    lists keyed by id) costs more than the simulation at 1M requests;
    this report keeps everything as per-request / per-instance columns.
    """

    duration: float
    generated: int
    #: Packets counted as delivered per request (post-warmup, coin ok).
    delivered: np.ndarray
    #: Packets that needed at least one retransmission, per request.
    retransmitted: np.ndarray
    #: Summed end-to-end latency of counted deliveries, per request.
    latency_sum: np.ndarray
    #: Per-instance: packets seen / completed before the horizon.
    instance_arrivals: np.ndarray
    instance_departures: np.ndarray
    #: Per-instance mean sojourn over completed packets (0 where idle).
    instance_mean_sojourn: np.ndarray
    #: Per-instance busy fraction of ``[0, duration)``, clipped to 1.
    instance_utilization: np.ndarray

    @property
    def total_delivered(self) -> int:
        return int(self.delivered.sum())

    @property
    def mean_latency(self) -> float:
        """Mean end-to-end latency over every counted delivery."""
        done = self.total_delivered
        return float(self.latency_sum.sum() / done) if done else float("nan")

    @property
    def throughput(self) -> float:
        """Counted deliveries per simulated second."""
        return (
            self.total_delivered / self.duration if self.duration else 0.0
        )


def simulate_columns(
    arrays: ScenarioArrays,
    sched: ScheduleArrays,
    config: Optional[object] = None,
    *,
    jobs: Optional[int] = None,
    plan: Optional[ScaleShardPlan] = None,
    start_method: Optional[str] = None,
) -> ScaleSimMetrics:
    """Run one column-native trace simulation over a scheduled scenario.

    ``config`` is a :class:`~repro.sim.simulator.SimulationConfig`
    (``None`` uses its defaults).  Every chain entry must be scheduled;
    packet times are always float64 regardless of the scenario's dtype
    policy (horizon arithmetic needs the precision — only the static
    columns shrink under the lean policy).

    Parameters
    ----------
    jobs:
        Worker processes for the instance-sharded sweep.  ``None``/``1``
        runs in-process, ``0`` auto-detects CPUs, ``N >= 2`` spreads the
        shard plan over ``min(N, num_shards)`` workers.  The result is
        byte-identical at any value (see :mod:`repro.sim.shard`).
    plan:
        Optional pre-built :class:`~repro.sim.shard.ScaleShardPlan`.
        Passing a different plan changes the RNG stream layout — and
        therefore the realization — while staying distributionally
        equivalent; the default plan is a deterministic function of the
        scenario + schedule.
    start_method:
        Optional multiprocessing start method (``"spawn"`` /
        ``"fork"`` / ``"forkserver"``); ``None`` uses the platform
        default.  Workers are spawn-safe under all of them.
    """
    from repro.sim.simulator import SimulationConfig

    cfg = config if config is not None else SimulationConfig()
    horizon = float(cfg.duration)
    num_requests = len(arrays.request_ids)
    num_instances = arrays.num_instances

    slot_inst = arrays.chain_instances(sched)
    if (slot_inst < 0).any():
        entry = int(np.argmax(slot_inst < 0))
        raise SimulationError(
            f"chain entry {entry} has no schedule assignment; "
            "simulate_columns needs a complete schedule"
        )
    chain_ptr = arrays.chain_ptr.astype(np.int64, copy=False)
    chain_len = np.diff(chain_ptr)
    P_r = arrays.P_r.astype(np.float64, copy=False)
    lam = arrays.lambda_r.astype(np.float64, copy=False)

    shard_plan = (
        plan if plan is not None else ScaleShardPlan.build(arrays, sched)
    )
    if shard_plan.shard_of_inst.shape[0] != num_instances:
        raise SimulationError(
            f"shard plan covers {shard_plan.shard_of_inst.shape[0]} "
            f"instances but the scenario has {num_instances}"
        )
    num_shards = shard_plan.num_shards
    shard_of_inst = shard_plan.shard_of_inst

    root = np.random.SeedSequence(int(cfg.seed))
    children = root.spawn(2 + 2 * num_shards)
    arrival_rng = np.random.default_rng(children[0])
    coin_rng = np.random.default_rng(children[1])
    sweep_seqs = children[2 : 2 + num_shards]
    measure_seqs = children[2 + num_shards :]

    # ------------------------------------------------------------------
    # Batched arrivals: Poisson counts, then uniform order statistics.
    # ------------------------------------------------------------------
    counts = arrival_rng.poisson(lam * horizon)
    generated = int(counts.sum())
    pkt_req = np.repeat(
        np.arange(num_requests, dtype=np.int64), counts
    )
    raw = arrival_rng.random(generated) * horizon
    order = np.lexsort((raw, pkt_req))
    created = raw[order]  # sorted within each request's segment
    del raw

    extra_delay = np.zeros(generated, dtype=np.float64)
    delivered = np.zeros(num_requests, dtype=np.int64)
    retransmitted = np.zeros(num_requests, dtype=np.int64)
    latency_sum = np.zeros(num_requests, dtype=np.float64)
    counted_pkts: List[np.ndarray] = []

    executor = open_shard_executor(
        arrays,
        shard_plan,
        horizon,
        sweep_seqs,
        measure_seqs,
        generated,
        jobs=jobs,
        start_method=start_method,
    )
    try:
        # Alive packet state for the current round.
        pkt = np.arange(generated, dtype=np.int64)
        t = created.copy()
        round_index = 0
        while pkt.size:
            if round_index >= MAX_FEEDBACK_ROUNDS:
                raise SimulationError(
                    f"feedback did not drain after {MAX_FEEDBACK_ROUNDS} "
                    "rounds; check delivery probabilities and load"
                )
            req = pkt_req[pkt]
            lens = chain_len[req]
            max_len = int(lens.max())
            finished_pkt: List[np.ndarray] = []
            finished_t: List[np.ndarray] = []
            for level in range(max_len):
                active = lens > level
                if not active.any():
                    break
                a_pkt = pkt[active]
                a_t = t[active]
                a_req = req[active]
                inst = slot_inst[chain_ptr[a_req] + level]
                part, bounds = partition_by_shard(
                    shard_of_inst[inst], num_shards
                )
                dep_part = executor.sweep(
                    a_pkt[part], inst[part], a_t[part], bounds
                )
                dep_active = np.empty_like(dep_part)
                dep_active[part] = dep_part
                # Scatter departures back to the round's packet state;
                # completions at or past the horizon go no further.
                dep_unsorted = np.empty_like(t)
                dep_unsorted[np.flatnonzero(active)] = dep_active
                t = np.where(active, dep_unsorted, t)
                done_here = active & (lens == level + 1)
                alive = ~done_here & (~active | (t < horizon))
                ends = done_here & (t < horizon)
                if ends.any():
                    finished_pkt.append(pkt[ends])
                    finished_t.append(t[ends])
                pkt, t, req, lens = (
                    pkt[alive], t[alive], req[alive], lens[alive]
                )

            # ----------------------------------------------------------
            # Delivery coins for every chain that completed this round.
            # ----------------------------------------------------------
            if finished_pkt:
                f_pkt = np.concatenate(finished_pkt)
                f_t = np.concatenate(finished_t)
            else:
                f_pkt = np.empty(0, dtype=np.int64)
                f_t = np.empty(0, dtype=np.float64)
            if f_pkt.size:
                f_req = pkt_req[f_pkt]
                ok = coin_rng.random(f_pkt.size) < P_r[f_req]
                measured = created[f_pkt] >= cfg.warmup
                counted = ok & measured
                delivered += np.bincount(
                    f_req[counted], minlength=num_requests
                )
                latency_chunk = f_pkt[counted]
                counted_pkts.append(latency_chunk)
                failed = ~ok
                if round_index == 0:
                    retransmitted += np.bincount(
                        f_req[failed & measured], minlength=num_requests
                    )
                retry_t = f_t[failed] + cfg.nack_delay
                retry_pkt = f_pkt[failed]
                keep = retry_t < horizon
                retry_t, retry_pkt = retry_t[keep], retry_pkt[keep]
                if cfg.nack_delay > 0.0 and retry_pkt.size:
                    extra_delay[retry_pkt] += cfg.nack_delay
                pkt = np.concatenate([pkt, retry_pkt])
                t = np.concatenate([t, retry_t])
            round_index += 1

        # --------------------------------------------------------------
        # Measurement sweep: one merged full-load pass per instance,
        # reduced across shards in ascending shard order.
        # --------------------------------------------------------------
        tagged = executor.measure()
    finally:
        executor.close()

    (
        sojourn_sums,
        inst_arrivals,
        inst_departures,
        inst_sojourn_done,
        inst_busy,
    ) = merge_shard_measurements(tagged, generated, num_instances)
    with np.errstate(invalid="ignore"):
        inst_sojourn = np.where(
            inst_departures > 0,
            inst_sojourn_done / np.maximum(inst_departures, 1),
            0.0,
        )
    utilization = (
        np.minimum(1.0, inst_busy / horizon)
        if horizon > 0.0
        else np.zeros(num_instances)
    )

    # End-to-end latency of counted deliveries, summed per request.
    if counted_pkts:
        c_pkt = np.concatenate(counted_pkts)
        latency_sum = np.bincount(
            pkt_req[c_pkt],
            weights=sojourn_sums[c_pkt] + extra_delay[c_pkt],
            minlength=num_requests,
        )

    return ScaleSimMetrics(
        duration=horizon,
        generated=generated,
        delivered=delivered,
        retransmitted=retransmitted,
        latency_sum=latency_sum,
        instance_arrivals=inst_arrivals,
        instance_departures=inst_departures,
        instance_mean_sojourn=inst_sojourn,
        instance_utilization=utilization,
    )
