"""Column-native trace simulation for million-request scenarios.

The trace backend (:mod:`repro.sim.trace`) already replaced the event
loop with array kernels, but its orchestration is per-request Python:
one RNG spawn, one dict entry and one arrival array *per request*.  At
1M requests that is minutes of setup for seconds of kernel time.  This
backend keeps the same two-sweep structure — causal rounds × hop
levels establishing when every packet reaches every instance, then one
full-load measurement pass per instance — but works on whole-run
packet columns:

* arrivals are one vectorized draw: per-request Poisson *counts*, then
  uniform order statistics on ``[0, duration)`` (exactly the
  conditional law of a Poisson process given its count);
* each hop level is one ``(instance, time)`` lexsort plus one
  segmented Lindley pass (:func:`~repro.sim.kernels.segmented_lindley`)
  over *all* instances at that level simultaneously;
* cross-pass backlog (the trace backend's departure frontier) is one
  global ``searchsorted`` against the accumulated history, keyed by
  ``instance * span + time``;
* the measurement sweep is a single lexsort + segmented Lindley over
  every recorded (packet, hop, round) visit, scattered back per packet
  with ``bincount``.

RNG stream layout (documented, relied on by tests)
--------------------------------------------------
``SeedSequence(config.seed)`` spawns four roots, in order: arrival
counts+times, causal-sweep services, delivery coins, measurement
services.  Each root seeds ONE global generator consumed in
deterministic (round, level, sorted-batch) order — unlike the trace
backend's per-request/per-instance spawns, so the two backends agree
in distribution only (the same contract the trace backend has with the
event engine; see docs/SCALE.md and docs/SIM_BACKENDS.md).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.core.arrays import ScenarioArrays, ScheduleArrays
from repro.exceptions import SimulationError
from repro.sim.kernels import segmented_lindley, segmented_maximum_accumulate
from repro.sim.trace import MAX_FEEDBACK_ROUNDS

__all__ = ["ScaleSimMetrics", "simulate_columns"]


@dataclass
class ScaleSimMetrics:
    """Array-shaped statistics of one column-native simulation run.

    The dict-of-lists shape of
    :class:`~repro.sim.metrics.SimulationMetrics` (per-request latency
    lists keyed by id) costs more than the simulation at 1M requests;
    this report keeps everything as per-request / per-instance columns.
    """

    duration: float
    generated: int
    #: Packets counted as delivered per request (post-warmup, coin ok).
    delivered: np.ndarray
    #: Packets that needed at least one retransmission, per request.
    retransmitted: np.ndarray
    #: Summed end-to-end latency of counted deliveries, per request.
    latency_sum: np.ndarray
    #: Per-instance: packets seen / completed before the horizon.
    instance_arrivals: np.ndarray
    instance_departures: np.ndarray
    #: Per-instance mean sojourn over completed packets (0 where idle).
    instance_mean_sojourn: np.ndarray
    #: Per-instance busy fraction of ``[0, duration)``, clipped to 1.
    instance_utilization: np.ndarray

    @property
    def total_delivered(self) -> int:
        return int(self.delivered.sum())

    @property
    def mean_latency(self) -> float:
        """Mean end-to-end latency over every counted delivery."""
        done = self.total_delivered
        return float(self.latency_sum.sum() / done) if done else float("nan")

    @property
    def throughput(self) -> float:
        """Counted deliveries per simulated second."""
        return (
            self.total_delivered / self.duration if self.duration else 0.0
        )


class _History:
    """Departure frontier of every causal pass, per instance.

    Stores (instance, arrival, running-max departure) of all packets
    already swept, sorted by ``instance * span + arrival`` so one
    global ``searchsorted`` answers "latest backlog this arrival sees
    at its instance" for a whole level at once.
    """

    def __init__(self, span: float) -> None:
        self._span = span
        self._keys = np.empty(0, dtype=np.float64)
        self._inst = np.empty(0, dtype=np.int64)
        self._dep_cummax = np.empty(0, dtype=np.float64)

    def key_of(self, inst: np.ndarray, t: np.ndarray) -> np.ndarray:
        return inst.astype(np.float64) * self._span + t

    def waits(self, inst: np.ndarray, t: np.ndarray) -> np.ndarray:
        """Residual backlog each (instance, time) arrival queues behind."""
        if not self._keys.size:
            return np.zeros(t.shape, dtype=np.float64)
        idx = np.searchsorted(self._keys, self.key_of(inst, t), "right") - 1
        safe = np.maximum(idx, 0)
        valid = (idx >= 0) & (self._inst[safe] == inst)
        return np.where(
            valid, np.clip(self._dep_cummax[safe] - t, 0.0, None), 0.0
        )

    def record(
        self, inst: np.ndarray, t: np.ndarray, dep: np.ndarray
    ) -> None:
        """Merge one swept batch (already (instance, time)-sorted)."""
        keys = np.concatenate([self._keys, self.key_of(inst, t)])
        all_inst = np.concatenate([self._inst, inst])
        all_dep = np.concatenate([self._dep_cummax, dep])
        order = np.argsort(keys, kind="stable")
        self._keys = keys[order]
        self._inst = all_inst[order]
        self._dep_cummax = segmented_maximum_accumulate(
            all_dep[order], self._inst
        )


def simulate_columns(
    arrays: ScenarioArrays,
    sched: ScheduleArrays,
    config: Optional[object] = None,
) -> ScaleSimMetrics:
    """Run one column-native trace simulation over a scheduled scenario.

    ``config`` is a :class:`~repro.sim.simulator.SimulationConfig`
    (``None`` uses its defaults).  Every chain entry must be scheduled;
    packet times are always float64 regardless of the scenario's dtype
    policy (horizon arithmetic needs the precision — only the static
    columns shrink under the lean policy).
    """
    from repro.sim.simulator import SimulationConfig

    cfg = config if config is not None else SimulationConfig()
    horizon = float(cfg.duration)
    num_requests = len(arrays.request_ids)
    num_instances = arrays.num_instances

    slot_inst = arrays.chain_instances(sched)
    if (slot_inst < 0).any():
        entry = int(np.argmax(slot_inst < 0))
        raise SimulationError(
            f"chain entry {entry} has no schedule assignment; "
            "simulate_columns needs a complete schedule"
        )
    chain_ptr = arrays.chain_ptr.astype(np.int64, copy=False)
    chain_len = np.diff(chain_ptr)
    mu_inst = arrays.mu_inst.astype(np.float64, copy=False)
    P_r = arrays.P_r.astype(np.float64, copy=False)
    lam = arrays.lambda_r.astype(np.float64, copy=False)

    root = np.random.SeedSequence(int(cfg.seed))
    arrival_seq, sweep_seq, coin_seq, measure_seq = root.spawn(4)
    arrival_rng = np.random.default_rng(arrival_seq)
    sweep_rng = np.random.default_rng(sweep_seq)
    coin_rng = np.random.default_rng(coin_seq)
    measure_rng = np.random.default_rng(measure_seq)

    # ------------------------------------------------------------------
    # Batched arrivals: Poisson counts, then uniform order statistics.
    # ------------------------------------------------------------------
    counts = arrival_rng.poisson(lam * horizon)
    generated = int(counts.sum())
    pkt_req = np.repeat(
        np.arange(num_requests, dtype=np.int64), counts
    )
    raw = arrival_rng.random(generated) * horizon
    order = np.lexsort((raw, pkt_req))
    created = raw[order]  # sorted within each request's segment
    del raw

    extra_delay = np.zeros(generated, dtype=np.float64)
    delivered = np.zeros(num_requests, dtype=np.int64)
    retransmitted = np.zeros(num_requests, dtype=np.int64)
    latency_sum = np.zeros(num_requests, dtype=np.float64)
    counted_pkts: List[np.ndarray] = []

    history = _History(span=horizon * (1.0 + 1e-9) + 1.0)
    # Measurement-pass records: every (packet, hop, round) visit.
    m_inst: List[np.ndarray] = []
    m_arr: List[np.ndarray] = []
    m_pkt: List[np.ndarray] = []

    # Alive packet state for the current round.
    pkt = np.arange(generated, dtype=np.int64)
    t = created.copy()
    round_index = 0
    while pkt.size:
        if round_index >= MAX_FEEDBACK_ROUNDS:
            raise SimulationError(
                f"feedback did not drain after {MAX_FEEDBACK_ROUNDS} "
                "rounds; check delivery probabilities and load"
            )
        req = pkt_req[pkt]
        lens = chain_len[req]
        max_len = int(lens.max())
        finished_pkt: List[np.ndarray] = []
        finished_t: List[np.ndarray] = []
        for level in range(max_len):
            active = lens > level
            if not active.any():
                break
            a_pkt = pkt[active]
            a_t = t[active]
            a_req = req[active]
            inst = slot_inst[chain_ptr[a_req] + level]
            batch = np.lexsort((a_t, inst))
            b_inst = inst[batch]
            b_t = a_t[batch]
            b_pkt = a_pkt[batch]
            services = sweep_rng.standard_exponential(b_t.size) / mu_inst[
                b_inst
            ]
            waits = history.waits(b_inst, b_t)
            dep = segmented_lindley(b_t + waits, services, b_inst)
            m_inst.append(b_inst)
            m_arr.append(b_t)
            m_pkt.append(b_pkt)
            history.record(b_inst, b_t, dep)
            # Scatter departures back to the round's packet state;
            # completions at or past the horizon go no further.
            dep_unsorted = np.empty_like(dep)
            dep_unsorted[np.flatnonzero(active)[batch]] = dep
            t = np.where(active, dep_unsorted, t)
            done_here = active & (lens == level + 1)
            alive = ~done_here & (~active | (t < horizon))
            ends = done_here & (t < horizon)
            if ends.any():
                finished_pkt.append(pkt[ends])
                finished_t.append(t[ends])
            pkt, t, req, lens = (
                pkt[alive], t[alive], req[alive], lens[alive]
            )
            active = lens > level  # unused; keep shapes consistent

        # ----------------------------------------------------------
        # Delivery coins for every chain that completed this round.
        # ----------------------------------------------------------
        if finished_pkt:
            f_pkt = np.concatenate(finished_pkt)
            f_t = np.concatenate(finished_t)
        else:
            f_pkt = np.empty(0, dtype=np.int64)
            f_t = np.empty(0, dtype=np.float64)
        if f_pkt.size:
            f_req = pkt_req[f_pkt]
            ok = coin_rng.random(f_pkt.size) < P_r[f_req]
            measured = created[f_pkt] >= cfg.warmup
            counted = ok & measured
            delivered += np.bincount(
                f_req[counted], minlength=num_requests
            )
            latency_chunk = f_pkt[counted]
            counted_pkts.append(latency_chunk)
            failed = ~ok
            if round_index == 0:
                retransmitted += np.bincount(
                    f_req[failed & measured], minlength=num_requests
                )
            retry_t = f_t[failed] + cfg.nack_delay
            retry_pkt = f_pkt[failed]
            keep = retry_t < horizon
            retry_t, retry_pkt = retry_t[keep], retry_pkt[keep]
            if cfg.nack_delay > 0.0 and retry_pkt.size:
                extra_delay[retry_pkt] += cfg.nack_delay
            pkt = np.concatenate([pkt, retry_pkt])
            t = np.concatenate([t, retry_t])
        round_index += 1

    # ------------------------------------------------------------------
    # Measurement sweep: one merged full-load pass per instance.
    # ------------------------------------------------------------------
    sojourn_sums = np.zeros(generated, dtype=np.float64)
    inst_arrivals = np.zeros(num_instances, dtype=np.int64)
    inst_departures = np.zeros(num_instances, dtype=np.int64)
    inst_sojourn = np.zeros(num_instances, dtype=np.float64)
    inst_busy = np.zeros(num_instances, dtype=np.float64)
    if m_inst:
        all_inst = np.concatenate(m_inst)
        all_arr = np.concatenate(m_arr)
        all_pkt = np.concatenate(m_pkt)
        order = np.lexsort((all_arr, all_inst))
        all_inst = all_inst[order]
        all_arr = all_arr[order]
        all_pkt = all_pkt[order]
        services = measure_rng.standard_exponential(
            all_arr.size
        ) / mu_inst[all_inst]
        dep = segmented_lindley(all_arr, services, all_inst)
        sojourns = dep - all_arr
        sojourn_sums = np.bincount(
            all_pkt, weights=sojourns, minlength=generated
        )
        inst_arrivals = np.bincount(all_inst, minlength=num_instances)
        done = dep < horizon
        inst_departures = np.bincount(
            all_inst[done], minlength=num_instances
        )
        inst_sojourn = np.bincount(
            all_inst[done], weights=sojourns[done], minlength=num_instances
        )
        with np.errstate(invalid="ignore"):
            inst_sojourn = np.where(
                inst_departures > 0,
                inst_sojourn / np.maximum(inst_departures, 1),
                0.0,
            )
        overlap = np.clip(np.minimum(dep, horizon) - (dep - services), 0.0, None)
        inst_busy = np.bincount(
            all_inst, weights=overlap, minlength=num_instances
        )
    utilization = (
        np.minimum(1.0, inst_busy / horizon)
        if horizon > 0.0
        else np.zeros(num_instances)
    )

    # End-to-end latency of counted deliveries, summed per request.
    if counted_pkts:
        c_pkt = np.concatenate(counted_pkts)
        latency_sum = np.bincount(
            pkt_req[c_pkt],
            weights=sojourn_sums[c_pkt] + extra_delay[c_pkt],
            minlength=num_requests,
        )

    return ScaleSimMetrics(
        duration=horizon,
        generated=generated,
        delivered=delivered,
        retransmitted=retransmitted,
        latency_sum=latency_sum,
        instance_arrivals=inst_arrivals,
        instance_departures=inst_departures,
        instance_mean_sojourn=inst_sojourn,
        instance_utilization=utilization,
    )
