"""The simulation clock and dispatch loop."""

from __future__ import annotations

from typing import Callable, Optional

from repro.exceptions import SimulationError
from repro.sim.events import EventQueue


class SimulationEngine:
    """Advances simulated time by dispatching events in order.

    Components schedule callbacks with :meth:`schedule` (absolute time)
    or :meth:`schedule_in` (relative delay); :meth:`run` dispatches until
    the horizon or until the queue drains.
    """

    def __init__(self) -> None:
        self._queue = EventQueue()
        self._now = 0.0
        self._running = False
        self._dispatched = 0

    @property
    def now(self) -> float:
        """Current simulated time (seconds)."""
        return self._now

    @property
    def events_dispatched(self) -> int:
        """Total events dispatched so far."""
        return self._dispatched

    def schedule(self, time: float, action: Callable[[], None]) -> None:
        """Schedule ``action`` at absolute time ``time`` (>= now).

        Times a hair before ``now`` are clamped to ``now`` rather than
        rejected, with a slack *relative* to the clock: float arithmetic
        on long horizons (``now >> 1``) loses absolute precision, so an
        absolute epsilon would misclassify rounding noise as genuine
        past-scheduling (or vice versa) once ``now`` is large.
        """
        tolerance = 1e-12 * max(1.0, abs(self._now))
        if time < self._now - tolerance:
            raise SimulationError(
                f"cannot schedule into the past: {time:.6g} < now={self._now:.6g}"
            )
        self._queue.push(max(time, self._now), action)

    def schedule_in(self, delay: float, action: Callable[[], None]) -> None:
        """Schedule ``action`` after ``delay`` seconds."""
        if delay < 0.0:
            raise SimulationError(f"delay must be non-negative, got {delay!r}")
        self._queue.push(self._now + delay, action)

    def run(self, until: Optional[float] = None) -> float:
        """Dispatch events in order until ``until`` (or queue exhaustion).

        Returns the final simulated time.  Events scheduled exactly at
        the horizon are not dispatched (half-open interval).
        """
        if self._running:
            raise SimulationError("engine is already running (reentrant run)")
        self._running = True
        try:
            while self._queue:
                next_time = self._queue.peek_time()
                if until is not None and next_time is not None and next_time >= until:
                    break
                event = self._queue.pop()
                self._now = event.time
                self._dispatched += 1
                event.action()
            if until is not None:
                self._now = max(self._now, until)
        finally:
            self._running = False
        return self._now
