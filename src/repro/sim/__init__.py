"""Packet-level discrete-event simulation of VNF chains.

The paper's evaluation is simulation-driven; this package provides an
independent packet-level simulator whose measured statistics converge to
the :mod:`repro.queueing` closed forms — the model-validation ablation of
DESIGN.md (abl-jackson):

* :mod:`repro.sim.events` — the event queue.
* :mod:`repro.sim.engine` — the simulation clock/dispatcher.
* :mod:`repro.sim.entities` — FCFS exponential servers (service
  instances) and Poisson packet sources.
* :mod:`repro.sim.simulator` — :class:`ChainSimulator`: requests flow
  through their chains' scheduled instances, with end-to-end loss and
  NACK retransmission feedback.
* :mod:`repro.sim.kernels` — array-native FCFS kernels (the Lindley
  recurrence) shared by the trace backend and the sensitivity sweeps.
* :mod:`repro.sim.trace` — the trace-driven backend: pre-sampled
  arrival/service arrays replayed per chain hop and feedback round
  (``ChainSimulator(..., backend="trace")``); see docs/SIM_BACKENDS.md.
* :mod:`repro.sim.metrics` — measurement collectors (per-instance
  sojourn, utilization; per-request end-to-end latency).
"""

from repro.sim.engine import SimulationEngine
from repro.sim.events import Event, EventQueue
from repro.sim.kernels import fcfs_sojourn_times, lindley_departure_times
from repro.sim.metrics import InstanceStats, SimulationMetrics
from repro.sim.simulator import BACKENDS, ChainSimulator, SimulationConfig
from repro.sim.trace import run_trace_simulation

__all__ = [
    "Event",
    "EventQueue",
    "SimulationEngine",
    "BACKENDS",
    "ChainSimulator",
    "SimulationConfig",
    "SimulationMetrics",
    "InstanceStats",
    "fcfs_sojourn_times",
    "lindley_departure_times",
    "run_trace_simulation",
]
