"""Packet-level discrete-event simulation of VNF chains.

The paper's evaluation is simulation-driven; this package provides an
independent packet-level simulator whose measured statistics converge to
the :mod:`repro.queueing` closed forms — the model-validation ablation of
DESIGN.md (abl-jackson):

* :mod:`repro.sim.events` — the event queue.
* :mod:`repro.sim.engine` — the simulation clock/dispatcher.
* :mod:`repro.sim.entities` — FCFS exponential servers (service
  instances) and Poisson packet sources.
* :mod:`repro.sim.simulator` — :class:`ChainSimulator`: requests flow
  through their chains' scheduled instances, with end-to-end loss and
  NACK retransmission feedback.
* :mod:`repro.sim.metrics` — measurement collectors (per-instance
  sojourn, utilization; per-request end-to-end latency).
"""

from repro.sim.engine import SimulationEngine
from repro.sim.events import Event, EventQueue
from repro.sim.metrics import InstanceStats, SimulationMetrics
from repro.sim.simulator import ChainSimulator, SimulationConfig

__all__ = [
    "Event",
    "EventQueue",
    "SimulationEngine",
    "ChainSimulator",
    "SimulationConfig",
    "SimulationMetrics",
    "InstanceStats",
]
