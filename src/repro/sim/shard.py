"""Instance-group sharding for the column-native trace simulator.

:func:`repro.sim.scale.simulate_columns` sweeps each (round, hop
level) batch with one segmented Lindley pass per instance segment.
Those segments are independent across instances *within* a level, and
the cross-level departure frontier (:class:`_History`) is keyed per
instance — so the whole causal sweep decomposes over any fixed
partition of the instances.  This module owns that decomposition:

* :class:`ScaleShardPlan` — a deterministic instance -> shard map,
  built once from the scenario + schedule and **independent of the
  worker count** (the same plan drives ``jobs=1`` and ``jobs=N``);
* :class:`_ShardSim` — one shard's private sweep state: its own
  departure-frontier history, visit log, and causal/measurement RNG
  streams;
* the executors — a serial loop and a process pool whose workers
  attach the scenario via :func:`repro.experiments.shm.publish_arrays`
  / ``attach_arrays`` snapshots and exchange per-level batches through
  one shared-memory scratch block (no column pickling);
* :func:`merge_shard_measurements` — the deterministic reduction of
  per-shard statistics back into whole-run columns.

Determinism contract
--------------------
``simulate_columns(jobs=N)`` is byte-identical to ``jobs=1`` for the
same seed at any ``N`` because every float is produced and reduced
identically on both paths:

1. the shard plan and the per-shard ``SeedSequence`` sub-streams are
   functions of (scenario, schedule, seed) only;
2. each level batch is stably partitioned by shard id *before* the
   executor sees it, so every shard receives the same sub-batch in the
   same order on both paths;
3. each shard's services come from its own generator, consumed in the
   shard's own (level, sorted-batch) order;
4. per-packet sojourn sums — the only statistic whose support spans
   shards — are reduced in ascending shard-id order, fixing the float
   addition order (per-instance statistics have disjoint support, so
   their merge order cannot matter).

Serial fallback
---------------
The process executor is used only when ``jobs >= 2``, the plan has at
least two shards, and there is at least one packet to simulate.  When
worker processes cannot start (no POSIX shared memory, seccomp
sandboxes, a worker dying before its ready handshake) the engine
degrades to the serial executor, which computes the identical result.
Workers are spawn-safe: the worker entry point is a module-level
function and every payload (handle, seed sequences, scratch name)
pickles under any multiprocessing start method.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, NamedTuple, Optional, Sequence, Tuple

import numpy as np

from repro.core.arrays import ScenarioArrays, ScheduleArrays
from repro.exceptions import SimulationError, ValidationError
from repro.sim.kernels import segmented_lindley, segmented_maximum_accumulate

__all__ = [
    "DEFAULT_NUM_SHARDS",
    "ScaleShardPlan",
    "merge_shard_measurements",
    "open_shard_executor",
    "partition_by_shard",
]

#: Shards per plan before clamping to the instance count.  Fixed (not
#: CPU-derived) so the plan — and therefore the RNG stream layout and
#: every simulated float — is a function of the scenario alone.
DEFAULT_NUM_SHARDS = 16

#: Bytes per packet slot in the scratch block: pkt i8 + inst i8 +
#: arrival f8 + departure f8.
_SCRATCH_BYTES_PER_SLOT = 32


@dataclass(frozen=True)
class ScaleShardPlan:
    """Deterministic partition of the service instances into shards.

    ``shard_of_inst[i]`` is the shard owning instance ``i``.  The plan
    is hop-level-consistent by construction — an instance belongs to
    one shard at every chain position — which is what lets each shard
    keep a private departure-frontier history across rounds.
    """

    num_shards: int
    shard_of_inst: np.ndarray

    def __post_init__(self) -> None:
        if self.num_shards < 1:
            raise ValidationError(
                f"num_shards must be >= 1, got {self.num_shards!r}"
            )

    @classmethod
    def build(
        cls,
        arrays: ScenarioArrays,
        sched: ScheduleArrays,
        num_shards: Optional[int] = None,
    ) -> "ScaleShardPlan":
        """Balance instances over shards by scheduled offered rate.

        Instances are ranked by the total effective rate of their
        scheduled requests (the packet-volume proxy for sweep work)
        and dealt snake-wise over the shards, so heavy and light
        instances spread evenly.  Ties break on instance id; the
        result depends only on (scenario, schedule, ``num_shards``).
        """
        num_instances = int(arrays.num_instances)
        shards = DEFAULT_NUM_SHARDS if num_shards is None else int(num_shards)
        shards = max(1, min(shards, max(num_instances, 1)))
        weights = np.bincount(
            np.asarray(sched.inst, dtype=np.int64),
            weights=np.asarray(arrays.eff_rate, dtype=np.float64)[sched.req],
            minlength=num_instances,
        )
        order = np.lexsort(
            (np.arange(num_instances, dtype=np.int64), -weights)
        )
        ranks = np.arange(num_instances, dtype=np.int64)
        pos = ranks % shards
        snake = np.where((ranks // shards) % 2 == 0, pos, shards - 1 - pos)
        shard_of_inst = np.empty(num_instances, dtype=np.int64)
        shard_of_inst[order] = snake
        return cls(num_shards=shards, shard_of_inst=shard_of_inst)


def partition_by_shard(
    shard_ids: np.ndarray, num_shards: int
) -> Tuple[np.ndarray, np.ndarray]:
    """Stable partition of one level batch by shard id.

    Returns ``(order, bounds)``: ``order`` permutes the batch so shard
    ``s`` occupies ``[bounds[s], bounds[s + 1])``, preserving the
    relative order of entries within each shard.  Both executors
    receive the batch through this exact permutation, which is one of
    the byte-identity legs of the determinism contract.
    """
    if num_shards == 1:
        return (
            np.arange(shard_ids.size, dtype=np.int64),
            np.asarray([0, shard_ids.size], dtype=np.int64),
        )
    order = np.argsort(shard_ids, kind="stable")
    bounds = np.searchsorted(
        shard_ids[order], np.arange(num_shards + 1, dtype=np.int64)
    )
    return order, bounds


class _History:
    """Departure frontier of every causal pass, per instance.

    Stores (instance, arrival, running-max departure) of all packets
    already swept, sorted by ``instance * span + arrival`` so one
    global ``searchsorted`` answers "latest backlog this arrival sees
    at its instance" for a whole level at once.  Under sharding each
    shard keeps its own history — instances never cross shards, so the
    per-shard frontiers partition the global one exactly.
    """

    def __init__(self, span: float) -> None:
        self._span = span
        self._keys = np.empty(0, dtype=np.float64)
        self._inst = np.empty(0, dtype=np.int64)
        self._dep_cummax = np.empty(0, dtype=np.float64)

    def key_of(self, inst: np.ndarray, t: np.ndarray) -> np.ndarray:
        return inst.astype(np.float64) * self._span + t

    def waits(self, inst: np.ndarray, t: np.ndarray) -> np.ndarray:
        """Residual backlog each (instance, time) arrival queues behind."""
        if not self._keys.size:
            return np.zeros(t.shape, dtype=np.float64)
        idx = np.searchsorted(self._keys, self.key_of(inst, t), "right") - 1
        safe = np.maximum(idx, 0)
        valid = (idx >= 0) & (self._inst[safe] == inst)
        return np.where(
            valid, np.clip(self._dep_cummax[safe] - t, 0.0, None), 0.0
        )

    def record(
        self, inst: np.ndarray, t: np.ndarray, dep: np.ndarray
    ) -> None:
        """Merge one swept batch (already (instance, time)-sorted)."""
        keys = np.concatenate([self._keys, self.key_of(inst, t)])
        all_inst = np.concatenate([self._inst, inst])
        all_dep = np.concatenate([self._dep_cummax, dep])
        order = np.argsort(keys, kind="stable")
        self._keys = keys[order]
        self._inst = all_inst[order]
        self._dep_cummax = segmented_maximum_accumulate(
            all_dep[order], self._inst
        )


class _ShardMeasure(NamedTuple):
    """One shard's measurement-sweep sums, ready for the merge.

    Per-packet sojourn sums travel compressed (``pkt_idx`` is the
    sorted unique packet ids this shard's instances served); the
    per-instance columns are full length but zero outside the shard's
    instance set.
    """

    pkt_idx: np.ndarray
    pkt_sums: np.ndarray
    arrivals: np.ndarray
    departures: np.ndarray
    sojourn_done: np.ndarray
    busy: np.ndarray


class _ShardSim:
    """One shard's private causal-sweep and measurement state."""

    def __init__(
        self,
        mu_inst: np.ndarray,
        horizon: float,
        sweep_seq: np.random.SeedSequence,
        measure_seq: np.random.SeedSequence,
    ) -> None:
        self._mu = mu_inst
        self._horizon = horizon
        self._sweep_rng = np.random.default_rng(sweep_seq)
        self._measure_rng = np.random.default_rng(measure_seq)
        self._history = _History(span=horizon * (1.0 + 1e-9) + 1.0)
        self._m_inst: List[np.ndarray] = []
        self._m_arr: List[np.ndarray] = []
        self._m_pkt: List[np.ndarray] = []

    def sweep(
        self, pkt: np.ndarray, inst: np.ndarray, t: np.ndarray
    ) -> np.ndarray:
        """Sweep one level sub-batch; departures in input order."""
        order = np.lexsort((t, inst))
        b_inst = inst[order]
        b_t = t[order]
        services = self._sweep_rng.standard_exponential(
            b_t.size
        ) / self._mu[b_inst]
        waits = self._history.waits(b_inst, b_t)
        dep = segmented_lindley(b_t + waits, services, b_inst)
        self._m_inst.append(b_inst)
        self._m_arr.append(b_t)
        self._m_pkt.append(pkt[order])
        self._history.record(b_inst, b_t, dep)
        out = np.empty_like(dep)
        out[order] = dep
        return out

    def measure(self, num_instances: int, generated: int) -> _ShardMeasure:
        """Full-load measurement pass over this shard's visit log."""
        if not self._m_inst:
            return _ShardMeasure(
                pkt_idx=np.empty(0, dtype=np.int64),
                pkt_sums=np.empty(0, dtype=np.float64),
                arrivals=np.zeros(num_instances, dtype=np.int64),
                departures=np.zeros(num_instances, dtype=np.int64),
                sojourn_done=np.zeros(num_instances, dtype=np.float64),
                busy=np.zeros(num_instances, dtype=np.float64),
            )
        all_inst = np.concatenate(self._m_inst)
        all_arr = np.concatenate(self._m_arr)
        all_pkt = np.concatenate(self._m_pkt)
        order = np.lexsort((all_arr, all_inst))
        all_inst = all_inst[order]
        all_arr = all_arr[order]
        all_pkt = all_pkt[order]
        services = self._measure_rng.standard_exponential(
            all_arr.size
        ) / self._mu[all_inst]
        dep = segmented_lindley(all_arr, services, all_inst)
        sojourns = dep - all_arr
        pkt_full = np.bincount(
            all_pkt, weights=sojourns, minlength=generated
        )
        pkt_idx = np.flatnonzero(pkt_full)
        arrivals = np.bincount(all_inst, minlength=num_instances)
        done = dep < self._horizon
        departures = np.bincount(all_inst[done], minlength=num_instances)
        sojourn_done = np.bincount(
            all_inst[done], weights=sojourns[done], minlength=num_instances
        )
        overlap = np.clip(
            np.minimum(dep, self._horizon) - (dep - services), 0.0, None
        )
        busy = np.bincount(
            all_inst, weights=overlap, minlength=num_instances
        )
        return _ShardMeasure(
            pkt_idx=pkt_idx,
            pkt_sums=pkt_full[pkt_idx],
            arrivals=arrivals,
            departures=departures,
            sojourn_done=sojourn_done,
            busy=busy,
        )


def merge_shard_measurements(
    tagged: Iterable[Tuple[int, _ShardMeasure]],
    generated: int,
    num_instances: int,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Reduce per-shard measurement sums into whole-run columns.

    ``tagged`` is ``(shard_id, measure)`` pairs in **any** order — the
    reduction sorts by shard id first, so the float addition order of
    the cross-shard per-packet sojourn sums is fixed regardless of
    which worker answered first (the merge-order invariance the
    Hypothesis suite pins).  Returns ``(sojourn_sums, arrivals,
    departures, sojourn_done, busy)``.
    """
    sojourn_sums = np.zeros(generated, dtype=np.float64)
    arrivals = np.zeros(num_instances, dtype=np.int64)
    departures = np.zeros(num_instances, dtype=np.int64)
    sojourn_done = np.zeros(num_instances, dtype=np.float64)
    busy = np.zeros(num_instances, dtype=np.float64)
    for _, m in sorted(tagged, key=lambda kv: kv[0]):
        sojourn_sums[m.pkt_idx] += m.pkt_sums
        arrivals += m.arrivals
        departures += m.departures
        sojourn_done += m.sojourn_done
        busy += m.busy
    return sojourn_sums, arrivals, departures, sojourn_done, busy


# ----------------------------------------------------------------------
# Executors
# ----------------------------------------------------------------------


class _ScratchLanes(NamedTuple):
    pkt: np.ndarray
    inst: np.ndarray
    t: np.ndarray
    dep: np.ndarray


def _scratch_lanes(block, capacity: int) -> _ScratchLanes:
    """The four per-packet lanes of one scratch block, as views."""
    i8, f8 = np.dtype(np.int64), np.dtype(np.float64)
    return _ScratchLanes(
        pkt=np.ndarray(capacity, dtype=i8, buffer=block.buf, offset=0),
        inst=np.ndarray(
            capacity, dtype=i8, buffer=block.buf, offset=8 * capacity
        ),
        t=np.ndarray(
            capacity, dtype=f8, buffer=block.buf, offset=16 * capacity
        ),
        dep=np.ndarray(
            capacity, dtype=f8, buffer=block.buf, offset=24 * capacity
        ),
    )


class _SerialShardExecutor:
    """In-process executor: the reference semantics of the sharded sweep."""

    def __init__(
        self,
        arrays: ScenarioArrays,
        plan: ScaleShardPlan,
        horizon: float,
        sweep_seqs: Sequence[np.random.SeedSequence],
        measure_seqs: Sequence[np.random.SeedSequence],
        generated: int,
    ) -> None:
        mu = arrays.mu_inst.astype(np.float64, copy=False)
        self._num_instances = int(arrays.num_instances)
        self._generated = int(generated)
        self._sims = [
            _ShardSim(mu, horizon, sweep_seqs[s], measure_seqs[s])
            for s in range(plan.num_shards)
        ]

    def sweep(
        self,
        pkt: np.ndarray,
        inst: np.ndarray,
        t: np.ndarray,
        bounds: np.ndarray,
    ) -> np.ndarray:
        dep = np.empty(t.size, dtype=np.float64)
        for s, sim in enumerate(self._sims):
            lo, hi = int(bounds[s]), int(bounds[s + 1])
            if lo == hi:
                continue
            dep[lo:hi] = sim.sweep(pkt[lo:hi], inst[lo:hi], t[lo:hi])
        return dep

    def measure(self) -> List[Tuple[int, _ShardMeasure]]:
        return [
            (s, sim.measure(self._num_instances, self._generated))
            for s, sim in enumerate(self._sims)
        ]

    def close(self) -> None:
        pass


class _WorkerStartupError(RuntimeError):
    """A shard worker died before its ready handshake."""


def _shard_worker(
    conn,
    handle,
    owned: List[Tuple[int, np.random.SeedSequence, np.random.SeedSequence]],
    scratch_name: str,
    capacity: int,
    horizon: float,
) -> None:
    """Entry point of one shard worker process (spawn-safe).

    Attaches the published scenario and the scratch block, builds the
    owned :class:`_ShardSim` instances, then serves ``sweep`` /
    ``measure`` requests until ``close``.  Any exception is reported
    back over the pipe instead of dying silently.
    """
    block = None
    try:
        from multiprocessing import shared_memory

        from repro.experiments.shm import attach_arrays

        arrays = attach_arrays(handle)
        mu = arrays.mu_inst.astype(np.float64, copy=False)
        num_instances = int(arrays.num_instances)
        # Attaching re-registers the block with the resource tracker;
        # workers are direct children sharing the master's tracker, so
        # the re-registration is idempotent and the master's unlink
        # balances it — unregistering here would double-remove.
        block = shared_memory.SharedMemory(name=scratch_name)
        lanes = _scratch_lanes(block, capacity)
        sims = {
            sid: _ShardSim(mu, horizon, sweep_seq, measure_seq)
            for sid, sweep_seq, measure_seq in owned
        }
        conn.send(("ready",))
        while True:
            msg = conn.recv()
            op = msg[0]
            if op == "sweep":
                for sid, lo, hi in msg[1]:
                    lanes.dep[lo:hi] = sims[sid].sweep(
                        lanes.pkt[lo:hi], lanes.inst[lo:hi], lanes.t[lo:hi]
                    )
                conn.send(("ok",))
            elif op == "measure":
                conn.send(
                    (
                        "measure",
                        [
                            (sid, sims[sid].measure(num_instances, capacity))
                            for sid in sorted(sims)
                        ],
                    )
                )
            elif op == "close":
                break
            else:  # pragma: no cover - protocol misuse
                raise SimulationError(f"unknown shard op {op!r}")
    except (EOFError, BrokenPipeError, KeyboardInterrupt):
        pass
    except Exception:  # pragma: no cover - exercised via dead-worker paths
        import traceback

        try:
            conn.send(("error", traceback.format_exc()))
        except Exception:
            pass
    finally:
        try:
            if block is not None:
                block.close()
        except Exception:
            pass
        try:
            conn.close()
        except Exception:
            pass


class _ProcessShardExecutor:
    """Worker-pool executor: shards served by long-lived processes.

    Worker ``w`` owns shards ``s`` with ``s % workers == w``.  Level
    batches travel through one shared-memory scratch block (four lanes:
    packet id, instance, arrival, departure) — per level the master
    writes the partitioned batch once, sends each worker its shard
    segment offsets, and reads the departure lane back after the acks.
    The scenario itself is attached zero-copy from a
    :func:`~repro.experiments.shm.publish_arrays` snapshot.
    """

    def __init__(
        self,
        arrays: ScenarioArrays,
        plan: ScaleShardPlan,
        horizon: float,
        sweep_seqs: Sequence[np.random.SeedSequence],
        measure_seqs: Sequence[np.random.SeedSequence],
        generated: int,
        workers: int,
        start_method: Optional[str] = None,
    ) -> None:
        import multiprocessing
        from multiprocessing import shared_memory

        from repro.experiments.shm import publish_arrays

        self._procs: List[object] = []
        self._conns: List[object] = []
        self._scratch = None
        self._handle = None
        self._capacity = int(generated)
        self._num_shards = plan.num_shards
        self._workers = workers
        try:
            ctx = multiprocessing.get_context(start_method)
            self._handle = publish_arrays(arrays)
            self._scratch = shared_memory.SharedMemory(
                create=True,
                size=max(_SCRATCH_BYTES_PER_SLOT * self._capacity, 1),
            )
            self._lanes = _scratch_lanes(self._scratch, self._capacity)
            for w in range(workers):
                owned = [
                    (s, sweep_seqs[s], measure_seqs[s])
                    for s in range(plan.num_shards)
                    if s % workers == w
                ]
                parent, child = ctx.Pipe()
                proc = ctx.Process(
                    target=_shard_worker,
                    args=(
                        child,
                        self._handle,
                        owned,
                        self._scratch.name,
                        self._capacity,
                        horizon,
                    ),
                    daemon=True,
                )
                proc.start()
                child.close()
                self._procs.append(proc)
                self._conns.append(parent)
            for conn in self._conns:
                try:
                    msg = conn.recv()
                except EOFError as exc:
                    raise _WorkerStartupError(
                        "shard worker exited before ready"
                    ) from exc
                if msg[0] != "ready":
                    raise _WorkerStartupError(
                        msg[1] if len(msg) > 1 else "worker startup failed"
                    )
        except Exception:
            self.close()
            raise

    def _recv(self, conn):
        try:
            msg = conn.recv()
        except EOFError as exc:
            raise SimulationError(
                "scale shard worker died mid-run (killed or crashed); "
                "re-run with jobs=1 for the serial path"
            ) from exc
        if msg[0] == "error":
            raise SimulationError(f"scale shard worker failed:\n{msg[1]}")
        return msg

    def sweep(
        self,
        pkt: np.ndarray,
        inst: np.ndarray,
        t: np.ndarray,
        bounds: np.ndarray,
    ) -> np.ndarray:
        n = t.size
        if n > self._capacity:  # pragma: no cover - defensive
            raise SimulationError(
                f"level batch of {n} exceeds scratch capacity "
                f"{self._capacity}"
            )
        self._lanes.pkt[:n] = pkt
        self._lanes.inst[:n] = inst
        self._lanes.t[:n] = t
        busy = []
        for w, conn in enumerate(self._conns):
            segs = [
                (s, int(bounds[s]), int(bounds[s + 1]))
                for s in range(w, self._num_shards, self._workers)
                if bounds[s] != bounds[s + 1]
            ]
            if segs:
                conn.send(("sweep", segs))
                busy.append(conn)
        for conn in busy:
            self._recv(conn)
        return self._lanes.dep[:n].copy()

    def measure(self) -> List[Tuple[int, _ShardMeasure]]:
        for conn in self._conns:
            conn.send(("measure",))
        tagged: List[Tuple[int, _ShardMeasure]] = []
        for conn in self._conns:
            tagged.extend(self._recv(conn)[1])
        return tagged

    def close(self) -> None:
        from repro.experiments.shm import unpublish_arrays

        for conn in self._conns:
            try:
                conn.send(("close",))
            except Exception:
                pass
        for proc in self._procs:
            proc.join(timeout=10)
        for proc in self._procs:
            if proc.is_alive():  # pragma: no cover - hung worker
                proc.terminate()
                proc.join(timeout=1)
        for conn in self._conns:
            try:
                conn.close()
            except Exception:
                pass
        self._procs, self._conns = [], []
        self._lanes = None
        if self._scratch is not None:
            try:
                self._scratch.close()
                self._scratch.unlink()
            except Exception:
                pass
            self._scratch = None
        if self._handle is not None:
            unpublish_arrays(self._handle)
            self._handle = None


def open_shard_executor(
    arrays: ScenarioArrays,
    plan: ScaleShardPlan,
    horizon: float,
    sweep_seqs: Sequence[np.random.SeedSequence],
    measure_seqs: Sequence[np.random.SeedSequence],
    generated: int,
    jobs: Optional[int] = None,
    start_method: Optional[str] = None,
):
    """Build the executor for one run; pair with ``.close()``.

    ``jobs`` of ``None``/``1`` runs serially; ``0`` auto-detects CPUs
    (:func:`repro.experiments.montecarlo.resolve_jobs`); ``N >= 2``
    starts ``min(N, num_shards)`` workers.  Single-shard plans, empty
    runs and platforms where workers cannot start all fall back to the
    serial executor, which computes the identical result.
    """
    from repro.experiments.montecarlo import resolve_jobs

    workers = 1 if jobs is None else resolve_jobs(jobs)
    workers = min(workers, plan.num_shards)
    if workers > 1 and generated > 0:
        try:
            return _ProcessShardExecutor(
                arrays,
                plan,
                horizon,
                sweep_seqs,
                measure_seqs,
                generated,
                workers,
                start_method,
            )
        except (
            OSError,
            ValueError,
            PermissionError,
            ImportError,
            _WorkerStartupError,
        ):
            pass
    return _SerialShardExecutor(
        arrays, plan, horizon, sweep_seqs, measure_seqs, generated
    )
