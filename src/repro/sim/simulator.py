"""The NFV chain simulator.

Drives packets of every request through the service instances their
schedule assigns, hop by hop along the request's chain, with end-to-end
loss and NACK retransmission:

* Each request is a Poisson source of rate ``lambda_r``.
* Each (VNF, instance) pair is an FCFS exponential server shared by all
  requests scheduled onto it.
* When a packet finishes its last hop, it is delivered correctly with
  probability ``P_r``; otherwise it re-enters the chain head after the
  NACK round trip (``nack_delay``, 0 by default to match the analytic
  model, which treats feedback as instantaneous).

Measured statistics (per-instance sojourn and utilization, per-request
end-to-end latency) converge to the open-Jackson closed forms as the run
lengthens — the validation tests assert exactly this.

Two interchangeable backends produce those statistics:

* ``backend="events"`` (default) — the per-packet event loop below, the
  reference implementation.
* ``backend="trace"`` — :mod:`repro.sim.trace`, an array-native
  replay over pre-sampled arrival/service traces (Lindley kernels)
  that iterates over chain hops and feedback rounds, never packets.
  Orders of magnitude faster at scale; agrees with the event backend
  in distribution (see docs/SIM_BACKENDS.md for the parity contract).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.exceptions import ValidationError
from repro.nfv.request import Request
from repro.nfv.vnf import VNF
from repro.sim.engine import SimulationEngine
from repro.sim.entities import PoissonSource, SimPacket, SimServer
from repro.sim.metrics import InstanceStats, SimulationMetrics


@dataclass(frozen=True)
class SimulationConfig:
    """Run-control parameters for :class:`ChainSimulator`."""

    #: Simulated horizon in seconds.
    duration: float = 100.0
    #: Measurements before this time are discarded (transient removal).
    warmup: float = 10.0
    #: Extra delay a NACKed packet waits before retransmission.
    nack_delay: float = 0.0
    #: RNG seed.
    seed: int = 0

    def __post_init__(self) -> None:
        if self.duration <= 0.0:
            raise ValidationError(
                f"duration must be positive, got {self.duration!r}"
            )
        if not 0.0 <= self.warmup < self.duration:
            raise ValidationError(
                f"warmup must be in [0, duration), got {self.warmup!r}"
            )
        if self.nack_delay < 0.0:
            raise ValidationError(
                f"nack delay must be non-negative, got {self.nack_delay!r}"
            )


#: Valid ``ChainSimulator`` backends.
BACKENDS = ("events", "trace")


class ChainSimulator:
    """Packet-level simulation of scheduled VNF chains.

    Parameters
    ----------
    vnfs:
        The VNFs; each contributes ``M_f`` servers of rate ``mu_f``.
    requests:
        The requests; each is a Poisson source over its chain.
    schedule:
        ``(request_id, vnf_name) -> instance index`` covering every
        (request, chain VNF) pair — the ``z`` variables.
    config:
        Run-control parameters.
    backend:
        ``"events"`` for the per-packet event loop (the reference
        implementation) or ``"trace"`` for the array-native Lindley
        replay of :mod:`repro.sim.trace`.
    """

    def __init__(
        self,
        vnfs: Sequence[VNF],
        requests: Sequence[Request],
        schedule: Mapping[Tuple[str, str], int],
        config: Optional[SimulationConfig] = None,
        backend: str = "events",
    ) -> None:
        if backend not in BACKENDS:
            raise ValidationError(
                f"unknown simulation backend {backend!r}; valid: {BACKENDS}"
            )
        self._vnfs = {f.name: f for f in vnfs}
        self._requests = {r.request_id: r for r in requests}
        self._schedule = dict(schedule)
        self._config = config if config is not None else SimulationConfig()
        self._backend = backend
        self._validate()

    def _validate(self) -> None:
        for request in self._requests.values():
            for vnf_name in request.chain:
                if vnf_name not in self._vnfs:
                    raise ValidationError(
                        f"request {request.request_id!r} uses unknown VNF "
                        f"{vnf_name!r}"
                    )
                key = (request.request_id, vnf_name)
                if key not in self._schedule:
                    raise ValidationError(
                        f"schedule missing instance for request "
                        f"{request.request_id!r} on VNF {vnf_name!r}"
                    )
                k = self._schedule[key]
                vnf = self._vnfs[vnf_name]
                if not 0 <= k < vnf.num_instances:
                    raise ValidationError(
                        f"instance index {k} out of range for VNF {vnf_name!r}"
                    )

    # ------------------------------------------------------------------
    # Run
    # ------------------------------------------------------------------
    def run(self) -> SimulationMetrics:
        """Execute one simulation run and return measured statistics."""
        if self._backend == "trace":
            # Imported lazily: trace.py itself imports SimulationConfig
            # from this module.
            from repro.sim.trace import run_trace_simulation

            return run_trace_simulation(
                list(self._vnfs.values()),
                list(self._requests.values()),
                self._schedule,
                self._config,
            )
        cfg = self._config
        engine = SimulationEngine()
        rng = np.random.default_rng(cfg.seed)

        servers: Dict[Tuple[str, int], SimServer] = {}
        delivered: Dict[str, int] = {rid: 0 for rid in self._requests}
        end_to_end: Dict[str, List[float]] = {rid: [] for rid in self._requests}
        retransmitted: Dict[str, int] = {rid: 0 for rid in self._requests}

        def route_packet(packet: SimPacket, _sojourn: float) -> None:
            request = self._requests[packet.request_id]
            packet.hop += 1
            if packet.hop < len(request.chain):
                next_vnf = request.chain.vnf_names[packet.hop]
                k = self._schedule[(packet.request_id, next_vnf)]
                servers[(next_vnf, k)].enqueue(packet)
                return
            # Last hop done: deliver or NACK + retransmit.
            if rng.uniform() < request.delivery_probability:
                if packet.created_at >= cfg.warmup:
                    delivered[packet.request_id] += 1
                    end_to_end[packet.request_id].append(
                        engine.now - packet.created_at
                    )
                return
            packet.attempts += 1
            if packet.attempts == 2 and packet.created_at >= cfg.warmup:
                retransmitted[packet.request_id] += 1
            packet.hop = 0
            first_vnf = request.chain.vnf_names[0]
            k = self._schedule[(packet.request_id, first_vnf)]
            target = servers[(first_vnf, k)]
            if cfg.nack_delay > 0.0:
                engine.schedule_in(
                    cfg.nack_delay, lambda p=packet, t=target: t.enqueue(p)
                )
            else:
                target.enqueue(packet)

        for vnf in self._vnfs.values():
            for k in range(vnf.num_instances):
                servers[(vnf.name, k)] = SimServer(
                    engine=engine,
                    service_rate=vnf.service_rate,
                    rng=rng,
                    on_departure=route_packet,
                )

        sources = []
        for request in self._requests.values():
            first_vnf = request.chain.vnf_names[0]
            k = self._schedule[(request.request_id, first_vnf)]
            target = servers[(first_vnf, k)]
            source = PoissonSource(
                engine=engine,
                request_id=request.request_id,
                rate=request.arrival_rate,
                rng=rng,
                emit=target.enqueue,
            )
            source.start()
            sources.append(source)

        final_time = engine.run(until=cfg.duration)
        measured_window = final_time

        instance_stats = []
        for (vnf_name, k), server in servers.items():
            server.finalize(final_time)
            instance_stats.append(
                InstanceStats(
                    key=(vnf_name, k),
                    arrivals=server.arrivals,
                    departures=server.departures,
                    mean_sojourn=server.mean_sojourn(),
                    utilization=server.measured_utilization(measured_window),
                )
            )

        return SimulationMetrics(
            duration=final_time,
            instances=instance_stats,
            delivered=delivered,
            end_to_end=end_to_end,
            retransmitted=retransmitted,
            generated=sum(s.generated for s in sources),
        )
