"""Array-native FCFS queueing kernels (the Lindley recurrence).

The trace-driven simulation backend (:mod:`repro.sim.trace`) replaces
the per-packet event loop with whole-array computations over
pre-sampled arrival and service times.  Its core is the classic
Lindley / max-prefix identity for a single FCFS server: with arrival
(availability) times ``A`` in service order and per-packet service
times ``S``, the recurrence

    ``D_m = max(A_m, D_{m-1}) + S_m``

unrolls to

    ``D_m = cumS_m + max_{j <= m} (A_j - cumS_{j-1})``

— one ``cumsum`` and one ``maximum.accumulate``, O(n) with no
Python-level iteration over packets.

Everything here is a pure function of arrays; the backend in
:mod:`repro.sim.trace` owns RNG streams, chain routing and feedback
rounds, and :mod:`repro.experiments.sensitivity` drives
:func:`fcfs_sojourn_times` directly on MMPP traces.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

import numpy as np

from repro.exceptions import SimulationError


def _as_float(values) -> np.ndarray:
    """View ``values`` as a floating array, preserving float32 inputs.

    Memory-lean callers feed ``float32`` traces; forcing ``float64``
    here would silently double every hot simulation buffer.  Integer
    and list inputs still promote to ``float64`` exactly as before.
    """
    arr = np.asarray(values)
    if arr.dtype.kind != "f":
        return arr.astype(np.float64)
    return arr


def lindley_departure_times(
    arrivals: np.ndarray, services: np.ndarray
) -> np.ndarray:
    """FCFS departure times of one single-server pass.

    Parameters
    ----------
    arrivals:
        Per-packet availability times **in service (FCFS) order**.
        Plain arrival traces are sorted; the trace backend may inflate
        entries by carryover waits, so monotonicity is not required —
        only the ordering is (packet ``m`` is served after ``m - 1``).
    services:
        Per-packet service times, aligned with ``arrivals``.

    Returns
    -------
    numpy.ndarray
        Departure times ``D`` aligned with the inputs;
        ``D_m = max(A_m, D_{m-1}) + S_m`` with ``D_{-1} = -inf``.
    """
    A = _as_float(arrivals)
    S = _as_float(services)
    if A.ndim != 1 or A.shape != S.shape:
        raise SimulationError(
            f"arrivals and services must be 1-D and aligned, got shapes "
            f"{A.shape} and {S.shape}"
        )
    if A.size == 0:
        return np.empty(0, dtype=np.result_type(A, S))
    if np.any(S < 0.0):
        raise SimulationError("service times must be non-negative")
    cum = np.cumsum(S)
    # cumS_{j-1}: cumulative service *before* packet j.
    before = np.empty_like(cum)
    before[0] = 0.0
    before[1:] = cum[:-1]
    return cum + np.maximum.accumulate(A - before)


def fcfs_sojourn_times(
    arrivals: np.ndarray,
    services: np.ndarray,
    horizon: Optional[float] = None,
) -> np.ndarray:
    """Sojourn times of a trace replayed through one FCFS server.

    With ``horizon`` given, only packets *departing* strictly before it
    are returned — the event engine's half-open-interval semantics
    (service completions at or past the horizon never happen).
    ``arrivals`` must be sorted ascending (a real arrival trace).
    """
    A = _as_float(arrivals)
    if A.size and (np.any(np.diff(A) < 0.0) or A[0] < 0.0):
        raise SimulationError(
            "arrival trace must be sorted ascending and non-negative"
        )
    D = lindley_departure_times(A, services)
    W = D - A
    if horizon is not None:
        return W[D < horizon]
    return W


def merge_streams(arrays: Sequence[np.ndarray]) -> Tuple[np.ndarray, np.ndarray]:
    """Merge per-flow arrival arrays into one time-sorted stream.

    Returns ``(merged, order)`` where ``order`` indexes the
    concatenation of ``arrays`` (stable sort: ties resolve in flow
    order, deterministically).  Scatter per-packet results back with
    ``out[order] = result``.
    """
    cat = np.concatenate([np.asarray(a, dtype=np.float64) for a in arrays])
    order = np.argsort(cat, kind="stable")
    return cat[order], order


def frontier_delays(
    frontier_arrivals: np.ndarray,
    frontier_departures: np.ndarray,
    arrivals: np.ndarray,
) -> np.ndarray:
    """Residual backlog each arrival sees from earlier passes.

    ``frontier_arrivals`` (sorted) and ``frontier_departures`` (aligned)
    describe packets already replayed through the same server by
    earlier passes.  A new packet arriving at ``t`` must wait for every
    earlier-arrived packet to depart:

        ``V(t) = max(0, max{D_j : A_j <= t} - t)``.

    Returns the per-packet waits ``V`` aligned with ``arrivals``.
    """
    A = np.asarray(arrivals, dtype=np.float64)
    if frontier_arrivals.size == 0:
        return np.zeros(A.shape, dtype=np.float64)
    dep_cummax = np.maximum.accumulate(
        np.asarray(frontier_departures, dtype=np.float64)
    )
    idx = np.searchsorted(frontier_arrivals, A, side="right") - 1
    latest = dep_cummax[np.maximum(idx, 0)]
    return np.where(idx >= 0, np.clip(latest - A, 0.0, None), 0.0)


def busy_time_within(
    departures: np.ndarray, services: np.ndarray, horizon: float
) -> float:
    """Total service time rendered inside ``[0, horizon)``.

    Each packet occupies the server on ``[D - S, D]``; the sum of the
    overlaps with the measurement window is the busy time the event
    backend accumulates via its busy-period bookkeeping.
    """
    D = np.asarray(departures, dtype=np.float64)
    S = np.asarray(services, dtype=np.float64)
    overlap = np.minimum(D, horizon) - (D - S)
    return float(np.clip(overlap, 0.0, None).sum())


def segmented_maximum_accumulate(
    values: np.ndarray, segments: np.ndarray
) -> np.ndarray:
    """Per-segment running maximum (``np.maximum.accumulate`` restarted
    at every segment boundary).

    ``segments`` must be grouped (all equal ids contiguous — e.g. the
    instance column of a ``(instance, time)``-lexsorted batch).  Uses a
    Hillis–Steele doubling scan, which is *exact* for ``max``
    (idempotent — no reassociation error), with no Python-level loop
    over segments.  The scan stops at the *longest segment* rather than
    ``n`` — shifts past it compare only across boundaries and are
    no-ops — so the cost is ``O(n log max_run)``: with millions of rows
    spread over thousands of per-instance queues this roughly halves
    the pass count, and it is the profile-dominant kernel of the
    million-request simulation path.  Scratch buffers are allocated
    once and sliced per shift instead of re-allocated per iteration.
    """
    out = _as_float(values).copy()
    seg = np.asarray(segments)
    n = out.size
    if seg.shape != out.shape:
        raise SimulationError(
            f"segments must align with values, got shapes "
            f"{seg.shape} and {out.shape}"
        )
    if n == 0:
        return out
    starts = np.concatenate(
        ([0], np.flatnonzero(seg[1:] != seg[:-1]) + 1)
    )
    max_run = int(np.diff(np.append(starts, n)).max())
    lowest = out.dtype.type(-np.inf)
    mask = np.empty(n, dtype=bool)
    cand = np.empty(n, dtype=out.dtype)
    d = 1
    while d < max_run:
        m = mask[: n - d]
        np.equal(seg[d:], seg[:-d], out=m)
        # Candidate lane: the shifted value inside a segment, -inf
        # across a boundary — staged in scratch so the maximum never
        # aliases its own shifted input.
        c = cand[: n - d]
        c.fill(lowest)
        np.copyto(c, out[:-d], where=m)
        np.maximum(out[d:], c, out=out[d:])
        d <<= 1
    return out


def segmented_lindley(
    arrivals: np.ndarray, services: np.ndarray, segments: np.ndarray
) -> np.ndarray:
    """FCFS departures of many independent servers in one shot.

    Vectorizes :func:`lindley_departure_times` across segments: each
    contiguous run of equal ``segments`` ids is one server's pass, in
    its own service order.  The per-segment cumulative service time is
    computed as the global ``cumsum`` minus each segment's starting
    base, so results match the per-segment kernel to float64 round-off
    (~1e-9 relative at millions of packets) rather than bitwise — the
    column-native simulation backend is pinned distributionally, not
    per-sample (see docs/SCALE.md).
    """
    A = _as_float(arrivals)
    S = _as_float(services)
    seg = np.asarray(segments)
    if not (A.shape == S.shape == seg.shape) or A.ndim != 1:
        raise SimulationError(
            f"arrivals, services and segments must be 1-D and aligned, "
            f"got shapes {A.shape}, {S.shape}, {seg.shape}"
        )
    if A.size == 0:
        return np.empty(0, dtype=np.result_type(A, S))
    if np.any(S < 0.0):
        raise SimulationError("service times must be non-negative")
    cum = np.cumsum(S)
    is_start = np.empty(A.size, dtype=bool)
    is_start[0] = True
    np.not_equal(seg[1:], seg[:-1], out=is_start[1:])
    start_idx = np.flatnonzero(is_start)
    counts = np.diff(np.append(start_idx, A.size))
    # cumS just *before* each segment starts, broadcast over its run.
    base = np.repeat(cum[start_idx] - S[start_idx], counts)
    cum_seg = cum - base
    return cum_seg + segmented_maximum_accumulate(
        A - (cum_seg - S), seg
    )
