"""Measurement collectors for simulation runs."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.analysis.stats import SummaryStats, summarize


@dataclass(frozen=True)
class InstanceStats:
    """Measured statistics of one service instance."""

    key: Tuple[str, int]
    arrivals: int
    departures: int
    mean_sojourn: float
    utilization: float


@dataclass
class SimulationMetrics:
    """Aggregated measurements of one :class:`ChainSimulator` run."""

    duration: float
    instances: List[InstanceStats]
    #: Completed end-to-end deliveries per request id.
    delivered: Dict[str, int]
    #: End-to-end latencies (creation to final delivery), per request id.
    end_to_end: Dict[str, List[float]]
    #: Packets retransmitted at least once, per request id.
    retransmitted: Dict[str, int]
    #: Total packets injected by the sources.
    generated: int

    def instance(self, vnf_name: str, k: int) -> InstanceStats:
        """Look up one instance's stats."""
        for stats in self.instances:
            if stats.key == (vnf_name, k):
                return stats
        raise KeyError(f"no stats for instance ({vnf_name!r}, {k})")

    def end_to_end_summary(self, request_id: str) -> SummaryStats:
        """Latency summary of one request's delivered packets."""
        return summarize(self.end_to_end[request_id])

    def all_latencies(self) -> List[float]:
        """Every delivered packet's end-to-end latency."""
        out: List[float] = []
        for latencies in self.end_to_end.values():
            out.extend(latencies)
        return out

    @property
    def total_delivered(self) -> int:
        """Total packets delivered end to end."""
        return sum(self.delivered.values())

    def mean_end_to_end(self) -> float:
        """Grand mean of end-to-end latency over all deliveries."""
        latencies = self.all_latencies()
        if not latencies:
            return 0.0
        return sum(latencies) / len(latencies)
