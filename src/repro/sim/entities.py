"""Simulation entities: packets, FCFS exponential servers, Poisson sources.

A :class:`SimServer` models one service instance: a single exponential
server with an unbounded FCFS buffer — the M/M/1 station of the analytic
model, but measured instead of solved.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Callable, Deque, Optional

import numpy as np

from repro.exceptions import SimulationError
from repro.sim.engine import SimulationEngine


@dataclass
class SimPacket:
    """One packet of a request's stream."""

    request_id: str
    created_at: float
    #: Index of the next chain hop to visit.
    hop: int = 0
    #: End-to-end transmission attempts so far (1 = first try).
    attempts: int = 1
    #: Arrival time at the current server (set on enqueue).
    arrived_at: float = 0.0


class SimServer:
    """A single-server FCFS queue with exponential service times.

    Parameters
    ----------
    engine:
        The simulation engine providing the clock.
    service_rate:
        Exponential rate ``mu`` (packets/s).
    rng:
        Seeded generator used for service-time draws.
    on_departure:
        Callback ``(packet, sojourn_time)`` invoked at each service
        completion; the chain simulator uses it to route the packet to
        its next hop.
    """

    def __init__(
        self,
        engine: SimulationEngine,
        service_rate: float,
        rng: np.random.Generator,
        on_departure: Callable[[SimPacket, float], None],
    ) -> None:
        if service_rate <= 0.0:
            raise SimulationError(
                f"service rate must be positive, got {service_rate!r}"
            )
        self._engine = engine
        self._mu = service_rate
        self._rng = rng
        self._on_departure = on_departure
        self._buffer: Deque[SimPacket] = deque()
        self._busy = False
        # Measurement accumulators.
        self.arrivals = 0
        self.departures = 0
        self.busy_time = 0.0
        self.total_sojourn = 0.0
        self._busy_since: Optional[float] = None

    @property
    def queue_length(self) -> int:
        """Packets waiting (excluding the one in service)."""
        return len(self._buffer)

    @property
    def in_system(self) -> int:
        """Packets in the station (buffer + in service)."""
        return len(self._buffer) + (1 if self._busy else 0)

    def enqueue(self, packet: SimPacket) -> None:
        """Packet arrival: serve immediately if idle, else buffer FCFS."""
        packet.arrived_at = self._engine.now
        self.arrivals += 1
        if not self._busy:
            self._start_service(packet)
        else:
            self._buffer.append(packet)

    def _start_service(self, packet: SimPacket) -> None:
        self._busy = True
        if self._busy_since is None:
            self._busy_since = self._engine.now
        service_time = float(self._rng.exponential(1.0 / self._mu))
        self._engine.schedule_in(service_time, lambda: self._complete(packet))

    def _complete(self, packet: SimPacket) -> None:
        sojourn = self._engine.now - packet.arrived_at
        self.departures += 1
        self.total_sojourn += sojourn
        if self._buffer:
            self._start_service(self._buffer.popleft())
        else:
            self._busy = False
            if self._busy_since is not None:
                self.busy_time += self._engine.now - self._busy_since
                self._busy_since = None
        self._on_departure(packet, sojourn)

    def finalize(self, at_time: float) -> None:
        """Close the busy-time accumulator at the end of a run."""
        if self._busy and self._busy_since is not None:
            self.busy_time += at_time - self._busy_since
            self._busy_since = self._engine.now if self._busy else None

    def mean_sojourn(self) -> float:
        """Measured mean response time over completed services."""
        if self.departures == 0:
            return 0.0
        return self.total_sojourn / self.departures

    def measured_utilization(self, elapsed: float) -> float:
        """Fraction of elapsed time the server was busy."""
        if elapsed <= 0.0:
            return 0.0
        return min(1.0, self.busy_time / elapsed)


class TraceSource:
    """Replays a precomputed arrival-time trace into a sink callback.

    Lets the simulator consume arbitrary arrival processes — MMPP bursts,
    log-normal inter-arrivals, or recorded traces — through the same
    interface as :class:`PoissonSource`.
    """

    def __init__(
        self,
        engine: SimulationEngine,
        request_id: str,
        arrival_times,
        emit: Callable[[SimPacket], None],
    ) -> None:
        self._engine = engine
        self._request_id = request_id
        times = [float(t) for t in arrival_times]
        if any(t < 0.0 for t in times):
            raise SimulationError("trace arrival times must be non-negative")
        if any(b < a for a, b in zip(times, times[1:])):
            raise SimulationError("trace arrival times must be sorted")
        self._times = times
        self._emit = emit
        self.generated = 0

    def start(self) -> None:
        """Schedule every trace arrival."""
        for t in self._times:
            self._engine.schedule(t, lambda t=t: self._fire(t))

    def _fire(self, _t: float) -> None:
        self.generated += 1
        self._emit(
            SimPacket(request_id=self._request_id, created_at=self._engine.now)
        )


class PoissonSource:
    """Generates a request's Poisson packet stream into a sink callback."""

    def __init__(
        self,
        engine: SimulationEngine,
        request_id: str,
        rate: float,
        rng: np.random.Generator,
        emit: Callable[[SimPacket], None],
    ) -> None:
        if rate <= 0.0:
            raise SimulationError(f"arrival rate must be positive, got {rate!r}")
        self._engine = engine
        self._request_id = request_id
        self._rate = rate
        self._rng = rng
        self._emit = emit
        self.generated = 0

    def start(self) -> None:
        """Schedule the first arrival."""
        self._schedule_next()

    def _schedule_next(self) -> None:
        gap = float(self._rng.exponential(1.0 / self._rate))
        self._engine.schedule_in(gap, self._fire)

    def _fire(self) -> None:
        self.generated += 1
        packet = SimPacket(
            request_id=self._request_id, created_at=self._engine.now
        )
        self._emit(packet)
        self._schedule_next()
