"""Trace-driven simulation backend — whole-run arrays, no event loop.

Replays the same system as the event backend (Poisson sources, FCFS
exponential service instances, end-to-end loss with NACK feedback) but
never steps packet by packet:

1. **Pre-sample** every request's fresh arrival times on
   ``[0, duration)`` — one ``numpy`` Generator stream per source.
2. **Causal sweep.**  Replay chain hop levels within geometric
   feedback rounds: at hop level ``h`` all flows mapped to the same
   service instance are merged with a stable ``argsort`` and pushed
   through the Lindley kernel in one shot; packets failing their
   delivery coin (probability ``1 - P_r``) re-enter the chain head at
   their last-hop departure time plus the NACK delay, forming the next
   round's arrival trace.  Rounds thin geometrically until no packets
   remain before the horizon.  This sweep establishes *when every
   packet reaches every instance*; passes at the same instance carry a
   departure-frontier so later passes queue behind earlier backlog.
3. **Measurement sweep.**  Each instance is then replayed **once**
   over the union of all its recorded arrivals — every flow, hop
   level and feedback round merged into a single full-load Lindley
   pass.  All reported statistics (per-instance sojourn, utilization,
   departures; per-packet sojourns summed into end-to-end latency)
   come from this pass, so every station is measured at its true
   aggregate rate even when the causal sweep had to split it across
   hop levels or rounds.

The loop structure is ``rounds x hop levels x instances`` — never
packets.  Statistics agree with the event backend in distribution, not
sample by sample; see ``docs/SIM_BACKENDS.md`` for the parity contract
(which quantities are exact in distribution and which carry a
second-order approximation).

RNG stream layout (documented, relied on by tests)
--------------------------------------------------
``SeedSequence(config.seed)`` spawns four roots, in order:

1. **arrivals** — spawned again per request in sorted-id order,
2. **causal-sweep services** — spawned per service instance in
   declaration order (input VNF order, then instance index),
3. **delivery coins** — spawned per request in sorted-id order,
4. **measurement services** — spawned per instance in declaration
   order, for the merged measurement pass.

Every stream is consumed in deterministic (round, hop, instance /
request) order, so a run is a pure function of the inputs and the
seed.  The streams intentionally differ from the event backend's
single shared generator: the two backends agree in distribution, not
sample by sample.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.exceptions import SimulationError
from repro.nfv.request import Request
from repro.nfv.vnf import VNF
from repro.sim.kernels import (
    busy_time_within,
    frontier_delays,
    lindley_departure_times,
    merge_streams,
)
from repro.sim.metrics import InstanceStats, SimulationMetrics
from repro.workload.traces import poisson_arrival_times

#: Hard cap on feedback rounds — each round thins by ``1 - P_r`` and
#: re-entry times only grow toward the horizon, so hitting this means
#: the configuration is pathological (e.g. ``P_r`` microscopically
#: small at enormous load), not that the simulation is healthy.
MAX_FEEDBACK_ROUNDS = 10_000


class _InstanceState:
    """One service instance: RNG streams, pass records, measurements."""

    def __init__(
        self,
        key: Tuple[str, int],
        service_rate: float,
        sweep_rng: np.random.Generator,
        measure_rng: np.random.Generator,
    ) -> None:
        self.key = key
        self._mu = service_rate
        self._sweep_rng = sweep_rng
        self._measure_rng = measure_rng
        # Causal-sweep pass history, merge-sorted by arrival time.
        self._hist_arrivals = np.empty(0, dtype=np.float64)
        self._hist_departures = np.empty(0, dtype=np.float64)
        # Recorded (arrivals, packet ids) of every causal pass.
        self._passes: List[Tuple[np.ndarray, np.ndarray]] = []

    def sweep(self, arrivals: np.ndarray, packet_ids: np.ndarray) -> np.ndarray:
        """One causal FCFS pass over a sorted arrival batch.

        Returns estimated departures used for routing only; the pass is
        recorded so the measurement sweep can replay the instance at
        full merged load.
        """
        services = self._sweep_rng.exponential(
            1.0 / self._mu, size=arrivals.size
        )
        waits = frontier_delays(
            self._hist_arrivals, self._hist_departures, arrivals
        )
        departures = lindley_departure_times(arrivals + waits, services)
        self._passes.append((arrivals, packet_ids))

        merged = np.concatenate([self._hist_arrivals, arrivals])
        merged_dep = np.concatenate([self._hist_departures, departures])
        order = np.argsort(merged, kind="stable")
        self._hist_arrivals = merged[order]
        self._hist_departures = merged_dep[order]
        return departures

    def measure(
        self, horizon: float, sojourn_sums: np.ndarray
    ) -> InstanceStats:
        """The single full-load measurement pass.

        All recorded arrivals merge into one Lindley replay; per-packet
        sojourns are accumulated into ``sojourn_sums`` (indexed by
        packet id) for the end-to-end statistics.
        """
        if not self._passes:
            return InstanceStats(
                key=self.key,
                arrivals=0,
                departures=0,
                mean_sojourn=0.0,
                utilization=0.0 if horizon > 0.0 else 0.0,
            )
        merged, order = merge_streams([a for a, _ in self._passes])
        services = self._measure_rng.exponential(
            1.0 / self._mu, size=merged.size
        )
        departures = lindley_departure_times(merged, services)
        sojourns = departures - merged

        # Scatter sojourns back per pass (ids are unique within one
        # pass, so plain fancy-index accumulation is safe there).
        unsorted_sojourns = np.empty_like(sojourns)
        unsorted_sojourns[order] = sojourns
        start = 0
        for arrivals, packet_ids in self._passes:
            chunk = unsorted_sojourns[start : start + arrivals.size]
            start += arrivals.size
            sojourn_sums[packet_ids] += chunk

        done = departures < horizon
        num_done = int(done.sum())
        return InstanceStats(
            key=self.key,
            arrivals=int(merged.size),
            departures=num_done,
            mean_sojourn=(
                float(sojourns[done].sum()) / num_done if num_done else 0.0
            ),
            utilization=(
                min(1.0, busy_time_within(departures, services, horizon) / horizon)
                if horizon > 0.0
                else 0.0
            ),
        )


def run_trace_simulation(
    vnfs: Sequence[VNF],
    requests: Sequence[Request],
    schedule: Mapping[Tuple[str, str], int],
    config: Optional["SimulationConfig"] = None,
) -> SimulationMetrics:
    """Run one trace-driven simulation; mirrors ``ChainSimulator.run``.

    Accepts exactly the constructor arguments of
    :class:`~repro.sim.simulator.ChainSimulator` and returns the same
    :class:`SimulationMetrics` shape.  Prefer
    ``ChainSimulator(..., backend="trace").run()``, which validates the
    schedule first; this entry point is for callers that already hold
    validated inputs.
    """
    from repro.sim.simulator import SimulationConfig

    cfg = config if config is not None else SimulationConfig()
    vnfs_by_name: Dict[str, VNF] = {f.name: f for f in vnfs}
    requests_by_id: Dict[str, Request] = {r.request_id: r for r in requests}
    horizon = cfg.duration

    rids = sorted(requests_by_id)
    root = np.random.SeedSequence(int(cfg.seed))
    arrival_root, sweep_root, coin_root, measure_root = root.spawn(4)
    arrival_rngs = {
        rid: np.random.default_rng(child)
        for rid, child in zip(rids, arrival_root.spawn(len(rids)))
    }
    coin_rngs = {
        rid: np.random.default_rng(child)
        for rid, child in zip(rids, coin_root.spawn(len(rids)))
    }

    instance_keys: List[Tuple[str, int]] = [
        (vnf.name, k)
        for vnf in vnfs_by_name.values()
        for k in range(vnf.num_instances)
    ]
    sweep_children = sweep_root.spawn(len(instance_keys))
    measure_children = measure_root.spawn(len(instance_keys))
    instances: Dict[Tuple[str, int], _InstanceState] = {
        key: _InstanceState(
            key,
            vnfs_by_name[key[0]].service_rate,
            np.random.default_rng(sweep_child),
            np.random.default_rng(measure_child),
        )
        for key, sweep_child, measure_child in zip(
            instance_keys, sweep_children, measure_children
        )
    }

    chain_keys: Dict[str, List[Tuple[str, int]]] = {
        rid: [
            (vnf_name, schedule[(rid, vnf_name)])
            for vnf_name in requests_by_id[rid].chain
        ]
        for rid in rids
    }

    # Fresh arrivals; every packet gets a run-global id so the
    # measurement sweep can accumulate its per-hop sojourns.
    flows: Dict[str, Tuple[np.ndarray, np.ndarray]] = {}
    created_chunks: List[np.ndarray] = []
    next_id = 0
    for rid in rids:
        times = np.asarray(
            poisson_arrival_times(
                requests_by_id[rid].arrival_rate, horizon, arrival_rngs[rid]
            ),
            dtype=np.float64,
        )
        ids = np.arange(next_id, next_id + times.size, dtype=np.intp)
        next_id += times.size
        created_chunks.append(times)
        flows[rid] = (times, ids)
    generated = next_id
    created_by_id = (
        np.concatenate(created_chunks)
        if created_chunks
        else np.empty(0, dtype=np.float64)
    )
    # Accumulated NACK round-trip delay per packet (non-zero only for
    # retransmitted packets when nack_delay > 0).
    extra_delay = np.zeros(generated, dtype=np.float64)

    delivered: Dict[str, int] = {rid: 0 for rid in rids}
    retransmitted: Dict[str, int] = {rid: 0 for rid in rids}
    # Per request: (causal delivery time, packet id) of counted
    # deliveries, merged after the measurement sweep.
    delivery_chunks: Dict[str, List[Tuple[np.ndarray, np.ndarray]]] = {
        rid: [] for rid in rids
    }

    empty = (np.empty(0, dtype=np.float64), np.empty(0, dtype=np.intp))
    round_index = 0
    while any(times.size for times, _ in flows.values()):
        if round_index >= MAX_FEEDBACK_ROUNDS:
            raise SimulationError(
                f"feedback did not drain after {MAX_FEEDBACK_ROUNDS} rounds; "
                "check delivery probabilities and load"
            )
        next_flows: Dict[str, Tuple[np.ndarray, np.ndarray]] = {}
        max_len = max(
            len(chain_keys[rid]) for rid in rids if flows[rid][0].size
        )
        for level in range(max_len):
            groups: Dict[Tuple[str, int], List[str]] = {}
            for rid in rids:
                if flows[rid][0].size and level < len(chain_keys[rid]):
                    groups.setdefault(chain_keys[rid][level], []).append(rid)
            for key in instance_keys:
                flow_ids = groups.get(key)
                if not flow_ids:
                    continue
                merged, order = merge_streams(
                    [flows[rid][0] for rid in flow_ids]
                )
                ids_cat = np.concatenate(
                    [flows[rid][1] for rid in flow_ids]
                )
                departures_sorted = instances[key].sweep(
                    merged, ids_cat[order]
                )
                departures = np.empty_like(departures_sorted)
                departures[order] = departures_sorted
                start = 0
                for rid in flow_ids:
                    times, ids = flows[rid]
                    dep = departures[start : start + times.size]
                    start += times.size
                    # Completions at or past the horizon never happen in
                    # the event engine; those packets go no further.
                    keep = dep < horizon
                    flows[rid] = (dep[keep], ids[keep])
            # Flows whose chain ends at this level reach the delivery coin.
            for rid in rids:
                if len(chain_keys[rid]) != level + 1:
                    continue
                times, ids = flows[rid]
                flows[rid] = empty
                if not times.size:
                    continue
                request = requests_by_id[rid]
                ok = (
                    coin_rngs[rid].uniform(size=times.size)
                    < request.delivery_probability
                )
                measured = created_by_id[ids] >= cfg.warmup
                counted = ok & measured
                delivered[rid] += int(counted.sum())
                delivery_chunks[rid].append((times[counted], ids[counted]))
                failed = ~ok
                if round_index == 0:
                    # First failure == the packet's second attempt; the
                    # event backend counts it exactly once, there.
                    retransmitted[rid] += int((failed & measured).sum())
                retry_times = times[failed] + cfg.nack_delay
                retry_ids = ids[failed]
                keep = retry_times < horizon
                retry_ids = retry_ids[keep]
                if cfg.nack_delay > 0.0 and retry_ids.size:
                    extra_delay[retry_ids] += cfg.nack_delay
                next_flows[rid] = (retry_times[keep], retry_ids)
        for rid in rids:
            next_flows.setdefault(rid, empty)
        flows = next_flows
        round_index += 1

    # Measurement sweep: one merged full-load pass per instance.
    sojourn_sums = np.zeros(generated, dtype=np.float64)
    instance_stats = [
        instances[key].measure(horizon, sojourn_sums) for key in instance_keys
    ]

    end_to_end: Dict[str, List[float]] = {}
    for rid in rids:
        chunks = delivery_chunks[rid]
        if chunks:
            when = np.concatenate([c[0] for c in chunks])
            ids = np.concatenate([c[1] for c in chunks])
            order = np.argsort(when, kind="stable")
            latency = sojourn_sums[ids] + extra_delay[ids]
            end_to_end[rid] = [float(x) for x in latency[order]]
        else:
            end_to_end[rid] = []

    return SimulationMetrics(
        duration=horizon,
        instances=instance_stats,
        delivered=delivered,
        end_to_end=end_to_end,
        retransmitted=retransmitted,
        generated=generated,
    )
