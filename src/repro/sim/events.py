"""Event primitives for the discrete-event engine.

Events are ordered by ``(time, sequence)``; the monotone sequence number
makes the ordering total and the simulation deterministic even when many
events share a timestamp.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Callable, List, Optional

from repro.exceptions import SimulationError


@dataclass(frozen=True, order=True)
class Event:
    """A scheduled callback."""

    time: float
    sequence: int
    action: Callable[[], None] = field(compare=False)


class EventQueue:
    """A time-ordered event queue (binary heap)."""

    def __init__(self) -> None:
        self._heap: List[Event] = []
        self._counter = itertools.count()

    def push(self, time: float, action: Callable[[], None]) -> Event:
        """Schedule ``action`` at ``time``."""
        if time < 0.0:
            raise SimulationError(f"event time must be non-negative, got {time!r}")
        event = Event(time=time, sequence=next(self._counter), action=action)
        heapq.heappush(self._heap, event)
        return event

    def pop(self) -> Event:
        """Remove and return the earliest event."""
        if not self._heap:
            raise SimulationError("pop from an empty event queue")
        return heapq.heappop(self._heap)

    def peek_time(self) -> Optional[float]:
        """The earliest scheduled time, or ``None`` when empty."""
        return self._heap[0].time if self._heap else None

    def __len__(self) -> int:
        return len(self._heap)

    def __bool__(self) -> bool:
        return bool(self._heap)
