"""Exception hierarchy for the :mod:`repro` library.

All library-specific errors derive from :class:`ReproError` so callers can
catch everything raised by this package with a single ``except`` clause.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the :mod:`repro` library."""


class ValidationError(ReproError):
    """A model object or problem instance violates one of its invariants.

    Raised, for example, when a request references a VNF that does not
    exist, when an arrival rate is non-positive, or when a delivery
    probability falls outside ``(0, 1]``.
    """


class InfeasiblePlacementError(ReproError):
    """No feasible placement exists for the given problem instance.

    Raised when some VNF's total demand exceeds every node's capacity, or
    when the aggregate demand exceeds the aggregate capacity so that no
    assignment can satisfy Eq. (6) of the paper.
    """


class MaxRestartsExceededError(InfeasiblePlacementError):
    """A randomized placement algorithm exhausted its restart budget.

    BFDSU restarts from scratch ("go back to Begin") when its weighted
    random choices paint it into an infeasible corner.  This error is
    raised when the configured number of restarts is exceeded, which for a
    feasible instance indicates an extremely unlucky random stream or a
    near-infeasible instance.
    """


class UnstableQueueError(ReproError):
    """An M/M/1 queue was asked for steady-state metrics with ``rho >= 1``.

    The open Jackson network model only has a steady state when every
    service instance satisfies ``Lambda < mu``.  Admission control
    (:mod:`repro.core.admission`) exists precisely to avoid this state; the
    analytic layer refuses to silently return negative or infinite values.
    """


class SchedulingError(ReproError):
    """A request could not be mapped onto a service instance.

    Raised when scheduling is attempted against a VNF with zero instances
    or when an algorithm produces an assignment that violates Eq. (5).
    """


class SimulationError(ReproError):
    """The discrete-event simulator was configured or driven incorrectly."""


class ConfigurationError(ReproError):
    """An experiment or workload configuration is inconsistent."""


class UnknownExperimentError(ConfigurationError):
    """An experiment name does not exist in the experiment registry.

    Raised by :func:`repro.experiments.registry.get` (and therefore by
    ``runall --only``) with a message listing the valid names.
    """
