"""VNF chain placement algorithms (Section IV-A of the paper).

* :mod:`repro.placement.base` — problem/result model shared by all
  algorithms.
* :mod:`repro.placement.bfdsu` — **BFDSU**, the paper's priority-driven
  weighted algorithm (Algorithm 1).
* :mod:`repro.placement.ffd` — First-Fit-Decreasing baseline.
* :mod:`repro.placement.nah` — Node Assignment Heuristic baseline
  (Xia et al. [12], re-implemented from the paper's description).
* :mod:`repro.placement.bfd` — deterministic Best-Fit-Decreasing with the
  Used/Spare priority (the ablation of BFDSU's randomization).
* :mod:`repro.placement.random_fit` — uniform random feasible placement
  (a statistical floor).
* :mod:`repro.placement.exact` — branch-and-bound minimum-nodes placement
  for small instances.
* :mod:`repro.placement.metrics` — the evaluation metrics of Figs. 5-10.
"""

from repro.placement.base import (
    PlacementAlgorithm,
    PlacementProblem,
    PlacementResult,
)
from repro.placement.best_of import BestOfKPlacement
from repro.placement.bfd import BFDPlacement
from repro.placement.bfdsu import BFDSUPlacement
from repro.placement.chain_affinity import ChainAffinityBFDSU
from repro.placement.exact import ExactPlacement
from repro.placement.ffd import FFDPlacement
from repro.placement.metrics import placement_report
from repro.placement.nah import NAHPlacement
from repro.placement.random_fit import RandomFitPlacement

__all__ = [
    "PlacementProblem",
    "PlacementResult",
    "PlacementAlgorithm",
    "BFDSUPlacement",
    "BestOfKPlacement",
    "ChainAffinityBFDSU",
    "FFDPlacement",
    "NAHPlacement",
    "BFDPlacement",
    "RandomFitPlacement",
    "ExactPlacement",
    "placement_report",
]
