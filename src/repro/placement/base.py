"""Shared problem/result model for VNF chain placement.

A :class:`PlacementProblem` bundles the VNFs ``F`` (each a bin-packing
item of size ``M_f D_f``), the compute-node capacities ``A_v`` and —
for chain-aware algorithms like NAH — the service chains.  All placement
algorithms implement :class:`PlacementAlgorithm` and return a
:class:`PlacementResult`, so experiments can sweep algorithm lists
uniformly.

Iteration accounting (paper Fig. 10)
------------------------------------
"Iterations of executing the algorithm for finding a feasible solution"
is algorithm-specific in the paper, and so here:

* FFD makes a single deterministic pass — always 1 iteration.
* BFDSU counts solution-construction attempts: 1 + the number of restarts
  its weighted random draws forced, plus fractional work for discarded
  partial passes (reported as whole attempts).
* NAH counts node-selection operations: one per heaviest-VNF placement
  and one per same-node/fallback attempt for the remaining chain VNFs.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, Hashable, List, Mapping, Sequence

from repro.exceptions import InfeasiblePlacementError, ValidationError
from repro.nfv.chain import ServiceChain
from repro.nfv.vnf import VNF

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.arrays import ScenarioArrays


@dataclass(frozen=True)
class PlacementProblem:
    """An instance of the VNF-CP problem (Eq. 13).

    Parameters
    ----------
    vnfs:
        The VNFs to place; their ``total_demand`` is the packing size.
    capacities:
        ``A_v`` per compute-node key.
    chains:
        Optional service chains over the VNFs.  Chain-aware algorithms
        (NAH) use them; bin-packing algorithms ignore them.
    """

    vnfs: tuple
    capacities: Mapping[Hashable, float]
    chains: tuple = ()

    def __init__(
        self,
        vnfs: Sequence[VNF],
        capacities: Mapping[Hashable, float],
        chains: Sequence[ServiceChain] = (),
    ) -> None:
        object.__setattr__(self, "vnfs", tuple(vnfs))
        object.__setattr__(self, "capacities", dict(capacities))
        object.__setattr__(self, "chains", tuple(chains))
        object.__setattr__(
            self, "_vnf_by_name", {f.name: f for f in self.vnfs}
        )
        self._validate()

    def _validate(self) -> None:
        if not self.vnfs:
            raise ValidationError("placement problem has no VNFs")
        if not self.capacities:
            raise ValidationError("placement problem has no compute nodes")
        if len(self._vnf_by_name) != len(self.vnfs):
            raise ValidationError("duplicate VNF names in placement problem")
        for node, cap in self.capacities.items():
            if cap <= 0.0:
                raise ValidationError(
                    f"node {node!r}: capacity must be positive, got {cap!r}"
                )
        known = self._vnf_by_name
        for chain in self.chains:
            for vnf_name in chain:
                if vnf_name not in known:
                    raise ValidationError(
                        f"chain references unknown VNF {vnf_name!r}"
                    )

    def vnf(self, name: str) -> VNF:
        """Look up a VNF by name (O(1) via the cached name map)."""
        try:
            return self._vnf_by_name[name]
        except KeyError:
            raise ValidationError(f"unknown VNF {name!r}") from None

    def arrays(self) -> "ScenarioArrays":
        """The cached columnar view of this problem's VNF/node tables."""
        from repro.core.arrays import ScenarioArrays, cached_arrays

        return cached_arrays(self, ScenarioArrays.from_placement_problem)

    def total_demand(self) -> float:
        """Aggregate demand ``sum_f M_f D_f``."""
        return sum(f.total_demand for f in self.vnfs)

    def total_capacity(self) -> float:
        """Aggregate capacity ``sum_v A_v``."""
        return sum(self.capacities.values())

    def check_necessary_feasibility(self) -> None:
        """Fast necessary conditions (not sufficient for heterogeneity).

        Raises
        ------
        InfeasiblePlacementError
            If some VNF exceeds every node or total demand exceeds total
            capacity.
        """
        max_cap = max(self.capacities.values())
        for f in self.vnfs:
            if f.total_demand > max_cap + 1e-9:
                raise InfeasiblePlacementError(
                    f"VNF {f.name!r} total demand {f.total_demand:.6g} "
                    f"exceeds the largest node capacity {max_cap:.6g}"
                )
        if self.total_demand() > self.total_capacity() + 1e-9:
            raise InfeasiblePlacementError(
                f"total demand {self.total_demand():.6g} exceeds total "
                f"capacity {self.total_capacity():.6g}"
            )


@dataclass
class PlacementResult:
    """A feasible placement with its cost accounting.

    Attributes
    ----------
    placement:
        ``vnf_name -> node_key`` (the ``x_v^f`` variables).
    problem:
        The problem solved, kept for metric computation.
    iterations:
        Algorithm-specific iteration count (see module docstring).
    algorithm:
        Human-readable algorithm name for report rows.
    """

    placement: Dict[str, Hashable]
    problem: PlacementProblem
    iterations: int = 0
    algorithm: str = ""

    # ------------------------------------------------------------------
    # Derived state
    # ------------------------------------------------------------------
    def _placement_vector(self):
        """Node index per VNF (``np.ndarray``), or ``None`` when a
        placement node is absent from the capacity map (scalar fallback
        territory)."""
        try:
            return self.problem.arrays().placement_vector(self.placement)
        except KeyError:
            return None

    def _node_loads_scalar(self) -> Dict[Hashable, float]:
        loads: Dict[Hashable, float] = {}
        for vnf in self.problem.vnfs:
            node = self.placement.get(vnf.name)
            if node is None:
                continue
            loads[node] = loads.get(node, 0.0) + vnf.total_demand
        return loads

    def node_loads(self) -> Dict[Hashable, float]:
        """Placed demand per node (zero-load nodes omitted).

        Keys keep the legacy first-placed-VNF order; the per-node sums
        come from one ``np.bincount`` over the columnar view.
        """
        placement_vec = self._placement_vector()
        if placement_vec is None:
            return self._node_loads_scalar()
        arrays = self.problem.arrays()
        loads = arrays.node_loads(placement_vec)
        result: Dict[Hashable, float] = {}
        for node_idx in placement_vec:
            if node_idx >= 0:
                node = arrays.node_keys[node_idx]
                if node not in result:
                    result[node] = float(loads[node_idx])
        return result

    def used_nodes(self) -> List[Hashable]:
        """Nodes in service (``y_v = 1``)."""
        return list(self.node_loads().keys())

    @property
    def num_used_nodes(self) -> int:
        """``sum_v y_v`` — the Eq. (14) objective."""
        placement_vec = self._placement_vector()
        if placement_vec is None:
            return len(self._node_loads_scalar())
        arrays = self.problem.arrays()
        return int(arrays.used_node_mask(placement_vec).sum())

    @property
    def average_utilization(self) -> float:
        """Eq. (13): mean of per-used-node load/capacity."""
        placement_vec = self._placement_vector()
        if placement_vec is None:
            loads = self._node_loads_scalar()
            if not loads:
                return 0.0
            total = 0.0
            for node, load in loads.items():
                total += load / self.problem.capacities[node]
            return total / len(loads)
        arrays = self.problem.arrays()
        used_mask = arrays.used_node_mask(placement_vec)
        if not used_mask.any():
            return 0.0
        loads = arrays.node_loads(placement_vec)
        utilization = loads[used_mask] / arrays.A_v[used_mask]
        return float(utilization.sum() / used_mask.sum())

    @property
    def total_occupied_capacity(self) -> float:
        """Sum of ``A_v`` over used nodes (Fig. 9's "resource occupation")."""
        placement_vec = self._placement_vector()
        if placement_vec is None:
            return sum(
                self.problem.capacities[node]
                for node in self._node_loads_scalar()
            )
        arrays = self.problem.arrays()
        return float(
            arrays.A_v[arrays.used_node_mask(placement_vec)].sum()
        )

    def node_of(self, vnf_name: str) -> Hashable:
        """The node hosting ``vnf_name``."""
        try:
            return self.placement[vnf_name]
        except KeyError:
            raise ValidationError(f"VNF {vnf_name!r} is not placed") from None

    # ------------------------------------------------------------------
    # Validation
    # ------------------------------------------------------------------
    def validate(self) -> None:
        """Check Eqs. (2) and (6) hold for this placement.

        Raises
        ------
        ValidationError
            On an unplaced VNF, unknown node, or capacity violation.
        """
        for vnf in self.problem.vnfs:
            node = self.placement.get(vnf.name)
            if node is None:
                raise ValidationError(f"VNF {vnf.name!r} unplaced (Eq. 2)")
            if node not in self.problem.capacities:
                raise ValidationError(
                    f"VNF {vnf.name!r} placed on unknown node {node!r}"
                )
        for node, load in self.node_loads().items():
            capacity = self.problem.capacities[node]
            if load > capacity + 1e-9:
                raise ValidationError(
                    f"node {node!r} over capacity: {load:.6g} > {capacity:.6g} "
                    "(Eq. 6)"
                )


class PlacementAlgorithm(abc.ABC):
    """Strategy interface implemented by every placement algorithm."""

    #: Stable display name used in experiment report rows.
    name: str = "placement"

    @abc.abstractmethod
    def place(self, problem: PlacementProblem) -> PlacementResult:
        """Solve ``problem``, returning a validated feasible placement.

        Raises
        ------
        InfeasiblePlacementError
            If the algorithm cannot find a feasible placement (which for
            incomplete heuristics does not prove none exists).
        """

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"{type(self).__name__}(name={self.name!r})"


def demand_sorted_vnfs(problem: PlacementProblem) -> List[VNF]:
    """VNFs sorted by decreasing total demand (ties by name, deterministic)."""
    return sorted(problem.vnfs, key=lambda f: (-f.total_demand, f.name))
