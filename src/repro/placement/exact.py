"""Exact minimum-nodes placement via branch and bound (small instances).

Solves Eq. (14) — minimize ``sum_v y_v`` — optimally, to measure
heuristic gaps in tests and to verify Theorem 2's bound
(``BFDSU <= 2 * OPT`` asymptotically) empirically.

Search: VNFs in decreasing demand order; at each level try (a) every
currently-open node with room — skipping symmetric equal-residual
duplicates — and (b) opening each distinct-capacity closed node.  Bounds:
a volume-based completion bound prunes branches that cannot beat the
incumbent.
"""

from __future__ import annotations

from typing import Dict, Hashable, List, Optional

from repro.exceptions import InfeasiblePlacementError, ValidationError
from repro.placement.base import (
    PlacementAlgorithm,
    PlacementProblem,
    PlacementResult,
    demand_sorted_vnfs,
)

#: Refuse exact search above this VNF count (exponential blow-up guard).
MAX_EXACT_VNFS = 16


class ExactPlacement(PlacementAlgorithm):
    """Branch-and-bound minimum-nodes-in-service placement."""

    name = "Exact"

    def __init__(self, max_vnfs: int = MAX_EXACT_VNFS) -> None:
        self._max_vnfs = max_vnfs

    def place(self, problem: PlacementProblem) -> PlacementResult:
        if len(problem.vnfs) > self._max_vnfs:
            raise ValidationError(
                f"exact placement is exponential; refusing "
                f"{len(problem.vnfs)} VNFs > {self._max_vnfs}"
            )
        problem.check_necessary_feasibility()
        vnfs = demand_sorted_vnfs(problem)
        demands = [f.total_demand for f in vnfs]
        nodes = list(problem.capacities.keys())
        capacities = [problem.capacities[v] for v in nodes]

        best_count = len(nodes) + 1
        best_assign: Optional[List[int]] = None
        assign: List[int] = [-1] * len(vnfs)
        residual = list(capacities)
        open_nodes: List[int] = []
        nodes_explored = 0

        # Precompute demand suffix sums for the volume bound.
        suffix = [0.0] * (len(demands) + 1)
        for i in range(len(demands) - 1, -1, -1):
            suffix[i] = suffix[i + 1] + demands[i]
        sorted_caps_desc = sorted(capacities, reverse=True)

        def completion_lower_bound(depth: int, open_count: int) -> int:
            """Min extra nodes to host the remaining demand by volume."""
            remaining = suffix[depth]
            free_open = sum(residual[i] for i in open_nodes)
            if remaining <= free_open + 1e-9:
                return 0
            remaining -= free_open
            extra = 0
            for cap in sorted_caps_desc:
                # Conservative: assume the largest closed capacities.
                extra += 1
                remaining -= cap
                if remaining <= 1e-9:
                    break
            return extra

        def search(depth: int) -> None:
            nonlocal best_count, best_assign, nodes_explored
            nodes_explored += 1
            open_count = len(open_nodes)
            if open_count + completion_lower_bound(depth, open_count) >= best_count:
                return
            if depth == len(vnfs):
                if open_count < best_count:
                    best_count = open_count
                    best_assign = list(assign)
                return
            demand = demands[depth]
            # (a) Existing open nodes, skipping equal-residual duplicates.
            seen_residuals = set()
            for i in sorted(open_nodes, key=lambda i: residual[i]):
                if residual[i] < demand - 1e-9:
                    continue
                key = round(residual[i], 9)
                if key in seen_residuals:
                    continue
                seen_residuals.add(key)
                assign[depth] = i
                residual[i] -= demand
                search(depth + 1)
                residual[i] += demand
                assign[depth] = -1
            # (b) Open a closed node, one per distinct capacity.
            seen_caps = set()
            for i in range(len(nodes)):
                if i in open_nodes:
                    continue
                if capacities[i] < demand - 1e-9:
                    continue
                key = round(capacities[i], 9)
                if key in seen_caps:
                    continue
                seen_caps.add(key)
                open_nodes.append(i)
                assign[depth] = i
                residual[i] -= demand
                search(depth + 1)
                residual[i] += demand
                assign[depth] = -1
                open_nodes.pop()

        search(0)
        if best_assign is None:
            raise InfeasiblePlacementError(
                "exact search found no feasible placement"
            )
        placement: Dict[str, Hashable] = {
            vnfs[i].name: nodes[best_assign[i]] for i in range(len(vnfs))
        }
        result = PlacementResult(
            placement=placement,
            problem=problem,
            iterations=nodes_explored,
            algorithm=self.name,
        )
        result.validate()
        return result
