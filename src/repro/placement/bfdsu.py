"""BFDSU — Best Fit Decreasing using Smallest Used nodes (Algorithm 1).

The paper's priority-driven weighted placement algorithm:

1. Sort VNFs in descending order of total demand ``D_f^sum = M_f D_f``.
2. For each VNF ``f``, gather the candidate set ``V_rst(f)`` of nodes
   with sufficient remaining capacity — first from the *Used* list
   (nodes already hosting a VNF), falling back to the *Spare* list only
   when no used node fits.  This priority is what consolidates load and
   drives Eq. (14).
3. Among candidates (sorted ascending by remaining capacity
   ``RST(v)``), draw the target node with probability proportional to
   ``P_rst(v) = 1 / (1 + RST(v) - D_f^sum)`` — a *weighted best fit*:
   the tightest-fitting node is most likely but not certain, which keeps
   the search from dead-ending on the hard instances where pure best fit
   paints itself into a corner.
4. If no node fits at all, "go back to Begin": restart the whole
   construction with fresh random draws (bounded by ``max_restarts``).

Worst-case guarantee: the asymptotic performance bound of Theorem 2 is
2 — BFDSU never uses more than twice the optimal number of nodes
(asymptotically), because any two consecutive used nodes (sorted by
capacity) must be more than one node-capacity full in total.

Iteration accounting: ``iterations`` counts weighted random draws
performed — one per VNF placement decision, including the decisions of
construction attempts later discarded by a restart.  This is the
execution-cost proxy of the paper's Fig. 10: bounded below by ``|F|`` and
growing with every "go back to Begin".
"""

from __future__ import annotations

from typing import Dict, Hashable, List, Optional, Tuple


from repro.exceptions import MaxRestartsExceededError
from repro.placement.base import (
    PlacementAlgorithm,
    PlacementProblem,
    PlacementResult,
    demand_sorted_vnfs,
)
from repro.seeding import RngLike, resolve_rng

#: The additive constant keeping the weight denominator nonzero (paper).
WEIGHT_OFFSET = 1.0


def placement_weights(
    residuals: List[float], demand: float, offset: float = WEIGHT_OFFSET
) -> List[float]:
    """The BFDSU weights ``P_rst(v) = 1 / (offset + RST(v) - D_f^sum)``.

    ``residuals`` must all be >= ``demand`` (candidates only).  Exposed as
    a function so tests can check the distribution directly.
    """
    return [1.0 / (offset + rst - demand) for rst in residuals]


class BFDSUPlacement(PlacementAlgorithm):
    """The paper's BFDSU placement algorithm.

    Parameters
    ----------
    rng:
        Seeded random generator (reproducibility).  A fresh default
        generator is created when omitted.
    max_restarts:
        Bound on "go back to Begin" restarts before raising
        :class:`MaxRestartsExceededError`.
    weight_offset:
        The constant added to the weight denominator; the paper uses 1.
    """

    name = "BFDSU"

    def __init__(
        self,
        rng: Optional[RngLike] = None,
        max_restarts: int = 200,
        weight_offset: float = WEIGHT_OFFSET,
    ) -> None:
        # ``None`` means the documented default seed
        # (repro.seeding.DEFAULT_SEED), never OS entropy: two
        # default-constructed BFDSUPlacement objects place identically.
        self._rng = resolve_rng(rng)
        self._max_restarts = max_restarts
        self._weight_offset = weight_offset

    def place(self, problem: PlacementProblem) -> PlacementResult:
        problem.check_necessary_feasibility()
        vnfs = demand_sorted_vnfs(problem)
        attempts = 0
        draws = 0
        while attempts <= self._max_restarts:
            attempts += 1
            placement, attempt_draws = self._attempt(problem, vnfs)
            draws += attempt_draws
            if placement is not None:
                result = PlacementResult(
                    placement=placement,
                    problem=problem,
                    iterations=draws,
                    algorithm=self.name,
                )
                result.validate()
                return result
        raise MaxRestartsExceededError(
            f"BFDSU failed to find a feasible placement within "
            f"{self._max_restarts} restarts"
        )

    # ------------------------------------------------------------------
    # One construction attempt (lines 1-18 of Algorithm 1)
    # ------------------------------------------------------------------
    def _attempt(
        self, problem: PlacementProblem, vnfs: List
    ) -> Tuple[Optional[Dict[str, Hashable]], int]:
        residual: Dict[Hashable, float] = dict(problem.capacities)
        used: List[Hashable] = []
        used_set = set()
        # Spare list keeps the problem's node order (deterministic scan).
        spare: List[Hashable] = list(problem.capacities.keys())
        placement: Dict[str, Hashable] = {}
        draws = 0

        for vnf in vnfs:
            demand = vnf.total_demand
            candidates = [v for v in used if residual[v] >= demand - 1e-9]
            if not candidates:
                candidates = [v for v in spare if residual[v] >= demand - 1e-9]
            if not candidates:
                # Line 9: "Go back to Begin" — the restart loop in place().
                return None, draws
            draws += 1
            target = self._weighted_draw(candidates, residual, demand)
            placement[vnf.name] = target
            residual[target] -= demand
            if target not in used_set:
                used_set.add(target)
                used.append(target)
                spare.remove(target)
        return placement, draws

    def _weighted_draw(
        self,
        candidates: List[Hashable],
        residual: Dict[Hashable, float],
        demand: float,
    ) -> Hashable:
        """Lines 12-16: ascending-RST sort, weights, cumulative draw."""
        ordered = sorted(candidates, key=lambda v: (residual[v], str(v)))
        weights = placement_weights(
            [residual[v] for v in ordered], demand, self._weight_offset
        )
        prob_sum = sum(weights)
        xi = self._rng.uniform(0.0, prob_sum)
        cumulative = 0.0
        for node, weight in zip(ordered, weights):
            cumulative += weight
            if xi < cumulative:
                return node
        # Floating-point edge: xi == prob_sum; take the last candidate.
        return ordered[-1]
