"""BFDSU — Best Fit Decreasing using Smallest Used nodes (Algorithm 1).

The paper's priority-driven weighted placement algorithm:

1. Sort VNFs in descending order of total demand ``D_f^sum = M_f D_f``.
2. For each VNF ``f``, gather the candidate set ``V_rst(f)`` of nodes
   with sufficient remaining capacity — first from the *Used* list
   (nodes already hosting a VNF), falling back to the *Spare* list only
   when no used node fits.  This priority is what consolidates load and
   drives Eq. (14).
3. Among candidates (sorted ascending by remaining capacity
   ``RST(v)``), draw the target node with probability proportional to
   ``P_rst(v) = 1 / (1 + RST(v) - D_f^sum)`` — a *weighted best fit*:
   the tightest-fitting node is most likely but not certain, which keeps
   the search from dead-ending on the hard instances where pure best fit
   paints itself into a corner.
4. If no node fits at all, "go back to Begin": restart the whole
   construction with fresh random draws (bounded by ``max_restarts``).

Worst-case guarantee: the asymptotic performance bound of Theorem 2 is
2 — BFDSU never uses more than twice the optimal number of nodes
(asymptotically), because any two consecutive used nodes (sorted by
capacity) must be more than one node-capacity full in total.

Iteration accounting: ``iterations`` counts weighted random draws
performed — one per VNF placement decision, including the decisions of
construction attempts later discarded by a restart.  This is the
execution-cost proxy of the paper's Fig. 10: bounded below by ``|F|`` and
growing with every "go back to Begin".

Array-native kernel
-------------------
The construction loop runs on numpy state: a residual-capacity vector
indexed like ``ScenarioArrays.node_keys``, a boolean used mask, and a
per-place() stable node ordering (``str(node)`` ranks, computed once —
the legacy path re-sorted candidates with ``str`` keys on every draw).
Each draw finds the candidate set with one vectorized comparison,
orders it by ``(residual, str rank)`` via ``np.lexsort`` and performs
the weighted draw via ``cumsum``/``searchsorted``.  The RNG is consumed
in exactly the legacy draw order — one ``uniform(0, sum(weights))`` per
placement decision over the identically-ordered candidate list — so
placements are byte-identical per seed to the pre-kernel implementation
(kept as ``reference_bfdsu_place`` under ``benchmarks/_reference_impl``;
parity is pinned by ``tests/core/test_solver_kernel_parity.py``).
"""

from __future__ import annotations

from typing import Dict, Hashable, List, Optional, Tuple

import numpy as np

from repro.core.deltas import (
    FIT_EPS,
    UniformBlock,
    weighted_draw_index as _weighted_draw_index,
)
from repro.exceptions import MaxRestartsExceededError
from repro.placement.base import (
    PlacementAlgorithm,
    PlacementProblem,
    PlacementResult,
    demand_sorted_vnfs,
)
from repro.seeding import RngLike, resolve_rng

__all__ = [
    "BFDSUPlacement",
    "FIT_EPS",
    "WEIGHT_OFFSET",
    "placement_weights",
    "weighted_draw_index",
]

#: The additive constant keeping the weight denominator nonzero (paper).
WEIGHT_OFFSET = 1.0


def placement_weights(
    residuals: List[float], demand: float, offset: float = WEIGHT_OFFSET
) -> List[float]:
    """The BFDSU weights ``P_rst(v) = 1 / (offset + RST(v) - D_f^sum)``.

    ``residuals`` must all be >= ``demand`` (candidates only).  Exposed as
    a function so tests can check the distribution directly.
    """
    return [1.0 / (offset + rst - demand) for rst in residuals]


def weighted_draw_index(
    residuals: np.ndarray,
    demand: float,
    rng: Optional[np.random.Generator] = None,
    offset: float = WEIGHT_OFFSET,
    u01: Optional[float] = None,
) -> int:
    """Draw a position from ``residuals`` (ascending-RST candidate order).

    The kernel form of Algorithm 1's lines 12-16, shared through
    :func:`repro.core.deltas.weighted_draw_index` (kept here as the
    documented public name): weights via :func:`placement_weights`
    semantics, one ``uniform(0, sum(weights))`` RNG consumption (or a
    pre-drawn ``u01`` from a :class:`~repro.core.deltas.UniformBlock`),
    selection by ``searchsorted`` over the cumulative weights.
    """
    return _weighted_draw_index(residuals, demand, rng, offset, u01=u01)


class BFDSUPlacement(PlacementAlgorithm):
    """The paper's BFDSU placement algorithm (array-native kernel).

    Parameters
    ----------
    rng:
        Seeded random generator (reproducibility).  A fresh default
        generator is created when omitted.
    max_restarts:
        Bound on "go back to Begin" restarts before raising
        :class:`MaxRestartsExceededError`.
    weight_offset:
        The constant added to the weight denominator; the paper uses 1.
    network:
        Optional :class:`~repro.topology.network.NetworkModel` built for
        this problem's VNF/node index space.  When given, the candidate
        set ``V_rst(f)`` additionally excludes nodes where routing
        ``f``'s chain flows would oversubscribe some link — the
        bandwidth residuals update incrementally alongside the capacity
        residuals, and "no bandwidth-feasible node" triggers the same
        "go back to Begin" restart as a capacity dead-end.  ``None``
        (the default) leaves the construction — including its RNG
        consumption — byte-identical per seed to the unconstrained
        kernel.
    draw_block:
        When > 0, pre-draw uniform doubles in blocks of this size
        (:class:`~repro.core.deltas.UniformBlock`) instead of one
        ``Generator.uniform`` call per placement decision.  Placements
        stay byte-identical per seed — the k-th draw reads the k-th
        stream double either way — but the per-call RNG dispatch cost
        is amortized, which matters at million-VNF scale.  ``0`` (the
        default) keeps the legacy one-call-per-draw behaviour.
    """

    name = "BFDSU"

    def __init__(
        self,
        rng: Optional[RngLike] = None,
        max_restarts: int = 200,
        weight_offset: float = WEIGHT_OFFSET,
        network=None,
        draw_block: int = 0,
    ) -> None:
        # ``None`` means the documented default seed
        # (repro.seeding.DEFAULT_SEED), never OS entropy: two
        # default-constructed BFDSUPlacement objects place identically.
        self._rng = resolve_rng(rng)
        self._max_restarts = max_restarts
        self._weight_offset = weight_offset
        self._network = network
        # The block persists across place() calls so the k-th draw of
        # the object's lifetime always reads the k-th stream double.
        self._draws = (
            UniformBlock(self._rng, draw_block) if draw_block > 0 else None
        )

    def place(self, problem: PlacementProblem) -> PlacementResult:
        problem.check_necessary_feasibility()
        vnfs = demand_sorted_vnfs(problem)
        arrays = problem.arrays()
        # Stable node ordering, cached with the scenario: candidates
        # tie-break ascending by str(node) exactly as the legacy
        # per-draw ``sorted(..., key=(residual, str(v)))`` did.
        str_rank = arrays.node_str_rank()
        demands = [vnf.total_demand for vnf in vnfs]

        attempts = 0
        draws = 0
        while attempts <= self._max_restarts:
            attempts += 1
            placement, attempt_draws = self._attempt(
                arrays, vnfs, demands, str_rank
            )
            draws += attempt_draws
            if placement is not None:
                result = PlacementResult(
                    placement=placement,
                    problem=problem,
                    iterations=draws,
                    algorithm=self.name,
                )
                result.validate()
                return result
        raise MaxRestartsExceededError(
            f"BFDSU failed to find a feasible placement within "
            f"{self._max_restarts} restarts"
        )

    # ------------------------------------------------------------------
    # One construction attempt (lines 1-18 of Algorithm 1)
    # ------------------------------------------------------------------
    def _attempt(
        self,
        arrays,
        vnfs: List,
        demands: List[float],
        str_rank: np.ndarray,
    ) -> Tuple[Optional[Dict[str, Hashable]], int]:
        num_nodes = len(arrays.node_keys)
        offset = self._weight_offset
        network = self._network
        # Twin residual state: the numpy vector feeds the vectorized
        # spare-node scans, the plain-float list the scalar used-node
        # draws.  Both see the identical IEEE updates.
        residual = arrays.A_v.copy()
        res_list: List[float] = residual.tolist()
        rank_list: List[int] = str_rank.tolist()
        spare_mask = np.ones(num_nodes, dtype=bool)
        used: List[int] = []  # first-use order, like the legacy list
        placement: Dict[str, Hashable] = {}
        draws = 0
        if network is not None:
            # Bandwidth state: partial placement in the scenario's VNF
            # index space plus per-link routed-flow residuals.
            pl_vec = np.full(len(arrays.vnf_names), -1, dtype=np.int64)
            link_loads = np.zeros(network.num_links, dtype=np.float64)

        for vnf, demand in zip(vnfs, demands):
            threshold = demand - FIT_EPS
            if network is not None:
                fi = arrays.vnf_index[vnf.name]
                cands = [
                    v
                    for v in used
                    if res_list[v] >= threshold
                    and network.fits(fi, v, pl_vec, link_loads)
                ]
            else:
                cands = [v for v in used if res_list[v] >= threshold]
            if cands:
                draws += 1
                # Used-node draws see a handful of candidates; the
                # scalar path beats numpy's per-call overhead there and
                # consumes the RNG identically (same ordering, same
                # left-to-right weight accumulation).
                cands.sort(key=lambda v: (res_list[v], rank_list[v]))
                weights = [
                    1.0 / (offset + res_list[v] - demand) for v in cands
                ]
                total = sum(weights)
                if self._draws is not None:
                    # uniform(0, s) is s * random() bitwise: the batched
                    # double selects the identical target.
                    xi = total * self._draws.next()
                else:
                    xi = self._rng.uniform(0.0, total)
                target = cands[-1]
                cumulative = 0.0
                for node, weight in zip(cands, weights):
                    cumulative += weight
                    if xi < cumulative:
                        target = node
                        break
            else:
                # Spare fallback scans every node: vectorized compare,
                # lexsort by the legacy (RST, str(node)) key, and the
                # cumsum/searchsorted weighted draw.
                candidates = (spare_mask & (residual >= threshold)).nonzero()[
                    0
                ]
                if network is not None and len(candidates):
                    candidates = np.array(
                        [
                            v
                            for v in candidates
                            if network.fits(fi, int(v), pl_vec, link_loads)
                        ],
                        dtype=np.int64,
                    )
                if not len(candidates):
                    # Line 9: "Go back to Begin" — the restart loop.
                    return None, draws
                draws += 1
                order = candidates[
                    np.lexsort((str_rank[candidates], residual[candidates]))
                ]
                u01 = (
                    self._draws.next() if self._draws is not None else None
                )
                target = int(
                    order[
                        weighted_draw_index(
                            residual[order], demand, self._rng, offset,
                            u01=u01,
                        )
                    ]
                )
            placement[vnf.name] = arrays.node_keys[target]
            residual[target] -= demand
            res_list[target] -= demand
            if network is not None:
                network.add_flows(fi, target, pl_vec, link_loads)
                pl_vec[fi] = target
            if spare_mask[target]:
                spare_mask[target] = False
                used.append(target)
        return placement, draws
