"""BFD — deterministic Best-Fit-Decreasing with Used/Spare priority.

The ablation of BFDSU's randomization: identical structure (demand-sorted
VNFs, Used-before-Spare candidate sets) but the target node is always the
candidate with the *minimum* remaining capacity — the choice BFDSU makes
with the highest probability.  Comparing BFD to BFDSU quantifies what the
weighted random draw buys (feasibility on tight instances) and costs
(occasional looser packings).
"""

from __future__ import annotations

from typing import Dict, Hashable, List

from repro.exceptions import InfeasiblePlacementError
from repro.placement.base import (
    PlacementAlgorithm,
    PlacementProblem,
    PlacementResult,
    demand_sorted_vnfs,
)


class BFDPlacement(PlacementAlgorithm):
    """Deterministic best-fit-decreasing with the Used/Spare priority."""

    name = "BFD"

    def __init__(self, use_used_list: bool = True) -> None:
        #: When False, candidates are drawn from all nodes at once — the
        #: second ablation knob (does the Used/Spare priority matter?).
        self._use_used_list = use_used_list

    def place(self, problem: PlacementProblem) -> PlacementResult:
        problem.check_necessary_feasibility()
        residual: Dict[Hashable, float] = dict(problem.capacities)
        used: List[Hashable] = []
        used_set = set()
        spare: List[Hashable] = list(problem.capacities.keys())
        placement: Dict[str, Hashable] = {}
        iterations = 0

        for vnf in demand_sorted_vnfs(problem):
            demand = vnf.total_demand
            iterations += 1
            if self._use_used_list:
                candidates = [v for v in used if residual[v] >= demand - 1e-9]
                if not candidates:
                    candidates = [
                        v for v in spare if residual[v] >= demand - 1e-9
                    ]
            else:
                candidates = [
                    v for v in residual if residual[v] >= demand - 1e-9
                ]
            if not candidates:
                raise InfeasiblePlacementError(
                    f"BFD could not place VNF {vnf.name!r} "
                    f"(demand {demand:.6g})"
                )
            target = min(candidates, key=lambda v: (residual[v], str(v)))
            placement[vnf.name] = target
            residual[target] -= demand
            if target not in used_set:
                used_set.add(target)
                used.append(target)
                if target in spare:
                    spare.remove(target)

        result = PlacementResult(
            placement=placement,
            problem=problem,
            iterations=iterations,
            algorithm=self.name,
        )
        result.validate()
        return result
