"""NAH — Node Assignment Heuristic baseline (Xia et al. [12]).

Re-implemented from the paper's description (Section V-B):

    "For each VNF chain, NAH first places the most resource-demanding VNF
    at the node with the largest remaining resource capacity.  It then
    tries to place the other VNFs of that service chain at the same node
    as many as possible."

NAH is chain-aware but keeps no Used/Spare state; by anchoring every
chain at the emptiest node it behaves like worst-fit at the chain level,
which is why it spreads load and trails BFDSU on utilization (Fig. 5-7).

VNFs not on any chain (or all VNFs, when the problem carries no chains)
are treated as single-VNF chains.

Iteration accounting: one per anchor-node selection, one per same-node
placement attempt, and one extra per fallback scan — the "node
selection operations" cost the paper's Fig. 10 tracks (NAH ~3x BFDSU).
"""

from __future__ import annotations

from typing import Dict, Hashable, List, Optional

from repro.exceptions import InfeasiblePlacementError
from repro.nfv.vnf import VNF
from repro.placement.base import (
    PlacementAlgorithm,
    PlacementProblem,
    PlacementResult,
)


class NAHPlacement(PlacementAlgorithm):
    """Node Assignment Heuristic for VNF placement."""

    name = "NAH"

    def place(self, problem: PlacementProblem) -> PlacementResult:
        problem.check_necessary_feasibility()
        residual: Dict[Hashable, float] = dict(problem.capacities)
        placement: Dict[str, Hashable] = {}
        iterations = 0

        for chain_vnfs in self._chain_groups(problem):
            # Anchor: the most demanding unplaced VNF of the chain goes to
            # the node with the largest remaining capacity.
            pending = [f for f in chain_vnfs if f.name not in placement]
            if not pending:
                continue
            pending.sort(key=lambda f: (-f.total_demand, f.name))
            anchor_vnf = pending[0]
            iterations += 1
            anchor = self._largest_residual_node(residual)
            if residual[anchor] < anchor_vnf.total_demand - 1e-9:
                anchor = self._fitting_node(residual, anchor_vnf.total_demand)
                iterations += 1
                if anchor is None:
                    raise InfeasiblePlacementError(
                        f"NAH could not place VNF {anchor_vnf.name!r} "
                        f"(demand {anchor_vnf.total_demand:.6g})"
                    )
            placement[anchor_vnf.name] = anchor
            residual[anchor] -= anchor_vnf.total_demand
            # Pack the rest of the chain on the anchor as far as possible.
            for vnf in pending[1:]:
                iterations += 1
                if residual[anchor] >= vnf.total_demand - 1e-9:
                    placement[vnf.name] = anchor
                    residual[anchor] -= vnf.total_demand
                    continue
                # Fallback costs two node-selection operations: the
                # failed same-node attempt's rescan plus the new scan.
                iterations += 2
                fallback = self._largest_residual_node(residual)
                if residual[fallback] < vnf.total_demand - 1e-9:
                    fallback = self._fitting_node(residual, vnf.total_demand)
                    if fallback is None:
                        raise InfeasiblePlacementError(
                            f"NAH could not place VNF {vnf.name!r} "
                            f"(demand {vnf.total_demand:.6g})"
                        )
                placement[vnf.name] = fallback
                residual[fallback] -= vnf.total_demand

        result = PlacementResult(
            placement=placement,
            problem=problem,
            iterations=iterations,
            algorithm=self.name,
        )
        result.validate()
        return result

    # ------------------------------------------------------------------
    # Helpers
    # ------------------------------------------------------------------
    @staticmethod
    def _chain_groups(problem: PlacementProblem) -> List[List[VNF]]:
        """The VNF groups NAH processes: one per chain, then leftovers."""
        groups: List[List[VNF]] = []
        covered = set()
        for chain in problem.chains:
            group = [problem.vnf(name) for name in chain if name not in covered]
            if group:
                groups.append(group)
                covered.update(f.name for f in group)
        leftovers = [f for f in problem.vnfs if f.name not in covered]
        # Process leftovers most-demanding first, one per "chain".
        leftovers.sort(key=lambda f: (-f.total_demand, f.name))
        groups.extend([f] for f in leftovers)
        # Chains with the most demanding anchors first: "NAH first places
        # the most resource-demanding VNF" — ordering chains by their
        # heaviest member keeps large anchors from arriving after the big
        # nodes have been fragmented.
        groups.sort(key=lambda g: -max(f.total_demand for f in g))
        return groups

    @staticmethod
    def _largest_residual_node(residual: Dict[Hashable, float]) -> Hashable:
        """The node with the most remaining capacity (ties by key repr)."""
        return max(residual, key=lambda v: (residual[v], str(v)))

    @staticmethod
    def _fitting_node(
        residual: Dict[Hashable, float], demand: float
    ) -> Optional[Hashable]:
        """Any node with room, preferring the largest residual."""
        fitting = [v for v in residual if residual[v] >= demand - 1e-9]
        if not fitting:
            return None
        return max(fitting, key=lambda v: (residual[v], str(v)))
