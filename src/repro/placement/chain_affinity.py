"""Chain-affinity BFDSU — a joint-objective placement extension.

The paper's Fig. 1 motivates converting *inter-server* chains into
*intra-server* chains: every chain hop that crosses nodes pays the link
latency ``L`` in Eq. (16).  BFDSU minimizes nodes in service but is
chain-blind; this extension biases its weighted draw toward nodes that
already host *neighbouring VNFs of the same chains*, reducing inter-node
hops at (empirically) no consolidation cost.

Mechanism: the candidate weight becomes

    ``P(v) = affinity_boost^a(v) / (1 + RST(v) - D_f^sum)``

where ``a(v)`` counts the already-placed chain neighbours of the VNF
being placed that live on ``v``.  With ``affinity_boost = 1`` this is
exactly BFDSU; the ablation benchmark sweeps the boost.
"""

from __future__ import annotations

from typing import Dict, Hashable, List, Optional, Set, Tuple

import numpy as np

from repro.exceptions import MaxRestartsExceededError
from repro.nfv.vnf import VNF
from repro.placement.base import (
    PlacementAlgorithm,
    PlacementProblem,
    PlacementResult,
    demand_sorted_vnfs,
)
from repro.placement.bfdsu import WEIGHT_OFFSET
from repro.seeding import resolve_rng


class ChainAffinityBFDSU(PlacementAlgorithm):
    """BFDSU with chain-neighbour affinity in the weighted draw.

    Parameters
    ----------
    rng:
        Seeded random generator.
    affinity_boost:
        Multiplicative weight factor per already-co-located chain
        neighbour; 1.0 reduces to plain BFDSU, larger values pull chains
        together harder.
    max_restarts:
        Bound on full restarts, as in BFDSU.
    """

    name = "ChainAffinityBFDSU"

    def __init__(
        self,
        rng: Optional[np.random.Generator] = None,
        affinity_boost: float = 4.0,
        max_restarts: int = 200,
    ) -> None:
        if affinity_boost < 1.0:
            raise ValueError(
                f"affinity boost must be >= 1, got {affinity_boost!r}"
            )
        # ``None`` means the documented default seed, not OS entropy.
        self._rng = resolve_rng(rng)
        self._boost = affinity_boost
        self._max_restarts = max_restarts

    def place(self, problem: PlacementProblem) -> PlacementResult:
        problem.check_necessary_feasibility()
        vnfs = demand_sorted_vnfs(problem)
        neighbours = _chain_neighbours(problem)
        attempts = 0
        draws = 0
        while attempts <= self._max_restarts:
            attempts += 1
            placement, attempt_draws = self._attempt(
                problem, vnfs, neighbours
            )
            draws += attempt_draws
            if placement is not None:
                result = PlacementResult(
                    placement=placement,
                    problem=problem,
                    iterations=draws,
                    algorithm=self.name,
                )
                result.validate()
                return result
        raise MaxRestartsExceededError(
            f"{self.name} failed within {self._max_restarts} restarts"
        )

    def _attempt(
        self,
        problem: PlacementProblem,
        vnfs: List[VNF],
        neighbours: Dict[str, Set[str]],
    ) -> Tuple[Optional[Dict[str, Hashable]], int]:
        residual: Dict[Hashable, float] = dict(problem.capacities)
        used: List[Hashable] = []
        used_set = set()
        spare: List[Hashable] = list(problem.capacities.keys())
        placement: Dict[str, Hashable] = {}
        draws = 0

        for vnf in vnfs:
            demand = vnf.total_demand
            candidates = [v for v in used if residual[v] >= demand - 1e-9]
            if not candidates:
                candidates = [v for v in spare if residual[v] >= demand - 1e-9]
            if not candidates:
                return None, draws
            draws += 1
            target = self._weighted_draw(
                candidates, residual, demand, vnf.name, neighbours, placement
            )
            placement[vnf.name] = target
            residual[target] -= demand
            if target not in used_set:
                used_set.add(target)
                used.append(target)
                spare.remove(target)
        return placement, draws

    def _weighted_draw(
        self,
        candidates: List[Hashable],
        residual: Dict[Hashable, float],
        demand: float,
        vnf_name: str,
        neighbours: Dict[str, Set[str]],
        placement: Dict[str, Hashable],
    ) -> Hashable:
        ordered = sorted(candidates, key=lambda v: (residual[v], str(v)))
        placed_neighbours = [
            placement[m]
            for m in neighbours.get(vnf_name, ())
            if m in placement
        ]
        weights = []
        for node in ordered:
            base = 1.0 / (WEIGHT_OFFSET + residual[node] - demand)
            affinity = sum(1 for n in placed_neighbours if n == node)
            weights.append(base * self._boost**affinity)
        xi = self._rng.uniform(0.0, sum(weights))
        cumulative = 0.0
        for node, weight in zip(ordered, weights):
            cumulative += weight
            if xi < cumulative:
                return node
        return ordered[-1]


def _chain_neighbours(problem: PlacementProblem) -> Dict[str, Set[str]]:
    """Adjacent-VNF map over all chains (hop partners in either direction)."""
    out: Dict[str, Set[str]] = {}
    for chain in problem.chains:
        for a, b in chain.hops():
            out.setdefault(a, set()).add(b)
            out.setdefault(b, set()).add(a)
    return out
