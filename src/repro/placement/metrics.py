"""Placement evaluation metrics and report rows (Figs. 5-10).

:func:`placement_report` condenses a :class:`PlacementResult` into the
four quantities the paper's placement figures track:

* average resource utilization of used nodes (Figs. 5-7),
* number of nodes in service (Fig. 8),
* total resource occupation — sum of used-node capacities (Fig. 9),
* iterations — algorithm-specific execution cost (Fig. 10).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Sequence

from repro.placement.base import PlacementResult


@dataclass(frozen=True)
class PlacementReport:
    """One report row: a placement result reduced to the paper's metrics."""

    algorithm: str
    average_utilization: float
    #: Float so Monte-Carlo averages keep fractions (paper: "8.56 nodes").
    nodes_in_service: float
    resource_occupation: float
    iterations: float

    def as_dict(self) -> Dict[str, float]:
        """Dictionary form for tabulation."""
        return {
            "algorithm": self.algorithm,
            "average_utilization": self.average_utilization,
            "nodes_in_service": self.nodes_in_service,
            "resource_occupation": self.resource_occupation,
            "iterations": self.iterations,
        }


def placement_report(result: PlacementResult) -> PlacementReport:
    """Reduce a placement result to the paper's figure metrics."""
    return PlacementReport(
        algorithm=result.algorithm,
        average_utilization=result.average_utilization,
        nodes_in_service=result.num_used_nodes,
        resource_occupation=result.total_occupied_capacity,
        iterations=result.iterations,
    )


def mean_reports(reports: Sequence[PlacementReport]) -> PlacementReport:
    """Average several report rows (Monte-Carlo repetitions of one config).

    All rows must come from the same algorithm.
    """
    if not reports:
        raise ValueError("cannot average zero reports")
    algorithms = {r.algorithm for r in reports}
    if len(algorithms) != 1:
        raise ValueError(f"mixed algorithms in mean_reports: {algorithms}")
    n = len(reports)
    return PlacementReport(
        algorithm=reports[0].algorithm,
        average_utilization=sum(r.average_utilization for r in reports) / n,
        nodes_in_service=sum(r.nodes_in_service for r in reports) / n,
        resource_occupation=sum(r.resource_occupation for r in reports) / n,
        iterations=sum(r.iterations for r in reports) / n,
    )


def enhancement_ratio(baseline: float, improved: float) -> float:
    """The paper's improvement metric ``(baseline - improved) / baseline``.

    Positive when ``improved`` is smaller (better for latency/cost
    metrics); for utilization the paper reports the inverse direction, so
    callers pass arguments accordingly.
    """
    if baseline == 0.0:
        return 0.0
    return (baseline - improved) / baseline
