"""Multi-resource placement — CPU plus secondary resource constraints.

The paper treats CPU as the bottleneck (``A_v`` is CPU-bounded) and says
other hardware resources (memory, network bandwidth) "are modeled as
additional constraints".  This module implements exactly that extension:

* :class:`ResourceVector` — a named bundle of per-resource quantities.
* :class:`MultiResourceProblem` — VNF demand vectors + node capacity
  vectors over a shared resource-name set.
* :class:`VectorBFDSU` — BFDSU generalized to vectors: feasibility means
  *every* resource fits, and the "remaining space" driving the weighted
  draw is the residual of the *dominant* (scarcest) resource, in the
  spirit of dominant-resource fairness.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Hashable, List, Mapping, Optional, Tuple


from repro.exceptions import (
    InfeasiblePlacementError,
    MaxRestartsExceededError,
    ValidationError,
)
from repro.placement.bfdsu import WEIGHT_OFFSET
from repro.seeding import RngLike, resolve_rng


@dataclass(frozen=True)
class ResourceVector:
    """An immutable named bundle of resource quantities."""

    quantities: Tuple[Tuple[str, float], ...]

    def __init__(self, **quantities: float) -> None:
        if not quantities:
            raise ValidationError("a resource vector needs >= 1 resource")
        for name, value in quantities.items():
            if value < 0.0:
                raise ValidationError(
                    f"resource {name!r} must be non-negative, got {value!r}"
                )
        object.__setattr__(
            self, "quantities", tuple(sorted(quantities.items()))
        )

    @property
    def names(self) -> Tuple[str, ...]:
        """Resource names, sorted."""
        return tuple(name for name, _ in self.quantities)

    def get(self, name: str) -> float:
        """Quantity of one resource."""
        for n, v in self.quantities:
            if n == name:
                return v
        raise ValidationError(f"unknown resource {name!r}")

    def fits_within(self, other: "ResourceVector") -> bool:
        """Whether every component fits in ``other`` (same names)."""
        self._check_compatible(other)
        return all(
            v <= other.get(n) + 1e-9 for n, v in self.quantities
        )

    def minus(self, other: "ResourceVector") -> "ResourceVector":
        """Componentwise subtraction (used for residuals)."""
        self._check_compatible(other)
        return ResourceVector(
            **{n: v - other.get(n) for n, v in self.quantities}
        )

    def plus(self, other: "ResourceVector") -> "ResourceVector":
        """Componentwise addition."""
        self._check_compatible(other)
        return ResourceVector(
            **{n: v + other.get(n) for n, v in self.quantities}
        )

    def dominant_share(self, capacity: "ResourceVector") -> float:
        """The largest per-resource fraction of ``capacity`` this uses."""
        self._check_compatible(capacity)
        shares = []
        for name, value in self.quantities:
            cap = capacity.get(name)
            if cap <= 0.0:
                if value > 0.0:
                    return float("inf")
                continue
            shares.append(value / cap)
        return max(shares) if shares else 0.0

    def _check_compatible(self, other: "ResourceVector") -> None:
        if self.names != other.names:
            raise ValidationError(
                f"resource name mismatch: {self.names} vs {other.names}"
            )


@dataclass(frozen=True)
class MultiResourceProblem:
    """VNF demand vectors and node capacity vectors.

    Parameters
    ----------
    demands:
        ``vnf_name -> total demand vector`` (``M_f`` already folded in).
    capacities:
        ``node_key -> capacity vector``; every vector shares one
        resource-name set.
    """

    demands: Mapping[str, ResourceVector]
    capacities: Mapping[Hashable, ResourceVector]

    def __post_init__(self) -> None:
        if not self.demands:
            raise ValidationError("no VNFs to place")
        if not self.capacities:
            raise ValidationError("no compute nodes")
        names = next(iter(self.capacities.values())).names
        for vec in list(self.demands.values()) + list(self.capacities.values()):
            if vec.names != names:
                raise ValidationError(
                    "all vectors must share one resource-name set"
                )

    def check_necessary_feasibility(self) -> None:
        """Per-resource volume and biggest-item checks.

        Raises
        ------
        InfeasiblePlacementError
            When some VNF exceeds every node on some resource, or the
            aggregate demand of some resource exceeds its aggregate
            capacity.
        """
        names = next(iter(self.capacities.values())).names
        for vnf_name, demand in self.demands.items():
            if not any(
                demand.fits_within(cap) for cap in self.capacities.values()
            ):
                raise InfeasiblePlacementError(
                    f"VNF {vnf_name!r} fits no node on some resource"
                )
        for name in names:
            total_demand = sum(d.get(name) for d in self.demands.values())
            total_capacity = sum(
                c.get(name) for c in self.capacities.values()
            )
            if total_demand > total_capacity + 1e-9:
                raise InfeasiblePlacementError(
                    f"resource {name!r}: total demand {total_demand:.6g} "
                    f"exceeds total capacity {total_capacity:.6g}"
                )


@dataclass
class MultiResourceResult:
    """A feasible multi-resource placement."""

    placement: Dict[str, Hashable]
    problem: MultiResourceProblem
    iterations: int = 0
    algorithm: str = "VectorBFDSU"

    def node_loads(self) -> Dict[Hashable, ResourceVector]:
        """Aggregate demand vector per used node."""
        loads: Dict[Hashable, ResourceVector] = {}
        for vnf_name, node in self.placement.items():
            demand = self.problem.demands[vnf_name]
            loads[node] = (
                loads[node].plus(demand) if node in loads else demand
            )
        return loads

    @property
    def num_used_nodes(self) -> int:
        """Nodes in service."""
        return len(self.node_loads())

    def average_dominant_utilization(self) -> float:
        """Mean dominant-resource share over used nodes (Eq. 13 analog)."""
        loads = self.node_loads()
        if not loads:
            return 0.0
        return sum(
            load.dominant_share(self.problem.capacities[node])
            for node, load in loads.items()
        ) / len(loads)

    def validate(self) -> None:
        """Every VNF placed once; every node within capacity per resource.

        Raises
        ------
        ValidationError
            On an unplaced VNF or any per-resource overflow.
        """
        for vnf_name in self.problem.demands:
            if vnf_name not in self.placement:
                raise ValidationError(f"VNF {vnf_name!r} unplaced")
        for node, load in self.node_loads().items():
            capacity = self.problem.capacities.get(node)
            if capacity is None:
                raise ValidationError(f"unknown node {node!r}")
            if not load.fits_within(capacity):
                raise ValidationError(
                    f"node {node!r} over capacity on some resource"
                )


class VectorBFDSU:
    """BFDSU generalized to resource vectors (dominant-resource residual)."""

    name = "VectorBFDSU"

    def __init__(
        self,
        rng: Optional[RngLike] = None,
        max_restarts: int = 200,
    ) -> None:
        # ``None`` means the documented default seed, not OS entropy.
        self._rng = resolve_rng(rng)
        self._max_restarts = max_restarts

    def place(self, problem: MultiResourceProblem) -> MultiResourceResult:
        problem.check_necessary_feasibility()
        # Demand order: by dominant share of the *average* node, descending.
        avg_capacity = _mean_capacity(problem)
        order = sorted(
            problem.demands,
            key=lambda name: (
                -problem.demands[name].dominant_share(avg_capacity),
                name,
            ),
        )
        attempts = 0
        draws = 0
        while attempts <= self._max_restarts:
            attempts += 1
            placement, attempt_draws = self._attempt(problem, order)
            draws += attempt_draws
            if placement is not None:
                result = MultiResourceResult(
                    placement=placement,
                    problem=problem,
                    iterations=draws,
                    algorithm=self.name,
                )
                result.validate()
                return result
        raise MaxRestartsExceededError(
            f"VectorBFDSU failed within {self._max_restarts} restarts"
        )

    def _attempt(
        self, problem: MultiResourceProblem, order: List[str]
    ) -> Tuple[Optional[Dict[str, Hashable]], int]:
        residual: Dict[Hashable, ResourceVector] = dict(problem.capacities)
        used: List[Hashable] = []
        used_set = set()
        spare: List[Hashable] = list(problem.capacities.keys())
        placement: Dict[str, Hashable] = {}
        draws = 0

        for vnf_name in order:
            demand = problem.demands[vnf_name]
            candidates = [
                v for v in used if demand.fits_within(residual[v])
            ]
            if not candidates:
                candidates = [
                    v for v in spare if demand.fits_within(residual[v])
                ]
            if not candidates:
                return None, draws
            draws += 1
            target = self._weighted_draw(
                candidates, residual, demand, problem
            )
            placement[vnf_name] = target
            residual[target] = residual[target].minus(demand)
            if target not in used_set:
                used_set.add(target)
                used.append(target)
                spare.remove(target)
        return placement, draws

    def _weighted_draw(
        self,
        candidates: List[Hashable],
        residual: Dict[Hashable, ResourceVector],
        demand: ResourceVector,
        problem: MultiResourceProblem,
    ) -> Hashable:
        # "Remaining space" = dominant residual fraction after placing:
        # smaller leftover -> tighter fit -> larger weight.
        def leftover(v: Hashable) -> float:
            after = residual[v].minus(demand)
            capacity = problem.capacities[v]
            # Slack as the *minimum* remaining fraction across resources
            # (the scarcest resource governs future usability).
            fractions = [
                after.get(name) / capacity.get(name)
                for name in capacity.names
                if capacity.get(name) > 0.0
            ]
            return min(fractions) if fractions else 0.0

        ordered = sorted(candidates, key=lambda v: (leftover(v), str(v)))
        weights = [
            1.0 / (WEIGHT_OFFSET + leftover(v)) for v in ordered
        ]
        xi = self._rng.uniform(0.0, sum(weights))
        cumulative = 0.0
        for node, weight in zip(ordered, weights):
            cumulative += weight
            if xi < cumulative:
                return node
        return ordered[-1]


def _mean_capacity(problem: MultiResourceProblem) -> ResourceVector:
    """Componentwise mean of the node capacity vectors."""
    names = next(iter(problem.capacities.values())).names
    count = len(problem.capacities)
    return ResourceVector(
        **{
            name: sum(c.get(name) for c in problem.capacities.values())
            / count
            for name in names
        }
    )
