"""Random feasible placement — a statistical floor for comparisons.

Each VNF (demand-sorted, for comparability) is placed on a node drawn
uniformly from the currently feasible set.  No consolidation pressure at
all; every consolidation metric should beat this baseline, and the tests
use it to confirm the metrics move in the right direction.
"""

from __future__ import annotations

from typing import Dict, Hashable, Optional


from repro.exceptions import InfeasiblePlacementError
from repro.placement.base import (
    PlacementAlgorithm,
    PlacementProblem,
    PlacementResult,
    demand_sorted_vnfs,
)
from repro.seeding import RngLike, resolve_rng


class RandomFitPlacement(PlacementAlgorithm):
    """Uniformly random feasible placement."""

    name = "RandomFit"

    def __init__(self, rng: Optional[RngLike] = None) -> None:
        # ``None`` means the documented default seed, not OS entropy.
        self._rng = resolve_rng(rng)

    def place(self, problem: PlacementProblem) -> PlacementResult:
        problem.check_necessary_feasibility()
        residual: Dict[Hashable, float] = dict(problem.capacities)
        placement: Dict[str, Hashable] = {}
        iterations = 0
        for vnf in demand_sorted_vnfs(problem):
            demand = vnf.total_demand
            iterations += 1
            candidates = [v for v in residual if residual[v] >= demand - 1e-9]
            if not candidates:
                raise InfeasiblePlacementError(
                    f"random fit dead-ended at VNF {vnf.name!r} "
                    f"(demand {demand:.6g})"
                )
            target = candidates[int(self._rng.integers(0, len(candidates)))]
            placement[vnf.name] = target
            residual[target] -= demand
        result = PlacementResult(
            placement=placement,
            problem=problem,
            iterations=iterations,
            algorithm=self.name,
        )
        result.validate()
        return result
