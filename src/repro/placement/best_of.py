"""Best-of-K wrapper for randomized placement algorithms.

BFDSU is randomized; one draw is cheap (Fig. 10), so a deployment
controller can afford several independent runs and keep the best — a
restart metaheuristic the paper's cost analysis implicitly prices.
:class:`BestOfKPlacement` wraps any (typically randomized) placement
algorithm factory and selects by the Eq. (13)/(14) objective:
fewest nodes in service, ties broken by highest average utilization.
"""

from __future__ import annotations

from typing import Callable, Optional

import numpy as np

from repro.exceptions import InfeasiblePlacementError, ValidationError
from repro.placement.base import (
    PlacementAlgorithm,
    PlacementProblem,
    PlacementResult,
)
from repro.seeding import resolve_rng


class BestOfKPlacement(PlacementAlgorithm):
    """Run a placement algorithm K times, keep the best solution.

    Parameters
    ----------
    factory:
        Callable ``(run_index, rng) -> PlacementAlgorithm`` building a
        fresh (independently seeded) algorithm per run.
    k:
        Number of independent runs.
    rng:
        Master generator; per-run generators are spawned from it so the
        whole ensemble is reproducible from one seed.
    """

    name = "BestOfK"

    def __init__(
        self,
        factory: Callable[[int, np.random.Generator], PlacementAlgorithm],
        k: int = 5,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        if k < 1:
            raise ValidationError(f"k must be >= 1, got {k!r}")
        self._factory = factory
        self._k = k
        # ``None`` means the documented default seed, not OS entropy.
        self._rng = resolve_rng(rng)

    def place(self, problem: PlacementProblem) -> PlacementResult:
        best: Optional[PlacementResult] = None
        total_iterations = 0
        failures = 0
        for run in range(self._k):
            child = self._rng.spawn(1)[0]
            algorithm = self._factory(run, child)
            try:
                result = algorithm.place(problem)
            except InfeasiblePlacementError:
                failures += 1
                continue
            total_iterations += result.iterations
            if best is None or _better(result, best):
                best = result
        if best is None:
            raise InfeasiblePlacementError(
                f"all {self._k} runs failed to find a feasible placement"
            )
        return PlacementResult(
            placement=dict(best.placement),
            problem=problem,
            iterations=total_iterations,
            algorithm=f"{self.name}({best.algorithm}x{self._k})",
        )


def _better(candidate: PlacementResult, incumbent: PlacementResult) -> bool:
    """Eq. (14) first, Eq. (13) as the tiebreak."""
    if candidate.num_used_nodes != incumbent.num_used_nodes:
        return candidate.num_used_nodes < incumbent.num_used_nodes
    return candidate.average_utilization > incumbent.average_utilization
