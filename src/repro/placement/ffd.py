"""FFD — First-Fit-Decreasing placement baseline.

Sorts VNFs by decreasing total demand and, at each step, scans the
candidate nodes ordered by *descending remaining capacity*, taking the
first that fits — i.e., the node with the largest residual.  This is the
"first fit" of the NFV placement literature the paper compares against,
where the scheduler keeps the node list sorted by available resources:
the most available node is always tried first.

The consequences are exactly the trends of the paper's Figs. 5-10: FFD
keeps no Used/Spare state and always grabs the most available node, so it
spreads load across the most nodes (Fig. 8), leaves them at the lowest
utilization (Figs. 5-7, around two-thirds), and its resource occupation
grows as bigger pools expose bigger nodes (Fig. 9) — while its single
deterministic pass makes it the cheapest algorithm (one iteration,
Fig. 10).
"""

from __future__ import annotations

from typing import Dict, Hashable

from repro.exceptions import InfeasiblePlacementError
from repro.placement.base import (
    PlacementAlgorithm,
    PlacementProblem,
    PlacementResult,
    demand_sorted_vnfs,
)


class FFDPlacement(PlacementAlgorithm):
    """First-Fit-Decreasing with the node list kept most-available-first."""

    name = "FFD"

    def place(self, problem: PlacementProblem) -> PlacementResult:
        problem.check_necessary_feasibility()
        residual: Dict[Hashable, float] = dict(problem.capacities)
        placement: Dict[str, Hashable] = {}
        for vnf in demand_sorted_vnfs(problem):
            demand = vnf.total_demand
            # The node list is kept sorted by available resources; "first
            # fit" therefore selects the node with the largest residual.
            target = max(residual, key=lambda v: (residual[v], str(v)))
            if residual[target] < demand - 1e-9:
                raise InfeasiblePlacementError(
                    f"FFD could not place VNF {vnf.name!r} "
                    f"(demand {demand:.6g}) on any node"
                )
            placement[vnf.name] = target
            residual[target] -= demand
        result = PlacementResult(
            placement=placement,
            problem=problem,
            iterations=1,
            algorithm=self.name,
        )
        result.validate()
        return result
