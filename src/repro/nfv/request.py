"""Requests — Poisson packet streams traversing a service chain.

A request ``r`` carries an external Poisson arrival rate ``lambda_r``
(packets/s) and a correct-delivery probability ``P_r``; lost packets are
retransmitted from the source, inflating the effective rate seen by every
VNF on its chain to ``lambda_r / P_r`` (Eq. 7).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.exceptions import ValidationError
from repro.nfv.chain import ServiceChain
from repro.queueing.feedback import effective_arrival_rate


@dataclass(frozen=True)
class Request:
    """A request (flow) to be scheduled onto service instances.

    Parameters
    ----------
    request_id:
        Unique identifier within the problem instance.
    chain:
        The :class:`ServiceChain` this request must traverse, in order.
    arrival_rate:
        External Poisson rate ``lambda_r > 0`` (packets/s).
    delivery_probability:
        ``P_r`` in ``(0, 1]``; ``1 - P_r`` of packets are NACKed and
        retransmitted.
    """

    request_id: str
    chain: ServiceChain
    arrival_rate: float
    delivery_probability: float = 1.0

    def __post_init__(self) -> None:
        if not self.request_id:
            raise ValidationError("request id must be non-empty")
        if self.arrival_rate <= 0.0:
            raise ValidationError(
                f"request {self.request_id!r}: arrival rate must be positive, "
                f"got {self.arrival_rate!r}"
            )
        if not 0.0 < self.delivery_probability <= 1.0:
            raise ValidationError(
                f"request {self.request_id!r}: delivery probability must be "
                f"in (0, 1], got {self.delivery_probability!r}"
            )

    @property
    def effective_rate(self) -> float:
        """Effective per-VNF rate with loss feedback, ``lambda_r / P_r``."""
        return effective_arrival_rate(self.arrival_rate, self.delivery_probability)

    def uses(self, vnf_name: str) -> bool:
        """The ``U_r^f`` indicator for this request."""
        return self.chain.uses(vnf_name)

    @property
    def chain_length(self) -> int:
        """Number of VNFs on this request's chain."""
        return len(self.chain)
