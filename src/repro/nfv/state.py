"""Joint deployment state: placement + schedule with constraint checking.

:class:`DeploymentState` holds a full solution of the paper's model — the
placement variables ``x_v^f``/``y_v`` and the scheduling variables
``z_{r,k}^f``/``eta_v^r`` — and validates every structural constraint:

* Eq. (1): ``y_v = 1`` iff some VNF is placed at ``v`` (derived here).
* Eq. (2): every VNF placed at exactly one node.
* Eq. (3): ``M_f`` never exceeds the number of requests using ``f``
  (checked as a warning-level validation; the catalog may deploy fewer).
* Eq. (4): ``eta_v^r = 1`` iff the request traverses some VNF at ``v``
  (derived here).
* Eq. (5): each request using VNF ``f`` mapped to exactly one instance.
* Eq. (6): per-node capacity respected.
* Eq. (7): instance arrival rates are ``sum_r lambda_r / P_r`` (derived
  via :class:`~repro.nfv.instance.ServiceInstance`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, Hashable, List, Mapping, Sequence, Tuple

import numpy as np

from repro.exceptions import ValidationError
from repro.nfv.instance import ServiceInstance
from repro.nfv.request import Request
from repro.nfv.vnf import VNF

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.arrays import ScenarioArrays, ScheduleArrays


@dataclass
class DeploymentState:
    """A complete (placement, schedule) solution over a problem instance.

    Parameters
    ----------
    vnfs:
        All VNFs ``F`` of the problem.
    requests:
        All requests ``R``.
    node_capacities:
        ``A_v`` per computing node key.
    placement:
        ``vnf_name -> node_key``; the materialization of ``x_v^f``.
    schedule:
        ``(request_id, vnf_name) -> instance_index``; the materialization
        of ``z_{r,k}^f``.  May be empty for a placement-only state.
    """

    vnfs: Sequence[VNF]
    requests: Sequence[Request]
    node_capacities: Mapping[Hashable, float]
    placement: Dict[str, Hashable] = field(default_factory=dict)
    schedule: Dict[Tuple[str, str], int] = field(default_factory=dict)

    def __post_init__(self) -> None:
        self._vnf_by_name = {f.name: f for f in self.vnfs}
        if len(self._vnf_by_name) != len(self.vnfs):
            raise ValidationError("duplicate VNF names in problem instance")
        self._request_by_id = {r.request_id: r for r in self.requests}
        if len(self._request_by_id) != len(self.requests):
            raise ValidationError("duplicate request ids in problem instance")
        self._scenario_arrays = None
        self._schedule_arrays_cache = None

    # ------------------------------------------------------------------
    # Columnar view (see docs/ARRAYS_CORE.md for the caching contract)
    # ------------------------------------------------------------------
    def arrays(self) -> "ScenarioArrays":
        """The cached columnar view of this state's entity tables.

        Built once; valid as long as ``vnfs``/``requests``/
        ``node_capacities`` are not replaced (mutating ``placement`` or
        adding/removing ``schedule`` entries is fine — those are
        re-indexed per metric call).  Call :meth:`invalidate_arrays`
        after replacing an entity sequence.
        """
        from repro.core.arrays import ScenarioArrays

        if self._scenario_arrays is None:
            self._scenario_arrays = ScenarioArrays.from_deployment_state(self)
        return self._scenario_arrays

    def schedule_arrays(self) -> "ScheduleArrays":
        """Index form of ``schedule``, cached on (dict identity, size).

        Replacing the dict or adding/removing entries invalidates the
        cache automatically; mutating an entry's *value* in place is the
        one pattern that requires :meth:`invalidate_arrays`.
        """
        cache = self._schedule_arrays_cache
        key = (id(self.schedule), len(self.schedule))
        if cache is None or cache[0] != key:
            sched = self.arrays().schedule_arrays(self.schedule)
            self._schedule_arrays_cache = (key, sched)
            return sched
        return cache[1]

    def invalidate_arrays(self) -> None:
        """Drop the cached columnar views (after entity-level edits)."""
        self._scenario_arrays = None
        self._schedule_arrays_cache = None

    # ------------------------------------------------------------------
    # Placement variables
    # ------------------------------------------------------------------
    def x(self, vnf_name: str, node: Hashable) -> int:
        """The binary ``x_v^f``: 1 iff ``vnf_name`` is placed at ``node``."""
        return int(self.placement.get(vnf_name) == node)

    def y(self, node: Hashable) -> int:
        """The binary ``y_v`` of Eq. (1): 1 iff any VNF is placed at ``node``."""
        return int(any(n == node for n in self.placement.values()))

    def nodes_in_service(self) -> List[Hashable]:
        """All nodes ``v`` with ``y_v = 1``."""
        used = []
        seen = set()
        for node in self.placement.values():
            if node not in seen:
                seen.add(node)
                used.append(node)
        return used

    def vnfs_at(self, node: Hashable) -> List[VNF]:
        """All VNFs placed at ``node``."""
        return [
            self._vnf_by_name[name]
            for name, n in self.placement.items()
            if n == node
        ]

    def node_load(self, node: Hashable) -> float:
        """Total placed demand ``sum_f x_v^f M_f D_f`` at ``node``."""
        return sum(f.total_demand for f in self.vnfs_at(node))

    def node_utilization(self, node: Hashable) -> float:
        """Fraction of ``A_v`` consumed at ``node``."""
        capacity = self.node_capacities.get(node)
        if capacity is None:
            raise ValidationError(f"unknown node {node!r}")
        if capacity == 0.0:
            return 0.0
        return self.node_load(node) / capacity

    # ------------------------------------------------------------------
    # Scheduling variables
    # ------------------------------------------------------------------
    def z(self, request_id: str, vnf_name: str, k: int) -> int:
        """The binary ``z_{r,k}^f``."""
        return int(self.schedule.get((request_id, vnf_name)) == k)

    def eta(self, request_id: str, node: Hashable) -> int:
        """The binary ``eta_v^r`` of Eq. (4)."""
        request = self._request_by_id.get(request_id)
        if request is None:
            raise ValidationError(f"unknown request {request_id!r}")
        for vnf_name in request.chain:
            if self.placement.get(vnf_name) == node:
                return 1
        return 0

    def nodes_traversed(self, request_id: str) -> List[Hashable]:
        """Distinct nodes a request's chain visits, in chain order."""
        request = self._request_by_id.get(request_id)
        if request is None:
            raise ValidationError(f"unknown request {request_id!r}")
        nodes: List[Hashable] = []
        for vnf_name in request.chain:
            node = self.placement.get(vnf_name)
            if node is None:
                raise ValidationError(
                    f"request {request_id!r} uses unplaced VNF {vnf_name!r}"
                )
            if not nodes or nodes[-1] != node:
                nodes.append(node)
        return nodes

    def inter_node_hops(self, request_id: str) -> int:
        """Number of node-to-node transfers on the request's path.

        Eq. (16) charges ``(sum_v eta_v^r - 1)`` link latencies ``L``;
        with consecutive-duplicate collapsing this equals
        ``len(nodes_traversed) - 1``.
        """
        return max(0, len(self.nodes_traversed(request_id)) - 1)

    def instances(self) -> List[ServiceInstance]:
        """Materialize all service instances with their scheduled requests."""
        table: Dict[Tuple[str, int], ServiceInstance] = {}
        for vnf in self.vnfs:
            for k in range(vnf.num_instances):
                table[(vnf.name, k)] = ServiceInstance(vnf=vnf, index=k)
        for (request_id, vnf_name), k in self.schedule.items():
            request = self._request_by_id.get(request_id)
            if request is None:
                raise ValidationError(f"schedule references unknown request {request_id!r}")
            instance = table.get((vnf_name, k))
            if instance is None:
                raise ValidationError(
                    f"schedule references unknown instance ({vnf_name!r}, {k})"
                )
            instance.assign(request)
        return list(table.values())

    def instances_of(self, vnf_name: str) -> List[ServiceInstance]:
        """The instances of one VNF with their scheduled requests."""
        return [inst for inst in self.instances() if inst.vnf.name == vnf_name]

    # ------------------------------------------------------------------
    # Validation
    # ------------------------------------------------------------------
    def validate_placement(self) -> None:
        """Check Eqs. (2) and (6).

        Raises
        ------
        ValidationError
            On an unplaced VNF, an unknown node, or a capacity violation.
        """
        for vnf in self.vnfs:
            node = self.placement.get(vnf.name)
            if node is None:
                raise ValidationError(f"VNF {vnf.name!r} is not placed (Eq. 2)")
            if node not in self.node_capacities:
                raise ValidationError(
                    f"VNF {vnf.name!r} placed at unknown node {node!r}"
                )
        for node in self.nodes_in_service():
            load = self.node_load(node)
            capacity = self.node_capacities[node]
            if load > capacity + 1e-9:
                raise ValidationError(
                    f"node {node!r} over capacity: load {load:.6g} > "
                    f"A_v {capacity:.6g} (Eq. 6)"
                )

    def validate_schedule(self) -> None:
        """Check Eq. (5): each (request, used VNF) maps to exactly one instance.

        Raises
        ------
        ValidationError
            On a missing mapping, a mapping for an unused VNF, or an
            out-of-range instance index.
        """
        for request in self.requests:
            for vnf_name in request.chain:
                vnf = self._vnf_by_name.get(vnf_name)
                if vnf is None:
                    raise ValidationError(
                        f"request {request.request_id!r} references unknown "
                        f"VNF {vnf_name!r}"
                    )
                key = (request.request_id, vnf_name)
                if key not in self.schedule:
                    raise ValidationError(
                        f"request {request.request_id!r} has no instance for "
                        f"VNF {vnf_name!r} (Eq. 5)"
                    )
                k = self.schedule[key]
                if not 0 <= k < vnf.num_instances:
                    raise ValidationError(
                        f"request {request.request_id!r}: instance index {k} "
                        f"out of range [0, {vnf.num_instances}) for "
                        f"VNF {vnf_name!r}"
                    )
        for (request_id, vnf_name) in self.schedule:
            request = self._request_by_id.get(request_id)
            if request is None:
                raise ValidationError(
                    f"schedule references unknown request {request_id!r}"
                )
            if not request.uses(vnf_name):
                raise ValidationError(
                    f"request {request_id!r} scheduled on VNF {vnf_name!r} "
                    "it does not use (Eq. 5)"
                )

    def validate(self) -> None:
        """Full structural validation of the joint solution."""
        self.validate_placement()
        self.validate_schedule()

    # ------------------------------------------------------------------
    # Objective ingredients
    # ------------------------------------------------------------------
    def average_node_utilization(self) -> float:
        """Objective 1 value (Eq. 13): mean utilization over used nodes."""
        arrays = self.arrays()
        try:
            placement_vec = arrays.placement_vector(self.placement)
        except KeyError:
            # A VNF sits on a node with no capacity entry; the scalar
            # path raises the legacy "unknown node" error.
            used = self.nodes_in_service()
            if not used:
                return 0.0
            return sum(self.node_utilization(v) for v in used) / len(used)
        loads = arrays.node_loads(placement_vec)
        used_mask = arrays.used_node_mask(placement_vec)
        if not used_mask.any():
            return 0.0
        capacities = arrays.A_v[used_mask]
        with np.errstate(divide="ignore", invalid="ignore"):
            utilization = np.where(
                capacities > 0.0, loads[used_mask] / capacities, 0.0
            )
        return float(utilization.sum() / used_mask.sum())

    def total_nodes_in_service(self) -> int:
        """Objective value of Eq. (14)."""
        try:
            placement_vec = self.arrays().placement_vector(self.placement)
        except KeyError:
            return len(self.nodes_in_service())
        return int(self.arrays().used_node_mask(placement_vec).sum())
