"""The VNF model object.

A VNF ``f`` in the paper is characterized by:

* per-instance resource demand ``D_f`` (CPU-bounded units; one unit =
  the ability to process 64-byte packets at 10 kpps in the paper's
  calibration),
* number of service instances ``M_f`` it deploys (Eq. 3 bounds this by
  the number of requests that use it),
* exponential service rate ``mu_f`` per instance.

All ``M_f`` instances of a VNF are placed together on one computing node
(Eq. 2); scaling beyond one node is modeled by cloning the VNF as a
*replica* that counts as a new VNF.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, replace

from repro.exceptions import ValidationError


class VNFCategory(enum.Enum):
    """The nine VNF categories of the Li & Chen survey the paper cites."""

    SECURITY = "security"
    GATEWAY = "gateway"
    LOAD_BALANCING = "load_balancing"
    MONITORING = "monitoring"
    OPTIMIZATION = "optimization"
    CACHING = "caching"
    ADDRESSING = "addressing"
    SIGNALING = "signaling"
    OTHER = "other"


@dataclass(frozen=True)
class VNF:
    """A virtual network function.

    Parameters
    ----------
    name:
        Unique identifier, e.g. ``"firewall"`` or ``"nat#2"`` for a
        replica.
    demand_per_instance:
        ``D_f`` — resource units consumed by each service instance.
    num_instances:
        ``M_f`` — how many service instances this VNF deploys.
    service_rate:
        ``mu_f`` — exponential per-instance service rate (packets/s).
    category:
        Functional category from the Li & Chen taxonomy.
    """

    name: str
    demand_per_instance: float
    num_instances: int
    service_rate: float
    category: VNFCategory = VNFCategory.OTHER

    def __post_init__(self) -> None:
        if not self.name:
            raise ValidationError("VNF name must be non-empty")
        if self.demand_per_instance <= 0.0:
            raise ValidationError(
                f"VNF {self.name!r}: per-instance demand must be positive, "
                f"got {self.demand_per_instance!r}"
            )
        if self.num_instances < 1:
            raise ValidationError(
                f"VNF {self.name!r}: instance count must be >= 1, "
                f"got {self.num_instances!r}"
            )
        if self.service_rate <= 0.0:
            raise ValidationError(
                f"VNF {self.name!r}: service rate must be positive, "
                f"got {self.service_rate!r}"
            )

    @property
    def total_demand(self) -> float:
        """Aggregate demand ``D_f^sum = M_f * D_f`` — the bin-packing size."""
        return self.demand_per_instance * self.num_instances

    @property
    def total_service_rate(self) -> float:
        """Aggregate service capacity ``M_f * mu_f`` across instances."""
        return self.service_rate * self.num_instances

    def replica(self, index: int) -> "VNF":
        """A replica VNF, treated as a new VNF per the paper's convention."""
        if index < 1:
            raise ValidationError(f"replica index must be >= 1, got {index!r}")
        return replace(self, name=f"{self.name}#{index}")

    def with_instances(self, num_instances: int) -> "VNF":
        """A copy with a different ``M_f`` (used when sizing to demand)."""
        return replace(self, num_instances=num_instances)

    def with_service_rate(self, service_rate: float) -> "VNF":
        """A copy with a different ``mu_f`` (used by the mu-scaling sweeps)."""
        return replace(self, service_rate=service_rate)
