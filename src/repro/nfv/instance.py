"""Service instances — the M/M/1 servers a VNF deploys.

A :class:`ServiceInstance` identifies one of the ``M_f`` instances of a
VNF and aggregates the requests scheduled onto it.  It exposes the
queueing quantities of Eqs. (7)-(12): the equivalent total arrival rate
``Lambda_k^f``, utilization ``rho_k^f``, mean packet count ``N(f,k)`` and
mean response latency ``W(f,k)``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

from repro.exceptions import SchedulingError, ValidationError
from repro.nfv.request import Request
from repro.nfv.vnf import VNF
from repro.queueing.mm1 import MM1Queue


@dataclass
class ServiceInstance:
    """The ``k``-th service instance of a VNF with its scheduled requests.

    Parameters
    ----------
    vnf:
        The owning :class:`VNF` (supplies ``mu_f``).
    index:
        Instance index ``k`` in ``[0, M_f)``.
    """

    vnf: VNF
    index: int
    requests: List[Request] = field(default_factory=list)

    def __post_init__(self) -> None:
        if not 0 <= self.index < self.vnf.num_instances:
            raise ValidationError(
                f"instance index {self.index} out of range "
                f"[0, {self.vnf.num_instances}) for VNF {self.vnf.name!r}"
            )

    @property
    def key(self) -> tuple:
        """Stable identifier ``(vnf_name, k)``."""
        return (self.vnf.name, self.index)

    def assign(self, request: Request) -> None:
        """Schedule ``request`` onto this instance (sets ``z_{r,k}^f = 1``).

        Raises
        ------
        SchedulingError
            If the request's chain does not use this VNF or the request is
            already assigned here.
        """
        if not request.uses(self.vnf.name):
            raise SchedulingError(
                f"request {request.request_id!r} does not use VNF "
                f"{self.vnf.name!r}; cannot schedule it here"
            )
        # O(1) membership via a cached id set, rebuilt if ``requests``
        # was replaced or mutated behind our back.
        assigned_ids = getattr(self, "_assigned_ids", None)
        if assigned_ids is None or len(assigned_ids) != len(self.requests):
            assigned_ids = {r.request_id for r in self.requests}
            self._assigned_ids = assigned_ids
        if request.request_id in assigned_ids:
            raise SchedulingError(
                f"request {request.request_id!r} already scheduled on "
                f"instance {self.key!r}"
            )
        self.requests.append(request)
        assigned_ids.add(request.request_id)

    @property
    def external_arrival_rate(self) -> float:
        """Sum of raw request rates, ``sum_r lambda_r z_{r,k}^f``."""
        return sum(r.arrival_rate for r in self.requests)

    @property
    def equivalent_arrival_rate(self) -> float:
        """``Lambda_k^f = sum_r (lambda_r / P_r) z_{r,k}^f`` (Eq. 7)."""
        return sum(r.effective_rate for r in self.requests)

    @property
    def utilization(self) -> float:
        """``rho_k^f = Lambda_k^f / mu_f`` (Eq. 9)."""
        return self.equivalent_arrival_rate / self.vnf.service_rate

    @property
    def is_stable(self) -> bool:
        """Whether the instance is under capacity (``rho < 1``)."""
        return self.utilization < 1.0

    def queue(self) -> MM1Queue:
        """The M/M/1 model of this instance at the current load."""
        return MM1Queue(
            arrival_rate=self.equivalent_arrival_rate,
            service_rate=self.vnf.service_rate,
        )

    @property
    def mean_number_in_system(self) -> float:
        """``N(f,k) = rho / (1 - rho)`` (Eq. 10)."""
        return self.queue().mean_number_in_system

    @property
    def mean_response_time(self) -> float:
        """``W(f,k)`` of Eq. (11): mean packets over *raw* arrival rate.

        With a uniform delivery probability this reduces to Eq. (12),
        ``1 / (P mu_f - sum_r lambda_r)``.
        """
        external = self.external_arrival_rate
        if external <= 0.0:
            raise SchedulingError(
                f"instance {self.key!r} serves no requests; W(f,k) undefined"
            )
        return self.mean_number_in_system / external
