"""Service chains — ordered VNF sequences a request must traverse.

The paper's evaluation uses chains of at most six VNFs drawn from a
catalog of commonly deployed functions (NAT, firewall, IDS, load
balancer, WAN optimizer, flow monitor, ...).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Sequence, Tuple

from repro.exceptions import ValidationError

#: The paper's maximum chain length (Section V-A: "at most 6 VNFs").
MAX_CHAIN_LENGTH = 6


@dataclass(frozen=True)
class ServiceChain:
    """An ordered sequence of VNF names.

    A chain visits each VNF at most once (the ``U_r^f`` indicator in the
    model is binary, so a chain cannot revisit a function).
    """

    vnf_names: Tuple[str, ...]

    def __init__(self, vnf_names: Sequence[str]) -> None:
        names = tuple(vnf_names)
        if not names:
            raise ValidationError("a service chain must contain at least one VNF")
        if len(set(names)) != len(names):
            raise ValidationError(
                f"a service chain may not revisit a VNF: {names!r}"
            )
        object.__setattr__(self, "vnf_names", names)

    def __len__(self) -> int:
        return len(self.vnf_names)

    def __iter__(self) -> Iterator[str]:
        return iter(self.vnf_names)

    def __contains__(self, vnf_name: str) -> bool:
        return vnf_name in self.vnf_names

    def uses(self, vnf_name: str) -> bool:
        """The ``U_r^f`` indicator: whether this chain requires ``vnf_name``."""
        return vnf_name in self.vnf_names

    def position_of(self, vnf_name: str) -> int:
        """0-based hop index of ``vnf_name`` in the chain."""
        try:
            return self.vnf_names.index(vnf_name)
        except ValueError:
            raise ValidationError(
                f"VNF {vnf_name!r} is not on chain {self.vnf_names!r}"
            ) from None

    def successors(self, vnf_name: str) -> Tuple[str, ...]:
        """VNF names after ``vnf_name`` on the chain."""
        return self.vnf_names[self.position_of(vnf_name) + 1 :]

    def hops(self) -> Tuple[Tuple[str, str], ...]:
        """Consecutive VNF pairs along the chain."""
        return tuple(zip(self.vnf_names[:-1], self.vnf_names[1:]))

    def validate_length(self, max_length: int = MAX_CHAIN_LENGTH) -> None:
        """Raise if the chain exceeds the configured maximum length."""
        if len(self) > max_length:
            raise ValidationError(
                f"chain of length {len(self)} exceeds maximum {max_length}"
            )
