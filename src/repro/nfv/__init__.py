"""NFV domain model: VNFs, service chains, requests and deployment state.

This package encodes the paper's Section III model objects:

* :class:`~repro.nfv.vnf.VNF` — a network function with per-instance
  demand ``D_f``, instance count ``M_f`` and service rate ``mu_f``.
* :class:`~repro.nfv.chain.ServiceChain` — an ordered VNF sequence.
* :class:`~repro.nfv.request.Request` — a Poisson request with rate
  ``lambda_r``, delivery probability ``P_r`` and a chain to traverse.
* :class:`~repro.nfv.instance.ServiceInstance` — one of the ``M_f``
  M/M/1 servers of a VNF, with the requests scheduled onto it.
* :class:`~repro.nfv.state.DeploymentState` — the joint assignment
  (placement ``x``/``y`` + schedule ``z``/``eta``) with validation of the
  paper's constraints, Eqs. (1)-(7).
"""

from repro.nfv.chain import ServiceChain
from repro.nfv.instance import ServiceInstance
from repro.nfv.request import Request
from repro.nfv.state import DeploymentState
from repro.nfv.vnf import VNF, VNFCategory

__all__ = [
    "VNF",
    "VNFCategory",
    "ServiceChain",
    "Request",
    "ServiceInstance",
    "DeploymentState",
]
