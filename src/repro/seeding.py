"""Central seeding policy — one documented seed path for everything.

Every stochastic component in :mod:`repro` (placement algorithms,
schedulers, workload generators, trace samplers, topology builders)
routes its randomness through :func:`resolve_rng`.  The contract:

* Pass an explicit ``numpy.random.Generator`` and it is used as-is
  (callers own the stream — the experiment engine spawns per-trial
  children so parallel trials never share state).
* Pass an ``int`` / ``SeedSequence`` / entropy list and a fresh
  generator is derived from it.
* Pass ``None`` and you get a generator seeded with the **documented
  default** :data:`DEFAULT_SEED` — *never* OS entropy.  Two
  default-constructed algorithms therefore produce identical output;
  nondeterminism must always be requested explicitly (e.g. with
  ``numpy.random.default_rng()``), it is never the accidental default.

:func:`derive_seed` maps a master seed plus a textual label (an
experiment name) to a stable 32-bit child seed — the scheme behind
``runall --seed``; see docs/EXPERIMENTS_ENGINE.md.
"""

from __future__ import annotations

import zlib
from typing import Sequence, Union

import numpy as np

#: The library-wide default seed (the paper's publication date,
#: 2017-06-05).  Used whenever a component is constructed without an
#: explicit ``rng`` so that out-of-the-box runs are reproducible.
DEFAULT_SEED = 20170605

#: Anything :func:`resolve_rng` accepts.
RngLike = Union[
    None, int, Sequence[int], np.random.SeedSequence, np.random.Generator
]


def resolve_rng(
    rng: RngLike = None, default_seed: int = DEFAULT_SEED
) -> np.random.Generator:
    """Turn any seed-like value into a ``numpy.random.Generator``.

    Parameters
    ----------
    rng:
        ``Generator`` (returned unchanged), ``int`` / ``SeedSequence`` /
        entropy sequence (seeds a fresh generator), or ``None``.
    default_seed:
        The seed used when ``rng`` is ``None`` — :data:`DEFAULT_SEED`
        unless the caller documents a different one.
    """
    if rng is None:
        return np.random.default_rng(default_seed)
    if isinstance(rng, np.random.Generator):
        return rng
    return np.random.default_rng(rng)


def derive_seed(master: int, label: str) -> int:
    """A stable per-component child seed from ``(master, label)``.

    The label is hashed with CRC-32 (stable across processes and
    ``PYTHONHASHSEED``, unlike ``hash()``) and mixed with the master
    seed through ``numpy.random.SeedSequence``.  Used by the experiment
    runner to give every experiment its own stream under one
    ``--seed``.
    """
    entropy = [int(master), zlib.crc32(str(label).encode("utf-8"))]
    return int(np.random.SeedSequence(entropy).generate_state(1, dtype=np.uint32)[0])


def spawn_seed_sequences(
    seed: int, count: int
) -> "list[np.random.SeedSequence]":
    """``count`` independent child sequences of one master seed.

    The standard NumPy parallel-streams recipe: children are
    statistically independent and deterministic in ``(seed, index)``,
    so trial ``i`` sees the same stream whether it runs first, last,
    serially or in a worker process.
    """
    return np.random.SeedSequence(seed).spawn(count)


def trial_rng(seed: int, *indices: int) -> np.random.Generator:
    """A generator deterministic in ``(seed, *indices)``.

    The per-trial seed path of the Monte-Carlo engine: sweep-point and
    repetition indices extend the entropy so every trial draws from its
    own independent stream regardless of execution order.
    """
    entropy = [int(seed)] + [int(i) for i in indices]
    return np.random.default_rng(np.random.SeedSequence(entropy))
