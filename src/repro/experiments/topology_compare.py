"""Topology comparison — flat ``L`` vs real fabrics vs bandwidth limits.

The paper charges a flat latency ``L`` per inter-node chain hop and
assumes link bandwidth is plentiful.  This experiment quantifies what
those two simplifications hide, on three fabrics (a random SNDlib-style
datacenter, a k=4 fat-tree, and the vendored Abilene backbone):

* **flat** — the paper's pipeline verbatim (BFDSU + relocate local
  search on hop counts), scored both by the flat-``L`` Eq. (16) and by
  the fabric's measured shortest-path latencies.  The gap between the
  two is the model error of a uniform ``L``.
* **fabric-aware** — the same placement post-optimized with
  :func:`~repro.core.local_search.swap_placement` against the measured
  latency matrix: what topology awareness buys.
* **bandwidth-aware** — the network-aware solver stack
  (:class:`~repro.topology.network.NetworkModel` inside BFDSU and the
  swap pass) under a deliberately tight per-link budget calibrated to
  80% of the flat placement's peak link load.  Its placements must
  oversubscribe **zero** links while the fabric-blind placement
  oversubscribes several under the same budget.
"""

from __future__ import annotations

from typing import Dict, List

import numpy as np

from repro.core.evaluation import evaluate_deployment
from repro.exceptions import MaxRestartsExceededError
from repro.core.local_search import refine_placement, swap_placement
from repro.core.topology_eval import total_latency_on_topology
from repro.experiments.harness import ExperimentResult
from repro.experiments.montecarlo import run_trials
from repro.experiments.registry import ExperimentSpec, register
from repro.nfv.request import Request
from repro.nfv.state import DeploymentState
from repro.placement.base import PlacementProblem
from repro.placement.bfdsu import BFDSUPlacement
from repro.scheduling.base import schedule_all_vnfs
from repro.scheduling.rckk import RCKKScheduler
from repro.topology.fattree import fat_tree
from repro.topology.io import abilene
from repro.topology.network import NetworkModel
from repro.topology.random_topology import random_datacenter
from repro.workload.generator import WorkloadGenerator

#: Compared solver variants, in report order.
VARIANTS = ("flat", "fabric-aware", "bandwidth-aware")

#: Compared fabrics, in report order.
FABRICS = ("random24", "fattree4", "abilene")

#: Tight budget: this fraction of the flat placement's peak link load.
BANDWIDTH_FRACTION = 0.8


def _build_fabric(
    name: str,
    total_demand: float,
    max_demand: float,
    rng: np.random.Generator,
):
    """A fabric with uniform compute capacities sized to ~2x the load.

    Every VNF colocates all its instances on one node (Eq. 2), so the
    capacity floor is the largest per-VNF demand bundle.
    """

    def capacity(num_compute: int) -> float:
        return max(2.0 * total_demand / num_compute, 1.5 * max_demand)

    if name == "random24":
        return random_datacenter(
            24, rng=rng, capacities=[capacity(24)] * 24
        )
    if name == "fattree4":
        return fat_tree(4, capacity=capacity(16))
    if name == "abilene":
        return abilene(capacity=capacity(11))
    raise ValueError(f"unknown fabric {name!r}")


def _rescale_for_stability(vnfs, requests, target: float = 0.7):
    """Scale arrival rates so every VNF's aggregate load is stable.

    Same convention as the benchmarks: cap the per-VNF aggregate
    utilization ``sum_r lambda_r/P_r / (M_f mu_f)`` at ``target`` so the
    Eq. (16) latencies are finite and the fabrics are compared on the
    no-shedding path.
    """
    load = {f.name: 0.0 for f in vnfs}
    for request in requests:
        for vnf_name in request.chain:
            load[vnf_name] += request.effective_rate
    worst = max(
        load[f.name] / (f.num_instances * f.service_rate)
        for f in vnfs
        if f.num_instances * f.service_rate > 0
    )
    if worst <= target:
        return list(requests)
    scale = target / worst
    return [
        Request(
            request_id=r.request_id,
            chain=r.chain,
            arrival_rate=r.arrival_rate * scale,
            delivery_probability=r.delivery_probability,
        )
        for r in requests
    ]


def _state(w, requests, caps, placement, schedule) -> DeploymentState:
    return DeploymentState(
        vnfs=w.vnfs,
        requests=requests,
        node_capacities=caps,
        placement=dict(placement),
        schedule=schedule,
    )


def _trial(task) -> Dict[str, Dict[str, float]]:
    """One repetition: all variants on all fabrics, shared workload."""
    seed, rep = task
    root = np.random.SeedSequence([seed, rep])
    gen_ss, topo_ss, flat_ss, bw_ss = root.spawn(4)
    gen = WorkloadGenerator(np.random.default_rng(gen_ss))
    w = gen.workload(num_vnfs=12, num_nodes=24, num_requests=60)
    requests = _rescale_for_stability(w.vnfs, w.requests)
    total_demand = sum(f.total_demand for f in w.vnfs)
    max_demand = max(f.total_demand for f in w.vnfs)
    schedule = schedule_all_vnfs(w.vnfs, requests, RCKKScheduler())
    topo_rng = np.random.default_rng(topo_ss)

    metrics: Dict[str, Dict[str, float]] = {}
    for fabric in FABRICS:
        topo = _build_fabric(fabric, total_demand, max_demand, topo_rng)
        caps = topo.capacities()
        problem = PlacementProblem(
            vnfs=w.vnfs, capacities=caps, chains=w.chains
        )

        # -- flat: the paper's fabric-blind pipeline --------------------
        flat = BFDSUPlacement(rng=np.random.default_rng(flat_ss)).place(
            problem
        )
        state = _state(w, requests, caps, flat.placement, schedule)
        refine_placement(state)
        flat_report = evaluate_deployment(state, with_admission=False)
        fabric_latency = total_latency_on_topology(state, topo)
        n = len(requests)

        # Tight per-link budget: start at BANDWIDTH_FRACTION of this
        # placement's own peak link load, relaxing geometrically until
        # the constrained solver can actually construct a placement
        # (sparse fabrics can make the initial fraction infeasible for
        # *every* placement).
        probe = NetworkModel.for_problem(problem, topo, requests=requests)
        flat_vec = probe.placement_vector(state.placement)
        peak = float(probe.link_loads(flat_vec).max())
        budget = max(peak * BANDWIDTH_FRACTION, 1e-9)
        bw_place = None
        for _ in range(6):
            constrained = NetworkModel.for_problem(
                problem, topo, requests=requests, bandwidth=budget
            )
            try:
                bw_place = BFDSUPlacement(
                    rng=np.random.default_rng(bw_ss), network=constrained
                ).place(problem)
                break
            except MaxRestartsExceededError:
                budget *= 1.5
        if bw_place is None:  # pragma: no cover - 7.6x peak always fits
            raise MaxRestartsExceededError(
                f"no bandwidth-feasible placement on {fabric!r} within "
                f"{budget / max(peak, 1e-30):.1f}x the flat peak load"
            )
        tight = NetworkModel.for_problem(
            problem, topo, requests=requests, bandwidth=budget
        )
        metrics[f"{fabric}/flat"] = {
            "flat_latency": flat_report.average_total_latency,
            "fabric_latency": fabric_latency / n,
            "oversub_links": float(
                len(tight.oversubscribed_links(flat_vec))
            ),
            "max_link_util": tight.max_link_utilization(flat_vec),
        }

        # -- fabric-aware: swap against measured latencies --------------
        aware = _state(w, requests, caps, state.placement, schedule)
        swap_placement(aware, topology=topo)
        aware_report = evaluate_deployment(aware, with_admission=False)
        aware_vec = probe.placement_vector(aware.placement)
        metrics[f"{fabric}/fabric-aware"] = {
            "flat_latency": aware_report.average_total_latency,
            "fabric_latency": total_latency_on_topology(aware, topo) / n,
            "oversub_links": float(
                len(tight.oversubscribed_links(aware_vec))
            ),
            "max_link_util": tight.max_link_utilization(aware_vec),
        }

        # -- bandwidth-aware: the full network-aware solver stack -------
        bw_state = _state(w, requests, caps, bw_place.placement, schedule)
        # Fresh residual model for the swap pass (loads rebuilt inside).
        swap_net = NetworkModel.for_problem(
            problem, topo, requests=requests, bandwidth=budget
        )
        swap_placement(bw_state, topology=topo, network=swap_net)
        bw_report = evaluate_deployment(bw_state, with_admission=False)
        bw_vec = constrained.placement_vector(bw_state.placement)
        metrics[f"{fabric}/bandwidth-aware"] = {
            "flat_latency": bw_report.average_total_latency,
            "fabric_latency": total_latency_on_topology(bw_state, topo) / n,
            "oversub_links": float(
                len(constrained.oversubscribed_links(bw_vec))
            ),
            "max_link_util": constrained.max_link_utilization(bw_vec),
        }
    return metrics


def run(
    repetitions: int = 5, seed: int = 20170713, jobs: int = 1
) -> ExperimentResult:
    """Compare fabric models and bandwidth awareness on shared workloads."""
    keys = [f"{fabric}/{variant}" for fabric in FABRICS for variant in VARIANTS]
    acc: Dict[str, Dict[str, List[float]]] = {
        key: {
            "flat_latency": [],
            "fabric_latency": [],
            "oversub_links": [],
            "max_link_util": [],
        }
        for key in keys
    }
    trials = run_trials(
        _trial, [(seed, rep) for rep in range(repetitions)], jobs=jobs
    )
    for metrics in trials:
        for key, values in metrics.items():
            for column, value in values.items():
                acc[key][column].append(value)

    result = ExperimentResult(
        experiment_id="topology_compare",
        title="Flat-L vs real-fabric vs bandwidth-constrained solving",
        columns=[
            "fabric",
            "variant",
            "flat_latency",
            "fabric_latency",
            "oversub_links",
            "max_link_util",
        ],
    )
    for fabric in FABRICS:
        for variant in VARIANTS:
            key = f"{fabric}/{variant}"
            result.add_row(
                fabric=fabric,
                variant=variant,
                flat_latency=float(np.mean(acc[key]["flat_latency"])),
                fabric_latency=float(np.mean(acc[key]["fabric_latency"])),
                oversub_links=float(np.mean(acc[key]["oversub_links"])),
                max_link_util=float(np.mean(acc[key]["max_link_util"])),
            )
    result.notes.append(
        "flat_latency: Eq. (16) with uniform L; fabric_latency: Eq. (16) "
        "with measured shortest-path latencies (both per request, "
        "seconds)"
    )
    result.notes.append(
        "oversub_links/max_link_util: against a per-link budget set to "
        f"{BANDWIDTH_FRACTION:.0%} of the flat placement's peak link "
        "load; the bandwidth-aware stack must report 0 oversubscribed "
        "links"
    )
    return result


SPEC = register(
    ExperimentSpec(
        name="topology_compare",
        title="Flat-L vs real-fabric vs bandwidth-constrained solving",
        runner=run,
        profile="joint",
        tags=("topology", "beyond-paper"),
        default_repetitions=5,
        order=22,
    )
)


if __name__ == "__main__":  # pragma: no cover
    run().print()
