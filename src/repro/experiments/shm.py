"""Shared-memory scenario passing for Monte-Carlo workers.

``run_trials`` pickles every task payload into each worker — fine for
``(seed, rep)`` tuples, fatal when every trial needs the same
million-request :class:`~repro.core.arrays.ScenarioArrays` (gigabytes
re-pickled per chunk).  This module publishes a scenario's numpy
columns ONCE and hands workers a tiny picklable
:class:`SharedScenarioHandle`; each worker process attaches to the
columns zero-copy and caches the attachment for all its chunks.

Backend chain (first available wins; ``publish_arrays(backend=...)``
pins one explicitly):

1. ``shm`` — one ``multiprocessing.shared_memory`` block holding every
   column at recorded offsets.  Zero-copy attach; the publisher unlinks
   the block in :func:`unpublish_arrays`.  Workers unregister their
   attachment from the Python 3.11 ``resource_tracker`` (which would
   otherwise unlink the block when the *first* worker exits).
2. ``mmap`` — one ``.npy`` file per column in a temp directory, opened
   with ``mmap_mode="r"`` by workers (page-cache shared, works where
   POSIX shared memory is unavailable).
3. ``inline`` — the handle carries the arrays themselves; pickling
   falls back to exactly the old behaviour (correct everywhere,
   shared nowhere).

Results are byte-identical across backends and worker counts: workers
read the same column bytes either way, and
:func:`~repro.experiments.montecarlo.run_trials` reduces by task
index.  Attached columns are read-only; trial functions that need to
mutate must copy (the parity suites run trial functions unchanged on
both paths, so this surfaces immediately as a ``WRITEBACKIFCOPY``
error rather than silent divergence).

The non-array scenario fields travel inside the handle: entity tables
(names/index dicts) are small, and the lazy id views of streamed
scenarios (:class:`~repro.workload.stream.SequentialIds` /
``SequentialIndex``) pickle as a prefix and a count.
``ChainNamesView`` is rebuilt on attach from the shared ``chain_vnf``
column instead of being pickled (it holds an array reference).
"""

from __future__ import annotations

import os
import tempfile
import uuid
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Dict, Iterator, Optional, Tuple

import numpy as np

from repro.core.arrays import ScenarioArrays
from repro.exceptions import ConfigurationError

__all__ = [
    "SharedScenarioHandle",
    "attach_arrays",
    "publish_arrays",
    "published",
    "unpublish_arrays",
]

#: The numpy columns shipped through the shared backend, in layout order.
_COLUMNS = (
    "M_f", "D_f", "mu_f", "total_demand_f", "instance_offset",
    "inst_vnf", "mu_inst", "A_v", "lambda_r", "P_r", "eff_rate",
    "chain_req", "chain_vnf", "chain_ptr",
)


@dataclass(frozen=True)
class SharedScenarioHandle:
    """Picklable pointer to a published scenario.

    ``backend`` is ``"shm"``, ``"mmap"`` or ``"inline"``; ``location``
    is the shared-memory block name, the temp directory, or ``None``;
    ``columns`` maps column name to ``(offset, dtype-str, shape)`` (or
    to the array itself for the inline backend).  ``meta`` carries the
    small non-array fields; ``token`` identifies the publishing
    process so a same-process attach returns the original object.
    """

    backend: str
    location: Optional[str]
    columns: Dict[str, Tuple]
    meta: Dict[str, object]
    token: str


#: Publisher-side originals: same-process attach (the serial path)
#: short-circuits to the exact object that was published.
_published: Dict[str, Tuple[ScenarioArrays, object]] = {}

#: Worker-side attachments, one per (process, token).
_attached: Dict[str, ScenarioArrays] = {}
#: Keep attached SharedMemory blocks alive for the process lifetime.
_attached_blocks: Dict[str, object] = {}


def _chain_names_meta(arrays: ScenarioArrays):
    from repro.workload.stream import ChainNamesView

    if isinstance(arrays.chain_names, ChainNamesView):
        return ("view",)
    return ("eager", tuple(arrays.chain_names))


def _meta_of(arrays: ScenarioArrays) -> Dict[str, object]:
    return {
        "vnf_names": tuple(arrays.vnf_names),
        "vnf_index": dict(arrays.vnf_index),
        "num_instances": int(arrays.num_instances),
        "node_keys": tuple(arrays.node_keys),
        "node_index": dict(arrays.node_index),
        # Lazy sequence/mapping views pickle small; eager tuples/dicts
        # pickle eagerly (fine at the scales that still use them).
        "request_ids": arrays.request_ids,
        "request_index": arrays.request_index,
        "chain_names": _chain_names_meta(arrays),
        "chain_has_unknown": bool(arrays.chain_has_unknown),
    }


def _assemble(
    meta: Dict[str, object], columns: Dict[str, np.ndarray]
) -> ScenarioArrays:
    chain_names_meta = meta["chain_names"]
    if chain_names_meta[0] == "view":
        from repro.workload.stream import ChainNamesView

        chain_names = ChainNamesView(
            meta["vnf_names"], columns["chain_vnf"]
        )
    else:
        chain_names = chain_names_meta[1]
    return ScenarioArrays(
        vnf_names=meta["vnf_names"],
        vnf_index=meta["vnf_index"],
        M_f=columns["M_f"],
        D_f=columns["D_f"],
        mu_f=columns["mu_f"],
        total_demand_f=columns["total_demand_f"],
        instance_offset=columns["instance_offset"],
        num_instances=meta["num_instances"],
        inst_vnf=columns["inst_vnf"],
        mu_inst=columns["mu_inst"],
        node_keys=meta["node_keys"],
        node_index=meta["node_index"],
        A_v=columns["A_v"],
        request_ids=meta["request_ids"],
        request_index=meta["request_index"],
        lambda_r=columns["lambda_r"],
        P_r=columns["P_r"],
        eff_rate=columns["eff_rate"],
        chain_req=columns["chain_req"],
        chain_vnf=columns["chain_vnf"],
        chain_ptr=columns["chain_ptr"],
        chain_names=chain_names,
        chain_has_unknown=meta["chain_has_unknown"],
    )


def _publish_shm(arrays: ScenarioArrays, token: str):
    from multiprocessing import shared_memory

    specs: Dict[str, Tuple] = {}
    total = 0
    for name in _COLUMNS:
        col = np.ascontiguousarray(getattr(arrays, name))
        # 64-byte alignment keeps every column SIMD-friendly in workers.
        offset = -(-total // 64) * 64
        specs[name] = (offset, col.dtype.str, col.shape)
        total = offset + col.nbytes
    block = shared_memory.SharedMemory(
        create=True, size=max(total, 1), name=f"repro_{token}"
    )
    for name in _COLUMNS:
        col = np.ascontiguousarray(getattr(arrays, name))
        offset, dtype, shape = specs[name]
        view = np.ndarray(shape, dtype=dtype, buffer=block.buf, offset=offset)
        view[...] = col
    return block.name, specs, block


def _publish_mmap(arrays: ScenarioArrays, token: str):
    tmpdir = tempfile.mkdtemp(prefix=f"repro_shm_{token}_")
    specs: Dict[str, Tuple] = {}
    for name in _COLUMNS:
        path = os.path.join(tmpdir, f"{name}.npy")
        np.save(path, np.ascontiguousarray(getattr(arrays, name)))
        specs[name] = (f"{name}.npy",)
    return tmpdir, specs


def publish_arrays(
    arrays: ScenarioArrays, backend: str = "auto"
) -> SharedScenarioHandle:
    """Publish a scenario's columns for zero-copy worker attachment.

    ``backend`` is ``"auto"`` (shm, then mmap, then inline),
    ``"shm"``, ``"mmap"`` or ``"inline"``.  Pair every publish with
    :func:`unpublish_arrays` (the shm block / temp files outlive the
    process otherwise).
    """
    if backend not in ("auto", "shm", "mmap", "inline"):
        raise ConfigurationError(
            f"unknown shared backend {backend!r}; expected auto, shm, "
            "mmap or inline"
        )
    token = uuid.uuid4().hex[:16]
    meta = _meta_of(arrays)
    handle: Optional[SharedScenarioHandle] = None
    resource: object = None
    if backend in ("auto", "shm"):
        try:
            location, specs, block = _publish_shm(arrays, token)
            handle = SharedScenarioHandle(
                "shm", location, specs, meta, token
            )
            resource = block
        except Exception:
            if backend == "shm":
                raise
    if handle is None and backend in ("auto", "mmap"):
        try:
            location, specs = _publish_mmap(arrays, token)
            handle = SharedScenarioHandle(
                "mmap", location, specs, meta, token
            )
        except Exception:
            if backend == "mmap":
                raise
    if handle is None:
        inline = {
            name: np.ascontiguousarray(getattr(arrays, name))
            for name in _COLUMNS
        }
        handle = SharedScenarioHandle("inline", None, inline, meta, token)
    _published[token] = (arrays, resource)
    return handle


@contextmanager
def published(
    arrays: ScenarioArrays, backend: str = "auto"
) -> Iterator[SharedScenarioHandle]:
    """Publish ``arrays`` for the duration of a ``with`` block.

    The exception-safe form of :func:`publish_arrays` /
    :func:`unpublish_arrays`: the shm block or temp directory is
    released on *every* exit path — normal return, a worker raising
    through ``run_trials``, or the orchestrator dying mid-run — which
    is what keeps ``/dev/shm`` from accumulating orphaned
    ``repro_*`` segments::

        with published(scenario.arrays) as handle:
            run_trials(fn, tasks, jobs=4, shared=handle)
    """
    handle = publish_arrays(arrays, backend)
    try:
        yield handle
    finally:
        unpublish_arrays(handle)


def attach_arrays(handle: SharedScenarioHandle) -> ScenarioArrays:
    """Materialize the published scenario in this process (cached).

    In the publishing process this returns the exact original object
    (the serial path costs nothing); in a worker it maps the shared
    columns read-only and assembles a :class:`ScenarioArrays` around
    them, once per process.
    """
    original = _published.get(handle.token)
    if original is not None:
        return original[0]
    cached = _attached.get(handle.token)
    if cached is not None:
        return cached
    if handle.backend == "shm":
        from multiprocessing import shared_memory

        block = shared_memory.SharedMemory(name=handle.location)
        try:
            # Python 3.11 registers every attach with the resource
            # tracker, which unlinks the block when ANY process exits;
            # only the publisher may unlink.
            from multiprocessing import resource_tracker

            resource_tracker.unregister(block._name, "shared_memory")
        except Exception:
            pass
        columns = {}
        for name, (offset, dtype, shape) in handle.columns.items():
            view = np.ndarray(
                shape, dtype=dtype, buffer=block.buf, offset=offset
            )
            view.flags.writeable = False
            columns[name] = view
        _attached_blocks[handle.token] = block
    elif handle.backend == "mmap":
        columns = {}
        for name, (filename,) in handle.columns.items():
            columns[name] = np.load(
                os.path.join(handle.location, filename), mmap_mode="r"
            )
    elif handle.backend == "inline":
        columns = dict(handle.columns)
    else:
        raise ConfigurationError(
            f"unknown shared backend {handle.backend!r}"
        )
    arrays = _assemble(handle.meta, columns)
    _attached[handle.token] = arrays
    return arrays


def unpublish_arrays(handle: SharedScenarioHandle) -> None:
    """Release the published resources (publisher side; idempotent)."""
    entry = _published.pop(handle.token, None)
    if handle.backend == "shm":
        block = entry[1] if entry is not None else None
        if block is None:
            try:
                from multiprocessing import shared_memory

                block = shared_memory.SharedMemory(name=handle.location)
            except Exception:
                block = None
        if block is not None:
            try:
                block.close()
                block.unlink()
            except Exception:
                pass
    elif handle.backend == "mmap" and handle.location:
        import shutil

        shutil.rmtree(handle.location, ignore_errors=True)
