"""Run the registered experiments and print the paper-style report.

Usage::

    python -m repro.experiments.runall                  # quick defaults
    python -m repro.experiments.runall --paper          # paper-scale reps
    python -m repro.experiments.runall --list           # what exists
    python -m repro.experiments.runall --only fig05 tail
    python -m repro.experiments.runall --seed 42 --jobs 4

The experiment set comes from the registry
(:mod:`repro.experiments.registry`): any module in this package that
registers an :class:`ExperimentSpec` shows up here — there is no
dispatch table to edit.  With ``--seed`` the whole run is deterministic
at any ``--jobs`` level: each experiment's seed derives from the master
seed and the experiment name, and each Monte-Carlo trial's stream
derives from that seed and the trial's coordinates (see
``docs/EXPERIMENTS_ENGINE.md``).  Tables go to stdout; wall-clock
timings go to stderr so stdout stays byte-identical across ``--jobs``
levels.
"""

from __future__ import annotations

import argparse
import sys
from typing import Dict, List, Optional, Sequence

from repro.exceptions import ConfigurationError, UnknownExperimentError
from repro.experiments.harness import ExperimentResult
from repro.experiments.montecarlo import resolve_jobs
from repro.experiments.registry import ExperimentSpec, get, load_all
from repro.seeding import derive_seed


def _profile_kwargs(
    spec: ExperimentSpec,
    placement_repetitions: int,
    scheduling_repetitions: int,
    tail_repetitions: int,
) -> Dict[str, object]:
    """Map a spec's repetition profile onto ``run_all``'s knobs."""
    if spec.profile == "placement":
        return {"repetitions": placement_repetitions}
    if spec.profile == "scheduling":
        return {"repetitions": scheduling_repetitions}
    if spec.profile == "tail":
        return {"repetitions": tail_repetitions}
    if spec.profile == "joint":
        # Full-pipeline runs are heavier per repetition; scale down.
        return {"repetitions": max(5, placement_repetitions // 2)}
    if spec.profile == "headline":
        return {
            "placement_repetitions": placement_repetitions,
            "scheduling_repetitions": scheduling_repetitions,
        }
    return {}  # analytic: no repetition knob


def run_all(
    placement_repetitions: int = 20,
    scheduling_repetitions: int = 100,
    tail_repetitions: int = 300,
    include_headline: bool = True,
    only: Optional[Sequence[str]] = None,
    seed: Optional[int] = None,
    jobs: int = 1,
) -> List[ExperimentResult]:
    """Execute registered experiments, returning results in report order.

    ``only`` restricts the run to the named experiments (unknown names
    raise :class:`UnknownExperimentError` listing the valid ones).  With
    ``seed``, each experiment receives ``derive_seed(seed, name)`` so a
    single master seed pins the entire run; without it every module uses
    its own documented default seed.  ``jobs`` is forwarded to every
    experiment's Monte-Carlo engine.
    """
    specs = load_all()
    if only is not None:
        wanted = {get(name).name for name in only}
        specs = [spec for spec in specs if spec.name in wanted]
    elif not include_headline:
        specs = [spec for spec in specs if spec.profile != "headline"]

    results: List[ExperimentResult] = []
    for spec in specs:
        kwargs = _profile_kwargs(
            spec,
            placement_repetitions,
            scheduling_repetitions,
            tail_repetitions,
        )
        repetitions = kwargs.pop("repetitions", None)
        results.append(
            spec.run(
                repetitions=repetitions,
                seed=derive_seed(seed, spec.name) if seed is not None else None,
                jobs=jobs,
                **kwargs,
            )
        )
    return results


def _print_listing() -> None:
    """Print one line per registered experiment (for ``--list``)."""
    specs = load_all()
    width = max(len(spec.name) for spec in specs)
    for spec in specs:
        reps = (
            str(spec.default_repetitions)
            if spec.default_repetitions is not None
            else "-"
        )
        tags = ",".join(spec.tags) if spec.tags else "-"
        print(
            f"{spec.name:<{width}}  {spec.profile:<10} reps={reps:<4} "
            f"[{tags}]  {spec.title}"
        )


def main(argv: List[str] = None) -> int:
    """CLI entry point."""
    parser = argparse.ArgumentParser(
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    parser.add_argument(
        "--paper",
        action="store_true",
        help="use paper-scale Monte-Carlo repetitions (1000 runs; slow)",
    )
    parser.add_argument(
        "--json",
        metavar="PATH",
        help="also write all results as a JSON document to PATH",
    )
    parser.add_argument(
        "--list",
        action="store_true",
        dest="list_experiments",
        help="list the registered experiments and exit",
    )
    parser.add_argument(
        "--only",
        nargs="+",
        metavar="NAME",
        help="run only the named experiments (see --list)",
    )
    parser.add_argument(
        "--seed",
        type=int,
        default=None,
        help=(
            "master seed; per-experiment seeds derive from it so the "
            "whole run is reproducible at any --jobs level"
        ),
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=0,
        help=(
            "worker processes per experiment "
            "(0 = auto: CPU count, capped at 16; 1 = serial)"
        ),
    )
    args = parser.parse_args(argv)

    if args.list_experiments:
        _print_listing()
        return 0

    try:
        jobs = resolve_jobs(args.jobs if args.jobs else None)
    except ConfigurationError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    kwargs: Dict[str, object] = {
        "only": args.only,
        "seed": args.seed,
        "jobs": jobs,
    }
    if args.paper:
        kwargs.update(
            placement_repetitions=200,
            scheduling_repetitions=1000,
            tail_repetitions=1000,
        )
    try:
        results = run_all(**kwargs)
    except UnknownExperimentError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    for result in results:
        print(result.render())
        print()

    total_wall = 0.0
    for result in results:
        wall = result.meta.get("wall_time_s")
        if wall is None:
            continue
        total_wall += float(wall)
        name = result.meta.get("experiment", result.experiment_id)
        print(f"[timing] {name}: {float(wall):.2f}s", file=sys.stderr)
    print(
        f"[timing] total: {total_wall:.2f}s (jobs={jobs})", file=sys.stderr
    )

    if args.json:
        import json
        from pathlib import Path

        document = {
            "kind": "experiment_results",
            "results": [r.to_dict() for r in results],
        }
        Path(args.json).write_text(json.dumps(document, indent=2))
        print(f"wrote {args.json}")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
