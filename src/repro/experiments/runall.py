"""Run every experiment and print the paper-style report.

Usage::

    python -m repro.experiments.runall            # quick defaults
    python -m repro.experiments.runall --paper    # paper-scale repetitions
"""

from __future__ import annotations

import argparse
import sys
from typing import List

from repro.experiments import (
    extensions_compare,
    fig05,
    fig06,
    fig07,
    fig08,
    fig09,
    fig10,
    fig11,
    fig12,
    fig13,
    fig14,
    fig15,
    fig16,
    headline,
    joint_e2e,
    sensitivity,
    tail,
)
from repro.experiments.harness import ExperimentResult

#: All experiment modules in figure order (joint_e2e, sensitivity and
#: extensions_compare are this repo's beyond-the-paper additions).
ALL_MODULES = (
    fig05,
    fig06,
    fig07,
    fig08,
    fig09,
    fig10,
    fig11,
    fig12,
    fig13,
    fig14,
    fig15,
    fig16,
    tail,
    joint_e2e,
    sensitivity,
    extensions_compare,
)


def run_all(
    placement_repetitions: int = 20,
    scheduling_repetitions: int = 100,
    tail_repetitions: int = 300,
    include_headline: bool = True,
) -> List[ExperimentResult]:
    """Execute every experiment, returning the results in figure order."""
    results: List[ExperimentResult] = []
    for module in ALL_MODULES:
        if module is tail:
            results.append(module.run(repetitions=tail_repetitions))
        elif module in (joint_e2e, extensions_compare):
            results.append(module.run(repetitions=max(5, placement_repetitions // 2)))
        elif module is sensitivity:
            results.append(module.run())
        elif module.__name__.rsplit(".", 1)[-1] in (
            "fig05",
            "fig06",
            "fig07",
            "fig08",
            "fig09",
            "fig10",
        ):
            results.append(module.run(repetitions=placement_repetitions))
        else:
            results.append(module.run(repetitions=scheduling_repetitions))
    if include_headline:
        results.append(
            headline.run(
                placement_repetitions=placement_repetitions,
                scheduling_repetitions=scheduling_repetitions,
            )
        )
    return results


def main(argv: List[str] = None) -> int:
    """CLI entry point."""
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--paper",
        action="store_true",
        help="use paper-scale Monte-Carlo repetitions (1000 runs; slow)",
    )
    parser.add_argument(
        "--json",
        metavar="PATH",
        help="also write all results as a JSON document to PATH",
    )
    args = parser.parse_args(argv)
    if args.paper:
        results = run_all(
            placement_repetitions=200,
            scheduling_repetitions=1000,
            tail_repetitions=1000,
        )
    else:
        results = run_all()
    for result in results:
        print(result.render())
        print()
    if args.json:
        import json
        from pathlib import Path

        document = {
            "kind": "experiment_results",
            "results": [r.to_dict() for r in results],
        }
        Path(args.json).write_text(json.dumps(document, indent=2))
        print(f"wrote {args.json}")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
