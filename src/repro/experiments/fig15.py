"""Fig. 15 — average job rejection rate vs #requests, P = 0.997.

Paper's observation: under low packet loss RCKK maintains a near-zero
rejection rate while CGA's is positive.  Rejection here is driven by
schedule imbalance: the mu scaling pins the mean raw utilization at
``RHO = 0.98``, so the effective utilization ``RHO / P`` leaves only a
sliver of headroom that CGA's residual imbalance overruns.
"""

from __future__ import annotations

from typing import Tuple

from repro.experiments.harness import ExperimentResult
from repro.experiments.registry import ExperimentSpec, register
from repro.experiments.sweeps import (
    DEFAULT_SCHEDULING_REPS,
    scheduling_sweep,
)
from repro.workload.scenarios import SchedulingScenario

#: The request sweep for the rejection figures.
REQUEST_COUNTS: Tuple[int, ...] = (30, 50, 100, 150, 200)

#: Raw-load utilization target: effective utilization is RHO / P.
RHO = 0.98


def run(
    repetitions: int = DEFAULT_SCHEDULING_REPS,
    seed: int = 20170615,
    delivery_probability: float = 0.997,
    experiment_id: str = "fig15",
    jobs: int = 1,
) -> ExperimentResult:
    """Regenerate Fig. 15's series (or Fig. 16's via the P parameter)."""
    scenarios = [
        (
            n,
            SchedulingScenario(
                num_requests=n,
                num_instances=5,
                delivery_probability=delivery_probability,
                rho=RHO,
                seed=seed + n,
            ),
        )
        for n in REQUEST_COUNTS
    ]
    rows = scheduling_sweep(scenarios, repetitions=repetitions, jobs=jobs)
    result = ExperimentResult(
        experiment_id=experiment_id,
        title=(
            "Average job rejection rate vs #requests "
            f"(P={delivery_probability}, 5 instances)"
        ),
        columns=["requests", "algorithm", "rejection_rate"],
    )
    for row in rows:
        result.add_row(
            requests=row["x"],
            algorithm=row["algorithm"],
            rejection_rate=row["rejection_rate"],
        )
    result.notes.append(
        "paper (P=0.997): RCKK near zero throughout; CGA positive"
    )
    result.notes.append(
        "deviation: the paper's CGA rejection *rises* with requests; with "
        "a faithful least-loaded CGA the imbalance (hence rejection) "
        "shrinks as requests grow — orderings preserved, trend reversed"
    )
    return result


SPEC = register(
    ExperimentSpec(
        name="fig15",
        title="Average job rejection rate vs #requests (P=0.997)",
        runner=run,
        profile="scheduling",
        tags=("scheduling", "figure"),
        default_repetitions=DEFAULT_SCHEDULING_REPS,
        order=15,
    )
)


if __name__ == "__main__":  # pragma: no cover
    run().print()
