"""Fig. 8 — average number of nodes in service vs nodes available (15 VNFs).

Paper's observation: used-node counts rise slightly with the pool; BFDSU
always uses fewest (8.56 average), NAH next (10.55), FFD most (10.80).
"""

from __future__ import annotations

import numpy as np

from repro.experiments.harness import ExperimentResult
from repro.experiments.registry import ExperimentSpec, register
from repro.experiments.sweeps import DEFAULT_PLACEMENT_REPS, placement_sweep
from repro.experiments.fig07 import NODE_COUNTS, _scenario


def run(
    repetitions: int = DEFAULT_PLACEMENT_REPS,
    seed: int = 20170608,
    jobs: int = 1,
) -> ExperimentResult:
    """Regenerate Fig. 8's series."""
    scenarios = [(n, _scenario(n, seed)) for n in NODE_COUNTS]
    rows = placement_sweep(
        scenarios, repetitions=repetitions, seed=seed, jobs=jobs
    )
    result = ExperimentResult(
        experiment_id="fig08",
        title="Average #nodes in service vs #nodes available (15 VNFs)",
        columns=["nodes", "algorithm", "nodes_in_service"],
    )
    for row in rows:
        result.add_row(
            nodes=row["x"],
            algorithm=row["algorithm"],
            nodes_in_service=row["nodes_in_service"],
        )
    # Sweep-average per algorithm (the numbers the paper quotes).
    for name in ("BFDSU", "NAH", "FFD"):
        values = [
            row["nodes_in_service"] for row in rows if row["algorithm"] == name
        ]
        if values:
            result.notes.append(
                f"sweep average {name}: {float(np.mean(values)):.2f} nodes"
            )
    result.notes.append("paper: BFDSU 8.56 < NAH 10.55 < FFD 10.80")
    return result


SPEC = register(
    ExperimentSpec(
        name="fig08",
        title="Average #nodes in service vs #nodes available (15 VNFs)",
        runner=run,
        profile="placement",
        tags=("placement", "figure"),
        default_repetitions=DEFAULT_PLACEMENT_REPS,
        order=8,
    )
)


if __name__ == "__main__":  # pragma: no cover
    run().print()
