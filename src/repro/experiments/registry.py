"""Declarative experiment registry.

Each module in :mod:`repro.experiments` describes itself with an
:class:`ExperimentSpec` and calls :func:`register` at import time.  The
runner (:mod:`repro.experiments.runall`), the CLI (``--list``/
``--only``) and the tests all consume the registry — adding an
experiment means writing one module with a ``run()`` and a spec, never
editing a dispatch table.

Repetition profiles
-------------------
Experiments differ in how many Monte-Carlo repetitions they need (mean
placement metrics vs 99th-percentile tails) and in which knob of
``run_all`` drives them.  A spec names its ``profile``:

==============  ====================================================
``placement``   Figs. 5-10; driven by ``placement_repetitions``
``scheduling``  Figs. 11-16; driven by ``scheduling_repetitions``
``tail``        percentile experiments; ``tail_repetitions``
``joint``       full-pipeline runs; scaled from placement reps
``analytic``    no repetition knob (closed forms / fixed sims)
``headline``    aggregates other experiments; takes both rep knobs
==============  ====================================================
"""

from __future__ import annotations

import importlib
import inspect
import pkgutil
import time
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from repro.exceptions import UnknownExperimentError, ValidationError
from repro.experiments.harness import ExperimentResult

#: Valid ``ExperimentSpec.profile`` values.
PROFILES = ("placement", "scheduling", "tail", "joint", "analytic", "headline")

#: Package-infrastructure modules that do not register experiments.
INFRASTRUCTURE_MODULES = frozenset(
    {"harness", "sweeps", "registry", "montecarlo", "runall", "shm"}
)


@dataclass(frozen=True)
class ExperimentSpec:
    """One experiment's declarative description.

    Parameters
    ----------
    name:
        Unique key (``fig05`` ... ``headline``) used by ``--only``.
    title:
        Human-readable one-liner for ``--list``.
    runner:
        The module's ``run`` callable returning an
        :class:`ExperimentResult`.  Must accept ``seed`` and ``jobs``
        keywords; ``repetitions`` too unless the profile is
        ``analytic``/``headline``.
    profile:
        Which repetition knob drives it (see module docstring).
    tags:
        Free-form labels (``placement``, ``scheduling``, ``tail``,
        ``beyond-paper``, ...) shown by ``--list``.
    default_repetitions:
        The repetitions used when the caller passes none — recorded in
        run metadata.
    order:
        Sort key for report order (figure number; beyond-paper
        experiments sort after the figures).
    """

    name: str
    title: str
    runner: Callable[..., ExperimentResult]
    profile: str = "placement"
    tags: Tuple[str, ...] = ()
    default_repetitions: Optional[int] = None
    order: int = 1000

    def __post_init__(self) -> None:
        if self.profile not in PROFILES:
            raise ValidationError(
                f"unknown profile {self.profile!r} for experiment "
                f"{self.name!r}; valid: {PROFILES}"
            )

    def default_seed(self) -> Optional[int]:
        """The runner's own default seed, if it declares one."""
        try:
            parameter = inspect.signature(self.runner).parameters["seed"]
        except (KeyError, TypeError, ValueError):
            return None
        if parameter.default is inspect.Parameter.empty:
            return None
        return parameter.default

    def run(
        self,
        repetitions: Optional[int] = None,
        seed: Optional[int] = None,
        jobs: int = 1,
        **extra: object,
    ) -> ExperimentResult:
        """Execute the runner and stamp run metadata on the result.

        ``repetitions``/``seed`` are forwarded only when given, so the
        module defaults stay authoritative.  The returned result's
        ``meta`` records the experiment name, effective repetitions,
        seed, worker count and wall-clock time (see
        :meth:`ExperimentResult.render` for what is surfaced where).
        """
        kwargs: Dict[str, object] = dict(extra)
        if repetitions is not None:
            kwargs["repetitions"] = repetitions
        if seed is not None:
            kwargs["seed"] = seed
        kwargs["jobs"] = jobs
        start = time.perf_counter()
        result = self.runner(**kwargs)
        wall_time = time.perf_counter() - start
        result.meta.update(
            {
                "experiment": self.name,
                "repetitions": (
                    repetitions
                    if repetitions is not None
                    else self.default_repetitions
                ),
                "seed": seed if seed is not None else self.default_seed(),
                "jobs": jobs,
                "wall_time_s": round(wall_time, 4),
            }
        )
        return result


_REGISTRY: Dict[str, ExperimentSpec] = {}


def register(spec: ExperimentSpec) -> ExperimentSpec:
    """Register a spec (idempotent for the same object); returns it."""
    existing = _REGISTRY.get(spec.name)
    if existing is not None and existing is not spec:
        raise ValidationError(
            f"experiment {spec.name!r} registered twice "
            f"({existing.runner} and {spec.runner})"
        )
    _REGISTRY[spec.name] = spec
    return spec


def experiment_module_names() -> List[str]:
    """All experiment (non-infrastructure) modules in this package."""
    import repro.experiments as package

    return sorted(
        info.name
        for info in pkgutil.iter_modules(package.__path__)
        if info.name not in INFRASTRUCTURE_MODULES
        and not info.name.startswith("_")
    )


def load_all() -> List[ExperimentSpec]:
    """Import every experiment module and return all specs in order."""
    for module_name in experiment_module_names():
        importlib.import_module(f"repro.experiments.{module_name}")
    return all_specs()


def all_specs() -> List[ExperimentSpec]:
    """Registered specs sorted by report order."""
    return sorted(_REGISTRY.values(), key=lambda s: (s.order, s.name))


def names() -> List[str]:
    """Registered experiment names in report order."""
    return [spec.name for spec in all_specs()]


def get(name: str) -> ExperimentSpec:
    """Look up one spec; unknown names raise with the valid list."""
    if not _REGISTRY:
        load_all()
    spec = _REGISTRY.get(name)
    if spec is None:
        raise UnknownExperimentError(
            f"unknown experiment {name!r}; valid names: "
            f"{', '.join(names())}"
        )
    return spec
