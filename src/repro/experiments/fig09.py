"""Fig. 9 — total resource occupation vs nodes available (15 VNFs).

Paper's observation: BFDSU's occupied capacity (sum of ``A_v`` over
nodes in service) stays stably low; FFD and NAH grow with the pool.
"""

from __future__ import annotations

from repro.experiments.harness import ExperimentResult
from repro.experiments.registry import ExperimentSpec, register
from repro.experiments.sweeps import DEFAULT_PLACEMENT_REPS, placement_sweep
from repro.experiments.fig07 import NODE_COUNTS, _scenario


def run(
    repetitions: int = DEFAULT_PLACEMENT_REPS,
    seed: int = 20170609,
    jobs: int = 1,
) -> ExperimentResult:
    """Regenerate Fig. 9's series."""
    scenarios = [(n, _scenario(n, seed)) for n in NODE_COUNTS]
    rows = placement_sweep(
        scenarios, repetitions=repetitions, seed=seed, jobs=jobs
    )
    result = ExperimentResult(
        experiment_id="fig09",
        title="Average resource occupation vs #nodes available (15 VNFs)",
        columns=["nodes", "algorithm", "occupation"],
    )
    for row in rows:
        result.add_row(
            nodes=row["x"],
            algorithm=row["algorithm"],
            occupation=row["occupation"],
        )
    result.notes.append(
        "paper: BFDSU stably low; FFD and NAH grow with the node pool"
    )
    return result


SPEC = register(
    ExperimentSpec(
        name="fig09",
        title="Average resource occupation vs #nodes available (15 VNFs)",
        runner=run,
        profile="placement",
        tags=("placement", "figure"),
        default_repetitions=DEFAULT_PLACEMENT_REPS,
        order=9,
    )
)


if __name__ == "__main__":  # pragma: no cover
    run().print()
