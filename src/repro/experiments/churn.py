"""Churn serving — incremental engine vs per-arrival full re-solve.

The paper's optimizer is a batch solver; ROADMAP item 1 asks what it
costs to run it as a long-running service.  This experiment replays
hours of simulated Poisson churn (arrivals + exponential holding
times) through two serving policies sharing one workload and one
admission rule (Eq. (9) utilization cap at the
:mod:`repro.core.admission` target):

* **incremental** — :class:`~repro.serve.service.ServingLayer` over a
  :class:`~repro.core.incremental.DeploymentEngine`: O(chain)
  warm-start admits, exact-retract departures, full re-optimization
  every ``REBALANCE_EVERY`` admits.
* **full-resolve** — the batch pipeline rerun from scratch on every
  arrival (the naive way to serve with a batch solver); an arrival is
  rejected when the re-solved schedule would push some instance past
  the utilization cap.

Reported per policy: mean re-embedding latency per arrival (wall-clock
ms), migrations (assignment changes an operator would have to enact),
and the rejection rate.  A separate ``probe_2k`` row prices one
warm-start admit against one from-scratch joint solve at 2000 active
requests — the incremental path must be >= 50x faster (asserted by
``tests/experiments/test_churn.py``).
"""

from __future__ import annotations

import time
from typing import Dict, List

import numpy as np

from repro.core.incremental import (
    ADMISSION_POLICIES,
    DeploymentEngine,
    solve_joint,
)
from repro.exceptions import ConfigurationError
from repro.experiments.harness import ExperimentResult
from repro.experiments.montecarlo import run_trials
from repro.experiments.registry import ExperimentSpec, register
from repro.nfv.request import Request
from repro.serve.events import poisson_churn
from repro.serve.service import ServingLayer
from repro.workload.generator import WorkloadGenerator

#: Simulated trace length (seconds) — two hours of churn.
DURATION = 7200.0
#: Poisson arrival intensity (per second).
ARRIVAL_RATE = 0.03
#: Mean exponential holding time (seconds).
MEAN_HOLDING = 800.0
#: Full re-optimization cadence of the incremental policy (admits).
REBALANCE_EVERY = 25
#: Active population of the admit-vs-resolve pricing probe.
PROBE_ACTIVE = 2000


def _scenario(ss: np.random.SeedSequence):
    """Infrastructure + chain catalog shared by both policies."""
    gen = WorkloadGenerator(np.random.default_rng(ss))
    w = gen.workload(num_vnfs=12, num_nodes=24, num_requests=30)
    seen = set()
    chains = []
    for request in w.requests:
        key = request.chain.vnf_names
        if key not in seen:
            seen.add(key)
            chains.append(request.chain)
    return w.vnfs, w.capacities, chains


def _max_utilization(state, vnfs) -> float:
    """Peak instance utilization of a solved state (Eq. 9)."""
    arrays = state.arrays()
    sched = state.schedule_arrays()
    equivalent, _, _ = arrays.instance_rates(sched)
    with np.errstate(divide="ignore", invalid="ignore"):
        util = np.where(arrays.mu_inst > 0, equivalent / arrays.mu_inst, 0.0)
    return float(util.max()) if len(util) else 0.0


def _full_resolve_policy(
    vnfs, capacities, events, target: float
) -> Dict[str, float]:
    """Serve by rerunning the batch solver on every arrival."""
    active: Dict[str, Request] = {}
    rejected = set()
    placement: Dict[str, object] = {}
    schedule: Dict[tuple, int] = {}
    latencies: List[float] = []
    migrations = 0
    arrivals = 0
    rejections = 0
    for event in events:
        if event.kind == "arrival":
            arrivals += 1
            candidate = dict(active)
            candidate[event.request_id] = event.request
            start = time.perf_counter()
            state = solve_joint(vnfs, list(candidate.values()), capacities)
            accept = _max_utilization(state, vnfs) <= target
            latencies.append(time.perf_counter() - start)
            if not accept:
                rejections += 1
                rejected.add(event.request_id)
                continue
            migrations += sum(
                1
                for name, node in state.placement.items()
                if placement and placement.get(name) != node
            )
            migrations += sum(
                1
                for key, k in state.schedule.items()
                if key in schedule and schedule[key] != k
            )
            active = candidate
            placement = dict(state.placement)
            schedule = dict(state.schedule)
        else:
            if event.request_id in rejected:
                rejected.discard(event.request_id)
                continue
            # Departures only retract bookkeeping; the naive policy
            # re-solves lazily at the next arrival.
            del active[event.request_id]
            schedule = {
                key: k
                for key, k in schedule.items()
                if key[0] != event.request_id
            }
    return {
        "re_embed_ms": 1e3 * float(np.mean(latencies)) if latencies else 0.0,
        "migrations": float(migrations),
        "rejection_rate": rejections / arrivals if arrivals else 0.0,
    }


def _trial(task) -> Dict[str, Dict[str, float]]:
    """One repetition: both policies on one shared churn trace."""
    seed, rep, admission = task
    root = np.random.SeedSequence([seed, rep])
    # spawn(3) returns the same first two children as the historical
    # spawn(2) — the admission stream is a pure extension, so the
    # default least-loaded trial stays byte-identical.
    scenario_ss, churn_ss, admission_ss = root.spawn(3)
    vnfs, capacities, chains = _scenario(scenario_ss)
    events = poisson_churn(
        chains,
        duration=DURATION,
        arrival_rate=ARRIVAL_RATE,
        mean_holding=MEAN_HOLDING,
        rng=np.random.default_rng(churn_ss),
        prefix=f"churn{rep}",
    )

    engine = DeploymentEngine(
        vnfs,
        capacities,
        admission=admission,
        admission_rng=(
            np.random.default_rng(admission_ss)
            if admission == "power-of-two"
            else None
        ),
    )
    layer = ServingLayer(engine, rebalance_every=REBALANCE_EVERY)
    report = layer.process(events)
    target = engine.target_utilization

    return {
        "incremental": {
            "re_embed_ms": 1e3 * report.mean_admit_latency,
            "migrations": float(report.migrations),
            "rejection_rate": report.rejection_rate,
        },
        "full-resolve": _full_resolve_policy(
            vnfs, capacities, events, target
        ),
    }


def probe_speedup(seed: int = 20170605) -> Dict[str, float]:
    """Price one warm-start admit vs one batch solve at 2k actives."""
    gen = WorkloadGenerator(np.random.default_rng(seed))
    w = gen.workload(
        num_vnfs=12, num_nodes=24, num_requests=PROBE_ACTIVE + 200
    )
    base = w.requests[:PROBE_ACTIVE]
    extra = w.requests[PROBE_ACTIVE:]

    start = time.perf_counter()
    solve_joint(w.vnfs, list(base), w.capacities)
    resolve_s = time.perf_counter() - start

    engine = DeploymentEngine(
        w.vnfs, w.capacities, base, target_utilization=None
    )
    start = time.perf_counter()
    for request in extra:
        engine.admit(request)
    admit_s = (time.perf_counter() - start) / len(extra)
    return {
        "resolve_ms": 1e3 * resolve_s,
        "admit_ms": 1e3 * admit_s,
        "speedup": resolve_s / admit_s if admit_s > 0 else float("inf"),
    }


def run(
    repetitions: int = 5,
    seed: int = 20170802,
    jobs: int = 1,
    admission: str = "least-loaded",
) -> ExperimentResult:
    """Serve hours of churn incrementally and by full re-solve.

    ``admission`` selects the incremental engine's instance-selection
    rule — ``"least-loaded"`` (default, the historical behavior) or
    ``"power-of-two"`` (seeded two-probe sampling; the stream derives
    from the same per-trial seed root, so results stay deterministic
    at any ``jobs``).
    """
    if admission not in ADMISSION_POLICIES:
        raise ConfigurationError(
            f"unknown admission policy {admission!r}; "
            f"expected one of {ADMISSION_POLICIES}"
        )
    variants = ("incremental", "full-resolve")
    acc: Dict[str, Dict[str, List[float]]] = {
        v: {"re_embed_ms": [], "migrations": [], "rejection_rate": []}
        for v in variants
    }
    trials = run_trials(
        _trial,
        [(seed, rep, admission) for rep in range(repetitions)],
        jobs=jobs,
    )
    for metrics in trials:
        for variant, values in metrics.items():
            for column, value in values.items():
                acc[variant][column].append(value)
    probe = probe_speedup(seed)

    result = ExperimentResult(
        experiment_id="churn",
        title="Incremental serving vs per-arrival full re-solve",
        columns=[
            "variant",
            "re_embed_ms",
            "migrations",
            "rejection_rate",
            "speedup_vs_resolve",
        ],
    )
    resolve_ms = float(np.mean(acc["full-resolve"]["re_embed_ms"]))
    for variant in variants:
        mean_ms = float(np.mean(acc[variant]["re_embed_ms"]))
        result.add_row(
            variant=variant,
            re_embed_ms=mean_ms,
            migrations=float(np.mean(acc[variant]["migrations"])),
            rejection_rate=float(np.mean(acc[variant]["rejection_rate"])),
            speedup_vs_resolve=resolve_ms / mean_ms if mean_ms else 0.0,
        )
    result.add_row(
        variant="probe_2k",
        re_embed_ms=probe["admit_ms"],
        migrations=0.0,
        rejection_rate=0.0,
        speedup_vs_resolve=probe["speedup"],
    )
    result.notes.append(
        f"{DURATION / 3600:.0f}h simulated Poisson churn, lambda="
        f"{ARRIVAL_RATE}/s, mean holding {MEAN_HOLDING:.0f}s (~"
        f"{ARRIVAL_RATE * MEAN_HOLDING:.0f} steady-state actives); "
        f"incremental rebalances every {REBALANCE_EVERY} admits"
    )
    result.notes.append(
        "re_embed_ms: wall-clock per arrival decision (warm-start admit "
        "vs from-scratch two-phase solve); migrations: placement moves "
        "+ schedule reassignments; the naive policy re-solves on "
        "arrivals only (departures retract bookkeeping lazily)"
    )
    result.notes.append(
        f"probe_2k: one admit vs one batch solve at {PROBE_ACTIVE} "
        f"active requests — measured speedup {probe['speedup']:.0f}x "
        f"(acceptance floor 50x), resolve {probe['resolve_ms']:.1f}ms "
        f"vs admit {probe['admit_ms'] * 1e3:.1f}us"
    )
    if admission != "least-loaded":
        result.notes.append(
            f"incremental admits use the {admission!r} policy "
            "(seeded per trial)"
        )
    return result


SPEC = register(
    ExperimentSpec(
        name="churn",
        title="Incremental serving vs per-arrival full re-solve",
        runner=run,
        profile="joint",
        tags=("serving", "beyond-paper"),
        default_repetitions=5,
        order=23,
    )
)


if __name__ == "__main__":  # pragma: no cover
    print(run(repetitions=2).render())
