"""Extensions comparison — what the beyond-paper variants buy.

Runs the placement variants this repo adds on top of BFDSU — the
chain-affinity weighting, best-of-K restarts, and the Eq. (16) relocate
local search — on shared workloads, reporting utilization, nodes in
service, and the fraction of chain hops that cross nodes (the quantity
Eq. (16) charges ``L`` for).
"""

from __future__ import annotations

from typing import Dict, List

import numpy as np

from repro.core.local_search import refine_placement
from repro.experiments.harness import ExperimentResult
from repro.experiments.montecarlo import run_trials
from repro.experiments.registry import ExperimentSpec, register
from repro.nfv.state import DeploymentState
from repro.placement.base import PlacementProblem
from repro.placement.best_of import BestOfKPlacement
from repro.placement.bfdsu import BFDSUPlacement
from repro.placement.chain_affinity import ChainAffinityBFDSU
from repro.scheduling.base import schedule_all_vnfs
from repro.scheduling.rckk import RCKKScheduler
from repro.workload.generator import WorkloadGenerator


def _cross_hop_fraction(state: DeploymentState) -> float:
    crossing = 0
    total = 0
    for request in state.requests:
        names = list(request.chain)
        for a, b in zip(names[:-1], names[1:]):
            total += 1
            if state.placement[a] != state.placement[b]:
                crossing += 1
    return crossing / total if total else 0.0


#: The compared variants, in report order.
VARIANTS = ("BFDSU", "ChainAffinity", "BestOf5", "BFDSU+LocalSearch")


def _bfdsu_factory(run_index, rng):
    """Module-level BestOfK factory (picklable for parallel trials)."""
    return BFDSUPlacement(rng=rng)


def _trial(task) -> Dict[str, tuple]:
    """One repetition: every variant on one shared workload."""
    seed, rep = task
    # Independent child streams per consumer, deterministic in
    # (seed, rep) — parallel trials never share generator state.
    root = np.random.SeedSequence([seed, rep])
    gen_ss, bfdsu_ss, affinity_ss, best_ss = root.spawn(4)
    gen = WorkloadGenerator(np.random.default_rng(gen_ss))
    w = gen.workload(num_vnfs=12, num_nodes=10, num_requests=60)
    problem = PlacementProblem(
        vnfs=w.vnfs, capacities=w.capacities, chains=w.chains
    )
    schedule = schedule_all_vnfs(w.vnfs, w.requests, RCKKScheduler())
    metrics: Dict[str, tuple] = {}

    def evaluate(name: str, placement_map) -> None:
        state = DeploymentState(
            vnfs=w.vnfs,
            requests=w.requests,
            node_capacities=w.capacities,
            placement=dict(placement_map),
            schedule=schedule,
        )
        if name == "BFDSU+LocalSearch":
            refine_placement(state)
        metrics[name] = (
            state.average_node_utilization(),
            state.total_nodes_in_service(),
            _cross_hop_fraction(state),
        )

    base = BFDSUPlacement(rng=np.random.default_rng(bfdsu_ss)).place(problem)
    evaluate("BFDSU", base.placement)
    evaluate("BFDSU+LocalSearch", base.placement)
    affinity = ChainAffinityBFDSU(
        rng=np.random.default_rng(affinity_ss), affinity_boost=8.0
    ).place(problem)
    evaluate("ChainAffinity", affinity.placement)
    best = BestOfKPlacement(
        _bfdsu_factory, k=5, rng=np.random.default_rng(best_ss)
    ).place(problem)
    evaluate("BestOf5", best.placement)
    return metrics


def run(
    repetitions: int = 10, seed: int = 20170622, jobs: int = 1
) -> ExperimentResult:
    """Compare the placement variants on shared workloads."""
    variants = VARIANTS
    acc: Dict[str, Dict[str, List[float]]] = {
        v: {"util": [], "nodes": [], "cross": []} for v in variants
    }
    trials = run_trials(
        _trial, [(seed, rep) for rep in range(repetitions)], jobs=jobs
    )
    for metrics in trials:
        for name, (util, nodes, cross) in metrics.items():
            acc[name]["util"].append(util)
            acc[name]["nodes"].append(nodes)
            acc[name]["cross"].append(cross)

    result = ExperimentResult(
        experiment_id="extensions",
        title="Beyond-paper placement variants on shared workloads",
        columns=["variant", "utilization", "nodes", "cross_hop_fraction"],
    )
    for variant in variants:
        result.add_row(
            variant=variant,
            utilization=float(np.mean(acc[variant]["util"])),
            nodes=float(np.mean(acc[variant]["nodes"])),
            cross_hop_fraction=float(np.mean(acc[variant]["cross"])),
        )
    result.notes.append(
        "cross_hop_fraction: share of chain hops paying Eq. (16)'s L; "
        "lower is better"
    )
    return result


SPEC = register(
    ExperimentSpec(
        name="extensions_compare",
        title="Beyond-paper placement variants on shared workloads",
        runner=run,
        profile="joint",
        tags=("placement", "beyond-paper"),
        default_repetitions=10,
        order=20,
    )
)


if __name__ == "__main__":  # pragma: no cover
    run().print()
