"""Extensions comparison — what the beyond-paper variants buy.

Runs the placement variants this repo adds on top of BFDSU — the
chain-affinity weighting, best-of-K restarts, and the Eq. (16) relocate
local search — on shared workloads, reporting utilization, nodes in
service, and the fraction of chain hops that cross nodes (the quantity
Eq. (16) charges ``L`` for).
"""

from __future__ import annotations

from typing import Dict, List

import numpy as np

from repro.core.local_search import refine_placement
from repro.experiments.harness import ExperimentResult
from repro.nfv.state import DeploymentState
from repro.placement.base import PlacementProblem
from repro.placement.best_of import BestOfKPlacement
from repro.placement.bfdsu import BFDSUPlacement
from repro.placement.chain_affinity import ChainAffinityBFDSU
from repro.scheduling.base import schedule_all_vnfs
from repro.scheduling.rckk import RCKKScheduler
from repro.workload.generator import WorkloadGenerator


def _cross_hop_fraction(state: DeploymentState) -> float:
    crossing = 0
    total = 0
    for request in state.requests:
        names = list(request.chain)
        for a, b in zip(names[:-1], names[1:]):
            total += 1
            if state.placement[a] != state.placement[b]:
                crossing += 1
    return crossing / total if total else 0.0


def run(repetitions: int = 10, seed: int = 20170622) -> ExperimentResult:
    """Compare the placement variants on shared workloads."""
    variants = ("BFDSU", "ChainAffinity", "BestOf5", "BFDSU+LocalSearch")
    acc: Dict[str, Dict[str, List[float]]] = {
        v: {"util": [], "nodes": [], "cross": []} for v in variants
    }

    for rep in range(repetitions):
        gen = WorkloadGenerator(
            np.random.default_rng(np.random.SeedSequence([seed, rep]))
        )
        w = gen.workload(num_vnfs=12, num_nodes=10, num_requests=60)
        problem = PlacementProblem(
            vnfs=w.vnfs, capacities=w.capacities, chains=w.chains
        )
        schedule = schedule_all_vnfs(w.vnfs, w.requests, RCKKScheduler())

        def evaluate(name: str, placement_map) -> None:
            state = DeploymentState(
                vnfs=w.vnfs,
                requests=w.requests,
                node_capacities=w.capacities,
                placement=dict(placement_map),
                schedule=schedule,
            )
            if name == "BFDSU+LocalSearch":
                refine_placement(state)
            acc[name]["util"].append(state.average_node_utilization())
            acc[name]["nodes"].append(state.total_nodes_in_service())
            acc[name]["cross"].append(_cross_hop_fraction(state))

        base = BFDSUPlacement(rng=np.random.default_rng(rep)).place(problem)
        evaluate("BFDSU", base.placement)
        evaluate("BFDSU+LocalSearch", base.placement)
        affinity = ChainAffinityBFDSU(
            rng=np.random.default_rng(rep), affinity_boost=8.0
        ).place(problem)
        evaluate("ChainAffinity", affinity.placement)
        best = BestOfKPlacement(
            lambda run, rng: BFDSUPlacement(rng=rng),
            k=5,
            rng=np.random.default_rng(rep),
        ).place(problem)
        evaluate("BestOf5", best.placement)

    result = ExperimentResult(
        experiment_id="extensions",
        title="Beyond-paper placement variants on shared workloads",
        columns=["variant", "utilization", "nodes", "cross_hop_fraction"],
    )
    for variant in variants:
        result.add_row(
            variant=variant,
            utilization=float(np.mean(acc[variant]["util"])),
            nodes=float(np.mean(acc[variant]["nodes"])),
            cross_hop_fraction=float(np.mean(acc[variant]["cross"])),
        )
    result.notes.append(
        "cross_hop_fraction: share of chain hops paying Eq. (16)'s L; "
        "lower is better"
    )
    return result


if __name__ == "__main__":  # pragma: no cover
    run().print()
