"""Tail statistics — 99th-percentile response time (Section V-C text).

Paper's observation: sweeping requests 10-200 onto 5 instances at
P=0.98, RCKK reduces the 99th-percentile response time by 44.54% (few
requests) down to 5.18% (many); at 50 requests the tails are 1.23 (RCKK)
vs 1.60 (CGA), a 23.17% reduction.
"""

from __future__ import annotations

from typing import Tuple

from repro.experiments.harness import ExperimentResult
from repro.experiments.registry import ExperimentSpec, register
from repro.experiments.sweeps import (
    enhancement_column,
    scheduling_sweep,
)
from repro.workload.scenarios import SchedulingScenario

#: The paper's tail-statistics sweep.
REQUEST_COUNTS: Tuple[int, ...] = (10, 25, 50, 100, 200)

#: Raw-load utilization target (same regime as Figs. 11-12).
RHO = 0.8

#: The paper uses 1000 Monte-Carlo runs for the 99th percentile; fewer
#: runs make the percentile itself noisy, so the default here is higher
#: than for the mean-value experiments.
DEFAULT_TAIL_REPS = 300


def run(
    repetitions: int = DEFAULT_TAIL_REPS,
    seed: int = 20170617,
    jobs: int = 1,
) -> ExperimentResult:
    """Regenerate the 99th-percentile comparison."""
    scenarios = [
        (
            n,
            SchedulingScenario(
                num_requests=n,
                num_instances=5,
                delivery_probability=0.98,
                rho=RHO,
                seed=seed + n,
            ),
        )
        for n in REQUEST_COUNTS
    ]
    rows = scheduling_sweep(scenarios, repetitions=repetitions, jobs=jobs)
    enhancement = enhancement_column(rows, "p99_w")
    result = ExperimentResult(
        experiment_id="tail",
        title="99th-percentile response time vs #requests (P=0.98)",
        columns=["requests", "algorithm", "p99_w", "enhancement"],
    )
    for row in rows:
        result.add_row(
            requests=row["x"],
            algorithm=row["algorithm"],
            p99_w=row["p99_w"],
            enhancement=(
                enhancement.get(row["x"], 0.0)
                if row["algorithm"] == "RCKK"
                else 0.0
            ),
        )
    result.notes.append(
        "paper: tail reduction 44.54% -> 5.18% over the sweep; 23.17% at "
        "50 requests"
    )
    return result


SPEC = register(
    ExperimentSpec(
        name="tail",
        title="99th-percentile response time vs #requests (P=0.98)",
        runner=run,
        profile="tail",
        tags=("scheduling", "tail"),
        default_repetitions=DEFAULT_TAIL_REPS,
        order=17,
    )
)


if __name__ == "__main__":  # pragma: no cover
    run().print()
