"""Fig. 6 — average utilization of used nodes vs number of VNFs.

Paper sweeps VNFs 6-30 with nodes co-scaled 4-20 while 1000 requests are
served; BFDSU beats FFD by 31.61% and NAH by 33.41% on average.
"""

from __future__ import annotations

from repro.experiments.harness import ExperimentResult
from repro.experiments.registry import ExperimentSpec, register
from repro.experiments.sweeps import DEFAULT_PLACEMENT_REPS, placement_sweep
from repro.workload.scenarios import PlacementScenario

#: (num_vnfs, num_nodes) pairs — nodes co-scale with VNFs as in the paper.
SWEEP = ((6, 4), (12, 8), (18, 12), (24, 16), (30, 20))


def run(
    repetitions: int = DEFAULT_PLACEMENT_REPS,
    seed: int = 20170606,
    jobs: int = 1,
) -> ExperimentResult:
    """Regenerate Fig. 6's series."""
    scenarios = [
        (
            num_vnfs,
            PlacementScenario(
                num_vnfs=num_vnfs,
                num_nodes=num_nodes,
                num_requests=1000,
                seed=seed + num_vnfs,
            ),
        )
        for num_vnfs, num_nodes in SWEEP
    ]
    rows = placement_sweep(
        scenarios, repetitions=repetitions, seed=seed, jobs=jobs
    )
    result = ExperimentResult(
        experiment_id="fig06",
        title="Average utilization of used nodes vs #VNFs (1000 requests)",
        columns=["vnfs", "algorithm", "utilization"],
    )
    for row in rows:
        result.add_row(
            vnfs=row["x"],
            algorithm=row["algorithm"],
            utilization=row["utilization"],
        )
    result.notes.append(
        "paper: BFDSU +31.61% vs FFD and +33.41% vs NAH on average"
    )
    return result


SPEC = register(
    ExperimentSpec(
        name="fig06",
        title="Average utilization of used nodes vs #VNFs (1000 requests)",
        runner=run,
        profile="placement",
        tags=("placement", "figure"),
        default_repetitions=DEFAULT_PLACEMENT_REPS,
        order=6,
    )
)


if __name__ == "__main__":  # pragma: no cover
    run().print()
