"""Fig. 12 — average response time vs #requests, P = 1.00, 5 instances.

Same sweep as Fig. 11 with no packet loss; the paper's enhancement ratio
declines from 33.49% to 1.17%, consistently below the lossy case.
"""

from __future__ import annotations

from repro.experiments.fig11 import run as _run_fig11
from repro.experiments.harness import ExperimentResult
from repro.experiments.registry import ExperimentSpec, register
from repro.experiments.sweeps import DEFAULT_SCHEDULING_REPS


def run(
    repetitions: int = DEFAULT_SCHEDULING_REPS,
    seed: int = 20170612,
    jobs: int = 1,
) -> ExperimentResult:
    """Regenerate Fig. 12's series."""
    result = _run_fig11(
        repetitions=repetitions,
        seed=seed,
        delivery_probability=1.0,
        experiment_id="fig12",
        jobs=jobs,
    )
    result.notes.clear()
    result.notes.append(
        "paper (P=1.00): enhancement declines 33.49% -> 1.17%, below the "
        "P=0.98 curve of fig11"
    )
    return result


SPEC = register(
    ExperimentSpec(
        name="fig12",
        title="Average response time vs #requests (P=1.00, 5 instances)",
        runner=run,
        profile="scheduling",
        tags=("scheduling", "figure"),
        default_repetitions=DEFAULT_SCHEDULING_REPS,
        order=12,
    )
)


if __name__ == "__main__":  # pragma: no cover
    run().print()
