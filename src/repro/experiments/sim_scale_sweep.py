"""Simulation-scale sweep — events-vs-trace wall clock as load grows.

The Jackson-network validator got a second, array-native backend
(:mod:`repro.sim.trace`): pre-sampled traces pushed through Lindley
kernels instead of a per-packet event loop.  This experiment runs both
backends on the same growing scenarios and records their wall-clock
trajectories plus the statistics they must agree on, so the speedup —
and the distributional parity backing it — shows up as a curve rather
than a one-off benchmark claim (``benchmarks/bench_sim.py`` is the
matching micro-benchmark with the large default scenario).
"""

from __future__ import annotations

import math
import time
from typing import Dict, List, Tuple

from repro.experiments.harness import ExperimentResult
from repro.experiments.montecarlo import run_trials
from repro.experiments.registry import ExperimentSpec, register
from repro.nfv.chain import ServiceChain
from repro.nfv.request import Request
from repro.nfv.vnf import VNF
from repro.queueing.feedback import effective_arrival_rates
from repro.sim.simulator import ChainSimulator, SimulationConfig

#: Request counts swept.
SIZES = (25, 50, 100)

#: Per-request Poisson rate (packets/s).
RATE = 4.0

#: Per-instance exponential service rate.
MU = 120.0

#: End-to-end delivery probability (exercises the feedback rounds).
DELIVERY_P = 0.98

#: VNF catalog size and per-request chain length.
NUM_VNFS, CHAIN_LEN = 6, 3

#: Target per-instance utilization used to size instance counts.
TARGET_RHO = 0.6


def build_scenario(
    num_requests: int,
) -> Tuple[List[VNF], List[Request], Dict[Tuple[str, str], int]]:
    """A deterministic chained scenario sized for stable instances.

    Requests take length-``CHAIN_LEN`` chains cyclically over the VNF
    catalog and spread round-robin over each VNF's instances; instance
    counts come from the Eq. (7) effective rates so every instance
    sits near ``TARGET_RHO``.
    """
    names = [f"v{j}" for j in range(NUM_VNFS)]
    chains = [
        [names[(i + d) % NUM_VNFS] for d in range(CHAIN_LEN)]
        for i in range(num_requests)
    ]
    effective = effective_arrival_rates(
        [RATE] * num_requests, [DELIVERY_P] * num_requests
    )
    offered = {name: 0.0 for name in names}
    for chain, rate in zip(chains, effective):
        for name in chain:
            offered[name] += float(rate)
    vnfs = [
        VNF(
            name,
            1.0,
            max(1, math.ceil(offered[name] / (TARGET_RHO * MU))),
            MU,
        )
        for name in names
    ]
    instances = {f.name: f.num_instances for f in vnfs}
    requests = []
    schedule: Dict[Tuple[str, str], int] = {}
    counters = {name: 0 for name in names}
    for i, chain in enumerate(chains):
        rid = f"r{i:04d}"
        requests.append(
            Request(rid, ServiceChain(chain), RATE, delivery_probability=DELIVERY_P)
        )
        for name in chain:
            schedule[(rid, name)] = counters[name] % instances[name]
            counters[name] += 1
    return vnfs, requests, schedule


def _trial(task: Tuple[int, float, int]) -> dict:
    """Run both backends on one scenario size; time each."""
    num_requests, horizon, seed = task
    vnfs, requests, schedule = build_scenario(num_requests)
    config = SimulationConfig(
        duration=horizon, warmup=0.1 * horizon, seed=seed
    )
    measurements = {}
    for backend in ("events", "trace"):
        sim = ChainSimulator(vnfs, requests, schedule, config, backend=backend)
        start = time.perf_counter()
        metrics = sim.run()
        measurements[backend] = {
            "wall_s": time.perf_counter() - start,
            "latency": metrics.mean_end_to_end(),
            "delivery_ratio": metrics.total_delivered / max(1, metrics.generated),
        }
    return {"requests": num_requests, **{
        f"{backend}_{field}": value
        for backend, fields in measurements.items()
        for field, value in fields.items()
    }}


def run(
    horizon: float = 25.0, seed: int = 20170621, jobs: int = 1
) -> ExperimentResult:
    """Sweep scenario sizes; one trial per size on both backends."""
    tasks = [(size, horizon, seed) for size in SIZES]
    trials = run_trials(_trial, tasks, jobs=jobs)

    result = ExperimentResult(
        experiment_id="sim_scale_sweep",
        title="Simulation wall-clock vs scale (event loop vs trace kernels)",
        columns=[
            "requests",
            "events_ms",
            "trace_ms",
            "speedup",
            "events_latency",
            "trace_latency",
        ],
    )
    for trial in trials:
        result.add_row(
            requests=trial["requests"],
            events_ms=trial["events_wall_s"] * 1e3,
            trace_ms=trial["trace_wall_s"] * 1e3,
            speedup=trial["events_wall_s"] / max(trial["trace_wall_s"], 1e-12),
            events_latency=trial["events_latency"],
            trace_latency=trial["trace_latency"],
        )
    result.notes.append(
        "both backends simulate the same scenario from the same seed; "
        "latencies agree in distribution, not sample-by-sample (see "
        "docs/SIM_BACKENDS.md for the parity contract)"
    )
    result.notes.append(
        "timings are wall-clock and machine-dependent; compare shapes "
        "(benchmarks/bench_sim.py is the gated large-scale comparison)"
    )
    return result


SPEC = register(
    ExperimentSpec(
        name="sim_scale_sweep",
        title="Simulation wall-clock vs scale (event loop vs trace kernels)",
        runner=run,
        profile="analytic",
        tags=("performance", "simulation", "beyond-paper"),
        order=1950,
    )
)


if __name__ == "__main__":  # pragma: no cover
    run().print()
