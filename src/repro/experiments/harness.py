"""Shared experiment-result model and table rendering.

Every experiment produces an :class:`ExperimentResult`: an ordered list
of rows (one per sweep point per algorithm) with named numeric columns,
plus the free-text notes recording paper-vs-measured observations.  The
text rendering is what EXPERIMENTS.md embeds.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Union

Number = Union[int, float]


@dataclass
class ExperimentResult:
    """A completed experiment: metadata + a rectangular result table.

    ``meta`` carries run provenance stamped by the experiment engine
    (:meth:`repro.experiments.registry.ExperimentSpec.run`): experiment
    name, effective ``repetitions``, ``seed``, ``jobs`` and
    ``wall_time_s``.  :meth:`render` surfaces only the deterministic
    subset (repetitions, seed) so rendered reports stay byte-identical
    across worker counts and machines; the full metadata — including
    wall time and jobs — travels through :meth:`to_dict`.
    """

    experiment_id: str
    title: str
    columns: List[str]
    rows: List[Dict[str, object]] = field(default_factory=list)
    notes: List[str] = field(default_factory=list)
    meta: Dict[str, object] = field(default_factory=dict)

    #: ``meta`` keys that are identical for identical configurations and
    #: therefore safe to render (unlike wall time or worker count).
    DETERMINISTIC_META_KEYS = ("repetitions", "seed")

    def add_row(self, **values: object) -> None:
        """Append one row; keys must match ``columns``."""
        missing = [c for c in self.columns if c not in values]
        if missing:
            raise ValueError(f"row missing columns {missing}")
        self.rows.append({c: values[c] for c in self.columns})

    def column(self, name: str) -> List[object]:
        """All values of one column, in row order."""
        if name not in self.columns:
            raise KeyError(f"unknown column {name!r}")
        return [row[name] for row in self.rows]

    def filtered(self, **criteria: object) -> List[Dict[str, object]]:
        """Rows matching all ``column=value`` criteria."""
        return [
            row
            for row in self.rows
            if all(row.get(k) == v for k, v in criteria.items())
        ]

    # ------------------------------------------------------------------
    # Rendering
    # ------------------------------------------------------------------
    @staticmethod
    def _format_cell(value: object) -> str:
        if isinstance(value, float):
            if value == 0.0:
                return "0"
            if abs(value) >= 1000:
                return f"{value:.0f}"
            if abs(value) >= 1:
                return f"{value:.2f}"
            return f"{value:.4f}"
        return str(value)

    def to_table(self) -> str:
        """Render the rows as an aligned text table."""
        header = list(self.columns)
        body = [
            [self._format_cell(row[c]) for c in self.columns]
            for row in self.rows
        ]
        widths = [
            max(len(header[i]), *(len(r[i]) for r in body)) if body else len(header[i])
            for i in range(len(header))
        ]
        lines = [
            "  ".join(h.ljust(w) for h, w in zip(header, widths)),
            "  ".join("-" * w for w in widths),
        ]
        for r in body:
            lines.append("  ".join(c.ljust(w) for c, w in zip(r, widths)))
        return "\n".join(lines)

    def render(self) -> str:
        """Full report: title, table, notes and deterministic run info."""
        parts = [f"== {self.experiment_id}: {self.title} ==", self.to_table()]
        if self.notes:
            parts.append("")
            parts.extend(f"note: {n}" for n in self.notes)
        run_info = [
            f"{key}={self.meta[key]}"
            for key in self.DETERMINISTIC_META_KEYS
            if self.meta.get(key) is not None
        ]
        if run_info:
            parts.append(f"run: {' '.join(run_info)}")
        return "\n".join(parts)

    def print(self) -> None:  # pragma: no cover - console convenience
        """Print the rendered report."""
        print(self.render())

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, object]:
        """Plain-JSON form for archiving experiment outputs."""
        return {
            "experiment_id": self.experiment_id,
            "title": self.title,
            "columns": list(self.columns),
            "rows": [dict(row) for row in self.rows],
            "notes": list(self.notes),
            "meta": dict(self.meta),
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "ExperimentResult":
        """Rebuild a result from :meth:`to_dict` output."""
        result = cls(
            experiment_id=str(data["experiment_id"]),
            title=str(data["title"]),
            columns=list(data["columns"]),  # type: ignore[arg-type]
            notes=list(data.get("notes", [])),  # type: ignore[arg-type]
            meta=dict(data.get("meta", {})),  # type: ignore[arg-type]
        )
        for row in data["rows"]:  # type: ignore[union-attr]
            result.add_row(**row)  # type: ignore[arg-type]
        return result
