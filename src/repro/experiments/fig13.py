"""Fig. 13 — average response time vs #instances, P = 0.98, 50 requests.

Paper's observation: as the instance count grows 2-10, RCKK's advantage
over CGA widens from 5.24% to 25.05% — with fewer requests per instance,
balance quality matters more.
"""

from __future__ import annotations

from typing import Tuple

from repro.experiments.harness import ExperimentResult
from repro.experiments.registry import ExperimentSpec, register
from repro.experiments.sweeps import (
    DEFAULT_SCHEDULING_REPS,
    enhancement_column,
    scheduling_sweep,
)
from repro.workload.scenarios import SchedulingScenario

#: The paper's instance-count sweep.
INSTANCE_COUNTS: Tuple[int, ...] = (2, 4, 6, 8, 10)

#: Raw-load utilization target for the mu scaling.
RHO = 0.8


def run(
    repetitions: int = DEFAULT_SCHEDULING_REPS,
    seed: int = 20170613,
    delivery_probability: float = 0.98,
    experiment_id: str = "fig13",
    jobs: int = 1,
) -> ExperimentResult:
    """Regenerate Fig. 13's series (or Fig. 14's via the P parameter)."""
    scenarios = [
        (
            m,
            SchedulingScenario(
                num_requests=50,
                num_instances=m,
                delivery_probability=delivery_probability,
                rho=RHO,
                seed=seed + m,
            ),
        )
        for m in INSTANCE_COUNTS
    ]
    rows = scheduling_sweep(scenarios, repetitions=repetitions, jobs=jobs)
    enhancement = enhancement_column(rows, "mean_w")
    result = ExperimentResult(
        experiment_id=experiment_id,
        title=(
            "Average response time vs #instances "
            f"(P={delivery_probability}, 50 requests)"
        ),
        columns=["instances", "algorithm", "mean_w", "enhancement"],
    )
    for row in rows:
        result.add_row(
            instances=row["x"],
            algorithm=row["algorithm"],
            mean_w=row["mean_w"],
            enhancement=(
                enhancement.get(row["x"], 0.0)
                if row["algorithm"] == "RCKK"
                else 0.0
            ),
        )
    result.notes.append(
        "paper (P=0.98): enhancement widens 5.24% -> 25.05% as instances "
        "grow"
    )
    return result


SPEC = register(
    ExperimentSpec(
        name="fig13",
        title="Average response time vs #instances (P=0.98, 50 requests)",
        runner=run,
        profile="scheduling",
        tags=("scheduling", "figure"),
        default_repetitions=DEFAULT_SCHEDULING_REPS,
        order=13,
    )
)


if __name__ == "__main__":  # pragma: no cover
    run().print()
