"""Fig. 5 — average resource utilization of 10 nodes vs number of requests.

Paper's observation: with 15 VNFs on 10 nodes, utilization is flat as
requests scale 30-1000, at about 91.76% (BFDSU), 68.63% (FFD) and
66.89% (NAH).
"""

from __future__ import annotations

from repro.experiments.harness import ExperimentResult
from repro.experiments.registry import ExperimentSpec, register
from repro.experiments.sweeps import DEFAULT_PLACEMENT_REPS, placement_sweep
from repro.workload.scenarios import PlacementScenario

#: The paper's request-count sweep.
REQUEST_COUNTS = (30, 100, 300, 600, 1000)


def run(
    repetitions: int = DEFAULT_PLACEMENT_REPS,
    seed: int = 20170605,
    jobs: int = 1,
) -> ExperimentResult:
    """Regenerate Fig. 5's series."""
    scenarios = [
        (
            n,
            PlacementScenario(
                num_vnfs=15, num_nodes=10, num_requests=n, seed=seed + n
            ),
        )
        for n in REQUEST_COUNTS
    ]
    rows = placement_sweep(
        scenarios, repetitions=repetitions, seed=seed, jobs=jobs
    )
    result = ExperimentResult(
        experiment_id="fig05",
        title="Average resource utilization of 10 nodes vs #requests",
        columns=["requests", "algorithm", "utilization"],
    )
    for row in rows:
        result.add_row(
            requests=row["x"],
            algorithm=row["algorithm"],
            utilization=row["utilization"],
        )
    result.notes.append(
        "paper: flat in requests at ~0.918 (BFDSU), ~0.686 (FFD), "
        "~0.669 (NAH); expect the same ordering and flatness"
    )
    return result


SPEC = register(
    ExperimentSpec(
        name="fig05",
        title="Average resource utilization of 10 nodes vs #requests",
        runner=run,
        profile="placement",
        tags=("placement", "figure"),
        default_repetitions=DEFAULT_PLACEMENT_REPS,
        order=5,
    )
)


if __name__ == "__main__":  # pragma: no cover
    run().print()
