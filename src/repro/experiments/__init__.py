"""Experiment harness regenerating every figure of the paper's evaluation.

One module per figure (see DESIGN.md's per-experiment index):

========  =================================================================
Module    Paper figure
========  =================================================================
fig05     Avg resource utilization of 10 nodes vs #requests
fig06     Avg utilization of used nodes vs #VNFs (nodes co-scaled)
fig07     Avg utilization vs #nodes available (15 VNFs)
fig08     Avg #nodes in service vs #nodes available
fig09     Total resource occupation vs #nodes available
fig10     Algorithm iterations vs #requests
fig11     Avg response time vs #requests (P=0.98)
fig12     Avg response time vs #requests (P=1.00)
fig13     Avg response time vs #instances (P=0.98)
fig14     Avg response time vs #instances (P=1.00)
fig15     Job rejection rate vs #requests (P=0.997)
fig16     Job rejection rate vs #requests (P=0.984)
tail      99th-percentile response time (Section V-C text)
headline  The abstract's +33.4% utilization / -19.9% latency claims
========  =================================================================

Each module exposes ``run(repetitions=..., seed=...) -> ExperimentResult``
and prints the paper-style table when executed as a script
(``python -m repro.experiments.fig05``).  ``runall`` executes everything.
"""

from repro.experiments.harness import ExperimentResult

__all__ = ["ExperimentResult"]
