"""Model-sensitivity experiment — where the Jackson assumptions bend.

The paper's analytics assume Poisson arrivals and exponential service.
This beyond-paper experiment quantifies the error of those assumptions
on the operating points the evaluation uses:

* **Service variability** (analytic): Pollaczek-Khinchine M/G/1 latency
  across squared service CVs, relative to the exponential (cs2=1) model
  the optimizer reasons with.
* **Arrival burstiness** (simulated): an MMPP/M/1 instance at the same
  mean rate, measured against the M/M/1 closed form, across burstiness
  indices.

The output bounds how far reported latencies can drift when real
traffic violates the model — the honest error bars around every latency
figure in EXPERIMENTS.md.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.experiments.harness import ExperimentResult
from repro.experiments.montecarlo import run_trials
from repro.experiments.registry import ExperimentSpec, register
from repro.queueing.mg1 import MG1Queue
from repro.queueing.mm1 import MM1Queue
from repro.sim.kernels import fcfs_sojourn_times
from repro.workload.mmpp import MMPP2

#: Operating load for the sensitivity sweeps.
RHO = 0.8

#: Squared service-time CVs: deterministic .. exponential .. heavy.
SERVICE_CV2S: Tuple[float, ...] = (0.0, 0.25, 0.5, 1.0, 2.0, 4.0)

#: MMPP high/low rate ratios to sweep (1 = plain Poisson).
BURST_RATIOS: Tuple[float, ...] = (1.0, 2.0, 4.0, 8.0)


def _service_rows(result: ExperimentResult) -> None:
    mu = 100.0
    lam = RHO * mu
    mm1_w = MM1Queue(lam, mu).mean_response_time
    for cv2 in SERVICE_CV2S:
        w = MG1Queue(lam, mu, service_cv2=cv2).mean_response_time
        result.add_row(
            dimension="service_cv2",
            value=cv2,
            latency=w,
            model_error=(mm1_w - w) / w,
        )


def _burst_trial(task) -> dict:
    """Replay one MMPP/M/1 (or M/M/1) burstiness point.

    The trace goes through the array-native Lindley kernel — the same
    FCFS/exponential semantics the event loop used here before, at a
    fraction of the cost.  Service draws consume ``default_rng(seed+1)``
    in arrival order exactly as the event server did, so the measured
    values are unchanged.
    """
    ratio, horizon, seed = task
    mean_rate = 40.0
    mu = mean_rate / RHO
    analytic = MM1Queue(mean_rate, mu).mean_response_time
    if ratio == 1.0:
        from repro.workload.traces import poisson_arrival_times

        trace = poisson_arrival_times(
            mean_rate, horizon, np.random.default_rng(seed)
        )
    else:
        # Solve for high/low rates with the target ratio and the
        # same mean, spending half the time in each state.
        high = 2.0 * mean_rate * ratio / (ratio + 1.0)
        low = high / ratio
        mmpp = MMPP2(
            rate_high=high,
            rate_low=low,
            switch_to_low=0.5,
            switch_to_high=0.5,
        )
        trace = mmpp.sample_arrival_times(
            horizon, np.random.default_rng(seed)
        )
    services = np.random.default_rng(seed + 1).exponential(
        1.0 / mu, size=len(trace)
    )
    sojourns = fcfs_sojourn_times(trace, services, horizon=horizon)
    measured = float(sojourns.mean()) if sojourns.size else 0.0
    return {
        "dimension": "burst_ratio",
        "value": ratio,
        "latency": measured,
        "model_error": (analytic - measured) / measured,
    }


def run(
    horizon: float = 1500.0, seed: int = 20170621, jobs: int = 1
) -> ExperimentResult:
    """Run both sensitivity sweeps."""
    result = ExperimentResult(
        experiment_id="sensitivity",
        title="Model sensitivity: service variability and arrival burstiness",
        columns=["dimension", "value", "latency", "model_error"],
    )
    _service_rows(result)
    tasks = [(ratio, horizon, seed) for ratio in BURST_RATIOS]
    for row in run_trials(_burst_trial, tasks, jobs=jobs):
        result.add_row(**row)
    result.notes.append(
        "model_error = (W_assumed - W_actual) / W_actual; positive means "
        "the M/M/1 assumption over-estimates, negative under-estimates"
    )
    result.notes.append(
        "at cs2=1 and burst_ratio=1 the error is ~0 by construction — "
        "those rows validate the harness itself"
    )
    return result


SPEC = register(
    ExperimentSpec(
        name="sensitivity",
        title="Model sensitivity: service variability and arrival burstiness",
        runner=run,
        profile="analytic",
        tags=("queueing", "beyond-paper"),
        order=19,
    )
)


if __name__ == "__main__":  # pragma: no cover
    run().print()
