"""Headline claims — the abstract's aggregate numbers.

The paper's abstract claims, versus the state of the art:

* average resource utilization improved by **33.4%** (BFDSU vs NAH;
  31.6% vs FFD), and
* average total latency reduced by **19.9%** (RCKK vs CGA, averaged over
  the latency sweeps).

This experiment recomputes both aggregates from the same sweeps the
figure experiments use.
"""

from __future__ import annotations

import numpy as np

from repro.experiments import fig05, fig06, fig11, fig12, fig13, fig14
from repro.experiments.harness import ExperimentResult
from repro.experiments.registry import ExperimentSpec, register
from repro.experiments.sweeps import (
    DEFAULT_PLACEMENT_REPS,
    DEFAULT_SCHEDULING_REPS,
)


def _mean_utilization(result: ExperimentResult, algorithm: str) -> float:
    values = [
        float(row["utilization"])
        for row in result.rows
        if row["algorithm"] == algorithm
    ]
    return float(np.mean(values))


def _mean_enhancement(result: ExperimentResult) -> float:
    values = [
        float(row["enhancement"])
        for row in result.rows
        if row["algorithm"] == "RCKK"
    ]
    return float(np.mean(values))


def run(
    placement_repetitions: int = DEFAULT_PLACEMENT_REPS,
    scheduling_repetitions: int = DEFAULT_SCHEDULING_REPS,
    seed: int = 20170618,
    jobs: int = 1,
) -> ExperimentResult:
    """Recompute the abstract's aggregate claims."""
    util_results = [
        fig05.run(repetitions=placement_repetitions, seed=seed, jobs=jobs),
        fig06.run(
            repetitions=placement_repetitions, seed=seed + 1, jobs=jobs
        ),
    ]
    bfdsu = float(np.mean([_mean_utilization(r, "BFDSU") for r in util_results]))
    ffd = float(np.mean([_mean_utilization(r, "FFD") for r in util_results]))
    nah = float(np.mean([_mean_utilization(r, "NAH") for r in util_results]))

    latency_results = [
        fig11.run(
            repetitions=scheduling_repetitions, seed=seed + 2, jobs=jobs
        ),
        fig12.run(
            repetitions=scheduling_repetitions, seed=seed + 3, jobs=jobs
        ),
        fig13.run(
            repetitions=scheduling_repetitions, seed=seed + 4, jobs=jobs
        ),
        fig14.run(
            repetitions=scheduling_repetitions, seed=seed + 5, jobs=jobs
        ),
    ]
    latency_gain = float(
        np.mean([_mean_enhancement(r) for r in latency_results])
    )

    result = ExperimentResult(
        experiment_id="headline",
        title="Abstract headline claims (aggregates over the sweeps)",
        columns=["metric", "value", "paper"],
    )
    result.add_row(
        metric="BFDSU avg utilization", value=bfdsu, paper="0.9176"
    )
    result.add_row(metric="FFD avg utilization", value=ffd, paper="0.6863")
    result.add_row(metric="NAH avg utilization", value=nah, paper="0.6689")
    result.add_row(
        metric="utilization gain vs FFD",
        value=(bfdsu - ffd) / ffd,
        paper="0.3161",
    )
    result.add_row(
        metric="utilization gain vs NAH",
        value=(bfdsu - nah) / nah,
        paper="0.3341",
    )
    result.add_row(
        metric="avg latency reduction (RCKK vs CGA)",
        value=latency_gain,
        paper="0.199",
    )
    return result


SPEC = register(
    ExperimentSpec(
        name="headline",
        title="Abstract headline claims (aggregates over the sweeps)",
        runner=run,
        profile="headline",
        tags=("placement", "scheduling", "headline"),
        order=99,
    )
)


if __name__ == "__main__":  # pragma: no cover
    run().print()
