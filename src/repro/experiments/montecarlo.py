"""Shared Monte-Carlo execution engine for the experiment layer.

Every figure experiment is, at heart, a bag of independent trials:
*(sweep point, repetition) -> per-algorithm metrics*.  This module owns
how those trials execute, so the figure modules only describe **what**
one trial computes:

* :func:`run_trials` — execute a trial function over a task list,
  serially or on a :class:`~concurrent.futures.ProcessPoolExecutor`,
  returning results **in task order** regardless of completion order.
* :func:`resolve_jobs` — turn a ``--jobs`` value (``0``/``None`` means
  auto) into a worker count.

Determinism contract
--------------------
A trial function must derive all randomness from its task payload
(typically via :func:`repro.seeding.trial_rng`), never from shared
state.  Under that contract ``run_trials(fn, tasks, jobs=k)`` returns
bit-identical results for every ``k`` — the engine reduces by task
index, not completion order — which is what makes
``runall --jobs 4`` reproduce ``--jobs 1`` exactly.

Serial fallback
---------------
Process pools need picklable trial functions and payloads.  When the
function or first task fails a pickling probe — closures, locally
defined functions, live generators in the payload — or when the
platform refuses to start worker processes, the engine degrades to the
serial path, which computes the identical result (only slower).
"""

from __future__ import annotations

import os
import pickle
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from typing import Callable, List, Optional, Sequence, TypeVar

from repro.exceptions import ConfigurationError

Task = TypeVar("Task")
Result = TypeVar("Result")

#: Upper bound on auto-detected workers — beyond this the per-process
#: NumPy import cost outweighs the trial work at experiment scale.
MAX_AUTO_JOBS = 16


def resolve_jobs(jobs: Optional[int] = None) -> int:
    """Normalize a ``--jobs`` value: ``None``/``0`` selects CPU count."""
    if jobs is None or jobs == 0:
        return max(1, min(os.cpu_count() or 1, MAX_AUTO_JOBS))
    if jobs < 0:
        raise ConfigurationError(f"jobs must be >= 0, got {jobs!r}")
    return int(jobs)


def _is_picklable(fn: Callable, probe_task: object) -> bool:
    try:
        pickle.dumps((fn, probe_task))
        return True
    except Exception:
        return False


def compute_chunksize(num_tasks: int, workers: int) -> int:
    """Tasks per pool submission: ~4 chunks per worker, at least 1.

    Submitting chunks instead of single trials amortizes the
    per-future pickling and IPC cost when tasks are small and
    numerous; four chunks per worker keeps the pool load-balanced when
    trial durations vary.  Chunking is a transport detail only — the
    by-index reduction makes results byte-identical at any chunk size.
    """
    if num_tasks <= 0 or workers <= 0:
        return 1
    return max(1, -(-num_tasks // (workers * 4)))


def _run_chunk(fn: Callable[[Task], Result], chunk: Sequence[Task]) -> List[Result]:
    """Worker-side driver: run one chunk of tasks in order."""
    return [fn(task) for task in chunk]


def _run_chunk_shared(
    fn: Callable, chunk: Sequence[Task], handle
) -> List[Result]:
    """Worker-side driver for shared-scenario trials.

    Attaches to the published columns (cached per process, so every
    chunk after the first is free) and passes the scenario as the trial
    function's second argument.
    """
    from repro.experiments.shm import attach_arrays

    arrays = attach_arrays(handle)
    return [fn(task, arrays) for task in chunk]


def run_trials(
    fn: Callable[..., Result],
    tasks: Sequence[Task],
    jobs: Optional[int] = 1,
    shared=None,
) -> List[Result]:
    """Run ``fn`` over ``tasks``; results come back in task order.

    Parameters
    ----------
    fn:
        The trial function.  For parallel execution it must be a
        module-level callable and derive randomness only from its task.
    tasks:
        Trial payloads; each must be picklable for parallel execution.
    jobs:
        Worker processes.  ``1`` runs serially in-process; ``0`` or
        ``None`` auto-detects; any value degrades gracefully to serial
        when the pool cannot be used.
    shared:
        Optional scenario shared by every trial: a
        :class:`~repro.core.arrays.ScenarioArrays` (published/released
        automatically around the run) or an already-published
        :class:`~repro.experiments.shm.SharedScenarioHandle` (caller
        owns the lifetime).  When given, ``fn`` is called as
        ``fn(task, arrays)`` — workers attach to the published columns
        zero-copy instead of re-pickling the scenario per chunk, and
        results stay byte-identical to the serial path at any ``jobs``
        (see :mod:`repro.experiments.shm`).

    Raises
    ------
    Whatever ``fn`` raises — trial exceptions propagate unchanged on
    both paths (they are not converted into fallbacks).
    """
    if shared is None:
        return _run_trials_plain(fn, tasks, jobs)
    from repro.core.arrays import ScenarioArrays
    from repro.experiments.shm import SharedScenarioHandle, published

    if isinstance(shared, SharedScenarioHandle):
        return _run_trials_shared(fn, tasks, jobs, shared)
    if not isinstance(shared, ScenarioArrays):
        raise ConfigurationError(
            f"shared must be a ScenarioArrays or SharedScenarioHandle, "
            f"got {type(shared).__name__}"
        )
    with published(shared) as handle:
        return _run_trials_shared(fn, tasks, jobs, handle)


def _run_trials_plain(
    fn: Callable[[Task], Result],
    tasks: Sequence[Task],
    jobs: Optional[int],
) -> List[Result]:
    task_list = list(tasks)
    workers = resolve_jobs(jobs)
    if task_list:
        workers = min(workers, len(task_list))
    if workers <= 1 or len(task_list) <= 1:
        return [fn(task) for task in task_list]
    if not _is_picklable(fn, task_list[0]):
        return [fn(task) for task in task_list]
    try:
        executor = ProcessPoolExecutor(max_workers=workers)
    except (OSError, ValueError, PermissionError):
        # Platforms without working process pools (no /dev/shm, seccomp
        # sandboxes, ...) still get the identical serial computation.
        return [fn(task) for task in task_list]
    try:
        with executor:
            # Chunked submit + index map rather than executor.map: the
            # explicit slot table makes the order-independence of the
            # reduction obvious — results land by task index,
            # completion order is irrelevant.
            chunksize = compute_chunksize(len(task_list), workers)
            chunks = [
                task_list[start : start + chunksize]
                for start in range(0, len(task_list), chunksize)
            ]
            futures = {
                executor.submit(_run_chunk, fn, chunk): index
                for index, chunk in enumerate(chunks)
            }
            results: List[Optional[Result]] = [None] * len(task_list)
            for future in futures:
                start = futures[future] * chunksize
                chunk_results = future.result()
                results[start : start + len(chunk_results)] = chunk_results
            return results  # type: ignore[return-value]
    except BrokenProcessPool:
        # Workers were killed (OOM, sandbox) — recompute serially.
        return [fn(task) for task in task_list]


def _run_trials_shared(
    fn: Callable, tasks: Sequence[Task], jobs: Optional[int], handle
) -> List[Result]:
    """The ``shared=`` twin of :func:`_run_trials_plain`.

    Serial paths attach in-process (which returns the published
    original, so nothing is copied); pool paths ship only the tiny
    handle per chunk.
    """
    from repro.experiments.shm import attach_arrays

    task_list = list(tasks)
    workers = resolve_jobs(jobs)
    if task_list:
        workers = min(workers, len(task_list))

    def _serial() -> List[Result]:
        arrays = attach_arrays(handle)
        return [fn(task, arrays) for task in task_list]

    if workers <= 1 or len(task_list) <= 1:
        return _serial()
    if not _is_picklable(fn, task_list[0]):
        return _serial()
    try:
        executor = ProcessPoolExecutor(max_workers=workers)
    except (OSError, ValueError, PermissionError):
        return _serial()
    try:
        with executor:
            chunksize = compute_chunksize(len(task_list), workers)
            chunks = [
                task_list[start : start + chunksize]
                for start in range(0, len(task_list), chunksize)
            ]
            futures = {
                executor.submit(_run_chunk_shared, fn, chunk, handle): index
                for index, chunk in enumerate(chunks)
            }
            results: List[Optional[Result]] = [None] * len(task_list)
            for future in futures:
                start = futures[future] * chunksize
                chunk_results = future.result()
                results[start : start + len(chunk_results)] = chunk_results
            return results  # type: ignore[return-value]
    except BrokenProcessPool:
        return _serial()
