"""Evaluation-scale sweep — wall-clock trajectory of the columnar core.

The related work this reproduction targets (Sang et al., Xu et al.)
evaluates thousands of requests and hundreds of servers per step; the
columnar :mod:`repro.core.arrays` refactor exists so the Eq. (13)-(16)
scorecard keeps up at that scale.  This experiment runs the full joint
pipeline on growing workloads and records how long one
``evaluate_deployment`` pass takes, alongside the headline metrics, so
regressions in the hot path show up as a trajectory rather than a
silent slowdown (``benchmarks/bench_core.py`` is the matching
old-vs-new micro-benchmark).
"""

from __future__ import annotations

import time
from typing import List, Tuple

import numpy as np

from repro.core.evaluation import evaluate_deployment
from repro.core.joint import JointOptimizer
from repro.experiments.harness import ExperimentResult
from repro.experiments.montecarlo import run_trials
from repro.experiments.registry import ExperimentSpec, register
from repro.nfv.request import Request
from repro.scheduling.least_loaded import LeastLoadedScheduler
from repro.workload.generator import WorkloadGenerator

#: Per-hop link latency (seconds) for Eq. (16) — intra-DC scale.
LINK_LATENCY = 1e-4

#: Request counts swept; nodes scale as ``max(20, requests // 10)``.
SIZES = (250, 500, 1000, 2000)

#: Cap on per-VNF aggregate utilization so no instance sheds load and
#: the sweep times the analytic (no-admission) evaluation path.
TARGET_UTILIZATION = 0.7


def _stabilize(vnfs, requests) -> List[Request]:
    """Scale arrival rates so every VNF's aggregate load stays stable."""
    load = {f.name: 0.0 for f in vnfs}
    for request in requests:
        for vnf_name in request.chain:
            load[vnf_name] += request.effective_rate
    worst = max(
        load[f.name] / (f.num_instances * f.service_rate)
        for f in vnfs
        if f.num_instances * f.service_rate > 0
    )
    if worst <= TARGET_UTILIZATION:
        return list(requests)
    scale = TARGET_UTILIZATION / worst
    return [
        Request(
            request_id=r.request_id,
            chain=r.chain,
            arrival_rate=r.arrival_rate * scale,
            delivery_probability=r.delivery_probability,
        )
        for r in requests
    ]


def _trial(task: Tuple[int, int, int]) -> dict:
    """One (size, repetition): solve the joint problem, time evaluation."""
    seed, rep, num_requests = task
    gen = WorkloadGenerator(
        np.random.default_rng(np.random.SeedSequence([seed, rep, num_requests]))
    )
    w = gen.workload(
        num_vnfs=24,
        num_nodes=max(20, num_requests // 10),
        num_requests=num_requests,
        instance_range=(8, 25),
    )
    requests = _stabilize(w.vnfs, w.requests)
    optimizer = JointOptimizer(
        scheduler=LeastLoadedScheduler(), link_latency=LINK_LATENCY
    )
    start = time.perf_counter()
    solution = optimizer.optimize(w.vnfs, requests, w.capacities)
    solve_s = time.perf_counter() - start

    start = time.perf_counter()
    report = evaluate_deployment(solution.state, link_latency=LINK_LATENCY)
    evaluate_s = time.perf_counter() - start
    return {
        "requests": num_requests,
        "solve_s": solve_s,
        "evaluate_s": evaluate_s,
        "utilization": report.average_node_utilization,
        "avg_total_latency": report.average_total_latency,
    }


def run(
    repetitions: int = 2, seed: int = 20170621, jobs: int = 1
) -> ExperimentResult:
    """Sweep workload sizes, averaging timings over repetitions."""
    tasks = [
        (seed, rep, size) for size in SIZES for rep in range(repetitions)
    ]
    trials = run_trials(_trial, tasks, jobs=jobs)

    result = ExperimentResult(
        experiment_id="scale_sweep",
        title="Evaluation wall-clock vs workload size (columnar core)",
        columns=[
            "requests",
            "solve_ms",
            "evaluate_ms",
            "utilization",
            "avg_total_latency",
        ],
    )
    for size in SIZES:
        rows = [t for t in trials if t["requests"] == size]
        result.add_row(
            requests=size,
            solve_ms=float(np.mean([t["solve_s"] for t in rows]) * 1e3),
            evaluate_ms=float(np.mean([t["evaluate_s"] for t in rows]) * 1e3),
            utilization=float(np.mean([t["utilization"] for t in rows])),
            avg_total_latency=float(
                np.mean([t["avg_total_latency"] for t in rows])
            ),
        )
    result.notes.append(
        "timings are wall-clock and machine-dependent; compare shapes, "
        "not absolute values (see benchmarks/bench_core.py for the "
        "old-vs-new comparison)"
    )
    return result


SPEC = register(
    ExperimentSpec(
        name="scale_sweep",
        title="Evaluation wall-clock vs workload size (columnar core)",
        runner=run,
        profile="joint",
        tags=("performance", "beyond-paper"),
        default_repetitions=2,
        order=1900,
    )
)


if __name__ == "__main__":  # pragma: no cover
    run().print()
