"""Solver-scale sweep — legacy vs kernel wall-clock for the optimizers.

The companion of :mod:`repro.experiments.scale_sweep`: that experiment
tracks the columnar *evaluation* core, this one tracks the array-native
*solver* kernels (PR 3) against the pre-kernel loops on the same growing
workloads.  Three solver stages are timed per size:

* BFDSU construction (Algorithm 1) — the kernel in
  :mod:`repro.placement.bfdsu` vs a verbatim pre-kernel construction
  (dict residuals, ``spare.remove``, per-draw ``str`` re-sort) kept
  inline here because library code cannot import
  ``benchmarks/_reference_impl``.  Both consume the identically-seeded
  RNG, so the trial asserts placement equality as a live parity check.
* Relocate local search — the delta kernel vs the full-recount hill
  climb, which still ships as the library's scalar fallback
  (``repro.core.local_search._refine_scalar``).
* RCKK partitioning (Algorithm 2) — the flat-row kernel in
  :mod:`repro.partition.kernels` vs the tuple-object
  :func:`~repro.partition.karmarkar_karp.karmarkar_karp_multiway`.

``benchmarks/bench_solvers.py`` is the matching two-point
micro-benchmark with acceptance gates; this experiment records the
*trajectory* — how the legacy/kernel gap scales with problem size — so
the speedups land in the experiment reports next to Fig. 10's iteration
costs.
"""

from __future__ import annotations

import time
from typing import Dict, Hashable, List, Tuple

import numpy as np

from repro.core.joint import JointOptimizer
from repro.core.local_search import _refine_scalar, refine_placement
from repro.experiments.harness import ExperimentResult
from repro.experiments.montecarlo import run_trials
from repro.experiments.registry import ExperimentSpec, register
from repro.experiments.scale_sweep import LINK_LATENCY, _stabilize
from repro.partition.karmarkar_karp import karmarkar_karp_multiway
from repro.partition.rckk import rckk_partition
from repro.placement.base import PlacementProblem, demand_sorted_vnfs
from repro.placement.bfdsu import BFDSUPlacement, WEIGHT_OFFSET
from repro.scheduling.least_loaded import LeastLoadedScheduler
from repro.seeding import derive_seed
from repro.workload.generator import WorkloadGenerator

#: Request counts swept; nodes scale as ``max(20, requests // 10)``
#: exactly like :data:`repro.experiments.scale_sweep.SIZES`.
SIZES = (250, 500, 1000, 2000)


def _legacy_bfdsu_place(
    problem: PlacementProblem,
    rng: np.random.Generator,
    max_restarts: int = 200,
) -> Tuple[Dict[str, Hashable], int]:
    """The pre-kernel BFDSU construction, verbatim semantics.

    Dict residuals, linear ``spare.remove``, and a fresh
    ``sorted(..., key=(residual, str(v)))`` per draw — the costs the
    kernel removed.  Consumes the RNG in the same order as the kernel,
    so the same seed yields the same placement and draw count.
    """
    vnfs = demand_sorted_vnfs(problem)
    draws = 0
    for _ in range(max_restarts + 1):
        residual = dict(problem.capacities)
        used: List[Hashable] = []
        spare = list(problem.capacities.keys())
        placement: Dict[str, Hashable] = {}
        failed = False
        for vnf in vnfs:
            demand = vnf.total_demand
            threshold = demand - 1e-9
            candidates = [v for v in used if residual[v] >= threshold]
            if not candidates:
                candidates = [v for v in spare if residual[v] >= threshold]
            if not candidates:
                failed = True
                break
            draws += 1
            ordered = sorted(candidates, key=lambda v: (residual[v], str(v)))
            weights = [
                1.0 / (WEIGHT_OFFSET + residual[v] - demand) for v in ordered
            ]
            xi = rng.uniform(0.0, sum(weights))
            target = ordered[-1]
            cumulative = 0.0
            for node, weight in zip(ordered, weights):
                cumulative += weight
                if xi < cumulative:
                    target = node
                    break
            placement[vnf.name] = target
            residual[target] -= demand
            if target in spare:
                spare.remove(target)
                used.append(target)
        if not failed:
            return placement, draws
    raise RuntimeError("legacy BFDSU exhausted restarts")


def _timed(fn) -> Tuple[object, float]:
    start = time.perf_counter()
    value = fn()
    return value, time.perf_counter() - start


def _trial(task: Tuple[int, int, int]) -> dict:
    """One (size, repetition): time each solver's legacy and kernel path."""
    seed, rep, num_requests = task
    gen = WorkloadGenerator(
        np.random.default_rng(np.random.SeedSequence([seed, rep, num_requests]))
    )
    w = gen.workload(
        num_vnfs=24,
        num_nodes=max(20, num_requests // 10),
        num_requests=num_requests,
        instance_range=(8, 25),
        tight_capacities=True,
    )
    requests = _stabilize(w.vnfs, w.requests)
    draw_seed = derive_seed(seed, f"solver-sweep-{rep}-{num_requests}")

    # --- BFDSU: identically-seeded RNGs, placements must agree. ---
    problem = PlacementProblem(vnfs=w.vnfs, capacities=w.capacities)
    # The columnar view is built once per scenario and shared by every
    # pipeline stage (scheduling, evaluation, local search), so its
    # construction is warmed out of the solver timings; one untimed
    # warmup call also keeps first-call allocator noise out of the
    # sub-millisecond paths.
    problem.arrays()
    BFDSUPlacement(rng=np.random.default_rng(draw_seed)).place(problem)
    kernel = BFDSUPlacement(rng=np.random.default_rng(draw_seed))
    kernel_result, bfdsu_kernel_s = _timed(lambda: kernel.place(problem))
    _legacy_bfdsu_place(problem, np.random.default_rng(draw_seed))
    (legacy_placement, legacy_draws), bfdsu_legacy_s = _timed(
        lambda: _legacy_bfdsu_place(
            problem, np.random.default_rng(draw_seed)
        )
    )
    if (
        legacy_placement != kernel_result.placement
        or legacy_draws != kernel_result.iterations
    ):
        raise AssertionError(
            "legacy/kernel BFDSU paths diverged "
            f"(seed={draw_seed}, requests={num_requests})"
        )

    # --- Local search on a solved joint deployment. ---
    solution = JointOptimizer(
        scheduler=LeastLoadedScheduler(), link_latency=LINK_LATENCY
    ).optimize(w.vnfs, requests, w.capacities)
    state = solution.state
    baseline = dict(state.placement)

    def _restore() -> None:
        state.placement.clear()
        state.placement.update(baseline)

    kernel_report, ls_kernel_s = _timed(
        lambda: refine_placement(state, max_rounds=10)
    )
    _restore()
    _, ls_legacy_s = _timed(lambda: _refine_scalar(state, 10, None))
    _restore()

    # --- RCKK over the request rates of the widest VNF. ---
    rates = [r.effective_rate for r in requests]
    num_ways = max(f.num_instances for f in w.vnfs)
    rckk_partition(rates, num_ways)
    _, rckk_kernel_s = _timed(lambda: rckk_partition(rates, num_ways))
    karmarkar_karp_multiway(rates, num_ways)
    _, rckk_legacy_s = _timed(
        lambda: karmarkar_karp_multiway(rates, num_ways)
    )

    return {
        "requests": num_requests,
        "bfdsu_legacy_s": bfdsu_legacy_s,
        "bfdsu_kernel_s": bfdsu_kernel_s,
        "bfdsu_iterations": kernel_result.iterations,
        "ls_legacy_s": ls_legacy_s,
        "ls_kernel_s": ls_kernel_s,
        "ls_moves": kernel_report.moves_applied,
        "rckk_legacy_s": rckk_legacy_s,
        "rckk_kernel_s": rckk_kernel_s,
    }


def run(
    repetitions: int = 2, seed: int = 20170622, jobs: int = 1
) -> ExperimentResult:
    """Sweep workload sizes, averaging legacy/kernel timings."""
    tasks = [
        (seed, rep, size) for size in SIZES for rep in range(repetitions)
    ]
    trials = run_trials(_trial, tasks, jobs=jobs)

    result = ExperimentResult(
        experiment_id="solver_scale_sweep",
        title="Solver wall-clock vs workload size (legacy vs kernels)",
        columns=[
            "requests",
            "bfdsu_legacy_ms",
            "bfdsu_kernel_ms",
            "bfdsu_speedup",
            "bfdsu_iterations",
            "ls_legacy_ms",
            "ls_kernel_ms",
            "ls_speedup",
            "ls_moves",
            "rckk_legacy_ms",
            "rckk_kernel_ms",
            "rckk_speedup",
        ],
    )

    def _mean(rows: List[dict], key: str) -> float:
        return float(np.mean([t[key] for t in rows]))

    for size in SIZES:
        rows = [t for t in trials if t["requests"] == size]
        bfdsu_legacy = _mean(rows, "bfdsu_legacy_s")
        bfdsu_kernel = _mean(rows, "bfdsu_kernel_s")
        ls_legacy = _mean(rows, "ls_legacy_s")
        ls_kernel = _mean(rows, "ls_kernel_s")
        rckk_legacy = _mean(rows, "rckk_legacy_s")
        rckk_kernel = _mean(rows, "rckk_kernel_s")
        result.add_row(
            requests=size,
            bfdsu_legacy_ms=bfdsu_legacy * 1e3,
            bfdsu_kernel_ms=bfdsu_kernel * 1e3,
            bfdsu_speedup=bfdsu_legacy / max(bfdsu_kernel, 1e-12),
            bfdsu_iterations=_mean(rows, "bfdsu_iterations"),
            ls_legacy_ms=ls_legacy * 1e3,
            ls_kernel_ms=ls_kernel * 1e3,
            ls_speedup=ls_legacy / max(ls_kernel, 1e-12),
            ls_moves=_mean(rows, "ls_moves"),
            rckk_legacy_ms=rckk_legacy * 1e3,
            rckk_kernel_ms=rckk_kernel * 1e3,
            rckk_speedup=rckk_legacy / max(rckk_kernel, 1e-12),
        )
    result.notes.append(
        "timings are wall-clock and machine-dependent; compare shapes, "
        "not absolute values (benchmarks/bench_solvers.py is the gated "
        "two-point comparison); each trial asserts legacy/kernel BFDSU "
        "placement equality as a live parity check"
    )
    return result


SPEC = register(
    ExperimentSpec(
        name="solver_scale_sweep",
        title="Solver wall-clock vs workload size (legacy vs kernels)",
        runner=run,
        profile="joint",
        tags=("performance", "beyond-paper"),
        default_repetitions=2,
        order=1901,
    )
)


if __name__ == "__main__":  # pragma: no cover
    run().print()
