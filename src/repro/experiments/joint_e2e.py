"""Joint end-to-end comparison — the coordinated objective of Eq. (16).

Beyond the per-phase figures, the paper's headline couples the phases:
placing with BFDSU reduces inter-node hops (fewer nodes in service) and
scheduling with RCKK reduces instance response times, so the *total*
latency of Eq. (16) — response plus link latency — improves end to end.

This experiment runs three full pipelines on identical workloads:

* BFDSU + RCKK (the paper's system),
* FFD + CGA (the baseline composition),
* NAH + CGA (the chain-aware baseline composition),

and reports average node utilization, nodes in service, and Eq. (16)
average total latency for each.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from repro.core.joint import JointOptimizer
from repro.experiments.harness import ExperimentResult
from repro.experiments.montecarlo import run_trials
from repro.experiments.registry import ExperimentSpec, register
from repro.placement.bfdsu import BFDSUPlacement
from repro.placement.ffd import FFDPlacement
from repro.placement.nah import NAHPlacement
from repro.scheduling.cga import CGAScheduler
from repro.scheduling.rckk import RCKKScheduler
from repro.workload.generator import WorkloadGenerator

#: Per-hop link latency (seconds) for Eq. (16) — intra-DC scale.
LINK_LATENCY = 1e-4

#: Workload shape shared by all pipelines.
NUM_VNFS = 12
NUM_NODES = 10
NUM_REQUESTS = 80


def _pipelines(seed: int) -> List[Tuple[str, JointOptimizer]]:
    return [
        (
            "BFDSU+RCKK",
            JointOptimizer(
                placement=BFDSUPlacement(rng=np.random.default_rng(seed)),
                scheduler=RCKKScheduler(),
                link_latency=LINK_LATENCY,
            ),
        ),
        (
            "FFD+CGA",
            JointOptimizer(
                placement=FFDPlacement(),
                scheduler=CGAScheduler(),
                link_latency=LINK_LATENCY,
            ),
        ),
        (
            "NAH+CGA",
            JointOptimizer(
                placement=NAHPlacement(),
                scheduler=CGAScheduler(),
                link_latency=LINK_LATENCY,
            ),
        ),
    ]


def _trial(task: Tuple[int, int]) -> dict:
    """One Monte-Carlo repetition: all three pipelines, one workload."""
    seed, rep = task
    gen = WorkloadGenerator(
        np.random.default_rng(np.random.SeedSequence([seed, rep]))
    )
    w = gen.workload(
        num_vnfs=NUM_VNFS,
        num_nodes=NUM_NODES,
        num_requests=NUM_REQUESTS,
        delivery_probability=0.99,
    )
    metrics = {}
    for name, optimizer in _pipelines(seed + rep):
        solution = optimizer.optimize(w.vnfs, w.requests, w.capacities)
        report = solution.evaluate()
        metrics[name] = (
            report.average_node_utilization,
            report.nodes_in_service,
            report.average_total_latency,
        )
    return metrics


def run(
    repetitions: int = 10, seed: int = 20170620, jobs: int = 1
) -> ExperimentResult:
    """Run the three pipelines over shared Monte-Carlo workloads."""
    accumulators = {
        name: {"util": [], "nodes": [], "latency": []}
        for name, _ in _pipelines(seed)
    }
    trials = run_trials(
        _trial, [(seed, rep) for rep in range(repetitions)], jobs=jobs
    )
    for metrics in trials:
        for name, (util, nodes, latency) in metrics.items():
            accumulators[name]["util"].append(util)
            accumulators[name]["nodes"].append(nodes)
            accumulators[name]["latency"].append(latency)

    result = ExperimentResult(
        experiment_id="joint_e2e",
        title="Joint pipelines on shared workloads (Eq. 16 total latency)",
        columns=["pipeline", "utilization", "nodes", "avg_total_latency"],
    )
    for name, acc in accumulators.items():
        result.add_row(
            pipeline=name,
            utilization=float(np.mean(acc["util"])),
            nodes=float(np.mean(acc["nodes"])),
            avg_total_latency=float(np.mean(acc["latency"])),
        )
    result.notes.append(
        "paper abstract: the joint system improves utilization by 33.4% "
        "and reduces average total latency by 19.9% vs the state of the art"
    )
    return result


SPEC = register(
    ExperimentSpec(
        name="joint_e2e",
        title="Joint pipelines on shared workloads (Eq. 16 total latency)",
        runner=run,
        profile="joint",
        tags=("placement", "scheduling", "beyond-paper"),
        default_repetitions=10,
        order=18,
    )
)


if __name__ == "__main__":  # pragma: no cover
    run().print()
