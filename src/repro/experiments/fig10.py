"""Fig. 10 — algorithm iterations vs number of requests (15 VNFs).

Paper's observation: iterations are flat in the request count, with FFD
lowest (1), BFDSU middle (~11) and NAH highest (~32, roughly triple
BFDSU).  See :mod:`repro.placement.base` for each algorithm's iteration
semantics.
"""

from __future__ import annotations

from repro.experiments.harness import ExperimentResult
from repro.experiments.registry import ExperimentSpec, register
from repro.experiments.sweeps import DEFAULT_PLACEMENT_REPS, placement_sweep
from repro.workload.scenarios import PlacementScenario
from repro.experiments.fig05 import REQUEST_COUNTS


def run(
    repetitions: int = DEFAULT_PLACEMENT_REPS,
    seed: int = 20170610,
    jobs: int = 1,
) -> ExperimentResult:
    """Regenerate Fig. 10's series."""
    scenarios = [
        (
            n,
            PlacementScenario(
                num_vnfs=15, num_nodes=10, num_requests=n, seed=seed + n
            ),
        )
        for n in REQUEST_COUNTS
    ]
    rows = placement_sweep(
        scenarios, repetitions=repetitions, seed=seed, jobs=jobs
    )
    result = ExperimentResult(
        experiment_id="fig10",
        title="Algorithm iterations for a feasible solution vs #requests",
        columns=["requests", "algorithm", "iterations"],
    )
    for row in rows:
        result.add_row(
            requests=row["x"],
            algorithm=row["algorithm"],
            iterations=row["iterations"],
        )
    result.notes.append(
        "paper: flat in requests; FFD 1 << BFDSU ~11 < NAH ~32"
    )
    return result


SPEC = register(
    ExperimentSpec(
        name="fig10",
        title="Algorithm iterations for a feasible solution vs #requests",
        runner=run,
        profile="placement",
        tags=("placement", "figure"),
        default_repetitions=DEFAULT_PLACEMENT_REPS,
        order=10,
    )
)


if __name__ == "__main__":  # pragma: no cover
    run().print()
