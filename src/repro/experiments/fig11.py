"""Fig. 11 — average response time vs #requests, P = 0.98, 5 instances.

Paper's observation: RCKK always beats CGA; the enhancement ratio
``(W_CGA - W_RCKK) / W_CGA`` declines from 41.89% (few requests) to
2.10% (250 requests) as the mu-scaling grows the absolute headroom.
"""

from __future__ import annotations

from typing import Tuple

from repro.experiments.harness import ExperimentResult
from repro.experiments.registry import ExperimentSpec, register
from repro.experiments.sweeps import (
    DEFAULT_SCHEDULING_REPS,
    enhancement_column,
    scheduling_sweep,
)
from repro.workload.scenarios import SchedulingScenario

#: The paper's request sweep for the latency figures.
REQUEST_COUNTS: Tuple[int, ...] = (15, 25, 50, 100, 150, 250)

#: Raw-load utilization target for the mu scaling.
RHO = 0.8


def run(
    repetitions: int = DEFAULT_SCHEDULING_REPS,
    seed: int = 20170611,
    delivery_probability: float = 0.98,
    experiment_id: str = "fig11",
    jobs: int = 1,
) -> ExperimentResult:
    """Regenerate Fig. 11's series (or Fig. 12's via the P parameter)."""
    scenarios = [
        (
            n,
            SchedulingScenario(
                num_requests=n,
                num_instances=5,
                delivery_probability=delivery_probability,
                rho=RHO,
                seed=seed + n,
            ),
        )
        for n in REQUEST_COUNTS
    ]
    rows = scheduling_sweep(scenarios, repetitions=repetitions, jobs=jobs)
    enhancement = enhancement_column(rows, "mean_w")
    result = ExperimentResult(
        experiment_id=experiment_id,
        title=(
            "Average response time vs #requests "
            f"(P={delivery_probability}, 5 instances)"
        ),
        columns=["requests", "algorithm", "mean_w", "enhancement"],
    )
    for row in rows:
        result.add_row(
            requests=row["x"],
            algorithm=row["algorithm"],
            mean_w=row["mean_w"],
            enhancement=(
                enhancement.get(row["x"], 0.0)
                if row["algorithm"] == "RCKK"
                else 0.0
            ),
        )
    result.notes.append(
        "paper (P=0.98): enhancement declines 41.89% -> 2.10% as "
        "requests grow"
    )
    return result


SPEC = register(
    ExperimentSpec(
        name="fig11",
        title="Average response time vs #requests (P=0.98, 5 instances)",
        runner=run,
        profile="scheduling",
        tags=("scheduling", "figure"),
        default_repetitions=DEFAULT_SCHEDULING_REPS,
        order=11,
    )
)


if __name__ == "__main__":  # pragma: no cover
    run().print()
