"""Fig. 14 — average response time vs #instances, P = 1.00, 50 requests.

Same sweep as Fig. 13 without loss; the paper's enhancement ratio runs
3.16% to 18.53%, consistently below the lossy case.
"""

from __future__ import annotations

from repro.experiments.fig13 import run as _run_fig13
from repro.experiments.harness import ExperimentResult
from repro.experiments.registry import ExperimentSpec, register
from repro.experiments.sweeps import DEFAULT_SCHEDULING_REPS


def run(
    repetitions: int = DEFAULT_SCHEDULING_REPS,
    seed: int = 20170614,
    jobs: int = 1,
) -> ExperimentResult:
    """Regenerate Fig. 14's series."""
    result = _run_fig13(
        repetitions=repetitions,
        seed=seed,
        delivery_probability=1.0,
        experiment_id="fig14",
        jobs=jobs,
    )
    result.notes.clear()
    result.notes.append(
        "paper (P=1.00): enhancement widens 3.16% -> 18.53%, below the "
        "P=0.98 curve of fig13"
    )
    return result


SPEC = register(
    ExperimentSpec(
        name="fig14",
        title="Average response time vs #instances (P=1.00, 50 requests)",
        runner=run,
        profile="scheduling",
        tags=("scheduling", "figure"),
        default_repetitions=DEFAULT_SCHEDULING_REPS,
        order=14,
    )
)


if __name__ == "__main__":  # pragma: no cover
    run().print()
