"""Fig. 16 — average job rejection rate vs #requests, P = 0.984.

Paper's observation: under the higher packet loss rate both algorithms
reject more (CGA average 28.28% vs RCKK 4.87%); the ordering
RCKK << CGA and the rejection increase from Fig. 15's P=0.997 carry
over to this reproduction, with magnitudes compressed (see notes).
"""

from __future__ import annotations

from repro.experiments.fig15 import run as _run_fig15
from repro.experiments.harness import ExperimentResult
from repro.experiments.registry import ExperimentSpec, register
from repro.experiments.sweeps import DEFAULT_SCHEDULING_REPS


def run(
    repetitions: int = DEFAULT_SCHEDULING_REPS,
    seed: int = 20170616,
    jobs: int = 1,
) -> ExperimentResult:
    """Regenerate Fig. 16's series."""
    result = _run_fig15(
        repetitions=repetitions,
        seed=seed,
        delivery_probability=0.984,
        experiment_id="fig16",
        jobs=jobs,
    )
    result.notes.clear()
    result.notes.append(
        "paper (P=0.984): CGA 28.28% vs RCKK 4.87% on average; this "
        "reproduction preserves the ordering and the higher-loss-higher-"
        "rejection effect with compressed magnitudes (our CGA baseline "
        "balances better than the paper's reported CGA)"
    )
    return result


SPEC = register(
    ExperimentSpec(
        name="fig16",
        title="Average job rejection rate vs #requests (P=0.984)",
        runner=run,
        profile="scheduling",
        tags=("scheduling", "figure"),
        default_repetitions=DEFAULT_SCHEDULING_REPS,
        order=16,
    )
)


if __name__ == "__main__":  # pragma: no cover
    run().print()
