"""Resilience under fault injection — recovery policies vs MTBF.

The churn experiment prices *serving*; this one prices *surviving*.
Each trial replays one Poisson churn trace through the
:class:`~repro.serve.service.ServingLayer` three times — once per
crash-recovery policy (:mod:`repro.faults.recovery`) — against the
same seeded failure timeline (:func:`repro.faults.events
.failure_events`: per-node exponential MTBF/MTTR renewals plus
correlated rack outages), under one migration budget and one SLA spec.
Reported per (MTBF, policy): availability, latency violation-minutes,
evictions / re-admissions / lost chains, the mean simulated recovery
spell and the migrations spent.

The ``repair probe`` (:func:`repair_probe`) isolates the paper-versus-
operations tradeoff on a single crash: incremental repair (relocate
stranded VNFs, warm-start re-admit the evicted chains, finite
:class:`~repro.faults.recovery.MigrationBudget`) must reach the same
post-recovery admission set as a full re-solve over the survivors —
while moving strictly fewer chains.  ``tests/experiments/
test_resilience.py`` asserts both.
"""

from __future__ import annotations

from typing import Dict, List

import numpy as np

from repro.core.incremental import DeploymentEngine
from repro.experiments.harness import ExperimentResult
from repro.experiments.montecarlo import run_trials
from repro.experiments.registry import ExperimentSpec, register
from repro.faults.events import failure_events
from repro.faults.recovery import (
    DeferredRecovery,
    LeastLoadedReadmit,
    MigrationBudget,
    WarmStartRelocate,
)
from repro.faults.sla import SLASpec
from repro.serve.events import poisson_churn
from repro.serve.service import ServingLayer
from repro.workload.generator import WorkloadGenerator

#: Simulated trace length (seconds) — one hour of churn under faults.
DURATION = 3600.0
#: Poisson arrival intensity (per second).
ARRIVAL_RATE = 0.05
#: Mean exponential holding time (seconds).
MEAN_HOLDING = 600.0
#: Periodic rebalance cadence (admits) — the deferred policy's repair
#: opportunity.
REBALANCE_EVERY = 20
#: Mean time to repair a crashed node (seconds).
MTTR = 180.0
#: The MTBF sweep (seconds per node).
MTBF_VALUES = (1800.0, 7200.0)
#: Nodes per correlated-failure rack.
RACK_SIZE = 6
#: Per-episode migration budget shared by recovery and rebalance.
BUDGET_MIGRATIONS = 100
BUDGET_LOAD = 2000.0
#: Eq. (14/16)-style per-chain response-time bound (seconds).  The
#: healthy embedding sits around 4-6 ms sojourn, so excursions above
#: 6 ms mark failure-induced load concentration.
LATENCY_SLA = 0.006

#: The recovery-policy contenders (name -> zero-arg factory).
POLICIES = (
    ("least-loaded", LeastLoadedReadmit),
    ("warm-start", WarmStartRelocate),
    ("deferred", DeferredRecovery),
)


def _scenario(ss: np.random.SeedSequence):
    """Infrastructure + chain catalog shared by all policies."""
    gen = WorkloadGenerator(np.random.default_rng(ss))
    w = gen.workload(num_vnfs=12, num_nodes=24, num_requests=30)
    seen = set()
    chains = []
    for request in w.requests:
        key = request.chain.vnf_names
        if key not in seen:
            seen.add(key)
            chains.append(request.chain)
    return w.vnfs, w.capacities, chains


def _trial(task) -> Dict[str, Dict[str, float]]:
    """One repetition: every policy on one churn + fault timeline."""
    seed, rep, mtbf = task
    root = np.random.SeedSequence([seed, rep, int(mtbf)])
    scenario_ss, churn_ss, fault_ss = root.spawn(3)
    vnfs, capacities, chains = _scenario(scenario_ss)
    events = poisson_churn(
        chains,
        duration=DURATION,
        arrival_rate=ARRIVAL_RATE,
        mean_holding=MEAN_HOLDING,
        rng=np.random.default_rng(churn_ss),
        prefix=f"res{rep}",
    )
    node_keys = tuple(capacities.keys())
    racks = tuple(
        node_keys[start : start + RACK_SIZE]
        for start in range(0, len(node_keys), RACK_SIZE)
    )
    faults = failure_events(
        node_keys,
        duration=DURATION,
        mtbf=mtbf,
        mttr=MTTR,
        rng=np.random.default_rng(fault_ss),
        racks=racks,
        rack_mtbf=8.0 * mtbf,
        rack_mttr=MTTR,
    )

    out: Dict[str, Dict[str, float]] = {}
    for name, factory in POLICIES:
        engine = DeploymentEngine(vnfs, capacities)
        layer = ServingLayer(
            engine,
            rebalance_every=REBALANCE_EVERY,
            faults=faults,
            recovery=factory(),
            budget=MigrationBudget(
                max_migrations=BUDGET_MIGRATIONS,
                max_moved_load=BUDGET_LOAD,
            ),
            sla=SLASpec(latency_threshold=LATENCY_SLA, check_every=4),
        )
        report = layer.process(events)
        res = report.resilience
        out[name] = {
            "availability": res.availability,
            "violation_minutes": res.violation_minutes,
            "evictions": float(res.evictions),
            "readmissions": float(res.readmissions),
            "lost": float(res.lost),
            "recovery_s": res.mean_recovery_spell,
            "migrations": float(report.migrations),
        }
    return out


def repair_probe(seed: int = 20170605, actives: int = 120) -> Dict[str, object]:
    """One crash, two repairs: incremental recovery vs full re-solve.

    Both engines start from the same embedding of ``actives`` chains
    and lose the same node (the lightest-loaded one whose failure
    evicts at least one chain).  The incremental path relocates the
    stranded VNFs and warm-start re-admits the evicted chains under a
    finite migration budget; the re-solve path re-runs the batch
    pipeline over the survivors and then re-admits.  Moved chains count
    re-admissions plus surviving chains whose placement or instance
    assignment changed — the operational cost an operator would enact.

    Admission is capacity-only (``target_utilization=None``, as in the
    churn pricing probe): the Eq. (9) utilization cap would make the
    two admission sets depend on how each repair happened to spread
    instance load, which is exactly the noise this probe excludes.
    """
    gen = WorkloadGenerator(np.random.default_rng(seed))
    w = gen.workload(num_vnfs=12, num_nodes=24, num_requests=actives)
    requests = list(w.requests)

    # --- incremental repair -----------------------------------------
    eng_inc = DeploymentEngine(
        w.vnfs, w.capacities, requests, target_utilization=None
    )
    hosted: Dict[object, int] = {}
    for node in eng_inc.placement.values():
        hosted[node] = hosted.get(node, 0) + 1
    evicted: List = []
    victim = None
    for candidate in sorted(hosted, key=lambda n: (hosted[n], str(n))):
        evicted = eng_inc.fail_node(candidate)
        if evicted:
            victim = candidate
            break
        eng_inc.recover_node(candidate)
    budget = MigrationBudget(
        max_migrations=len(w.vnfs) + len(evicted),
        max_moved_load=float("inf"),
    )
    outcome = LeastLoadedReadmit().recover(eng_inc, evicted, budget=budget)
    moved_incremental = len(outcome.readmitted)
    active_incremental = frozenset(eng_inc.active_requests)

    # --- full re-solve over the survivors ---------------------------
    eng_full = DeploymentEngine(
        w.vnfs, w.capacities, requests, target_utilization=None
    )
    evicted_full = eng_full.fail_node(victim)
    survivors = tuple(eng_full.active_requests)
    before_assign = {rid: eng_full.assignment_of(rid) for rid in survivors}
    before_place = dict(eng_full.placement)
    eng_full.rebalance()
    moved_survivors = 0
    for rid in survivors:
        assign = eng_full.assignment_of(rid)
        if assign != before_assign[rid] or any(
            eng_full.placement[name] != before_place[name]
            for name in assign
        ):
            moved_survivors += 1
    readmitted_full = sum(
        1 for request in evicted_full if eng_full.admit(request).admitted
    )
    moved_full = moved_survivors + readmitted_full
    return {
        "victim": victim,
        "evicted": len(evicted),
        "moved_incremental": moved_incremental,
        "pending_incremental": len(outcome.pending),
        "vnf_moves": outcome.vnf_moves,
        "moved_full": moved_full,
        "same_admission_set": active_incremental
        == frozenset(eng_full.active_requests),
    }


def run(
    repetitions: int = 3, seed: int = 20170809, jobs: int = 1
) -> ExperimentResult:
    """Sweep MTBF across the recovery-policy contenders."""
    tasks = [
        (seed, rep, mtbf)
        for mtbf in MTBF_VALUES
        for rep in range(repetitions)
    ]
    trials = run_trials(_trial, tasks, jobs=jobs)

    result = ExperimentResult(
        experiment_id="resilience",
        title="Crash recovery under fault injection (SLA-tracked)",
        columns=[
            "mtbf_s",
            "policy",
            "availability",
            "violation_minutes",
            "evictions",
            "readmissions",
            "lost",
            "recovery_s",
            "migrations",
        ],
    )
    for point, mtbf in enumerate(MTBF_VALUES):
        point_trials = trials[
            point * repetitions : (point + 1) * repetitions
        ]
        for name, _factory in POLICIES:
            acc: Dict[str, List[float]] = {}
            for trial in point_trials:
                for column, value in trial[name].items():
                    acc.setdefault(column, []).append(value)
            result.add_row(
                mtbf_s=mtbf,
                policy=name,
                **{
                    column: float(np.mean(values))
                    for column, values in acc.items()
                },
            )
    probe = repair_probe(seed)
    result.notes.append(
        f"{DURATION / 3600:.0f}h churn (lambda={ARRIVAL_RATE}/s, holding "
        f"{MEAN_HOLDING:.0f}s) under per-node MTBF/MTTR renewals + "
        f"correlated {RACK_SIZE}-node rack outages; budget "
        f"{BUDGET_MIGRATIONS} migrations / {BUDGET_LOAD:.0f} load per "
        f"episode; SLA latency bound {LATENCY_SLA}s"
    )
    result.notes.append(
        "repair probe (one crash, finite budget): incremental recovery "
        f"moved {probe['moved_incremental']} chains "
        f"(+{probe['vnf_moves']} VNF relocations) vs "
        f"{probe['moved_full']} for a full re-solve; same post-recovery "
        f"admission set: {probe['same_admission_set']}"
    )
    result.notes.append(
        "deferred recovery pays availability for zero immediate "
        "migrations (repairs ride the next periodic rebalance)"
    )
    return result


SPEC = register(
    ExperimentSpec(
        name="resilience",
        title="Crash recovery under fault injection (SLA-tracked)",
        runner=run,
        profile="joint",
        tags=("serving", "faults", "beyond-paper"),
        default_repetitions=3,
        order=24,
    )
)


if __name__ == "__main__":  # pragma: no cover
    print(run(repetitions=2).render())
