"""Reusable sweep drivers for the placement and scheduling experiments.

The twelve figure modules differ only in which axis they sweep and which
metric column they report; the two drivers here describe the Monte-Carlo
work and hand execution to :mod:`repro.experiments.montecarlo`:

* :func:`placement_sweep` — run each placement algorithm over the
  instances of a :class:`~repro.workload.scenarios.PlacementScenario`
  per sweep point, averaging the Figs. 5-10 metrics.
* :func:`scheduling_sweep` — ditto for scheduling algorithms over
  :class:`~repro.workload.scenarios.SchedulingScenario` instances,
  producing the Figs. 11-16 metrics (mean/percentile response time,
  rejection rate, enhancement ratios).

Seeding & parallelism
---------------------
Each *(sweep point, repetition)* trial derives its own random stream
from ``SeedSequence([seed, point_index, repetition])`` — no generator
is shared across trials, so results are bit-identical at every
``jobs`` level and independent of completion order.  Trials execute
through :func:`repro.experiments.montecarlo.run_trials`; the reduction
(means, percentiles) always consumes samples in repetition order.

Passing explicit ``algorithms`` instances preserves the legacy
shared-state semantics (one mutable algorithm object across all
trials): that path runs serially regardless of ``jobs``, as does the
sequential-stopping ``adaptive_precision`` mode.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.analysis.stats import percentile
from repro.exceptions import ConfigurationError
from repro.experiments.montecarlo import run_trials
from repro.nfv.chain import ServiceChain
from repro.nfv.vnf import VNF
from repro.placement.base import PlacementAlgorithm, PlacementProblem
from repro.placement.bfdsu import BFDSUPlacement
from repro.placement.ffd import FFDPlacement
from repro.placement.nah import NAHPlacement
from repro.scheduling.base import SchedulingAlgorithm
from repro.scheduling.cga import CGAScheduler
from repro.scheduling.metrics import schedule_report
from repro.scheduling.rckk import RCKKScheduler
from repro.seeding import RngLike, resolve_rng, trial_rng
from repro.workload.scenarios import PlacementScenario, SchedulingScenario

#: Default Monte-Carlo repetitions.  The paper uses 1000; the default
#: here keeps a full ``runall`` under a minute — pass ``repetitions`` to
#: match the paper exactly.
DEFAULT_PLACEMENT_REPS = 20
DEFAULT_SCHEDULING_REPS = 100


def default_placement_algorithms(seed: RngLike) -> List[PlacementAlgorithm]:
    """The paper's three placement contenders, BFDSU seeded.

    ``seed`` may be an int, ``SeedSequence`` or ``Generator`` — anything
    :func:`repro.seeding.resolve_rng` accepts.
    """
    return [
        BFDSUPlacement(rng=resolve_rng(seed)),
        FFDPlacement(),
        NAHPlacement(),
    ]


def default_scheduling_algorithms() -> List[SchedulingAlgorithm]:
    """The paper's two scheduling contenders (both deterministic)."""
    return [RCKKScheduler(), CGAScheduler()]


# ----------------------------------------------------------------------
# Trial functions — module level so process pools can pickle them.
# ----------------------------------------------------------------------
def _placement_trial(
    task: Tuple[int, int, PlacementScenario, int]
) -> Dict[str, Tuple[float, float, float, float]]:
    """One placement trial: build the instance, run all contenders."""
    point_index, repetition, scenario, seed = task
    problem = scenario.build(repetition)
    rng = trial_rng(seed, point_index, repetition)
    metrics: Dict[str, Tuple[float, float, float, float]] = {}
    for algorithm in default_placement_algorithms(rng):
        result = algorithm.place(problem)
        metrics[algorithm.name] = (
            float(result.average_utilization),
            float(result.num_used_nodes),
            float(result.total_occupied_capacity),
            float(result.iterations),
        )
    return metrics


def _pool_placement_problems(
    scenario_list: Sequence[Tuple[object, PlacementScenario]],
    repetitions: int,
):
    """Pool every (point, repetition) problem into one columnar scenario.

    The parent builds each :class:`PlacementProblem` once, stacks all
    numeric columns (``M_f``, ``D_f``, ``mu_f``, ``A_v``) into a single
    :class:`~repro.core.arrays.ScenarioArrays` — publishable once over
    the :mod:`repro.experiments.shm` backends — and keeps only the
    small non-numeric fields (names, categories, chain tuples) in the
    per-task metadata.  Pooled entity names are prefixed ``t{i}:`` for
    uniqueness; workers never read them — the metadata carries the
    ORIGINAL names, so reconstructed problems are exactly the built
    ones (float columns round-trip bit-exactly through float64).

    Returns ``(pooled_arrays, metas)`` with ``metas`` aligned to the
    point-major task order of :func:`placement_sweep`.
    """
    from repro.core.arrays import ScenarioArrays

    pooled_vnfs: List[VNF] = []
    pooled_caps: Dict[str, float] = {}
    metas: List[Tuple] = []
    vnf_offset = 0
    node_offset = 0
    for _x, scenario in scenario_list:
        for repetition in range(repetitions):
            problem = scenario.build(repetition)
            tag = f"t{len(metas)}:"
            for f in problem.vnfs:
                pooled_vnfs.append(replace(f, name=tag + f.name))
            for key, cap in problem.capacities.items():
                pooled_caps[f"{tag}{key}"] = cap
            metas.append(
                (
                    vnf_offset,
                    tuple(f.name for f in problem.vnfs),
                    tuple(f.category for f in problem.vnfs),
                    node_offset,
                    tuple(problem.capacities.keys()),
                    tuple(chain.vnf_names for chain in problem.chains),
                )
            )
            vnf_offset += len(problem.vnfs)
            node_offset += len(problem.capacities)
    return ScenarioArrays.build(pooled_vnfs, (), pooled_caps), metas


def _placement_trial_shared(task, arrays) -> Dict[str, Tuple[float, ...]]:
    """Shared-scenario twin of :func:`_placement_trial`.

    ``task`` is ``(point_index, repetition, seed, meta)`` and
    ``arrays`` the pooled columns attached zero-copy in the worker; the
    trial reconstructs its exact problem instance from the column
    slices plus the metadata names and then runs the identical
    contender loop — results are byte-identical to the unshared path.
    """
    point_index, repetition, seed, meta = task
    vnf_off, vnf_names, categories, node_off, node_keys, chain_specs = meta
    vnfs = [
        VNF(
            name=name,
            demand_per_instance=float(arrays.D_f[vnf_off + j]),
            num_instances=int(arrays.M_f[vnf_off + j]),
            service_rate=float(arrays.mu_f[vnf_off + j]),
            category=categories[j],
        )
        for j, name in enumerate(vnf_names)
    ]
    capacities = {
        key: float(arrays.A_v[node_off + j])
        for j, key in enumerate(node_keys)
    }
    chains = [ServiceChain(names) for names in chain_specs]
    problem = PlacementProblem(
        vnfs=vnfs, capacities=capacities, chains=chains
    )
    rng = trial_rng(seed, point_index, repetition)
    metrics: Dict[str, Tuple[float, ...]] = {}
    for algorithm in default_placement_algorithms(rng):
        result = algorithm.place(problem)
        metrics[algorithm.name] = (
            float(result.average_utilization),
            float(result.num_used_nodes),
            float(result.total_occupied_capacity),
            float(result.iterations),
        )
    return metrics


def _scheduling_trial(
    task: Tuple[int, SchedulingScenario, bool]
) -> Dict[str, Tuple[float, float]]:
    """One scheduling trial: build the instance, run both schedulers."""
    repetition, scenario, apply_admission = task
    problem = scenario.build(repetition)
    metrics: Dict[str, Tuple[float, float]] = {}
    for algorithm in default_scheduling_algorithms():
        report = schedule_report(
            algorithm.schedule(problem), apply_admission=apply_admission
        )
        metrics[algorithm.name] = (
            float(report.average_response_time),
            float(report.rejection_rate),
        )
    return metrics


def placement_sweep(
    scenarios: Sequence[Tuple[object, PlacementScenario]],
    repetitions: int = DEFAULT_PLACEMENT_REPS,
    seed: int = 0,
    algorithms: Optional[Sequence[PlacementAlgorithm]] = None,
    jobs: int = 1,
    shared: bool = False,
) -> List[Dict[str, object]]:
    """Run placement algorithms over scenario sweep points.

    Parameters
    ----------
    scenarios:
        ``(x_value, scenario)`` pairs — one per sweep point.
    repetitions:
        Monte-Carlo instances per point.
    seed:
        Seed for the randomized algorithms; every trial spawns its own
        child stream from it (see the module docstring).
    algorithms:
        Explicit contender instances (legacy shared-state path; forces
        serial execution).  Defaults to per-trial BFDSU/FFD/NAH.
    jobs:
        Worker processes for the default path; results are identical at
        every level.
    shared:
        Build every problem instance once in the parent and ship the
        pooled numeric columns to workers through
        ``run_trials(shared=...)`` (one shared-memory publish instead
        of per-task pickling).  Results are byte-identical to the
        default path; requires the default algorithm set.

    Returns
    -------
    list of dict
        One row per (sweep point, algorithm) with keys ``x``,
        ``algorithm``, ``utilization``, ``nodes_in_service``,
        ``occupation``, ``iterations``.
    """
    scenario_list = list(scenarios)
    tasks = [
        (point_index, repetition, scenario, int(seed))
        for point_index, (_x, scenario) in enumerate(scenario_list)
        for repetition in range(repetitions)
    ]
    if algorithms is None:
        algo_names = [a.name for a in default_placement_algorithms(0)]
        if shared:
            pooled, metas = _pool_placement_problems(
                scenario_list, repetitions
            )
            shared_tasks = [
                (point, repetition, task_seed, meta)
                for (point, repetition, _scn, task_seed), meta in zip(
                    tasks, metas
                )
            ]
            trials = run_trials(
                _placement_trial_shared,
                shared_tasks,
                jobs=jobs,
                shared=pooled,
            )
        else:
            trials = run_trials(_placement_trial, tasks, jobs=jobs)
    elif shared:
        raise ConfigurationError(
            "shared=True requires the default per-trial algorithms "
            "(explicit `algorithms` run on the legacy serial path)"
        )
    else:
        shared = list(algorithms)
        algo_names = [a.name for a in shared]

        def shared_trial(task):
            _point, repetition, scenario, _seed = task
            problem = scenario.build(repetition)
            out = {}
            for algorithm in shared:
                result = algorithm.place(problem)
                out[algorithm.name] = (
                    float(result.average_utilization),
                    float(result.num_used_nodes),
                    float(result.total_occupied_capacity),
                    float(result.iterations),
                )
            return out

        trials = run_trials(shared_trial, tasks, jobs=1)

    rows: List[Dict[str, object]] = []
    for point_index, (x_value, _scenario) in enumerate(scenario_list):
        point_trials = trials[
            point_index * repetitions : (point_index + 1) * repetitions
        ]
        for name in algo_names:
            samples = np.array([trial[name] for trial in point_trials])
            utilization, nodes, occupation, iterations = samples.mean(axis=0)
            rows.append(
                {
                    "x": x_value,
                    "algorithm": name,
                    "utilization": float(utilization),
                    "nodes_in_service": float(nodes),
                    "occupation": float(occupation),
                    "iterations": float(iterations),
                }
            )
    return rows


def scheduling_sweep(
    scenarios: Sequence[Tuple[object, SchedulingScenario]],
    repetitions: int = DEFAULT_SCHEDULING_REPS,
    algorithms: Optional[Sequence[SchedulingAlgorithm]] = None,
    apply_admission: bool = True,
    adaptive_precision: Optional[float] = None,
    jobs: int = 1,
) -> List[Dict[str, object]]:
    """Run scheduling algorithms over scenario sweep points.

    Parameters
    ----------
    adaptive_precision:
        When set (e.g. ``0.02`` for +/-2%), each sweep point stops early
        once every algorithm's running mean ``W`` has converged to that
        relative precision (95% CI), with ``repetitions`` as the hard
        cap — the sequential stopping rule of
        :class:`repro.analysis.convergence.ConvergenceTracker`.  This
        mode is inherently sequential and ignores ``jobs``.
    jobs:
        Worker processes for the fixed-repetitions default path.

    Returns
    -------
    list of dict
        One row per (sweep point, algorithm) with keys ``x``,
        ``algorithm``, ``mean_w`` (average response time), ``p99_w``
        (99th percentile over repetitions), ``rejection_rate``.
    """
    if algorithms is not None or adaptive_precision is not None:
        return _scheduling_sweep_sequential(
            scenarios,
            repetitions=repetitions,
            algorithms=algorithms,
            apply_admission=apply_admission,
            adaptive_precision=adaptive_precision,
        )

    scenario_list = list(scenarios)
    tasks = [
        (repetition, scenario, apply_admission)
        for _x, scenario in scenario_list
        for repetition in range(repetitions)
    ]
    trials = run_trials(_scheduling_trial, tasks, jobs=jobs)
    algo_names = [a.name for a in default_scheduling_algorithms()]

    rows: List[Dict[str, object]] = []
    for point_index, (x_value, _scenario) in enumerate(scenario_list):
        point_trials = trials[
            point_index * repetitions : (point_index + 1) * repetitions
        ]
        for name in algo_names:
            w_samples = [trial[name][0] for trial in point_trials]
            rej_samples = [trial[name][1] for trial in point_trials]
            rows.append(
                {
                    "x": x_value,
                    "algorithm": name,
                    "mean_w": float(np.mean(w_samples)),
                    "p99_w": percentile(w_samples, 99),
                    "rejection_rate": float(np.mean(rej_samples)),
                }
            )
    return rows


def _scheduling_sweep_sequential(
    scenarios: Sequence[Tuple[object, SchedulingScenario]],
    repetitions: int,
    algorithms: Optional[Sequence[SchedulingAlgorithm]],
    apply_admission: bool,
    adaptive_precision: Optional[float],
) -> List[Dict[str, object]]:
    """Serial path: shared algorithm instances / sequential stopping."""
    algos = (
        list(algorithms)
        if algorithms is not None
        else default_scheduling_algorithms()
    )
    rows: List[Dict[str, object]] = []
    for x_value, scenario in scenarios:
        per_algo: Dict[str, Dict[str, List[float]]] = {
            a.name: {"w": [], "rej": []} for a in algos
        }
        trackers = None
        if adaptive_precision is not None:
            from repro.analysis.convergence import ConvergenceTracker

            trackers = {
                a.name: ConvergenceTracker(
                    relative_precision=adaptive_precision, min_samples=20
                )
                for a in algos
            }
        for rep in range(repetitions):
            problem = scenario.build(rep)
            for algo in algos:
                report = schedule_report(
                    algo.schedule(problem), apply_admission=apply_admission
                )
                per_algo[algo.name]["w"].append(report.average_response_time)
                per_algo[algo.name]["rej"].append(report.rejection_rate)
                if trackers is not None:
                    trackers[algo.name].add(report.average_response_time)
            if trackers is not None and all(
                t.converged() for t in trackers.values()
            ):
                break
        for algo in algos:
            w_samples = per_algo[algo.name]["w"]
            rows.append(
                {
                    "x": x_value,
                    "algorithm": algo.name,
                    "mean_w": float(np.mean(w_samples)),
                    "p99_w": percentile(w_samples, 99),
                    "rejection_rate": float(
                        np.mean(per_algo[algo.name]["rej"])
                    ),
                }
            )
    return rows


def enhancement_column(
    rows: Sequence[Dict[str, object]],
    metric: str,
    baseline: str = "CGA",
    improved: str = "RCKK",
) -> Dict[object, float]:
    """Per-sweep-point ``(baseline - improved) / baseline`` for a metric."""
    by_x: Dict[object, Dict[str, float]] = {}
    for row in rows:
        by_x.setdefault(row["x"], {})[str(row["algorithm"])] = float(row[metric])  # type: ignore[arg-type]
    out: Dict[object, float] = {}
    for x_value, metrics in by_x.items():
        base = metrics.get(baseline)
        imp = metrics.get(improved)
        if base is None or imp is None or base == 0.0:
            continue
        out[x_value] = (base - imp) / base
    return out
