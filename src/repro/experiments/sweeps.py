"""Reusable sweep drivers for the placement and scheduling experiments.

The twelve figure modules differ only in which axis they sweep and which
metric column they report; the two drivers here do the Monte-Carlo work:

* :func:`placement_sweep` — run each placement algorithm over the
  instances of a :class:`~repro.workload.scenarios.PlacementScenario`
  per sweep point, averaging the Figs. 5-10 metrics.
* :func:`scheduling_sweep` — ditto for scheduling algorithms over
  :class:`~repro.workload.scenarios.SchedulingScenario` instances,
  producing the Figs. 11-16 metrics (mean/percentile response time,
  rejection rate, enhancement ratios).
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.analysis.stats import percentile
from repro.placement.base import PlacementAlgorithm
from repro.placement.bfdsu import BFDSUPlacement
from repro.placement.ffd import FFDPlacement
from repro.placement.nah import NAHPlacement
from repro.scheduling.base import SchedulingAlgorithm
from repro.scheduling.cga import CGAScheduler
from repro.scheduling.metrics import schedule_report
from repro.scheduling.rckk import RCKKScheduler
from repro.workload.scenarios import PlacementScenario, SchedulingScenario

#: Default Monte-Carlo repetitions.  The paper uses 1000; the default
#: here keeps a full ``runall`` under a minute — pass ``repetitions`` to
#: match the paper exactly.
DEFAULT_PLACEMENT_REPS = 20
DEFAULT_SCHEDULING_REPS = 100


def default_placement_algorithms(seed: int) -> List[PlacementAlgorithm]:
    """The paper's three placement contenders, BFDSU seeded."""
    return [
        BFDSUPlacement(rng=np.random.default_rng(seed)),
        FFDPlacement(),
        NAHPlacement(),
    ]


def default_scheduling_algorithms() -> List[SchedulingAlgorithm]:
    """The paper's two scheduling contenders."""
    return [RCKKScheduler(), CGAScheduler()]


def placement_sweep(
    scenarios: Sequence[Tuple[object, PlacementScenario]],
    repetitions: int = DEFAULT_PLACEMENT_REPS,
    seed: int = 0,
    algorithms: Optional[Sequence[PlacementAlgorithm]] = None,
) -> List[Dict[str, object]]:
    """Run placement algorithms over scenario sweep points.

    Parameters
    ----------
    scenarios:
        ``(x_value, scenario)`` pairs — one per sweep point.
    repetitions:
        Monte-Carlo instances per point.
    seed:
        Seed for the randomized algorithms.
    algorithms:
        Contenders; defaults to BFDSU/FFD/NAH.

    Returns
    -------
    list of dict
        One row per (sweep point, algorithm) with keys ``x``,
        ``algorithm``, ``utilization``, ``nodes_in_service``,
        ``occupation``, ``iterations``.
    """
    algos = (
        list(algorithms)
        if algorithms is not None
        else default_placement_algorithms(seed)
    )
    rows: List[Dict[str, object]] = []
    for x_value, scenario in scenarios:
        per_algo: Dict[str, Dict[str, List[float]]] = {
            a.name: {"u": [], "n": [], "o": [], "i": []} for a in algos
        }
        for rep in range(repetitions):
            problem = scenario.build(rep)
            for algo in algos:
                result = algo.place(problem)
                acc = per_algo[algo.name]
                acc["u"].append(result.average_utilization)
                acc["n"].append(result.num_used_nodes)
                acc["o"].append(result.total_occupied_capacity)
                acc["i"].append(result.iterations)
        for algo in algos:
            acc = per_algo[algo.name]
            rows.append(
                {
                    "x": x_value,
                    "algorithm": algo.name,
                    "utilization": float(np.mean(acc["u"])),
                    "nodes_in_service": float(np.mean(acc["n"])),
                    "occupation": float(np.mean(acc["o"])),
                    "iterations": float(np.mean(acc["i"])),
                }
            )
    return rows


def scheduling_sweep(
    scenarios: Sequence[Tuple[object, SchedulingScenario]],
    repetitions: int = DEFAULT_SCHEDULING_REPS,
    algorithms: Optional[Sequence[SchedulingAlgorithm]] = None,
    apply_admission: bool = True,
    adaptive_precision: Optional[float] = None,
) -> List[Dict[str, object]]:
    """Run scheduling algorithms over scenario sweep points.

    Parameters
    ----------
    adaptive_precision:
        When set (e.g. ``0.02`` for +/-2%), each sweep point stops early
        once every algorithm's running mean ``W`` has converged to that
        relative precision (95% CI), with ``repetitions`` as the hard
        cap — the sequential stopping rule of
        :class:`repro.analysis.convergence.ConvergenceTracker`.

    Returns
    -------
    list of dict
        One row per (sweep point, algorithm) with keys ``x``,
        ``algorithm``, ``mean_w`` (average response time), ``p99_w``
        (99th percentile over repetitions), ``rejection_rate``.
    """
    algos = (
        list(algorithms)
        if algorithms is not None
        else default_scheduling_algorithms()
    )
    rows: List[Dict[str, object]] = []
    for x_value, scenario in scenarios:
        per_algo: Dict[str, Dict[str, List[float]]] = {
            a.name: {"w": [], "rej": []} for a in algos
        }
        trackers = None
        if adaptive_precision is not None:
            from repro.analysis.convergence import ConvergenceTracker

            trackers = {
                a.name: ConvergenceTracker(
                    relative_precision=adaptive_precision, min_samples=20
                )
                for a in algos
            }
        for rep in range(repetitions):
            problem = scenario.build(rep)
            for algo in algos:
                report = schedule_report(
                    algo.schedule(problem), apply_admission=apply_admission
                )
                per_algo[algo.name]["w"].append(report.average_response_time)
                per_algo[algo.name]["rej"].append(report.rejection_rate)
                if trackers is not None:
                    trackers[algo.name].add(report.average_response_time)
            if trackers is not None and all(
                t.converged() for t in trackers.values()
            ):
                break
        for algo in algos:
            w_samples = per_algo[algo.name]["w"]
            rows.append(
                {
                    "x": x_value,
                    "algorithm": algo.name,
                    "mean_w": float(np.mean(w_samples)),
                    "p99_w": percentile(w_samples, 99),
                    "rejection_rate": float(
                        np.mean(per_algo[algo.name]["rej"])
                    ),
                }
            )
    return rows


def enhancement_column(
    rows: Sequence[Dict[str, object]],
    metric: str,
    baseline: str = "CGA",
    improved: str = "RCKK",
) -> Dict[object, float]:
    """Per-sweep-point ``(baseline - improved) / baseline`` for a metric."""
    by_x: Dict[object, Dict[str, float]] = {}
    for row in rows:
        by_x.setdefault(row["x"], {})[str(row["algorithm"])] = float(row[metric])  # type: ignore[arg-type]
    out: Dict[object, float] = {}
    for x_value, metrics in by_x.items():
        base = metrics.get(baseline)
        imp = metrics.get(improved)
        if base is None or imp is None or base == 0.0:
            continue
        out[x_value] = (base - imp) / base
    return out
