"""Fig. 7 — average utilization vs number of available nodes (15 VNFs).

Paper's observation: as the node pool grows 6-30, FFD and NAH decay while
BFDSU stays stable.  The total VNF demand is held constant across the
sweep (the pool grows, the work does not), which is what exposes the
spreading behaviour of the baselines.
"""

from __future__ import annotations

from repro.experiments.harness import ExperimentResult
from repro.experiments.registry import ExperimentSpec, register
from repro.experiments.sweeps import DEFAULT_PLACEMENT_REPS, placement_sweep
from repro.workload.scenarios import PlacementScenario

#: The node-pool sweep.
NODE_COUNTS = (6, 10, 15, 20, 30)

#: demand_fraction at the smallest pool of the sweep; scaled inversely
#: with the pool so absolute demand stays constant across the sweep (and
#: every algorithm, including the load-spreading baselines, stays
#: feasible at the tightest point).
REFERENCE_FRACTION = 0.55
REFERENCE_NODES = NODE_COUNTS[0]


def _scenario(num_nodes: int, seed: int) -> PlacementScenario:
    return PlacementScenario(
        num_vnfs=15,
        num_nodes=num_nodes,
        num_requests=100,
        demand_fraction=REFERENCE_FRACTION * REFERENCE_NODES / num_nodes,
        seed=seed + num_nodes,
    )


def run(
    repetitions: int = DEFAULT_PLACEMENT_REPS,
    seed: int = 20170607,
    jobs: int = 1,
    shared: bool = False,
) -> ExperimentResult:
    """Regenerate Fig. 7's series.

    ``shared=True`` builds every problem instance once in the parent
    and ships the pooled columns to workers via the shared-memory
    backend (``run_trials(shared=...)``); the rows are byte-identical
    to the default path (pinned by ``tests/experiments/test_fig07.py``).
    """
    scenarios = [(n, _scenario(n, seed)) for n in NODE_COUNTS]
    rows = placement_sweep(
        scenarios,
        repetitions=repetitions,
        seed=seed,
        jobs=jobs,
        shared=shared,
    )
    result = ExperimentResult(
        experiment_id="fig07",
        title="Average utilization of used nodes vs #nodes available (15 VNFs)",
        columns=["nodes", "algorithm", "utilization"],
    )
    for row in rows:
        result.add_row(
            nodes=row["x"],
            algorithm=row["algorithm"],
            utilization=row["utilization"],
        )
    result.notes.append(
        "paper: FFD and NAH decay with pool size; BFDSU stays stable"
    )
    return result


SPEC = register(
    ExperimentSpec(
        name="fig07",
        title="Average utilization of used nodes vs #nodes available",
        runner=run,
        profile="placement",
        tags=("placement", "figure"),
        default_repetitions=DEFAULT_PLACEMENT_REPS,
        order=7,
    )
)


if __name__ == "__main__":  # pragma: no cover
    run().print()
