"""Object-free streaming scenario construction for million-request scale.

``WorkloadGenerator.requests`` materializes one :class:`Request` object
per request — at 1M requests that is gigabytes of Python objects and
minutes of interpreter time before a single kernel runs.  This module
samples the request table as numpy columns directly and hands them to
:meth:`ScenarioArrays.from_columns`, never creating a per-request
object.  The small entities (VNFs, chains, node capacities) still come
from :class:`WorkloadGenerator` — they are thousands, not millions, and
solver front-ends (``PlacementProblem``) want the objects anyway.

Contract (pinned by ``tests/workload/test_stream.py``):

* **Construction parity.**  For any seed, the streamed columns are
  *exactly equal* (``==`` elementwise, identical dtypes under the same
  policy) to ``ScenarioArrays.build`` over the request objects returned
  by :func:`materialize_requests` on the same scenario.  The object
  path stays the semantic reference; the stream path is the scale path.
* **Chunk invariance.**  All random draws happen up front in two
  vectorized calls (chain choices, then rates) so results are
  independent of ``chunk_size``; chunking bounds only the *transient*
  CSR-assembly memory, not the output.
* **Own RNG layout.**  The macro draw order matches
  ``WorkloadGenerator.workload`` (vnfs → chains → requests →
  capacities), but within the request stage the object path interleaves
  two scalar draws per request while this path issues one
  ``integers(0, C, n)`` block then one ``uniform(lo, hi, n)`` block.
  Streamed scenarios therefore match *each other* across chunk sizes
  and match the object path built from their own materialization — not
  the object path run on the same seed.

Request ids are never materialized either: :class:`SequentialIds` /
:class:`SequentialIndex` present the canonical ``f"{prefix}{i}"`` ids
as lazy sequence/mapping views (a 1M-entry tuple-of-str plus dict costs
more memory than every numpy column combined), and
:class:`ChainNamesView` derives the per-CSR-slot VNF names from the
``chain_vnf`` column itself.

See ``docs/SCALE.md`` for how this layer composes with the lean dtype
policy and the shared-memory Monte-Carlo passing.
"""

from __future__ import annotations

from collections.abc import Mapping as MappingABC
from collections.abc import Sequence as SequenceABC
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.arrays import ScenarioArrays
from repro.core.dtypes import ensure_index_capacity, resolve_policy
from repro.exceptions import ConfigurationError
from repro.nfv.chain import ServiceChain
from repro.nfv.request import Request
from repro.nfv.vnf import VNF
from repro.seeding import RngLike, resolve_rng
from repro.workload.generator import WorkloadGenerator

__all__ = [
    "ChainNamesView",
    "SequentialIds",
    "SequentialIndex",
    "StreamedScenario",
    "materialize_requests",
    "rescale_to_stability",
    "stream_scenario",
]

#: Default number of requests whose CSR rows are assembled per pass.
DEFAULT_CHUNK_SIZE = 1 << 18


# ----------------------------------------------------------------------
# Lazy id / name views
# ----------------------------------------------------------------------
class SequentialIds(SequenceABC):
    """Read-only view of the ids ``f"{prefix}{i}"`` for ``i < n``.

    Behaves like the tuple ``ScenarioArrays.build`` would store, without
    holding a string object per request.
    """

    __slots__ = ("_prefix", "_n")

    def __init__(self, prefix: str, n: int) -> None:
        self._prefix = prefix
        self._n = int(n)

    def __len__(self) -> int:
        return self._n

    def __getitem__(self, i):
        if isinstance(i, slice):
            return [self[j] for j in range(*i.indices(self._n))]
        i = int(i)
        if i < 0:
            i += self._n
        if not 0 <= i < self._n:
            raise IndexError(f"request index {i} out of range [0, {self._n})")
        return f"{self._prefix}{i}"

    def __repr__(self) -> str:
        return f"SequentialIds(prefix={self._prefix!r}, n={self._n})"


class SequentialIndex(MappingABC):
    """Read-only ``id -> row`` mapping for :class:`SequentialIds`.

    Lookups parse the trailing integer instead of probing a dict; only
    canonical ids (``prefix`` + decimal without leading zeros, in
    range) resolve, exactly mirroring the eager dict's key set.
    """

    __slots__ = ("_prefix", "_n")

    def __init__(self, prefix: str, n: int) -> None:
        self._prefix = prefix
        self._n = int(n)

    def _parse(self, rid) -> Optional[int]:
        if not isinstance(rid, str) or not rid.startswith(self._prefix):
            return None
        tail = rid[len(self._prefix):]
        if not tail.isdigit():
            return None
        row = int(tail)
        if str(row) != tail or row >= self._n:
            return None
        return row

    def __getitem__(self, rid) -> int:
        row = self._parse(rid)
        if row is None:
            raise KeyError(rid)
        return row

    def __contains__(self, rid) -> bool:
        return self._parse(rid) is not None

    def __iter__(self):
        for i in range(self._n):
            yield f"{self._prefix}{i}"

    def __len__(self) -> int:
        return self._n

    def __repr__(self) -> str:
        return f"SequentialIndex(prefix={self._prefix!r}, n={self._n})"


class ChainNamesView(SequenceABC):
    """Per-CSR-slot VNF names derived lazily from the ``chain_vnf`` column."""

    __slots__ = ("_vnf_names", "_chain_vnf")

    def __init__(self, vnf_names: Sequence[str], chain_vnf: np.ndarray) -> None:
        self._vnf_names = tuple(vnf_names)
        self._chain_vnf = chain_vnf

    def __len__(self) -> int:
        return len(self._chain_vnf)

    def __getitem__(self, i):
        if isinstance(i, slice):
            return [self._vnf_names[int(v)] for v in self._chain_vnf[i]]
        return self._vnf_names[int(self._chain_vnf[i])]

    def __repr__(self) -> str:
        return f"ChainNamesView(n={len(self)})"


# ----------------------------------------------------------------------
# Streamed scenario
# ----------------------------------------------------------------------
@dataclass
class StreamedScenario:
    """A problem instance whose request table exists only as columns.

    ``vnfs`` / ``chains`` / ``capacities`` are ordinary entity objects
    (small); ``arrays`` is the full columnar scenario; ``chain_choice``
    records which chain each request drew so the object path can be
    rebuilt for parity checks (:func:`materialize_requests`).
    ``stability_scale`` is the factor applied by
    :func:`rescale_to_stability` (``1.0`` when not requested).
    """

    vnfs: List[VNF]
    chains: List[ServiceChain]
    capacities: Dict[str, float]
    arrays: ScenarioArrays
    chain_choice: np.ndarray
    request_prefix: str = "r"
    stability_scale: float = 1.0

    @property
    def num_requests(self) -> int:
        return len(self.arrays.request_ids)


def _assemble_chain_csr(
    choices: np.ndarray,
    chain_flat: np.ndarray,
    chain_ptr_c: np.ndarray,
    idt: np.dtype,
    chunk_size: int,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Gather the request-major chain CSR from per-request chain choices.

    Works in chunks of ``chunk_size`` requests so the transient index
    scratch stays bounded; the output is identical for any chunk size
    because the choices are fixed up front.
    """
    n = len(choices)
    counts = np.diff(chain_ptr_c)[choices]  # int64 chain lengths
    ptr64 = np.zeros(n + 1, dtype=np.int64)
    np.cumsum(counts, out=ptr64[1:])
    total = int(ptr64[-1])
    ensure_index_capacity(total, idt, "chain CSR table")
    out_req = np.empty(total, dtype=idt)
    out_vnf = np.empty(total, dtype=idt)
    for start in range(0, n, chunk_size):
        stop = min(start + chunk_size, n)
        cnt = counts[start:stop]
        lo, hi = int(ptr64[start]), int(ptr64[stop])
        if hi == lo:
            continue
        # Within-chunk local position of every CSR slot…
        starts = np.cumsum(cnt) - cnt
        local = np.arange(hi - lo, dtype=np.int64) - np.repeat(starts, cnt)
        # …offset by each request's chain start in the flat chain table.
        src = np.repeat(chain_ptr_c[choices[start:stop]], cnt) + local
        out_vnf[lo:hi] = chain_flat[src]
        out_req[lo:hi] = np.repeat(
            np.arange(start, stop, dtype=np.int64), cnt
        ).astype(idt, copy=False)
    return out_req, out_vnf, ptr64.astype(idt, copy=False)


def stream_scenario(
    num_vnfs: int,
    num_nodes: int,
    num_requests: int,
    num_chains: Optional[int] = None,
    instance_range: Tuple[int, int] = (1, 25),
    rate_range: Tuple[float, float] = (1.0, 100.0),
    delivery_probability: float = 1.0,
    tight_capacities: bool = True,
    capacity_headroom: float = 1.3,
    prefix: str = "r",
    rng: Optional[RngLike] = None,
    dtypes=None,
    chunk_size: int = DEFAULT_CHUNK_SIZE,
) -> StreamedScenario:
    """Generate a complete instance with an object-free request table.

    Mirrors :meth:`WorkloadGenerator.workload` (same parameters, same
    macro draw order) but samples the request columns vectorized and
    assembles the chain CSR in bounded chunks.  ``dtypes`` selects the
    column :class:`~repro.core.dtypes.DtypePolicy`; ``chunk_size``
    bounds transient assembly memory without affecting the result.
    """
    if num_requests < 1:
        raise ConfigurationError(
            f"request count must be >= 1, got {num_requests!r}"
        )
    if chunk_size < 1:
        raise ConfigurationError(
            f"chunk size must be >= 1, got {chunk_size!r}"
        )
    lo, hi = rate_range
    if not 0.0 < lo <= hi:
        raise ConfigurationError(
            f"rate range must satisfy 0 < lo <= hi, got {rate_range!r}"
        )
    if not 0.0 < delivery_probability <= 1.0:
        raise ConfigurationError(
            f"delivery probability must be in (0, 1], got "
            f"{delivery_probability!r}"
        )
    policy = resolve_policy(dtypes)
    idt, fdt = policy.index_dtype, policy.float_dtype
    ensure_index_capacity(num_requests, idt, "request table")

    generator = resolve_rng(rng)
    gen = WorkloadGenerator(rng=generator)
    vnfs = gen.vnfs(num_vnfs, instance_range=instance_range)
    if num_chains is None:
        num_chains = max(1, num_vnfs // 3)
    chains = gen.chains(vnfs, num_chains)

    # Request stage: two vectorized draws (choices, then rates) replace
    # the object path's per-request interleaved scalars.  Drawing all
    # choices before any CSR assembly is what makes the result
    # chunk-size invariant.
    choices = generator.integers(0, len(chains), size=num_requests)
    rates = generator.uniform(lo, hi, size=num_requests)

    if tight_capacities:
        caps = gen.capacities_fitting(
            num_nodes, vnfs, headroom=capacity_headroom
        )
    else:
        caps = gen.capacities(num_nodes)

    vnf_index = {f.name: i for i, f in enumerate(vnfs)}
    chain_flat = np.fromiter(
        (vnf_index[name] for c in chains for name in c.vnf_names),
        dtype=np.int64,
        count=sum(len(c.vnf_names) for c in chains),
    )
    chain_ptr_c = np.zeros(len(chains) + 1, dtype=np.int64)
    np.cumsum([len(c.vnf_names) for c in chains], out=chain_ptr_c[1:])

    chain_req, chain_vnf, chain_ptr = _assemble_chain_csr(
        choices, chain_flat, chain_ptr_c, idt, chunk_size
    )
    arrays = ScenarioArrays.from_columns(
        vnfs,
        caps,
        SequentialIds(prefix, num_requests),
        SequentialIndex(prefix, num_requests),
        rates.astype(fdt, copy=False),
        np.full(num_requests, delivery_probability, dtype=fdt),
        chain_req,
        chain_vnf,
        chain_ptr,
        ChainNamesView(tuple(f.name for f in vnfs), chain_vnf),
        dtypes=policy,
    )
    return StreamedScenario(
        vnfs=vnfs,
        chains=chains,
        capacities=caps,
        arrays=arrays,
        chain_choice=choices,
        request_prefix=prefix,
    )


# ----------------------------------------------------------------------
# Stability rescale (vectorized twin of bench_core's reference helper)
# ----------------------------------------------------------------------
def rescale_to_stability(
    scenario: StreamedScenario, target: float = 0.7
) -> float:
    """Scale arrival rates so every VNF pool stays below ``target``.

    Computes each VNF's aggregate effective load ``sum_r U_r^f
    lambda_r / P_r`` against its pool capacity ``M_f mu_f`` and, when
    the worst utilization exceeds ``target``, multiplies every
    ``lambda_r`` by ``target / worst`` in place (recomputing
    ``eff_rate``).  Returns the factor applied (``1.0`` when already
    stable) and records it on ``scenario.stability_scale``.

    Matches the object-path reference (requests rebuilt with
    ``arrival_rate * scale``) bit-for-bit under the default float64
    policy: ``bincount`` accumulates weights in the same traversal
    order as the per-request loop.
    """
    if not 0.0 < target < 1.0:
        raise ConfigurationError(
            f"target utilization must be in (0, 1), got {target!r}"
        )
    arr = scenario.arrays
    known = arr.chain_vnf >= 0
    load_f = np.bincount(
        arr.chain_vnf[known].astype(np.int64, copy=False),
        weights=arr.eff_rate.astype(np.float64, copy=False)[
            arr.chain_req[known]
        ],
        minlength=len(arr.vnf_names),
    )
    pool = arr.M_f.astype(np.float64) * arr.mu_f.astype(np.float64)
    used = pool > 0.0
    if not used.any():
        return 1.0
    worst = float((load_f[used] / pool[used]).max())
    if worst <= target:
        return 1.0
    scale = target / worst
    np.multiply(arr.lambda_r, scale, out=arr.lambda_r)
    np.divide(arr.lambda_r, arr.P_r, out=arr.eff_rate)
    scenario.stability_scale *= scale
    return scale


# ----------------------------------------------------------------------
# Parity bridge back to the object path
# ----------------------------------------------------------------------
def materialize_requests(scenario: StreamedScenario) -> List[Request]:
    """Rebuild the :class:`Request` objects a streamed scenario encodes.

    Only for parity tests and small-scale cross-checks — this is
    exactly the per-request object cost the stream path exists to
    avoid.  ``ScenarioArrays.build`` over the returned list reproduces
    the streamed columns exactly (same dtype policy).
    """
    arr = scenario.arrays
    lam = arr.lambda_r.astype(np.float64, copy=False)
    P = arr.P_r.astype(np.float64, copy=False)
    return [
        Request(
            request_id=f"{scenario.request_prefix}{i}",
            chain=scenario.chains[int(c)],
            arrival_rate=float(lam[i]),
            delivery_probability=float(P[i]),
        )
        for i, c in enumerate(scenario.chain_choice)
    ]
