"""Workload generation: VNF catalogs, chains, requests and traces.

* :mod:`repro.workload.catalog` — 30+ commonly deployed VNFs in the nine
  categories of the Li & Chen survey the paper cites (Section V-A.1).
* :mod:`repro.workload.generator` — seeded random generation of VNF
  sets, service chains (<= 6 VNFs) and Poisson requests
  (``lambda`` in 1-100 pps), following the paper's simulation setup.
* :mod:`repro.workload.scenarios` — the per-figure experiment
  configurations of Section V.
* :mod:`repro.workload.traces` — synthetic trace generation standing in
  for the datacenter measurements of Benson et al. (see DESIGN.md's
  substitution table).
* :mod:`repro.workload.stream` — object-free streaming construction of
  :class:`~repro.core.arrays.ScenarioArrays` columns for
  million-request scenarios (see docs/SCALE.md).
"""

from repro.workload.catalog import (
    COMMON_SIX,
    VNF_CATALOG,
    VNFSpec,
    catalog_by_category,
    spec_by_name,
)
from repro.workload.generator import GeneratedWorkload, WorkloadGenerator
from repro.workload.mmpp import MMPP2, poisson_equivalent
from repro.workload.stream import (
    StreamedScenario,
    materialize_requests,
    rescale_to_stability,
    stream_scenario,
)
from repro.workload.traces import (
    empirical_rate_from_trace,
    lognormal_interarrival_trace,
    poisson_arrival_times,
)

__all__ = [
    "VNFSpec",
    "VNF_CATALOG",
    "COMMON_SIX",
    "catalog_by_category",
    "spec_by_name",
    "WorkloadGenerator",
    "GeneratedWorkload",
    "poisson_arrival_times",
    "lognormal_interarrival_trace",
    "empirical_rate_from_trace",
    "MMPP2",
    "poisson_equivalent",
    "StreamedScenario",
    "stream_scenario",
    "materialize_requests",
    "rescale_to_stability",
]
