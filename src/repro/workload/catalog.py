"""Catalog of commonly deployed VNFs.

The paper scales its VNF count from 6 to 30, anchored on six
commonly-deployed functions — NAT, firewall, IDS, load balancer, WAN
optimizer, flow monitor — and cites the Li & Chen survey's nine-category
taxonomy of 30+ VNFs.  This catalog reproduces that population: each
:class:`VNFSpec` carries a *relative* per-instance demand (resource units,
1 unit = 64-byte packets at 10 kpps per the paper's calibration) and a
relative per-instance service rate reflecting how heavyweight the
function's packet processing is (deep inspection slow, stateless
forwarding fast).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.exceptions import ValidationError
from repro.nfv.vnf import VNF, VNFCategory


@dataclass(frozen=True)
class VNFSpec:
    """Static template for one catalog VNF.

    ``base_demand`` is the per-instance resource demand in units;
    ``base_service_rate`` the per-instance packet service rate (pps).
    """

    name: str
    category: VNFCategory
    base_demand: float
    base_service_rate: float

    def instantiate(
        self, num_instances: int = 1, rate_scale: float = 1.0
    ) -> VNF:
        """Build a concrete :class:`VNF` from this template."""
        if rate_scale <= 0.0:
            raise ValidationError(
                f"rate scale must be positive, got {rate_scale!r}"
            )
        return VNF(
            name=self.name,
            demand_per_instance=self.base_demand,
            num_instances=num_instances,
            service_rate=self.base_service_rate * rate_scale,
            category=self.category,
        )


def _spec(
    name: str, category: VNFCategory, demand: float, rate: float
) -> VNFSpec:
    return VNFSpec(
        name=name, category=category, base_demand=demand, base_service_rate=rate
    )


#: The full catalog: 32 VNFs across the nine survey categories.
VNF_CATALOG: Tuple[VNFSpec, ...] = (
    # Security — inspection-heavy, high demand, low rate.
    _spec("firewall", VNFCategory.SECURITY, 20.0, 1200.0),
    _spec("ids", VNFCategory.SECURITY, 45.0, 600.0),
    _spec("ips", VNFCategory.SECURITY, 50.0, 550.0),
    _spec("dpi", VNFCategory.SECURITY, 60.0, 400.0),
    _spec("vpn_gateway", VNFCategory.SECURITY, 35.0, 800.0),
    _spec("anti_ddos", VNFCategory.SECURITY, 40.0, 900.0),
    _spec("web_filter", VNFCategory.SECURITY, 25.0, 1000.0),
    # Gateways / address translation.
    _spec("nat", VNFCategory.GATEWAY, 10.0, 2000.0),
    _spec("ipv6_gateway", VNFCategory.GATEWAY, 15.0, 1800.0),
    _spec("pgw", VNFCategory.GATEWAY, 30.0, 1000.0),
    _spec("sgw", VNFCategory.GATEWAY, 28.0, 1100.0),
    _spec("bras", VNFCategory.GATEWAY, 32.0, 950.0),
    # Load balancing.
    _spec("l4_load_balancer", VNFCategory.LOAD_BALANCING, 12.0, 1900.0),
    _spec("l7_load_balancer", VNFCategory.LOAD_BALANCING, 22.0, 1200.0),
    _spec("global_load_balancer", VNFCategory.LOAD_BALANCING, 18.0, 1400.0),
    # Monitoring — mostly passive, light.
    _spec("flow_monitor", VNFCategory.MONITORING, 8.0, 2500.0),
    _spec("qoe_monitor", VNFCategory.MONITORING, 14.0, 1600.0),
    _spec("traffic_analyzer", VNFCategory.MONITORING, 20.0, 1300.0),
    _spec("netflow_collector", VNFCategory.MONITORING, 10.0, 2200.0),
    # Optimization.
    _spec("wan_optimizer", VNFCategory.OPTIMIZATION, 38.0, 700.0),
    _spec("tcp_optimizer", VNFCategory.OPTIMIZATION, 16.0, 1500.0),
    _spec("video_optimizer", VNFCategory.OPTIMIZATION, 55.0, 450.0),
    _spec("header_compressor", VNFCategory.OPTIMIZATION, 9.0, 2300.0),
    # Caching.
    _spec("web_cache", VNFCategory.CACHING, 26.0, 1100.0),
    _spec("cdn_cache", VNFCategory.CACHING, 30.0, 1000.0),
    _spec("dns_cache", VNFCategory.CACHING, 6.0, 3000.0),
    # Addressing / naming.
    _spec("dhcp_server", VNFCategory.ADDRESSING, 5.0, 3200.0),
    _spec("dns_server", VNFCategory.ADDRESSING, 7.0, 2800.0),
    _spec("arp_proxy", VNFCategory.ADDRESSING, 4.0, 3500.0),
    # Signaling.
    _spec("sip_proxy", VNFCategory.SIGNALING, 12.0, 1700.0),
    _spec("ims_cscf", VNFCategory.SIGNALING, 24.0, 1050.0),
    # Other.
    _spec("transcoder", VNFCategory.OTHER, 65.0, 350.0),
)

#: The paper's six anchor VNFs ("at least six commonly-deployed VNFs").
COMMON_SIX: Tuple[str, ...] = (
    "nat",
    "firewall",
    "ids",
    "l4_load_balancer",
    "wan_optimizer",
    "flow_monitor",
)

_BY_NAME: Dict[str, VNFSpec] = {spec.name: spec for spec in VNF_CATALOG}


def spec_by_name(name: str) -> VNFSpec:
    """Look up a catalog spec by VNF name."""
    try:
        return _BY_NAME[name]
    except KeyError:
        raise ValidationError(f"unknown catalog VNF {name!r}") from None


def catalog_by_category(category: VNFCategory) -> List[VNFSpec]:
    """All catalog specs of one category."""
    return [spec for spec in VNF_CATALOG if spec.category == category]
