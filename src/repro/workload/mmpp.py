"""Markov-modulated Poisson process (MMPP) traces — burstiness substrate.

Datacenter traffic is bursty: flows arrive in on/off phases rather than
at a constant Poisson rate.  The two-state MMPP is the standard minimal
burstiness model — a hidden Markov chain switches between a *high* and a
*low* rate, and arrivals are Poisson at the current state's rate.  Used
by the stress tests probing how far the open-Jackson analytics (which
assume plain Poisson input) degrade under burstiness.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.exceptions import ValidationError
from repro.seeding import resolve_rng


@dataclass(frozen=True)
class MMPP2:
    """A two-state Markov-modulated Poisson process.

    Parameters
    ----------
    rate_high, rate_low:
        Poisson arrival rates in the two states (packets/s); high >= low.
    switch_to_low, switch_to_high:
        Exponential transition rates out of the high / low state (1/s).
    """

    rate_high: float
    rate_low: float
    switch_to_low: float
    switch_to_high: float

    def __post_init__(self) -> None:
        if self.rate_low < 0.0 or self.rate_high <= 0.0:
            raise ValidationError(
                "MMPP rates must satisfy rate_high > 0 and rate_low >= 0"
            )
        if self.rate_high < self.rate_low:
            raise ValidationError("rate_high must be >= rate_low")
        if self.switch_to_low <= 0.0 or self.switch_to_high <= 0.0:
            raise ValidationError("switch rates must be positive")

    @property
    def stationary_high_fraction(self) -> float:
        """Long-run fraction of time spent in the high state."""
        return self.switch_to_high / (self.switch_to_high + self.switch_to_low)

    @property
    def mean_rate(self) -> float:
        """Long-run average arrival rate."""
        p_high = self.stationary_high_fraction
        return p_high * self.rate_high + (1.0 - p_high) * self.rate_low

    def burstiness_index(self) -> float:
        """Ratio of peak to mean rate — 1.0 for a plain Poisson process."""
        return self.rate_high / self.mean_rate

    def sample_arrival_times(
        self,
        horizon: float,
        rng: Optional[np.random.Generator] = None,
    ) -> np.ndarray:
        """Arrival timestamps on ``[0, horizon)``.

        Simulated by thinning within state sojourns: in each state,
        exponential inter-arrivals at the state's rate until the next
        state switch.
        """
        if horizon <= 0.0:
            raise ValidationError(f"horizon must be positive, got {horizon!r}")
        rng = resolve_rng(rng)
        times = []
        t = 0.0
        # Start from the stationary distribution.
        high = bool(rng.uniform() < self.stationary_high_fraction)
        while t < horizon:
            rate = self.rate_high if high else self.rate_low
            switch_rate = self.switch_to_low if high else self.switch_to_high
            sojourn = float(rng.exponential(1.0 / switch_rate))
            state_end = min(t + sojourn, horizon)
            if rate > 0.0:
                clock = t
                while True:
                    clock += float(rng.exponential(1.0 / rate))
                    if clock >= state_end:
                        break
                    times.append(clock)
            t = state_end
            high = not high
        return np.array(times)


def poisson_equivalent(mmpp: MMPP2) -> float:
    """The plain-Poisson rate with the same long-run mean (for baselines)."""
    return mmpp.mean_rate
