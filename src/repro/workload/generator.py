"""Seeded random workload generation following the paper's setup.

Section V-A calibration reproduced here:

* VNF count 6-30, anchored on the six common functions; counts above the
  catalog size wrap around as replicas (a replica is "a new VNF").
* Each request traverses a chain of at most 6 VNFs.
* Requests 30-1000, external Poisson rates ``lambda`` in 1-100 pps.
* Delivery probability ``P`` in 0.98-1.0.
* Node capacities 1-5000 units.
* Instance counts ``M_f`` 1-25, bounded by the number of requests using
  the VNF (Eq. 3) when requests are generated afterwards.

Everything is driven by an explicit ``numpy.random.Generator`` so every
experiment is reproducible from its seed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple


from repro.exceptions import ConfigurationError
from repro.nfv.chain import MAX_CHAIN_LENGTH, ServiceChain
from repro.nfv.request import Request
from repro.nfv.vnf import VNF
from repro.seeding import RngLike, resolve_rng
from repro.workload.catalog import COMMON_SIX, VNF_CATALOG, spec_by_name


@dataclass
class GeneratedWorkload:
    """A complete problem instance produced by :class:`WorkloadGenerator`."""

    vnfs: List[VNF]
    chains: List[ServiceChain]
    requests: List[Request]
    capacities: Dict[str, float]

    @property
    def total_demand(self) -> float:
        """Aggregate placement demand ``sum_f M_f D_f``."""
        return sum(f.total_demand for f in self.vnfs)

    @property
    def total_capacity(self) -> float:
        """Aggregate node capacity ``sum_v A_v``."""
        return sum(self.capacities.values())


class WorkloadGenerator:
    """Random problem-instance generator with the paper's parameter ranges.

    Parameters
    ----------
    rng:
        Seeded generator; ``None`` uses the documented default seed
        (``repro.seeding.DEFAULT_SEED``), never OS entropy.
    """

    def __init__(self, rng: Optional[RngLike] = None) -> None:
        self._rng = resolve_rng(rng)

    # ------------------------------------------------------------------
    # VNFs
    # ------------------------------------------------------------------
    def vnfs(
        self,
        count: int,
        instance_range: Tuple[int, int] = (1, 25),
        include_common_six: bool = True,
    ) -> List[VNF]:
        """Sample ``count`` VNFs from the catalog.

        The paper's six anchor VNFs come first (when requested and they
        fit); further picks are drawn without replacement from the rest
        of the catalog, wrapping into replicas past the catalog size.
        """
        if count < 1:
            raise ConfigurationError(f"VNF count must be >= 1, got {count!r}")
        lo, hi = instance_range
        if not 1 <= lo <= hi:
            raise ConfigurationError(
                f"instance range must satisfy 1 <= lo <= hi, got {instance_range!r}"
            )
        names: List[str] = []
        if include_common_six:
            names.extend(COMMON_SIX[: min(count, len(COMMON_SIX))])
        pool = [s.name for s in VNF_CATALOG if s.name not in names]
        while len(names) < count:
            need = count - len(names)
            if pool:
                take = min(need, len(pool))
                picks = self._rng.choice(len(pool), size=take, replace=False)
                for i in sorted(int(p) for p in picks):
                    names.append(pool[i])
                pool = [n for n in pool if n not in names]
            else:
                # Catalog exhausted: wrap around as replicas.
                base = names[len(names) % len(VNF_CATALOG)].split("#")[0]
                replica_index = sum(
                    1 for n in names if n.split("#")[0] == base
                )
                names.append(f"{base}#{replica_index}")
        result = []
        for name in names:
            base = name.split("#")[0]
            spec = spec_by_name(base)
            m = int(self._rng.integers(lo, hi + 1))
            vnf = spec.instantiate(num_instances=m)
            if name != base:
                vnf = VNF(
                    name=name,
                    demand_per_instance=vnf.demand_per_instance,
                    num_instances=vnf.num_instances,
                    service_rate=vnf.service_rate,
                    category=vnf.category,
                )
            result.append(vnf)
        return result

    # ------------------------------------------------------------------
    # Chains
    # ------------------------------------------------------------------
    def chains(
        self,
        vnfs: Sequence[VNF],
        count: int,
        max_length: int = MAX_CHAIN_LENGTH,
    ) -> List[ServiceChain]:
        """Sample ``count`` service chains over the given VNFs.

        Each chain draws a uniform length in ``[1, min(max_length, |F|)]``
        and a uniformly random VNF subset in random order, never
        revisiting a VNF (the ``U_r^f`` indicator is binary).
        """
        if count < 1:
            raise ConfigurationError(f"chain count must be >= 1, got {count!r}")
        if not vnfs:
            raise ConfigurationError("cannot build chains over zero VNFs")
        limit = min(max_length, len(vnfs))
        names = [f.name for f in vnfs]
        out = []
        for _ in range(count):
            length = int(self._rng.integers(1, limit + 1))
            picks = self._rng.choice(len(names), size=length, replace=False)
            out.append(ServiceChain([names[int(i)] for i in picks]))
        return out

    # ------------------------------------------------------------------
    # Requests
    # ------------------------------------------------------------------
    def requests(
        self,
        chains: Sequence[ServiceChain],
        count: int,
        rate_range: Tuple[float, float] = (1.0, 100.0),
        delivery_probability: float = 1.0,
        prefix: str = "r",
    ) -> List[Request]:
        """Sample ``count`` requests over the given chains.

        Each request picks a uniformly random chain and a uniform
        external rate in ``rate_range`` (the paper's 1-100 pps).
        """
        if count < 1:
            raise ConfigurationError(f"request count must be >= 1, got {count!r}")
        if not chains:
            raise ConfigurationError("cannot build requests over zero chains")
        lo, hi = rate_range
        if not 0.0 < lo <= hi:
            raise ConfigurationError(
                f"rate range must satisfy 0 < lo <= hi, got {rate_range!r}"
            )
        out = []
        for i in range(count):
            chain = chains[int(self._rng.integers(0, len(chains)))]
            rate = float(self._rng.uniform(lo, hi))
            out.append(
                Request(
                    request_id=f"{prefix}{i}",
                    chain=chain,
                    arrival_rate=rate,
                    delivery_probability=delivery_probability,
                )
            )
        return out

    # ------------------------------------------------------------------
    # Node capacities
    # ------------------------------------------------------------------
    def capacities(
        self,
        num_nodes: int,
        capacity_range: Tuple[float, float] = (1.0, 5000.0),
        prefix: str = "node",
    ) -> Dict[str, float]:
        """Sample heterogeneous node capacities (the paper's 1-5000 units)."""
        if num_nodes < 1:
            raise ConfigurationError(f"node count must be >= 1, got {num_nodes!r}")
        lo, hi = capacity_range
        if not 0.0 < lo <= hi:
            raise ConfigurationError(
                f"capacity range must satisfy 0 < lo <= hi, got {capacity_range!r}"
            )
        return {
            f"{prefix}{i}": float(self._rng.uniform(lo, hi))
            for i in range(num_nodes)
        }

    def capacities_fitting(
        self,
        num_nodes: int,
        vnfs: Sequence[VNF],
        headroom: float = 1.3,
        spread: float = 0.5,
        prefix: str = "node",
    ) -> Dict[str, float]:
        """Capacities sized so the VNF set *just* fits (tight instances).

        Total capacity is ``headroom`` times total demand, split across
        ``num_nodes`` nodes with multiplicative jitter ``1 +/- spread``;
        every node is also guaranteed to fit the largest single VNF so the
        instance is feasible by construction.

        These tight instances are where the paper's utilization gaps show:
        with vast headroom every algorithm looks good.
        """
        if num_nodes < 1:
            raise ConfigurationError(f"node count must be >= 1, got {num_nodes!r}")
        if headroom < 1.0:
            raise ConfigurationError(
                f"headroom must be >= 1, got {headroom!r}"
            )
        if not 0.0 <= spread < 1.0:
            raise ConfigurationError(f"spread must be in [0, 1), got {spread!r}")
        total_demand = sum(f.total_demand for f in vnfs)
        biggest = max(f.total_demand for f in vnfs)
        base = headroom * total_demand / num_nodes
        raw = [
            base * (1.0 + float(self._rng.uniform(-spread, spread)))
            for _ in range(num_nodes)
        ]
        # Rescale so the jitter never erodes the headroom guarantee, then
        # clamp each node to fit the largest single VNF (clamping only
        # grows the total, so feasibility is preserved by construction).
        scale = headroom * total_demand / sum(raw)
        return {
            f"{prefix}{i}": max(raw[i] * scale, biggest * 1.05)
            for i in range(num_nodes)
        }

    # ------------------------------------------------------------------
    # Whole instances
    # ------------------------------------------------------------------
    def workload(
        self,
        num_vnfs: int,
        num_nodes: int,
        num_requests: int,
        num_chains: Optional[int] = None,
        instance_range: Tuple[int, int] = (1, 25),
        rate_range: Tuple[float, float] = (1.0, 100.0),
        delivery_probability: float = 1.0,
        tight_capacities: bool = True,
        capacity_headroom: float = 1.3,
    ) -> GeneratedWorkload:
        """Generate a complete problem instance.

        ``num_chains`` defaults to about one chain per three VNFs (at
        least one).  ``tight_capacities`` sizes nodes to the demand (see
        :meth:`capacities_fitting`); otherwise capacities are uniform in
        the paper's 1-5000 range (instances may then be infeasible —
        callers doing feasibility studies want exactly that).
        """
        vnfs = self.vnfs(num_vnfs, instance_range=instance_range)
        if num_chains is None:
            num_chains = max(1, num_vnfs // 3)
        chains = self.chains(vnfs, num_chains)
        requests = self.requests(
            chains,
            num_requests,
            rate_range=rate_range,
            delivery_probability=delivery_probability,
        )
        if tight_capacities:
            caps = self.capacities_fitting(
                num_nodes, vnfs, headroom=capacity_headroom
            )
        else:
            caps = self.capacities(num_nodes)
        return GeneratedWorkload(
            vnfs=vnfs, chains=chains, requests=requests, capacities=caps
        )
