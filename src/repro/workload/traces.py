"""Synthetic trace generation (substituting the paper's measured traces).

The paper drives its simulations with flow inter-arrival distributions
measured in real datacenters (Benson et al.).  Those traces are not
public at packet granularity; per DESIGN.md's substitution table we
generate the closest synthetic equivalents:

* :func:`poisson_arrival_times` — the Poisson streams the paper's model
  *assumes* (the open-Jackson prerequisite).
* :func:`lognormal_interarrival_trace` — heavier-tailed inter-arrivals
  with a matched mean rate, for stress-testing the Poisson assumption in
  the simulator-vs-analytics ablation.
* :func:`empirical_rate_from_trace` — rate estimation from a trace, the
  bridge back into the analytic model.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.exceptions import ValidationError
from repro.seeding import resolve_rng


def poisson_arrival_times(
    rate: float,
    horizon: float,
    rng: Optional[np.random.Generator] = None,
) -> np.ndarray:
    """Arrival timestamps of a Poisson process on ``[0, horizon)``.

    Parameters
    ----------
    rate:
        Mean arrivals per second, > 0.
    horizon:
        Observation window length in seconds, > 0.
    rng:
        Seeded generator for reproducibility.
    """
    if rate <= 0.0:
        raise ValidationError(f"rate must be positive, got {rate!r}")
    if horizon <= 0.0:
        raise ValidationError(f"horizon must be positive, got {horizon!r}")
    rng = resolve_rng(rng)
    # Draw in blocks until the horizon is passed; exponential gaps.
    times = []
    t = 0.0
    block = max(16, int(rate * horizon * 1.2))
    while True:
        gaps = rng.exponential(1.0 / rate, size=block)
        for gap in gaps:
            t += gap
            if t >= horizon:
                return np.array(times)
            times.append(t)


def lognormal_interarrival_trace(
    mean_rate: float,
    horizon: float,
    sigma: float = 1.0,
    rng: Optional[np.random.Generator] = None,
) -> np.ndarray:
    """Arrival timestamps with log-normal inter-arrivals.

    Datacenter flow inter-arrivals are heavier-tailed than exponential;
    a log-normal with matched mean is the standard synthetic stand-in.
    The log-normal parameters are chosen so the mean inter-arrival time
    is ``1 / mean_rate``: ``mu = -ln(rate) - sigma^2 / 2``.
    """
    if mean_rate <= 0.0:
        raise ValidationError(f"mean rate must be positive, got {mean_rate!r}")
    if horizon <= 0.0:
        raise ValidationError(f"horizon must be positive, got {horizon!r}")
    if sigma <= 0.0:
        raise ValidationError(f"sigma must be positive, got {sigma!r}")
    rng = resolve_rng(rng)
    mu = -np.log(mean_rate) - sigma * sigma / 2.0
    times = []
    t = 0.0
    block = max(16, int(mean_rate * horizon * 1.2))
    while True:
        gaps = rng.lognormal(mean=mu, sigma=sigma, size=block)
        for gap in gaps:
            t += gap
            if t >= horizon:
                return np.array(times)
            times.append(t)


def empirical_rate_from_trace(arrival_times: np.ndarray) -> float:
    """Estimate the mean arrival rate of a timestamp trace.

    ``(n - 1) / (t_last - t_first)`` — the maximum-likelihood rate for a
    Poisson process observed between its first and last arrivals.
    """
    times = np.asarray(arrival_times, dtype=float)
    if times.size < 2:
        raise ValidationError(
            f"need >= 2 arrivals to estimate a rate, got {times.size}"
        )
    span = float(times[-1] - times[0])
    if span <= 0.0:
        raise ValidationError("arrival times must be strictly increasing")
    return (times.size - 1) / span
