"""Per-figure experiment scenarios (Section V of the paper).

Two scenario families cover all twelve figures:

* :class:`PlacementScenario` — Figs. 5-10: place ``num_vnfs`` VNFs on
  ``num_nodes`` heterogeneous nodes; requests size the instance counts.
* :class:`SchedulingScenario` — Figs. 11-16: schedule ``num_requests``
  requests onto the ``num_instances`` instances of one VNF, with the
  service rate scaled to the offered load ("we scale mu_f with the
  number of requests to eliminate its dominant influence") at a target
  utilization ``rho_target``.

Each scenario is deterministic given ``(seed, repetition)``, so
Monte-Carlo averages are reproducible run to run.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from repro.exceptions import ConfigurationError
from repro.nfv.chain import ServiceChain
from repro.nfv.request import Request
from repro.nfv.vnf import VNF, VNFCategory
from repro.placement.base import PlacementProblem
from repro.scheduling.base import SchedulingProblem
from repro.workload.generator import WorkloadGenerator


def _rng_for(seed: int, repetition: int) -> np.random.Generator:
    """A generator deterministic in (seed, repetition)."""
    return np.random.default_rng(np.random.SeedSequence([seed, repetition]))


@dataclass(frozen=True)
class PlacementScenario:
    """A Figs. 5-10 style placement configuration.

    Parameters
    ----------
    num_vnfs, num_nodes, num_requests:
        The paper's sweep axes.  Requests influence placement through the
        instance counts ``M_f`` (more requests -> more instances, Eq. 3);
        since VNF demands are re-scaled to ``demand_fraction`` the request
        count leaves the packing tightness unchanged — exactly why the
        paper's Fig. 5 utilizations stay flat as requests scale 30-1000.
    demand_fraction:
        Total VNF demand as a fraction of total node capacity.  0.55
        leaves enough slack that every algorithm (including worst-fit
        style NAH) completes, while keeping the packing hard enough that
        the quality gaps show.
    capacity_range:
        Heterogeneous node capacities (the paper's units scale to 5000).
    seed:
        Base seed; combine with a repetition index via :meth:`build`.
    """

    num_vnfs: int = 15
    num_nodes: int = 10
    num_requests: int = 100
    demand_fraction: float = 0.55
    capacity_range: Tuple[float, float] = (500.0, 5000.0)
    instance_range: Tuple[int, int] = (1, 25)
    seed: int = 20170605

    def build(self, repetition: int = 0) -> PlacementProblem:
        """Materialize one problem instance for a repetition index."""
        rng = _rng_for(self.seed, repetition)
        gen = WorkloadGenerator(rng)
        # Instance counts grow with request pressure: M_f ~ requests per
        # VNF, clamped to the paper's 1-25 range (Eq. 3 upper bound).
        per_vnf = max(1, self.num_requests // max(1, self.num_vnfs))
        lo = max(self.instance_range[0], min(per_vnf, self.instance_range[1]) // 2 + 1)
        hi = max(lo, min(self.instance_range[1], per_vnf))
        vnfs = gen.vnfs(self.num_vnfs, instance_range=(lo, hi))
        chains = gen.chains(vnfs, max(1, self.num_vnfs // 3))
        caps = gen.capacities(self.num_nodes, capacity_range=self.capacity_range)

        # Re-scale demands so total demand hits the target fraction of
        # total capacity, then clamp any single VNF that would not fit in
        # the largest node (feasibility by construction).
        total_cap = sum(caps.values())
        max_cap = max(caps.values())
        current = sum(f.total_demand for f in vnfs)
        scale = (self.demand_fraction * total_cap) / current
        scaled = []
        for f in vnfs:
            demand = f.demand_per_instance * scale
            if demand * f.num_instances > 0.85 * max_cap:
                demand = 0.85 * max_cap / f.num_instances
            scaled.append(
                VNF(
                    name=f.name,
                    demand_per_instance=demand,
                    num_instances=f.num_instances,
                    service_rate=f.service_rate,
                    category=f.category,
                )
            )
        return PlacementProblem(vnfs=scaled, capacities=caps, chains=chains)


@dataclass(frozen=True)
class SchedulingScenario:
    """A Figs. 11-16 style per-VNF scheduling configuration.

    Parameters
    ----------
    num_requests:
        ``n = |R_f|`` (the paper sweeps 15-250).
    num_instances:
        ``m = M_f`` (the paper sweeps 2-10, fixing 5 for Figs. 11-12).
    delivery_probability:
        ``P`` — 1.00, 0.98 (latency figures), 0.997/0.984 (rejection).
    rho:
        Raw-load utilization the service rate is scaled to:
        ``mu = sum(lambda_raw) / (m * rho)`` — the paper's "we scale
        mu_f with the number of requests" rule.  The *effective* mean
        utilization is ``rho / P``: retransmissions eat headroom, so a
        lower ``P`` raises latency (Figs. 11 vs 12) and, as ``rho / P``
        approaches 1, triggers admission-control rejections
        (Figs. 15-16: rho=0.975 with P=0.997/0.984).
    rate_range:
        External request rates (the paper's 1-100 pps).
    seed:
        Base seed; combine with a repetition index via :meth:`build`.
    """

    num_requests: int = 50
    num_instances: int = 5
    delivery_probability: float = 1.0
    rho: float = 0.8
    rate_range: Tuple[float, float] = (1.0, 100.0)
    #: When set, a fixed absolute service rate overriding the rho
    #: scaling.  The rejection experiments (Figs. 15-16) fix mu so the
    #: offered load *grows toward capacity* as requests increase — that
    #: shrinking headroom is what makes the CGA rejection rate rise.
    service_rate: Optional[float] = None
    seed: int = 20170605

    def __post_init__(self) -> None:
        if self.num_requests < self.num_instances:
            raise ConfigurationError(
                f"need at least as many requests ({self.num_requests}) as "
                f"instances ({self.num_instances}) — Eq. (3)"
            )
        if self.rho <= 0.0:
            raise ConfigurationError(
                f"rho must be positive, got {self.rho!r}"
            )

    def build(self, repetition: int = 0) -> SchedulingProblem:
        """Materialize one scheduling problem for a repetition index."""
        rng = _rng_for(self.seed, repetition)
        lo, hi = self.rate_range
        rates = rng.uniform(lo, hi, size=self.num_requests)
        chain = ServiceChain(["vnf_under_test"])
        requests = [
            Request(
                request_id=f"r{i}",
                chain=chain,
                arrival_rate=float(rates[i]),
                delivery_probability=self.delivery_probability,
            )
            for i in range(self.num_requests)
        ]
        # mu scales with the offered raw load; retransmission overhead
        # (the 1/P factor on effective rates) then competes with balance
        # quality for the remaining headroom.  A fixed service_rate
        # overrides the scaling for the saturation experiments.
        if self.service_rate is not None:
            mu = self.service_rate
        else:
            total_raw = float(sum(rates))
            mu = total_raw / (self.num_instances * self.rho)
        vnf = VNF(
            name="vnf_under_test",
            demand_per_instance=1.0,
            num_instances=self.num_instances,
            service_rate=mu,
            category=VNFCategory.OTHER,
        )
        return SchedulingProblem(vnf=vnf, requests=requests)


def monte_carlo_problems(
    scenario, repetitions: int
) -> List:
    """Materialize ``repetitions`` independent instances of a scenario."""
    if repetitions < 1:
        raise ConfigurationError(
            f"repetitions must be >= 1, got {repetitions!r}"
        )
    return [scenario.build(rep) for rep in range(repetitions)]
