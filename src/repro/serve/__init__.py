"""Online serving layer over the incremental deployment engine.

The batch optimizer answers "given these requests, where do chains go";
a running NFV control plane instead sees a *stream* of request
arrivals and departures.  This package is that missing operational
shell (ROADMAP item on turning the two-phase optimizer into a
long-running service):

* :mod:`repro.serve.events` — Poisson arrival / exponential-holding
  churn event streams (seeded, reproducible).
* :mod:`repro.serve.service` — :class:`ServingLayer`, which drives a
  :class:`~repro.core.incremental.DeploymentEngine` through an event
  stream: per-arrival warm-start admission (capacity + bandwidth
  gates), departure retraction, periodic re-optimization, and a
  :class:`ServeReport` of latencies, migrations and rejections.

See ``docs/SERVING.md`` for the engine/serving contract and the
registered ``churn`` experiment for the measured comparison against
per-arrival full re-solves.
"""

from repro.serve.events import ChurnEvent, poisson_churn
from repro.serve.service import ServeReport, ServingLayer

__all__ = [
    "ChurnEvent",
    "poisson_churn",
    "ServingLayer",
    "ServeReport",
]
