"""Churn event streams — seeded arrival/departure processes.

The serving layer consumes a time-ordered sequence of
:class:`ChurnEvent`; :func:`poisson_churn` generates the standard
telco-trace abstraction — Poisson request arrivals with exponentially
distributed holding times — over a fixed set of service chains, fully
determined by the given RNG (same seed, same stream).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.exceptions import ValidationError
from repro.nfv.chain import ServiceChain
from repro.nfv.request import Request
from repro.seeding import RngLike, resolve_rng

__all__ = ["ChurnEvent", "poisson_churn"]


@dataclass(frozen=True)
class ChurnEvent:
    """One arrival or departure in simulated time."""

    #: Simulated timestamp (seconds).
    time: float
    #: ``"arrival"`` or ``"departure"``.
    kind: str
    #: The request the event concerns.
    request_id: str
    #: The full request object (arrivals only; ``None`` on departures).
    request: Optional[Request] = None


def poisson_churn(
    chains: Sequence[ServiceChain],
    *,
    duration: float,
    arrival_rate: float,
    mean_holding: float,
    rng: Optional[RngLike] = None,
    rate_range: Tuple[float, float] = (1.0, 100.0),
    delivery_probability: float = 1.0,
    prefix: str = "churn",
) -> List[ChurnEvent]:
    """Generate a time-sorted churn trace over ``duration`` seconds.

    Arrivals form a Poisson process of intensity ``arrival_rate`` (per
    second); each arriving request picks a uniform random chain from
    ``chains``, a uniform traffic rate from ``rate_range``, and holds
    for an Exp(``1 / mean_holding``) lifetime.  Departures beyond
    ``duration`` are dropped — those requests simply remain active at
    the end of the trace.  The expected steady-state active population
    is ``arrival_rate * mean_holding`` (Little's law), which is how
    callers size scenarios.

    Events are sorted by time with a stable key, arrivals before the
    coincident departure of the same instant (ties are measure-zero
    but the order must still be deterministic).
    """
    if duration <= 0.0:
        raise ValidationError(f"duration must be > 0, got {duration!r}")
    if arrival_rate <= 0.0 or mean_holding <= 0.0:
        raise ValidationError(
            "arrival_rate and mean_holding must be > 0, got "
            f"{arrival_rate!r} / {mean_holding!r}"
        )
    if not chains:
        raise ValidationError("poisson_churn needs at least one chain")
    generator = resolve_rng(rng)

    # Draw everything in fixed order so the trace is a pure function of
    # the RNG stream: inter-arrival gaps first, then per-request fields.
    expected = max(1, int(np.ceil(arrival_rate * duration)))
    gaps: List[float] = []
    t = 0.0
    while True:
        # Geometric over-draw: batches until the horizon is covered.
        batch = generator.exponential(1.0 / arrival_rate, size=expected)
        for gap in batch:
            t += float(gap)
            if t >= duration:
                break
            gaps.append(float(gap))
        if t >= duration:
            break
    n = len(gaps)
    arrival_times = np.cumsum(np.asarray(gaps)) if n else np.zeros(0)
    chain_picks = generator.integers(0, len(chains), size=n)
    low, high = rate_range
    rates = generator.uniform(low, high, size=n)
    holds = generator.exponential(mean_holding, size=n)

    events: List[ChurnEvent] = []
    for i in range(n):
        rid = f"{prefix}-{i:06d}"
        request = Request(
            request_id=rid,
            chain=chains[int(chain_picks[i])],
            arrival_rate=float(rates[i]),
            delivery_probability=delivery_probability,
        )
        at = float(arrival_times[i])
        events.append(
            ChurnEvent(time=at, kind="arrival", request_id=rid, request=request)
        )
        leave = at + float(holds[i])
        if leave < duration:
            events.append(
                ChurnEvent(time=leave, kind="departure", request_id=rid)
            )
    # Stable sort: time, then arrivals (0) before departures (1).
    events.sort(key=lambda e: (e.time, 0 if e.kind == "arrival" else 1))
    return events
