"""The serving loop: an engine driven by a churn event stream.

:class:`ServingLayer` is the operational shell around
:class:`~repro.core.incremental.DeploymentEngine`: it replays
arrival/departure events in time order, admits each arrival with the
engine's warm-start kernels (measuring the wall-clock re-embedding
latency), retracts departures, and optionally re-optimizes every
``rebalance_every`` admitted arrivals — the admit-online /
rebalance-periodically policy of the single-VNF
:class:`~repro.core.online.OnlineScheduler`, generalized to whole
chains with capacity and bandwidth admission control.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Iterable, List, Set

from repro.core.incremental import DeploymentEngine
from repro.exceptions import ValidationError
from repro.serve.events import ChurnEvent

__all__ = ["ServeReport", "ServingLayer"]


@dataclass
class ServeReport:
    """Aggregated outcome of one event-stream replay."""

    arrivals: int = 0
    admitted: int = 0
    rejected_capacity: int = 0
    rejected_bandwidth: int = 0
    departures: int = 0
    rebalances: int = 0
    #: Placement moves + schedule migrations over all rebalances.
    migrations: int = 0
    #: Wall-clock seconds per admit decision (admitted or rejected).
    admit_latencies: List[float] = field(default_factory=list)
    #: Wall-clock seconds per rebalance.
    rebalance_latencies: List[float] = field(default_factory=list)
    #: Requests still active after the last event.
    final_active: int = 0

    @property
    def rejected(self) -> int:
        return self.rejected_capacity + self.rejected_bandwidth

    @property
    def rejection_rate(self) -> float:
        """Rejected arrivals / all arrivals (0 when there were none)."""
        return self.rejected / self.arrivals if self.arrivals else 0.0

    @property
    def mean_admit_latency(self) -> float:
        """Mean wall-clock seconds per admit decision."""
        if not self.admit_latencies:
            return 0.0
        return sum(self.admit_latencies) / len(self.admit_latencies)

    @property
    def max_admit_latency(self) -> float:
        return max(self.admit_latencies) if self.admit_latencies else 0.0

    @property
    def mean_rebalance_latency(self) -> float:
        if not self.rebalance_latencies:
            return 0.0
        return sum(self.rebalance_latencies) / len(self.rebalance_latencies)


class ServingLayer:
    """Drive a :class:`DeploymentEngine` through churn events.

    Parameters
    ----------
    engine:
        The deployment engine (its admission policy — utilization
        target, bandwidth gate — is configured there).
    rebalance_every:
        Full re-optimization every this many *admitted* arrivals;
        ``0`` disables periodic rebalancing (pure warm-start serving).
    """

    def __init__(
        self, engine: DeploymentEngine, rebalance_every: int = 0
    ) -> None:
        if rebalance_every < 0:
            raise ValidationError(
                f"rebalance_every must be >= 0, got {rebalance_every!r}"
            )
        self._engine = engine
        self._rebalance_every = rebalance_every
        self._admits_since_rebalance = 0
        #: Arrivals the engine turned away — their later departure
        #: events must be skipped, not retracted.
        self._rejected_ids: Set[str] = set()

    @property
    def engine(self) -> DeploymentEngine:
        return self._engine

    def process(self, events: Iterable[ChurnEvent]) -> ServeReport:
        """Replay ``events`` (already time-ordered) through the engine."""
        report = ServeReport()
        for event in events:
            if event.kind == "arrival":
                if event.request is None:
                    raise ValidationError(
                        f"arrival {event.request_id!r} carries no request"
                    )
                report.arrivals += 1
                start = time.perf_counter()
                outcome = self._engine.admit(event.request)
                report.admit_latencies.append(time.perf_counter() - start)
                if outcome.admitted:
                    report.admitted += 1
                    self._admits_since_rebalance += 1
                    if (
                        self._rebalance_every
                        and self._admits_since_rebalance
                        >= self._rebalance_every
                    ):
                        start = time.perf_counter()
                        rb = self._engine.rebalance()
                        report.rebalance_latencies.append(
                            time.perf_counter() - start
                        )
                        report.rebalances += 1
                        report.migrations += rb.total_migrations
                        self._admits_since_rebalance = 0
                elif outcome.reason == "bandwidth":
                    report.rejected_bandwidth += 1
                    self._rejected_ids.add(event.request_id)
                else:
                    report.rejected_capacity += 1
                    self._rejected_ids.add(event.request_id)
            elif event.kind == "departure":
                if event.request_id in self._rejected_ids:
                    self._rejected_ids.discard(event.request_id)
                    continue
                self._engine.depart(event.request_id)
                report.departures += 1
            else:
                raise ValidationError(
                    f"unknown churn event kind {event.kind!r}"
                )
        report.final_active = self._engine.num_active
        return report
