"""The serving loop: an engine driven by a churn event stream.

:class:`ServingLayer` is the operational shell around
:class:`~repro.core.incremental.DeploymentEngine`: it replays
arrival/departure events in time order, admits each arrival with the
engine's warm-start kernels (measuring the wall-clock re-embedding
latency), retracts departures, and optionally re-optimizes every
``rebalance_every`` admitted arrivals — the admit-online /
rebalance-periodically policy of the single-VNF
:class:`~repro.core.online.OnlineScheduler`, generalized to whole
chains with capacity and bandwidth admission control.

Faults (PR 9): a ``faults=`` stream of
:class:`~repro.faults.events.FaultEvent` is merged into the timeline —
crashes mass-evict through the engine, a pluggable
:class:`~repro.faults.recovery.RecoveryPolicy` repairs the embedding
within an optional :class:`~repro.faults.recovery.MigrationBudget`,
and an ``sla=`` :class:`~repro.faults.sla.SLASpec` integrates
availability and violation-minutes into a
:class:`~repro.faults.sla.ResilienceReport`.  With ``faults=None`` and
``sla=None`` (the defaults) every code path, count and latency list is
byte-identical to the pre-fault serving layer.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Set

from repro.core.incremental import DeploymentEngine
from repro.exceptions import ValidationError
from repro.nfv.request import Request
from repro.serve.events import ChurnEvent

__all__ = ["ServeReport", "ServingLayer"]

_FAULT_KINDS = ("node_down", "node_up", "instance_down", "instance_up")


@dataclass
class ServeReport:
    """Aggregated outcome of one event-stream replay."""

    arrivals: int = 0
    admitted: int = 0
    rejected_capacity: int = 0
    rejected_bandwidth: int = 0
    departures: int = 0
    rebalances: int = 0
    #: Placement moves + schedule migrations over all rebalances, plus
    #: recovery-time VNF relocations.
    migrations: int = 0
    #: Wall-clock seconds per admit decision (admitted or rejected).
    admit_latencies: List[float] = field(default_factory=list)
    #: Wall-clock seconds per rebalance.
    rebalance_latencies: List[float] = field(default_factory=list)
    #: Requests still active after the last event.
    final_active: int = 0
    #: Arrivals rejected because a chain VNF was unavailable (failed
    #: node / all instances down).  Zero without fault injection.
    rejected_unavailable: int = 0
    #: Crash events processed (node + instance).
    crashes: int = 0
    #: Chains evicted by crashes.
    evictions: int = 0
    #: Evicted chains brought back into service (by a recovery policy
    #: or a post-rebalance retry).
    readmissions: int = 0
    #: Evicted chains that departed while still pending.
    lost: int = 0
    #: Rebalances skipped — over the migration budget or infeasible.
    rebalances_skipped: int = 0
    #: Wall-clock seconds per recovery-policy invocation.
    recovery_latencies: List[float] = field(default_factory=list)
    #: Integrated SLA metrics (only with an ``sla=`` spec).
    resilience: Optional[object] = None

    @property
    def rejected(self) -> int:
        return (
            self.rejected_capacity
            + self.rejected_bandwidth
            + self.rejected_unavailable
        )

    @property
    def rejection_rate(self) -> float:
        """Rejected arrivals / all arrivals (0 when there were none)."""
        return self.rejected / self.arrivals if self.arrivals else 0.0

    @property
    def mean_admit_latency(self) -> float:
        """Mean wall-clock seconds per admit decision."""
        if not self.admit_latencies:
            return 0.0
        return sum(self.admit_latencies) / len(self.admit_latencies)

    @property
    def max_admit_latency(self) -> float:
        return max(self.admit_latencies) if self.admit_latencies else 0.0

    @property
    def mean_rebalance_latency(self) -> float:
        if not self.rebalance_latencies:
            return 0.0
        return sum(self.rebalance_latencies) / len(self.rebalance_latencies)


class ServingLayer:
    """Drive a :class:`DeploymentEngine` through churn events.

    Parameters
    ----------
    engine:
        The deployment engine (its admission policy — utilization
        target, bandwidth gate — is configured there).
    rebalance_every:
        Full re-optimization every this many *admitted* arrivals;
        ``0`` disables periodic rebalancing (pure warm-start serving).
    faults:
        Optional :class:`~repro.faults.events.FaultEvent` stream,
        merged with the churn trace under
        :func:`~repro.faults.events.merge_timeline`'s total order.
        ``None`` keeps the fault-free path byte-identical.
    recovery:
        Crash-recovery policy re-admitting evicted chains
        (:mod:`repro.faults.recovery`); defaults to
        ``LeastLoadedReadmit()`` when ``faults`` is given.
    budget:
        Optional :class:`~repro.faults.recovery.MigrationBudget`.  It
        is reset at the start of every recovery invocation and every
        periodic rebalance, so the caps bound each episode's moves; an
        over-budget rebalance is skipped entirely
        (``rebalances_skipped``).
    sla:
        Optional :class:`~repro.faults.sla.SLASpec`; when given, the
        report's ``resilience`` field carries the integrated
        :class:`~repro.faults.sla.ResilienceReport`.
    """

    def __init__(
        self,
        engine: DeploymentEngine,
        rebalance_every: int = 0,
        *,
        faults: Optional[Iterable] = None,
        recovery=None,
        budget=None,
        sla=None,
    ) -> None:
        if rebalance_every < 0:
            raise ValidationError(
                f"rebalance_every must be >= 0, got {rebalance_every!r}"
            )
        self._engine = engine
        self._rebalance_every = rebalance_every
        self._admits_since_rebalance = 0
        #: Arrivals the engine turned away — their later departure
        #: events must be skipped, not retracted.
        self._rejected_ids: Set[str] = set()
        self._faults = None if faults is None else list(faults)
        if recovery is None and self._faults is not None:
            from repro.faults.recovery import LeastLoadedReadmit

            recovery = LeastLoadedReadmit()
        self._recovery = recovery
        self._budget = budget
        self._sla = sla
        #: Evicted-but-not-yet-readmitted requests, in eviction order.
        self._pending: Dict[str, Request] = {}

    @property
    def engine(self) -> DeploymentEngine:
        return self._engine

    @property
    def pending(self) -> tuple:
        """Ids of evicted chains awaiting re-admission."""
        return tuple(self._pending)

    def process(self, events: Iterable[ChurnEvent]) -> ServeReport:
        """Replay ``events`` (already time-ordered) through the engine."""
        report = ServeReport()
        tracker = None
        if self._sla is not None:
            from repro.faults.sla import SLATracker

            tracker = SLATracker(self._sla)
        if self._faults is not None:
            from repro.faults.events import merge_timeline

            events = merge_timeline(events, self._faults)
        last_time = 0.0
        for event in events:
            if event.time > last_time:
                last_time = event.time
            if event.kind == "arrival":
                if event.request is None:
                    raise ValidationError(
                        f"arrival {event.request_id!r} carries no request"
                    )
                report.arrivals += 1
                if tracker is not None:
                    tracker.on_arrival(event.request_id, event.time)
                start = time.perf_counter()
                outcome = self._engine.admit(event.request)
                report.admit_latencies.append(time.perf_counter() - start)
                if outcome.admitted:
                    report.admitted += 1
                    self._admits_since_rebalance += 1
                    if (
                        self._rebalance_every
                        and self._admits_since_rebalance
                        >= self._rebalance_every
                    ):
                        self._run_rebalance(event.time, report, tracker)
                        self._admits_since_rebalance = 0
                elif outcome.reason == "bandwidth":
                    report.rejected_bandwidth += 1
                    self._rejected_ids.add(event.request_id)
                    if tracker is not None:
                        tracker.on_reject(event.request_id, event.time)
                elif outcome.reason == "unavailable":
                    report.rejected_unavailable += 1
                    self._rejected_ids.add(event.request_id)
                    if tracker is not None:
                        tracker.on_reject(event.request_id, event.time)
                else:
                    report.rejected_capacity += 1
                    self._rejected_ids.add(event.request_id)
                    if tracker is not None:
                        tracker.on_reject(event.request_id, event.time)
            elif event.kind == "departure":
                if tracker is not None:
                    tracker.on_departure(event.request_id, event.time)
                if event.request_id in self._pending:
                    del self._pending[event.request_id]
                    report.lost += 1
                    continue
                if event.request_id in self._rejected_ids:
                    self._rejected_ids.discard(event.request_id)
                    continue
                self._engine.depart(event.request_id)
                report.departures += 1
            elif event.kind in _FAULT_KINDS:
                self._on_fault(event, report, tracker)
            else:
                raise ValidationError(
                    f"unknown churn event kind {event.kind!r}"
                )
            if tracker is not None:
                tracker.sample_latency(
                    event.time,
                    self._engine,
                    force=event.kind in _FAULT_KINDS,
                )
        report.final_active = self._engine.num_active
        if tracker is not None:
            report.resilience = tracker.finish(last_time, self._engine)
        return report

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _run_rebalance(self, now: float, report, tracker) -> None:
        """One periodic rebalance, budget-gated, plus pending retries."""
        if self._budget is not None:
            self._budget.reset()
        start = time.perf_counter()
        rb = self._engine.rebalance(budget=self._budget)
        report.rebalance_latencies.append(time.perf_counter() - start)
        if not rb.committed:
            report.rebalances_skipped += 1
            return
        report.rebalances += 1
        report.migrations += rb.total_migrations
        # A committed re-solve is the deferred recovery opportunity:
        # retry every pending chain through the fresh embedding.
        for rid, request in list(self._pending.items()):
            if self._engine.admit(request).admitted:
                del self._pending[rid]
                report.readmissions += 1
                if tracker is not None:
                    tracker.on_readmit(rid, now)

    def _on_fault(self, event, report, tracker) -> None:
        """Apply one fault event and run the recovery policy."""
        engine = self._engine
        evicted: List[Request] = []
        if event.kind == "node_down":
            evicted = engine.fail_node(event.node)
        elif event.kind == "node_up":
            engine.recover_node(event.node)
        elif event.kind == "instance_down":
            evicted = engine.fail_instance(event.vnf, event.instance)
        else:
            engine.recover_instance(event.vnf, event.instance)
        if event.kind.endswith("_down"):
            report.crashes += 1
            if tracker is not None:
                tracker.on_crash(event.time)
            report.evictions += len(evicted)
            for request in evicted:
                self._pending[request.request_id] = request
                if tracker is not None:
                    tracker.on_evict(request.request_id, event.time)
        if self._pending and self._recovery is not None:
            self._try_recover(event.time, report, tracker)

    def _try_recover(self, now: float, report, tracker) -> None:
        """One recovery-policy episode over everything pending."""
        if self._budget is not None:
            self._budget.reset()
        start = time.perf_counter()
        outcome = self._recovery.recover(
            self._engine, list(self._pending.values()), budget=self._budget
        )
        report.recovery_latencies.append(time.perf_counter() - start)
        report.migrations += outcome.vnf_moves
        for rid in outcome.readmitted:
            self._pending.pop(rid, None)
            report.readmissions += 1
            if tracker is not None:
                tracker.on_readmit(rid, now)
