"""repro — Joint Optimization of VNF Chain Placement and Request Scheduling.

A production-quality reproduction of the ICDCS 2017 paper "Joint
Optimization of Chain Placement and Request Scheduling for Network
Function Virtualization" (Zhang et al.): the BFDSU placement algorithm,
the RCKK request scheduler, the open-Jackson-network analytic model they
optimize, the baselines they are compared against (FFD, NAH, CGA), a
packet-level discrete-event simulator that validates the analytics, and
the full experiment harness regenerating every figure of the paper's
evaluation.

Quickstart
----------
>>> import numpy as np
>>> from repro import JointOptimizer, WorkloadGenerator
>>> gen = WorkloadGenerator(np.random.default_rng(7))
>>> w = gen.workload(num_vnfs=8, num_nodes=6, num_requests=40)
>>> solution = JointOptimizer().optimize(w.vnfs, w.requests, w.capacities)
>>> report = solution.evaluate()
>>> 0.0 < report.average_node_utilization <= 1.0
True
"""

from repro.core.joint import JointOptimizer, JointSolution
from repro.core.admission import apply_admission_control
from repro.core.evaluation import EvaluationReport, evaluate_deployment
from repro.exceptions import (
    ConfigurationError,
    InfeasiblePlacementError,
    MaxRestartsExceededError,
    ReproError,
    SchedulingError,
    SimulationError,
    UnstableQueueError,
    ValidationError,
)
from repro.nfv.chain import ServiceChain
from repro.nfv.request import Request
from repro.nfv.state import DeploymentState
from repro.nfv.vnf import VNF, VNFCategory
from repro.placement.base import PlacementProblem, PlacementResult
from repro.placement.bfdsu import BFDSUPlacement
from repro.placement.ffd import FFDPlacement
from repro.placement.nah import NAHPlacement
from repro.queueing.jackson import ChainFeedbackModel, OpenJacksonNetwork
from repro.queueing.mm1 import MM1Queue
from repro.scheduling.base import SchedulingProblem, ScheduleResult
from repro.scheduling.cga import CGAScheduler
from repro.scheduling.rckk import RCKKScheduler
from repro.sim.simulator import ChainSimulator, SimulationConfig
from repro.workload.generator import GeneratedWorkload, WorkloadGenerator

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # Core
    "JointOptimizer",
    "JointSolution",
    "evaluate_deployment",
    "EvaluationReport",
    "apply_admission_control",
    # Domain model
    "VNF",
    "VNFCategory",
    "ServiceChain",
    "Request",
    "DeploymentState",
    # Placement
    "PlacementProblem",
    "PlacementResult",
    "BFDSUPlacement",
    "FFDPlacement",
    "NAHPlacement",
    # Scheduling
    "SchedulingProblem",
    "ScheduleResult",
    "RCKKScheduler",
    "CGAScheduler",
    # Queueing
    "MM1Queue",
    "OpenJacksonNetwork",
    "ChainFeedbackModel",
    # Simulation
    "ChainSimulator",
    "SimulationConfig",
    # Workload
    "WorkloadGenerator",
    "GeneratedWorkload",
    # Errors
    "ReproError",
    "ValidationError",
    "InfeasiblePlacementError",
    "MaxRestartsExceededError",
    "UnstableQueueError",
    "SchedulingError",
    "SimulationError",
    "ConfigurationError",
]
