"""Online request scheduling with periodic RCKK rebalancing.

The paper schedules a known request set offline.  In operation,
requests arrive and depart over time; the natural deployment is:

* **admit online** — each arriving request joins the least-loaded
  instance of every VNF on its chain (the O(log m) online policy), and
* **rebalance periodically** — every ``rebalance_every`` arrivals, re-run
  RCKK over the currently active requests, migrating assignments toward
  the balanced partition.

:class:`OnlineScheduler` implements this loop for one VNF and tracks
the imbalance trajectory, so the value of periodic rebalancing (and its
migration cost) can be quantified against pure-online and pure-offline
extremes — the dynamics the paper defers to future SDN-coordinated work.

Since the incremental-serving refactor this class is a thin single-VNF
facade over :class:`~repro.core.incremental.DeploymentEngine` — one
online code path.  The standalone per-VNF rebalance loop it used to
carry is gone (deprecated); ``rebalance()`` now delegates to the
engine's full re-solve, configured with an id-sorted RCKK pass so the
legacy trajectory semantics are preserved exactly: least-loaded joins
with first-index tie-break, RCKK over the active ids in sorted order,
migration counts per changed assignment.  New code that needs churn
over whole chains (or capacity/bandwidth admission) should use the
engine directly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.exceptions import SchedulingError, ValidationError
from repro.nfv.chain import ServiceChain
from repro.nfv.request import Request
from repro.nfv.vnf import VNF
from repro.scheduling.base import (
    SchedulingAlgorithm,
    SchedulingProblem,
    ScheduleResult,
)
from repro.scheduling.rckk import RCKKScheduler


@dataclass
class OnlineSnapshot:
    """State of the online system after one event."""

    event_index: int
    active_requests: int
    instance_rates: Tuple[float, ...]
    migrations: int

    @property
    def spread(self) -> float:
        """Max-min instance rate at this point."""
        return max(self.instance_rates) - min(self.instance_rates)


class _IdSortedScheduler(SchedulingAlgorithm):
    """Delegate that feeds the base scheduler id-sorted requests.

    The legacy ``OnlineScheduler.rebalance`` partitioned the active
    rates in sorted-request-id order; the engine schedules in arrival
    order.  Sorting the per-VNF problem first reproduces the legacy
    partitions (hence trajectories) exactly.
    """

    def __init__(self, base: SchedulingAlgorithm) -> None:
        self._base = base
        self.name = f"IdSorted({base.name})"

    def schedule(self, problem: SchedulingProblem) -> ScheduleResult:
        ordered = SchedulingProblem(
            vnf=problem.vnf,
            requests=sorted(problem.requests, key=lambda r: r.request_id),
        )
        result = self._base.schedule(ordered)
        return ScheduleResult(
            assignment=result.assignment,
            problem=problem,
            iterations=result.iterations,
            algorithm=self.name,
        )


class OnlineScheduler:
    """Arrival/departure-driven scheduling for one VNF's instances.

    Parameters
    ----------
    vnf:
        The VNF (supplies ``M_f`` and ``mu_f``).
    rebalance_every:
        Re-run RCKK after this many arrivals; ``0`` disables
        rebalancing (pure online least-loaded).
    """

    def __init__(self, vnf: VNF, rebalance_every: int = 0) -> None:
        if rebalance_every < 0:
            raise ValidationError(
                f"rebalance_every must be >= 0, got {rebalance_every!r}"
            )
        # Local import: repro.core.incremental imports the placement /
        # scheduling layers, which the package __init__ loads after
        # this module.
        from repro.core.incremental import DeploymentEngine

        self._vnf = vnf
        self._rebalance_every = rebalance_every
        # Single-VNF engine on one virtual node: joins are unconditional
        # (no utilization cap), exactly like the legacy least-loaded
        # loop, and "placement" is trivially pinned.
        self._engine = DeploymentEngine(
            vnfs=[vnf],
            node_capacities={"node0": vnf.total_demand},
            scheduler=_IdSortedScheduler(RCKKScheduler()),
            target_utilization=None,
        )
        self._arrivals_since_rebalance = 0
        self.total_migrations = 0
        self.history: List[OnlineSnapshot] = []
        self._events = 0

    # ------------------------------------------------------------------
    # Events
    # ------------------------------------------------------------------
    def arrive(self, request: Request) -> int:
        """Admit an arriving request; returns its instance index."""
        if not request.uses(self._vnf.name):
            raise SchedulingError(
                f"request {request.request_id!r} does not use VNF "
                f"{self._vnf.name!r}"
            )
        # Only this VNF's hop matters here; re-wrap multi-VNF chains so
        # the engine need not know the rest of the chain.  Duplicate
        # ids raise SchedulingError inside admit, before any change.
        self._engine.admit(
            Request(
                request_id=request.request_id,
                chain=ServiceChain([self._vnf.name]),
                arrival_rate=request.arrival_rate,
                delivery_probability=request.delivery_probability,
            )
        )
        self._arrivals_since_rebalance += 1
        if (
            self._rebalance_every
            and self._arrivals_since_rebalance >= self._rebalance_every
        ):
            self.rebalance()
            self._arrivals_since_rebalance = 0
        self._snapshot()
        return self.assignment_of(request.request_id)

    def depart(self, request_id: str) -> None:
        """Remove a finished request."""
        try:
            self._engine.depart(request_id)
        except SchedulingError:
            raise SchedulingError(
                f"request {request_id!r} is not active"
            ) from None
        self._snapshot()

    def rebalance(self) -> int:
        """Re-run RCKK over the active set; returns migrations performed.

        Delegates to :meth:`DeploymentEngine.rebalance` (the legacy
        standalone rebalance loop is deprecated and gone).
        """
        if not self._engine.num_active:
            return 0
        report = self._engine.rebalance()
        migrations = report.schedule_migrations
        self.total_migrations += migrations
        self._snapshot()
        return migrations

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def active_requests(self) -> int:
        """Currently admitted requests."""
        return self._engine.num_active

    def instance_rates(self) -> List[float]:
        """Current per-instance aggregate effective rates."""
        return [float(x) for x in self._engine.instance_loads()]

    def spread(self) -> float:
        """Current max-min instance rate."""
        rates = self.instance_rates()
        return max(rates) - min(rates)

    def assignment_of(self, request_id: str) -> int:
        """Current instance of an active request."""
        try:
            return self._engine.assignment_of(request_id)[self._vnf.name]
        except SchedulingError:
            raise SchedulingError(
                f"request {request_id!r} is not active"
            ) from None

    def _snapshot(self) -> None:
        self._events += 1
        self.history.append(
            OnlineSnapshot(
                event_index=self._events,
                active_requests=self._engine.num_active,
                instance_rates=tuple(self.instance_rates()),
                migrations=self.total_migrations,
            )
        )
