"""Online request scheduling with periodic RCKK rebalancing.

The paper schedules a known request set offline.  In operation,
requests arrive and depart over time; the natural deployment is:

* **admit online** — each arriving request joins the least-loaded
  instance of every VNF on its chain (the O(log m) online policy), and
* **rebalance periodically** — every ``rebalance_every`` arrivals, re-run
  RCKK over the currently active requests, migrating assignments toward
  the balanced partition.

:class:`OnlineScheduler` implements this loop for one VNF and tracks
the imbalance trajectory, so the value of periodic rebalancing (and its
migration cost) can be quantified against pure-online and pure-offline
extremes — the dynamics the paper defers to future SDN-coordinated work.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.exceptions import SchedulingError, ValidationError
from repro.nfv.request import Request
from repro.nfv.vnf import VNF
from repro.partition.rckk import rckk_partition


@dataclass
class OnlineSnapshot:
    """State of the online system after one event."""

    event_index: int
    active_requests: int
    instance_rates: Tuple[float, ...]
    migrations: int

    @property
    def spread(self) -> float:
        """Max-min instance rate at this point."""
        return max(self.instance_rates) - min(self.instance_rates)


class OnlineScheduler:
    """Arrival/departure-driven scheduling for one VNF's instances.

    Parameters
    ----------
    vnf:
        The VNF (supplies ``M_f`` and ``mu_f``).
    rebalance_every:
        Re-run RCKK after this many arrivals; ``0`` disables
        rebalancing (pure online least-loaded).
    """

    def __init__(self, vnf: VNF, rebalance_every: int = 0) -> None:
        if rebalance_every < 0:
            raise ValidationError(
                f"rebalance_every must be >= 0, got {rebalance_every!r}"
            )
        self._vnf = vnf
        self._rebalance_every = rebalance_every
        self._assignment: Dict[str, int] = {}
        self._requests: Dict[str, Request] = {}
        self._loads = [0.0] * vnf.num_instances
        self._arrivals_since_rebalance = 0
        self.total_migrations = 0
        self.history: List[OnlineSnapshot] = []
        self._events = 0

    # ------------------------------------------------------------------
    # Events
    # ------------------------------------------------------------------
    def arrive(self, request: Request) -> int:
        """Admit an arriving request; returns its instance index."""
        if not request.uses(self._vnf.name):
            raise SchedulingError(
                f"request {request.request_id!r} does not use VNF "
                f"{self._vnf.name!r}"
            )
        if request.request_id in self._requests:
            raise SchedulingError(
                f"request {request.request_id!r} already active"
            )
        # Join the least-loaded instance.
        k = min(range(len(self._loads)), key=lambda i: (self._loads[i], i))
        self._assignment[request.request_id] = k
        self._requests[request.request_id] = request
        self._loads[k] += request.effective_rate
        self._arrivals_since_rebalance += 1
        if (
            self._rebalance_every
            and self._arrivals_since_rebalance >= self._rebalance_every
        ):
            self.rebalance()
            self._arrivals_since_rebalance = 0
        self._snapshot()
        return self._assignment[request.request_id]

    def depart(self, request_id: str) -> None:
        """Remove a finished request."""
        request = self._requests.pop(request_id, None)
        if request is None:
            raise SchedulingError(f"request {request_id!r} is not active")
        k = self._assignment.pop(request_id)
        self._loads[k] -= request.effective_rate
        self._snapshot()

    def rebalance(self) -> int:
        """Re-run RCKK over the active set; returns migrations performed."""
        if not self._requests:
            return 0
        ids = sorted(self._requests)
        rates = [self._requests[rid].effective_rate for rid in ids]
        partition = rckk_partition(rates, self._vnf.num_instances)
        # Map partition ways onto existing instances to minimize
        # migrations: greedy match by overlap of current members.
        new_assignment: Dict[str, int] = {}
        for way, subset in enumerate(partition.subsets):
            for idx in subset:
                new_assignment[ids[idx]] = way
        migrations = sum(
            1
            for rid in ids
            if new_assignment[rid] != self._assignment[rid]
        )
        self._assignment = new_assignment
        self._loads = [0.0] * self._vnf.num_instances
        for rid, k in self._assignment.items():
            self._loads[k] += self._requests[rid].effective_rate
        self.total_migrations += migrations
        self._snapshot()
        return migrations

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def active_requests(self) -> int:
        """Currently admitted requests."""
        return len(self._requests)

    def instance_rates(self) -> List[float]:
        """Current per-instance aggregate effective rates."""
        return list(self._loads)

    def spread(self) -> float:
        """Current max-min instance rate."""
        return max(self._loads) - min(self._loads)

    def assignment_of(self, request_id: str) -> int:
        """Current instance of an active request."""
        try:
            return self._assignment[request_id]
        except KeyError:
            raise SchedulingError(
                f"request {request_id!r} is not active"
            ) from None

    def _snapshot(self) -> None:
        self._events += 1
        self.history.append(
            OnlineSnapshot(
                event_index=self._events,
                active_requests=len(self._requests),
                instance_rates=tuple(self._loads),
                migrations=self.total_migrations,
            )
        )
