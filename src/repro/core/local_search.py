"""Local-search refinement of the coordinated objective (Eq. 16).

The two-phase pipeline optimizes its phases separately; the paper's
"coordination" insight (Section III-C) is that the *total* latency —
instance response times plus ``L`` per inter-node chain hop — is what
operators actually pay.  This module post-optimizes a joint solution
with hill climbing over **relocate** moves:

    move one VNF (all its instances, per Eq. 2) to another node with
    room, keeping the schedule fixed, if that strictly lowers the
    Eq. (16) total.

Relocation changes only the communication term (response times depend
on the schedule, not the placement), so move evaluation is O(requests
touching the VNF) and the search converges quickly.  This realizes the
paper's Fig. 1 motivation — converting inter-server chains into
intra-server chains — as an explicit optimization step.

Incremental delta evaluation
----------------------------
The hill-climbing kernel never recounts hops globally.  Moving VNF
``f`` from node ``s`` to node ``t`` changes only the chain transitions
adjacent to ``f``'s entries, so with ``nbr`` = the chain-neighbor
multiset of ``f`` (``ScenarioArrays.vnf_chain_neighbors``), the total
hop delta is::

    hops(t) - hops(s) = count(placement[nbr] == s) - count(placement[nbr] == t)

One ``np.bincount`` over ``placement[nbr]`` therefore scores *every*
candidate target at once, and a per-node load vector (recomputed from
the placement after each applied move, in VNF order, so its float
accumulation matches the legacy per-candidate sum bit for bit) makes
the Eq. (6) fit check O(1) per candidate.  The move sequence and final
report are identical to the full-recount hill climb, which is preserved
as ``reference_refine_placement`` in ``benchmarks/_reference_impl.py``
and pinned by ``tests/core/test_solver_kernel_parity.py``.

The primitives themselves — the relocate score kernel, the
bandwidth-feasible target scan, the trial-commit swap — live in
:mod:`repro.core.deltas`, shared with the incremental
:class:`~repro.core.incremental.DeploymentEngine`; this module wires
them into the batch hill climbs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable, List, Optional, Tuple

import numpy as np

from repro.core.arrays import ScenarioArrays
from repro.core.deltas import (
    FIT_EPS,
    best_bandwidth_feasible,
    relocate_scores,
    try_swap_bandwidth,
)
from repro.core.dtypes import ensure_index_capacity
from repro.exceptions import ValidationError
from repro.nfv.state import DeploymentState


@dataclass(frozen=True)
class RefinementReport:
    """Outcome of a local-search refinement run."""

    moves_applied: int
    initial_hops: int
    final_hops: int
    #: Link-latency savings per request set traversal, in units of L.
    hops_saved: int

    @property
    def improved(self) -> bool:
        """Whether any strictly improving move was found."""
        return self.moves_applied > 0


def total_inter_node_hops(state: DeploymentState) -> int:
    """Sum of Eq. (16)'s hop counts over all requests.

    The count is one vectorized pass over the chain CSR (this is the
    inner loop of every relocate-move evaluation); degenerate states —
    an unplaced chain VNF, a node missing from the capacity map — fall
    back to the per-request walk for its exact legacy errors.
    """
    arrays = state.arrays()
    if not arrays.chain_has_unknown:
        try:
            placement_vec = arrays.placement_vector(state.placement)
        except KeyError:
            placement_vec = None
        if placement_vec is not None and not bool(
            (placement_vec[arrays.chain_vnf] < 0).any()
        ):
            return int(arrays.hops_per_request(placement_vec).sum())
    return sum(
        state.inter_node_hops(r.request_id) for r in state.requests
    )


def refine_placement(
    state: DeploymentState,
    max_rounds: int = 10,
    trace: Optional[List[Tuple[str, Hashable, Hashable]]] = None,
    network=None,
) -> RefinementReport:
    """Hill-climb relocate moves reducing total inter-node hops.

    The state's ``placement`` is modified in place; the schedule is
    untouched (so per-instance response times are invariant and the
    Eq. (16) delta is exactly ``hops_delta * L < 0``).

    Parameters
    ----------
    state:
        A validated joint deployment.
    max_rounds:
        Full passes over the VNF list; the search also stops at the
        first pass with no improving move.
    trace:
        Optional list receiving one ``(vnf_name, source, target)`` tuple
        per applied move, in order — the hook the kernel-parity tests
        use to pin the move sequence.
    network:
        Optional :class:`~repro.topology.network.NetworkModel`.  When
        given, every candidate target must additionally keep all routed
        link loads within bandwidth (:meth:`NetworkModel.fits
        <repro.topology.network.NetworkModel.fits>`): the climb scans
        targets in score order and takes the best bandwidth-feasible
        one.  ``None`` (the default) leaves the search byte-identical to
        the unconstrained kernel.

    Returns
    -------
    RefinementReport
        Move and hop accounting.
    """
    if max_rounds < 1:
        raise ValidationError(f"max_rounds must be >= 1, got {max_rounds!r}")
    state.validate()

    # validate() guarantees every VNF is placed on a known node and
    # every chain entry names a known VNF, so the delta kernel applies;
    # the scalar hill climb stays as a defensive fallback for exotic
    # states constructed around validation.
    arrays = state.arrays()
    if not arrays.chain_has_unknown:
        try:
            placement_vec = arrays.placement_vector(state.placement)
        except KeyError:
            placement_vec = None
        if placement_vec is not None and not bool((placement_vec < 0).any()):
            return _refine_delta(
                state, placement_vec, max_rounds, trace, network
            )
    if network is not None:
        raise ValidationError(
            "bandwidth-aware refinement requires a fully placed state "
            "with known chain VNFs"
        )
    return _refine_scalar(state, max_rounds, trace)


def refine_placement_columns(
    arrays: ScenarioArrays,
    placement_vec: np.ndarray,
    max_rounds: int = 10,
    trace: Optional[List[Tuple[int, int, int]]] = None,
    network=None,
) -> RefinementReport:
    """The incremental kernel on bare columns: no state object needed.

    ``placement_vec`` (node index per VNF, mutated in place) is refined
    with the same neighbor-count deltas and O(1) fit checks as
    :func:`refine_placement`; ``trace`` receives ``(vnf_index,
    source_node_index, target_node_index)`` tuples.  This is the entry
    point the million-request pipeline calls directly on streamed
    scenarios — including :data:`~repro.core.dtypes.LEAN_POLICY`
    columns, where the capacity and demand operands are widened to
    float64 before the ``FIT_EPS`` slack is applied (adding ``1e-9`` to
    a float32 capacity would round it away entirely), so the move
    sequence is byte-identical to the default policy whenever the lean
    columns hold the same values.
    """
    if max_rounds < 1:
        raise ValidationError(f"max_rounds must be >= 1, got {max_rounds!r}")
    if arrays.chain_has_unknown:
        raise ValidationError(
            "refine_placement_columns requires chains over known VNFs"
        )
    if bool((placement_vec < 0).any()):
        raise ValidationError(
            "refine_placement_columns requires a full placement"
        )
    num_nodes = len(arrays.node_keys)
    # Relocation targets are written back into placement_vec; a dtype
    # too narrow for the node axis would wrap them silently.
    ensure_index_capacity(
        num_nodes, placement_vec.dtype, "relocate target nodes"
    )
    nbr_ptr, nbr = arrays.vnf_chain_neighbors()
    # Legacy fit check: load(target) + D_f^sum <= A_v + FIT_EPS, with
    # float64 accumulators (node_loads is float64 by construction; the
    # capacity column is widened before the slack is added).
    capacity_slack = arrays.A_v.astype(np.float64, copy=False) + FIT_EPS

    initial_hops = int(arrays.hops_per_request(placement_vec).sum())
    current_hops = initial_hops
    moves = 0
    loads = arrays.node_loads(placement_vec)
    link_loads = (
        network.link_loads(placement_vec) if network is not None else None
    )

    for _ in range(max_rounds):
        improved_this_round = False
        for fi in range(len(arrays.vnf_names)):
            lo, hi = int(nbr_ptr[fi]), int(nbr_ptr[fi + 1])
            if lo == hi:
                # No chain transition touches this VNF: every relocate
                # is hop-neutral, and the climb accepts only strict
                # improvements.
                continue
            source = int(placement_vec[fi])
            neighbor_counts, scores = relocate_scores(
                placement_vec,
                nbr[lo:hi],
                float(arrays.total_demand_f[fi]),
                loads,
                capacity_slack,
                num_nodes,
                source,
            )
            if network is None:
                # First-best target in node order == the legacy scan
                # that kept the first strict improvement over the
                # running best.
                target = int(np.argmax(scores))
                if scores[target] <= neighbor_counts[source]:
                    continue
            else:
                target = best_bandwidth_feasible(
                    network,
                    fi,
                    source,
                    placement_vec,
                    link_loads,
                    scores,
                    int(neighbor_counts[source]),
                )
                if target is None:
                    continue
            placement_vec[fi] = target
            current_hops += int(neighbor_counts[source]) - int(scores[target])
            loads = arrays.node_loads(placement_vec)
            moves += 1
            improved_this_round = True
            if trace is not None:
                trace.append((fi, source, int(target)))
        if not improved_this_round:
            break

    return RefinementReport(
        moves_applied=moves,
        initial_hops=initial_hops,
        final_hops=current_hops,
        hops_saved=initial_hops - current_hops,
    )


def _refine_delta(
    state: DeploymentState,
    placement_vec: np.ndarray,
    max_rounds: int,
    trace: Optional[List[Tuple[str, Hashable, Hashable]]],
    network=None,
) -> RefinementReport:
    """Object-state wrapper around :func:`refine_placement_columns`."""
    arrays = state.arrays()
    idx_trace: List[Tuple[int, int, int]] = []
    report = refine_placement_columns(
        arrays, placement_vec, max_rounds, idx_trace, network
    )
    for fi, source, target in idx_trace:
        state.placement[arrays.vnf_names[fi]] = arrays.node_keys[target]
        if trace is not None:
            trace.append(
                (
                    arrays.vnf_names[fi],
                    arrays.node_keys[source],
                    arrays.node_keys[target],
                )
            )
    state.validate()
    return report


def _refine_scalar(
    state: DeploymentState,
    max_rounds: int,
    trace: Optional[List[Tuple[str, Hashable, Hashable]]],
) -> RefinementReport:
    """Full-recount hill climb (fallback for degenerate states)."""
    initial_hops = total_inter_node_hops(state)
    current_hops = initial_hops
    moves = 0

    nodes = list(state.node_capacities.keys())
    for _ in range(max_rounds):
        improved_this_round = False
        for vnf in state.vnfs:
            source = state.placement[vnf.name]
            best_target: Optional[Hashable] = None
            best_hops = current_hops
            for target in nodes:
                if target == source:
                    continue
                if not _fits_after_move(state, vnf.name, target):
                    continue
                state.placement[vnf.name] = target
                hops = total_inter_node_hops(state)
                if hops < best_hops:
                    best_hops = hops
                    best_target = target
                state.placement[vnf.name] = source
            if best_target is not None:
                state.placement[vnf.name] = best_target
                current_hops = best_hops
                moves += 1
                improved_this_round = True
                if trace is not None:
                    trace.append((vnf.name, source, best_target))
        if not improved_this_round:
            break

    state.validate()
    return RefinementReport(
        moves_applied=moves,
        initial_hops=initial_hops,
        final_hops=current_hops,
        hops_saved=initial_hops - current_hops,
    )


@dataclass(frozen=True)
class SwapReport:
    """Outcome of a placement-level swap pass."""

    swaps_applied: int
    #: Eq. (16) communication totals before/after, in seconds.
    initial_latency: float
    final_latency: float
    latency_saved: float

    @property
    def improved(self) -> bool:
        """Whether any strictly improving exchange was found."""
        return self.swaps_applied > 0


def swap_placement(
    state: DeploymentState,
    max_rounds: int = 10,
    topology=None,
    link_latency: float = 1e-4,
    network=None,
    trace: Optional[List[Tuple[str, str, Hashable, Hashable]]] = None,
) -> SwapReport:
    """Best-improvement pairwise **exchange** of VNF placements.

    Relocation (:func:`refine_placement`) needs spare capacity on the
    target node; on tightly packed fabrics no single move fits and the
    climb stalls.  Exchanging the nodes of two VNFs sidesteps that: the
    swap is feasible whenever each node can absorb the *difference* of
    the two demand bundles, and on a real fabric it can trade a pair of
    long cross-fabric adjacencies for short ones.

    The objective is Eq. (16)'s communication term — flat ``L`` per
    inter-node transition when ``topology`` is ``None``, the fabric's
    measured shortest-path latencies otherwise.  Swapping ``f`` (node
    ``s``) with ``g`` (node ``t``) changes it by::

        delta = A_f(t) + A_g(s) - A_f(s) - A_g(t) + 2 m_fg lat[s, t]

    where ``A_f(x)`` sums ``lat[x, placement[n]]`` over ``f``'s chain
    neighbors ``n`` and ``m_fg`` is the ``f``-``g`` adjacency
    multiplicity (the correction removes the pair's own double-counted
    terms; their mutual latency is ``lat[t, s] = lat[s, t]`` either
    way).  All ``O(F^2)`` deltas are evaluated as one matrix expression
    per applied swap; the best strictly improving, capacity- and
    bandwidth-feasible exchange is applied until none remains (or
    ``max_rounds * F`` swaps, a safety bound).

    Parameters
    ----------
    state:
        A validated, fully placed joint deployment; mutated in place.
        The schedule is untouched.
    max_rounds:
        Swap budget multiplier (the pass stops at the first iteration
        with no improving feasible exchange).
    topology:
        Optional fabric (``DatacenterTopology`` or its arrays) supplying
        measured latencies.
    link_latency:
        The flat per-hop ``L`` used when ``topology`` is ``None``.
    network:
        Optional :class:`~repro.topology.network.NetworkModel`; when
        given, a swap must also keep every routed link within bandwidth.
    trace:
        Optional list receiving ``(vnf_f, vnf_g, node_s, node_t)`` per
        applied swap.
    """
    if max_rounds < 1:
        raise ValidationError(f"max_rounds must be >= 1, got {max_rounds!r}")
    state.validate()
    arrays = state.arrays()
    if arrays.chain_has_unknown:
        raise ValidationError(
            "swap_placement requires chains over known VNFs"
        )
    placement_vec = arrays.placement_vector(state.placement)
    if bool((placement_vec < 0).any()):
        raise ValidationError("swap_placement requires a full placement")

    num_vnfs = len(arrays.vnf_names)
    num_nodes = len(arrays.node_keys)
    if topology is not None:
        topo, node_compute = arrays.topology_view(topology)
        lat = topo.latency[np.ix_(node_compute, node_compute)]
    else:
        lat = link_latency * (1.0 - np.eye(num_nodes))

    def comm_total(vec: np.ndarray) -> float:
        if topology is not None:
            return float(
                arrays.topology_latency_per_request(vec, topology).sum()
            )
        return float(arrays.hops_per_request(vec).sum()) * link_latency

    nbr_ptr, nbr = arrays.vnf_chain_neighbors()
    owners = np.repeat(
        np.arange(num_vnfs, dtype=np.int64), np.diff(nbr_ptr)
    )
    multiplicity = np.zeros((num_vnfs, num_vnfs), dtype=np.float64)
    if len(owners):
        np.add.at(multiplicity, (owners, nbr), 1.0)
    # Widen lean columns before the slack/difference arithmetic: the
    # fit comparison must see float64 on both sides regardless of the
    # scenario's DtypePolicy (float32 + 1e-9 rounds the slack away).
    demands = arrays.total_demand_f.astype(np.float64, copy=False)
    capacity_slack = arrays.A_v.astype(np.float64, copy=False) + FIT_EPS
    loads = arrays.node_loads(placement_vec)
    link_loads = (
        network.link_loads(placement_vec) if network is not None else None
    )

    initial = comm_total(placement_vec)
    swaps = 0
    budget = max_rounds * max(num_vnfs, 1)
    upper = np.triu_indices(num_vnfs, k=1)

    while swaps < budget:
        pl = placement_vec
        # A[f, x] = sum over f's chain neighbors n of lat[x, pl[n]].
        A = np.zeros((num_vnfs, num_nodes), dtype=np.float64)
        if len(owners):
            np.add.at(A, owners, lat[:, pl[nbr]].T)
        B = A[:, pl]  # B[f, g] = A_f(pl[g])
        diag = np.diagonal(B).copy()
        delta = (
            B
            + B.T
            - diag[:, None]
            - diag[None, :]
            + 2.0 * multiplicity * lat[pl][:, pl]
        )
        # Capacity: node pl[f] must absorb swapping f's bundle for g's.
        fit_f = (
            loads[pl][:, None] - demands[:, None] + demands[None, :]
            <= capacity_slack[pl][:, None]
        )
        feasible = fit_f & fit_f.T & (pl[:, None] != pl[None, :])
        candidate = np.zeros_like(feasible)
        candidate[upper] = feasible[upper] & (delta[upper] < -1e-12)
        if not candidate.any():
            break

        pairs = np.argwhere(candidate)
        applied = False
        for k in np.argsort(delta[candidate], kind="stable"):
            f, g = (int(x) for x in pairs[k])
            s, t = int(pl[f]), int(pl[g])
            if network is not None and not try_swap_bandwidth(
                network, f, g, s, t, pl, link_loads
            ):
                continue
            pl[f], pl[g] = t, s
            state.placement[arrays.vnf_names[f]] = arrays.node_keys[t]
            state.placement[arrays.vnf_names[g]] = arrays.node_keys[s]
            loads = arrays.node_loads(pl)
            swaps += 1
            applied = True
            if trace is not None:
                trace.append(
                    (
                        arrays.vnf_names[f],
                        arrays.vnf_names[g],
                        arrays.node_keys[s],
                        arrays.node_keys[t],
                    )
                )
            break
        if not applied:
            break

    state.validate()
    final = comm_total(placement_vec)
    return SwapReport(
        swaps_applied=swaps,
        initial_latency=initial,
        final_latency=final,
        latency_saved=initial - final,
    )


def _fits_after_move(
    state: DeploymentState, vnf_name: str, target: Hashable
) -> bool:
    """Whether moving ``vnf_name`` to ``target`` respects Eq. (6)."""
    vnf = state._vnf_by_name[vnf_name]
    capacity = state.node_capacities.get(target)
    if capacity is None:
        return False
    load = sum(
        f.total_demand
        for f in state.vnfs
        if f.name != vnf_name and state.placement.get(f.name) == target
    )
    return load + vnf.total_demand <= capacity + 1e-9
