"""Local-search refinement of the coordinated objective (Eq. 16).

The two-phase pipeline optimizes its phases separately; the paper's
"coordination" insight (Section III-C) is that the *total* latency —
instance response times plus ``L`` per inter-node chain hop — is what
operators actually pay.  This module post-optimizes a joint solution
with hill climbing over **relocate** moves:

    move one VNF (all its instances, per Eq. 2) to another node with
    room, keeping the schedule fixed, if that strictly lowers the
    Eq. (16) total.

Relocation changes only the communication term (response times depend
on the schedule, not the placement), so move evaluation is O(requests
touching the VNF) and the search converges quickly.  This realizes the
paper's Fig. 1 motivation — converting inter-server chains into
intra-server chains — as an explicit optimization step.

Incremental delta evaluation
----------------------------
The hill-climbing kernel never recounts hops globally.  Moving VNF
``f`` from node ``s`` to node ``t`` changes only the chain transitions
adjacent to ``f``'s entries, so with ``nbr`` = the chain-neighbor
multiset of ``f`` (``ScenarioArrays.vnf_chain_neighbors``), the total
hop delta is::

    hops(t) - hops(s) = count(placement[nbr] == s) - count(placement[nbr] == t)

One ``np.bincount`` over ``placement[nbr]`` therefore scores *every*
candidate target at once, and a per-node load vector (recomputed from
the placement after each applied move, in VNF order, so its float
accumulation matches the legacy per-candidate sum bit for bit) makes
the Eq. (6) fit check O(1) per candidate.  The move sequence and final
report are identical to the full-recount hill climb, which is preserved
as ``reference_refine_placement`` in ``benchmarks/_reference_impl.py``
and pinned by ``tests/core/test_solver_kernel_parity.py``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable, List, Optional, Tuple

import numpy as np

from repro.exceptions import ValidationError
from repro.nfv.state import DeploymentState


@dataclass(frozen=True)
class RefinementReport:
    """Outcome of a local-search refinement run."""

    moves_applied: int
    initial_hops: int
    final_hops: int
    #: Link-latency savings per request set traversal, in units of L.
    hops_saved: int

    @property
    def improved(self) -> bool:
        """Whether any strictly improving move was found."""
        return self.moves_applied > 0


def total_inter_node_hops(state: DeploymentState) -> int:
    """Sum of Eq. (16)'s hop counts over all requests.

    The count is one vectorized pass over the chain CSR (this is the
    inner loop of every relocate-move evaluation); degenerate states —
    an unplaced chain VNF, a node missing from the capacity map — fall
    back to the per-request walk for its exact legacy errors.
    """
    arrays = state.arrays()
    if not arrays.chain_has_unknown:
        try:
            placement_vec = arrays.placement_vector(state.placement)
        except KeyError:
            placement_vec = None
        if placement_vec is not None and not bool(
            (placement_vec[arrays.chain_vnf] < 0).any()
        ):
            return int(arrays.hops_per_request(placement_vec).sum())
    return sum(
        state.inter_node_hops(r.request_id) for r in state.requests
    )


def refine_placement(
    state: DeploymentState,
    max_rounds: int = 10,
    trace: Optional[List[Tuple[str, Hashable, Hashable]]] = None,
) -> RefinementReport:
    """Hill-climb relocate moves reducing total inter-node hops.

    The state's ``placement`` is modified in place; the schedule is
    untouched (so per-instance response times are invariant and the
    Eq. (16) delta is exactly ``hops_delta * L < 0``).

    Parameters
    ----------
    state:
        A validated joint deployment.
    max_rounds:
        Full passes over the VNF list; the search also stops at the
        first pass with no improving move.
    trace:
        Optional list receiving one ``(vnf_name, source, target)`` tuple
        per applied move, in order — the hook the kernel-parity tests
        use to pin the move sequence.

    Returns
    -------
    RefinementReport
        Move and hop accounting.
    """
    if max_rounds < 1:
        raise ValidationError(f"max_rounds must be >= 1, got {max_rounds!r}")
    state.validate()

    # validate() guarantees every VNF is placed on a known node and
    # every chain entry names a known VNF, so the delta kernel applies;
    # the scalar hill climb stays as a defensive fallback for exotic
    # states constructed around validation.
    arrays = state.arrays()
    if not arrays.chain_has_unknown:
        try:
            placement_vec = arrays.placement_vector(state.placement)
        except KeyError:
            placement_vec = None
        if placement_vec is not None and not bool((placement_vec < 0).any()):
            return _refine_delta(state, placement_vec, max_rounds, trace)
    return _refine_scalar(state, max_rounds, trace)


def _refine_delta(
    state: DeploymentState,
    placement_vec: np.ndarray,
    max_rounds: int,
    trace: Optional[List[Tuple[str, Hashable, Hashable]]],
) -> RefinementReport:
    """The incremental kernel: neighbor-count deltas, O(1) fit checks."""
    arrays = state.arrays()
    num_nodes = len(arrays.node_keys)
    nbr_ptr, nbr = arrays.vnf_chain_neighbors()
    # Legacy fit check: load(target) + D_f^sum <= A_v + 1e-9.
    capacity_slack = arrays.A_v + 1e-9

    initial_hops = total_inter_node_hops(state)
    current_hops = initial_hops
    moves = 0
    loads = arrays.node_loads(placement_vec)

    for _ in range(max_rounds):
        improved_this_round = False
        for fi in range(len(arrays.vnf_names)):
            lo, hi = int(nbr_ptr[fi]), int(nbr_ptr[fi + 1])
            if lo == hi:
                # No chain transition touches this VNF: every relocate
                # is hop-neutral, and the climb accepts only strict
                # improvements.
                continue
            source = int(placement_vec[fi])
            neighbor_counts = np.bincount(
                placement_vec[nbr[lo:hi]], minlength=num_nodes
            )
            fits = loads + arrays.total_demand_f[fi] <= capacity_slack
            scores = np.where(fits, neighbor_counts, -1)
            scores[source] = -1
            # First-best target in node order == the legacy scan that
            # kept the first strict improvement over the running best.
            target = int(np.argmax(scores))
            if scores[target] <= neighbor_counts[source]:
                continue
            placement_vec[fi] = target
            state.placement[arrays.vnf_names[fi]] = arrays.node_keys[target]
            current_hops += int(neighbor_counts[source]) - int(scores[target])
            loads = arrays.node_loads(placement_vec)
            moves += 1
            improved_this_round = True
            if trace is not None:
                trace.append(
                    (
                        arrays.vnf_names[fi],
                        arrays.node_keys[source],
                        arrays.node_keys[target],
                    )
                )
        if not improved_this_round:
            break

    state.validate()
    return RefinementReport(
        moves_applied=moves,
        initial_hops=initial_hops,
        final_hops=current_hops,
        hops_saved=initial_hops - current_hops,
    )


def _refine_scalar(
    state: DeploymentState,
    max_rounds: int,
    trace: Optional[List[Tuple[str, Hashable, Hashable]]],
) -> RefinementReport:
    """Full-recount hill climb (fallback for degenerate states)."""
    initial_hops = total_inter_node_hops(state)
    current_hops = initial_hops
    moves = 0

    nodes = list(state.node_capacities.keys())
    for _ in range(max_rounds):
        improved_this_round = False
        for vnf in state.vnfs:
            source = state.placement[vnf.name]
            best_target: Optional[Hashable] = None
            best_hops = current_hops
            for target in nodes:
                if target == source:
                    continue
                if not _fits_after_move(state, vnf.name, target):
                    continue
                state.placement[vnf.name] = target
                hops = total_inter_node_hops(state)
                if hops < best_hops:
                    best_hops = hops
                    best_target = target
                state.placement[vnf.name] = source
            if best_target is not None:
                state.placement[vnf.name] = best_target
                current_hops = best_hops
                moves += 1
                improved_this_round = True
                if trace is not None:
                    trace.append((vnf.name, source, best_target))
        if not improved_this_round:
            break

    state.validate()
    return RefinementReport(
        moves_applied=moves,
        initial_hops=initial_hops,
        final_hops=current_hops,
        hops_saved=initial_hops - current_hops,
    )


def _fits_after_move(
    state: DeploymentState, vnf_name: str, target: Hashable
) -> bool:
    """Whether moving ``vnf_name`` to ``target`` respects Eq. (6)."""
    vnf = state._vnf_by_name[vnf_name]
    capacity = state.node_capacities.get(target)
    if capacity is None:
        return False
    load = sum(
        f.total_demand
        for f in state.vnfs
        if f.name != vnf_name and state.placement.get(f.name) == target
    )
    return load + vnf.total_demand <= capacity + 1e-9
