"""Local-search refinement of the coordinated objective (Eq. 16).

The two-phase pipeline optimizes its phases separately; the paper's
"coordination" insight (Section III-C) is that the *total* latency —
instance response times plus ``L`` per inter-node chain hop — is what
operators actually pay.  This module post-optimizes a joint solution
with hill climbing over **relocate** moves:

    move one VNF (all its instances, per Eq. 2) to another node with
    room, keeping the schedule fixed, if that strictly lowers the
    Eq. (16) total.

Relocation changes only the communication term (response times depend
on the schedule, not the placement), so move evaluation is O(requests
touching the VNF) and the search converges quickly.  This realizes the
paper's Fig. 1 motivation — converting inter-server chains into
intra-server chains — as an explicit optimization step.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable, Optional

from repro.exceptions import ValidationError
from repro.nfv.state import DeploymentState


@dataclass(frozen=True)
class RefinementReport:
    """Outcome of a local-search refinement run."""

    moves_applied: int
    initial_hops: int
    final_hops: int
    #: Link-latency savings per request set traversal, in units of L.
    hops_saved: int

    @property
    def improved(self) -> bool:
        """Whether any strictly improving move was found."""
        return self.moves_applied > 0


def total_inter_node_hops(state: DeploymentState) -> int:
    """Sum of Eq. (16)'s hop counts over all requests.

    The count is one vectorized pass over the chain CSR (this is the
    inner loop of every relocate-move evaluation); degenerate states —
    an unplaced chain VNF, a node missing from the capacity map — fall
    back to the per-request walk for its exact legacy errors.
    """
    arrays = state.arrays()
    if not arrays.chain_has_unknown:
        try:
            placement_vec = arrays.placement_vector(state.placement)
        except KeyError:
            placement_vec = None
        if placement_vec is not None and not bool(
            (placement_vec[arrays.chain_vnf] < 0).any()
        ):
            return int(arrays.hops_per_request(placement_vec).sum())
    return sum(
        state.inter_node_hops(r.request_id) for r in state.requests
    )


def refine_placement(
    state: DeploymentState,
    max_rounds: int = 10,
) -> RefinementReport:
    """Hill-climb relocate moves reducing total inter-node hops.

    The state's ``placement`` is modified in place; the schedule is
    untouched (so per-instance response times are invariant and the
    Eq. (16) delta is exactly ``hops_delta * L < 0``).

    Parameters
    ----------
    state:
        A validated joint deployment.
    max_rounds:
        Full passes over the VNF list; the search also stops at the
        first pass with no improving move.

    Returns
    -------
    RefinementReport
        Move and hop accounting.
    """
    if max_rounds < 1:
        raise ValidationError(f"max_rounds must be >= 1, got {max_rounds!r}")
    state.validate()

    initial_hops = total_inter_node_hops(state)
    current_hops = initial_hops
    moves = 0

    nodes = list(state.node_capacities.keys())
    for _ in range(max_rounds):
        improved_this_round = False
        for vnf in state.vnfs:
            source = state.placement[vnf.name]
            best_target: Optional[Hashable] = None
            best_hops = current_hops
            for target in nodes:
                if target == source:
                    continue
                if not _fits_after_move(state, vnf.name, target):
                    continue
                state.placement[vnf.name] = target
                hops = total_inter_node_hops(state)
                if hops < best_hops:
                    best_hops = hops
                    best_target = target
                state.placement[vnf.name] = source
            if best_target is not None:
                state.placement[vnf.name] = best_target
                current_hops = best_hops
                moves += 1
                improved_this_round = True
        if not improved_this_round:
            break

    state.validate()
    return RefinementReport(
        moves_applied=moves,
        initial_hops=initial_hops,
        final_hops=current_hops,
        hops_saved=initial_hops - current_hops,
    )


def _fits_after_move(
    state: DeploymentState, vnf_name: str, target: Hashable
) -> bool:
    """Whether moving ``vnf_name`` to ``target`` respects Eq. (6)."""
    vnf = next(f for f in state.vnfs if f.name == vnf_name)
    capacity = state.node_capacities.get(target)
    if capacity is None:
        return False
    load = sum(
        f.total_demand
        for f in state.vnfs
        if f.name != vnf_name and state.placement.get(f.name) == target
    )
    return load + vnf.total_demand <= capacity + 1e-9
