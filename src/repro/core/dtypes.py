"""Dtype policy for the columnar scenario tables (memory-lean mode).

The array substrate defaults to ``int64`` index columns and ``float64``
value columns — the dtypes the 1e-12 parity suites pin against the
legacy object paths.  At the million-request scale those widths double
the working set for no benefit: chain CSR indices never exceed a few
million and rate/demand values carry ~7 significant digits of
generator entropy.  :class:`DtypePolicy` makes the widths explicit:

* :data:`DEFAULT_POLICY` — ``int64`` / ``float64``; byte-identical to
  the historical columns.  Every owner that does not opt in gets this.
* :data:`LEAN_POLICY` — ``int32`` / ``float32``; halves the request and
  chain column footprint.  Index columns stay **exact** (guarded by
  :func:`ensure_index_capacity` at construction); float columns carry
  single-precision rounding, pinned by the tolerance suites in
  ``tests/core/test_dtypes.py``.

The policy travels with the columns themselves: consumers derive the
active dtypes from ``ScenarioArrays.index_dtype`` / ``float_dtype``
rather than threading a config object through every call.  Mixed-policy
code keeps working because numpy promotes ``int32`` indices and
``float32`` values safely in every kernel (code arithmetic is forced to
``int64`` via scalar operands at the few sites that build packed keys).

See ``docs/SCALE.md`` for the full dtype-mode contract.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.exceptions import ValidationError

__all__ = [
    "DEFAULT_POLICY",
    "LEAN_POLICY",
    "DtypePolicy",
    "ensure_index_capacity",
    "resolve_policy",
]


@dataclass(frozen=True)
class DtypePolicy:
    """Column widths for one scenario: index and float dtypes.

    ``index_dtype`` applies to every entity-index column (chain CSR
    entries and pointers, instance offsets, schedule index vectors);
    ``float_dtype`` to every rate/demand/capacity column.
    """

    index_dtype: np.dtype
    float_dtype: np.dtype

    def __post_init__(self) -> None:
        idt = np.dtype(self.index_dtype)
        fdt = np.dtype(self.float_dtype)
        if idt.kind != "i":
            raise ValidationError(
                f"index dtype must be a signed integer, got {idt!r}"
            )
        if fdt.kind != "f":
            raise ValidationError(
                f"float dtype must be floating point, got {fdt!r}"
            )
        object.__setattr__(self, "index_dtype", idt)
        object.__setattr__(self, "float_dtype", fdt)

    @property
    def index_max(self) -> int:
        """Largest index value representable by ``index_dtype``."""
        return int(np.iinfo(self.index_dtype).max)


#: The historical widths — what every parity suite pins.
DEFAULT_POLICY = DtypePolicy(np.dtype(np.int64), np.dtype(np.float64))

#: Opt-in memory-lean widths for million-request scenarios.
LEAN_POLICY = DtypePolicy(np.dtype(np.int32), np.dtype(np.float32))


def resolve_policy(dtypes) -> DtypePolicy:
    """Normalize a ``dtypes`` argument: ``None`` means the default."""
    if dtypes is None:
        return DEFAULT_POLICY
    if not isinstance(dtypes, DtypePolicy):
        raise ValidationError(
            f"dtypes must be a DtypePolicy or None, got {dtypes!r}"
        )
    return dtypes


def ensure_index_capacity(count: int, dtype, what: str) -> None:
    """Guard: ``count`` values must be indexable by ``dtype``.

    Raises
    ------
    ValidationError
        When ``count`` exceeds the dtype's maximum — the overflow that
        would otherwise silently wrap CSR pointers.  The message names
        ``what`` so a 3-billion-entry chain table fails loudly at
        construction, not subtly at evaluation.
    """
    limit = int(np.iinfo(np.dtype(dtype)).max)
    if count > limit:
        raise ValidationError(
            f"{what} needs {count} indexable entries but dtype "
            f"{np.dtype(dtype).name} holds at most {limit}; use the "
            f"default int64 policy for scenarios this large"
        )
