"""Instance sizing and replica scaling (Section III-A of the paper).

The paper's model bounds the instance count of each VNF by the number of
requests using it (Eq. 3) and prescribes a scale-out path when one
node's worth of instances cannot carry the offered load:

    "If all the service instances still cannot cope with all the
    requests, we can then place some replicas of the VNF on different
    nodes, and regard each replica as a new VNF."

This module implements both steps:

* :func:`required_instances` — the minimum ``M_f`` that keeps a
  perfectly balanced schedule stable at a target utilization.
* :func:`size_instances` — rewrite a VNF set so each VNF deploys enough
  instances for its offered load, bounded by Eq. (3).
* :func:`scale_out` — when the required instances exceed a per-VNF
  ceiling (e.g. what one node can host), split the VNF into replicas
  ``f``, ``f#1``, ``f#2``, ... and deal the requests across them, each
  replica being an independent VNF exactly as the paper prescribes.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Sequence

from repro.exceptions import ConfigurationError, ValidationError
from repro.nfv.chain import ServiceChain
from repro.nfv.request import Request
from repro.nfv.vnf import VNF

#: Default per-instance utilization ceiling used when sizing.
DEFAULT_TARGET_UTILIZATION = 0.9


def offered_load(vnf_name: str, requests: Sequence[Request]) -> float:
    """Total effective arrival rate offered to a VNF (Eq. 7 aggregate)."""
    return sum(r.effective_rate for r in requests if r.uses(vnf_name))


def unservable_requests(
    vnf: VNF, requests: Sequence[Request]
) -> List[Request]:
    """Requests no amount of scaling can serve on this VNF.

    Requests are unsplittable (Eq. 5 maps each to exactly one instance),
    so a request whose effective rate reaches one instance's ``mu_f``
    can never be stable regardless of ``M_f`` — admission control will
    shed it.  Callers should either raise the VNF's per-instance rate or
    expect the rejection.
    """
    return [
        r
        for r in requests
        if r.uses(vnf.name) and r.effective_rate >= vnf.service_rate
    ]


def required_instances(
    vnf: VNF,
    requests: Sequence[Request],
    target_utilization: float = DEFAULT_TARGET_UTILIZATION,
) -> int:
    """Minimum ``M_f`` keeping a balanced schedule at the target load.

    ``M_f = ceil(Lambda_f / (mu_f * rho_target))`` — with at least one
    instance, and no more than the number of requests using the VNF
    (Eq. 3: an instance with no request is useless; a request maps to
    exactly one instance).
    """
    if not 0.0 < target_utilization < 1.0:
        raise ValidationError(
            f"target utilization must be in (0, 1), got {target_utilization!r}"
        )
    users = [r for r in requests if r.uses(vnf.name)]
    if not users:
        return 1
    load = sum(r.effective_rate for r in users)
    needed = math.ceil(load / (vnf.service_rate * target_utilization))
    return max(1, min(needed, len(users)))


def size_instances(
    vnfs: Sequence[VNF],
    requests: Sequence[Request],
    target_utilization: float = DEFAULT_TARGET_UTILIZATION,
) -> List[VNF]:
    """Resize every VNF's ``M_f`` to its offered load (Eq. 3 bounded).

    Returns new VNF objects; inputs are unchanged.
    """
    return [
        vnf.with_instances(
            required_instances(vnf, requests, target_utilization)
        )
        for vnf in vnfs
    ]


@dataclass(frozen=True)
class ScaleOutPlan:
    """The result of replica scale-out for one original VNF set."""

    #: The rewritten VNF set (originals resized, replicas appended).
    vnfs: List[VNF]
    #: The rewritten requests (chains repointed at assigned replicas).
    requests: List[Request]
    #: ``original name -> list of replica names`` (the original included).
    replica_groups: Dict[str, List[str]]

    def replicas_of(self, vnf_name: str) -> List[str]:
        """All replica names serving an original VNF."""
        try:
            return list(self.replica_groups[vnf_name])
        except KeyError:
            raise ValidationError(f"unknown VNF {vnf_name!r}") from None


def scale_out(
    vnfs: Sequence[VNF],
    requests: Sequence[Request],
    max_instances_per_vnf: int,
    target_utilization: float = DEFAULT_TARGET_UTILIZATION,
) -> ScaleOutPlan:
    """Split overloaded VNFs into replicas, dealing requests across them.

    Parameters
    ----------
    vnfs, requests:
        The original problem.
    max_instances_per_vnf:
        Ceiling on ``M_f`` for any single VNF (e.g. what one node can
        host).  A VNF whose required instance count exceeds it is split
        into ``ceil(required / ceiling)`` replicas.
    target_utilization:
        Per-instance utilization the sizing aims at.

    Returns
    -------
    ScaleOutPlan
        New VNFs (each a "new VNF" per the paper), and requests whose
        chains reference their assigned replica, so placement and
        scheduling work unchanged downstream.

    Notes
    -----
    Requests are dealt to replicas round-robin in decreasing-rate order,
    which keeps replica loads near-equal; the per-replica instance count
    is then re-derived from the load actually assigned to it.
    """
    if max_instances_per_vnf < 1:
        raise ConfigurationError(
            f"instance ceiling must be >= 1, got {max_instances_per_vnf!r}"
        )

    replica_groups: Dict[str, List[str]] = {}
    #: request id -> {original vnf name -> replica name}
    rebinding: Dict[str, Dict[str, str]] = {r.request_id: {} for r in requests}
    new_vnfs: List[VNF] = []

    for vnf in vnfs:
        users = [r for r in requests if r.uses(vnf.name)]
        needed = required_instances(vnf, requests, target_utilization)
        if needed <= max_instances_per_vnf:
            replica_groups[vnf.name] = [vnf.name]
            new_vnfs.append(vnf.with_instances(needed))
            continue
        num_replicas = math.ceil(needed / max_instances_per_vnf)
        names = [vnf.name] + [
            f"{vnf.name}#{i}" for i in range(1, num_replicas)
        ]
        replica_groups[vnf.name] = names
        # Deal requests: decreasing rate, round-robin over replicas.
        buckets: List[List[Request]] = [[] for _ in range(num_replicas)]
        ordered = sorted(users, key=lambda r: (-r.effective_rate, r.request_id))
        for i, request in enumerate(ordered):
            bucket = i % num_replicas
            buckets[bucket].append(request)
            rebinding[request.request_id][vnf.name] = names[bucket]
        for name, bucket in zip(names, buckets):
            load = sum(r.effective_rate for r in bucket)
            instances = max(
                1,
                min(
                    math.ceil(
                        load / (vnf.service_rate * target_utilization)
                    )
                    if load > 0.0
                    else 1,
                    max(1, len(bucket)),
                ),
            )
            instances = min(instances, max_instances_per_vnf)
            new_vnfs.append(
                VNF(
                    name=name,
                    demand_per_instance=vnf.demand_per_instance,
                    num_instances=instances,
                    service_rate=vnf.service_rate,
                    category=vnf.category,
                )
            )

    new_requests: List[Request] = []
    for request in requests:
        binding = rebinding[request.request_id]
        if not binding:
            new_requests.append(request)
            continue
        new_chain = ServiceChain(
            [binding.get(name, name) for name in request.chain]
        )
        new_requests.append(
            Request(
                request_id=request.request_id,
                chain=new_chain,
                arrival_rate=request.arrival_rate,
                delivery_probability=request.delivery_probability,
            )
        )

    return ScaleOutPlan(
        vnfs=new_vnfs,
        requests=new_requests,
        replica_groups=replica_groups,
    )
