"""The two-phase joint optimizer (Section IV of the paper).

:class:`JointOptimizer` chains the two phases:

1. **Placement** — a :class:`~repro.placement.base.PlacementAlgorithm`
   (default: BFDSU) packs the VNFs onto compute nodes, maximizing
   utilization / minimizing nodes in service.
2. **Scheduling** — a :class:`~repro.scheduling.base.SchedulingAlgorithm`
   (default: RCKK) balances each VNF's requests across its service
   instances, minimizing average response latency.

The result is a :class:`JointSolution` wrapping a fully validated
:class:`~repro.nfv.state.DeploymentState` plus both phases' raw results,
with one-call evaluation against all paper metrics.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Hashable, Mapping, Optional, Sequence, Tuple

from repro.core.evaluation import EvaluationReport, evaluate_deployment
from repro.nfv.chain import ServiceChain
from repro.nfv.request import Request
from repro.nfv.state import DeploymentState
from repro.nfv.vnf import VNF
from repro.placement.base import (
    PlacementAlgorithm,
    PlacementProblem,
    PlacementResult,
)
from repro.placement.bfdsu import BFDSUPlacement
from repro.scheduling.base import SchedulingAlgorithm, schedule_all_vnfs
from repro.scheduling.rckk import RCKKScheduler
from repro.topology.graph import DEFAULT_LINK_LATENCY


@dataclass
class JointSolution:
    """A complete two-phase solution with evaluation helpers."""

    state: DeploymentState
    placement_result: PlacementResult
    schedule: Dict[Tuple[str, str], int]
    link_latency: float = DEFAULT_LINK_LATENCY

    def evaluate(self, with_admission: bool = True) -> EvaluationReport:
        """Score this solution on every paper metric."""
        return evaluate_deployment(
            self.state,
            link_latency=self.link_latency,
            with_admission=with_admission,
        )


class JointOptimizer:
    """Two-phase VNF chain placement + request scheduling.

    Parameters
    ----------
    placement:
        Phase-one algorithm; defaults to the paper's BFDSU.
    scheduler:
        Phase-two algorithm; defaults to the paper's RCKK.
    link_latency:
        The per-hop constant ``L`` for Eq. (16) evaluation.
    """

    def __init__(
        self,
        placement: Optional[PlacementAlgorithm] = None,
        scheduler: Optional[SchedulingAlgorithm] = None,
        link_latency: float = DEFAULT_LINK_LATENCY,
    ) -> None:
        self._placement = placement if placement is not None else BFDSUPlacement()
        self._scheduler = scheduler if scheduler is not None else RCKKScheduler()
        self._link_latency = link_latency

    @property
    def placement_algorithm(self) -> PlacementAlgorithm:
        """The configured phase-one algorithm."""
        return self._placement

    @property
    def scheduling_algorithm(self) -> SchedulingAlgorithm:
        """The configured phase-two algorithm."""
        return self._scheduler

    def optimize(
        self,
        vnfs: Sequence[VNF],
        requests: Sequence[Request],
        capacities: Mapping[Hashable, float],
    ) -> JointSolution:
        """Run both phases and return a validated joint solution.

        Parameters
        ----------
        vnfs:
            The VNFs ``F`` to deploy.
        requests:
            The requests ``R``; their chains define ``U_r^f`` and are fed
            to chain-aware placement algorithms.
        capacities:
            ``A_v`` per compute node.
        """
        chains = _distinct_chains(requests)
        problem = PlacementProblem(
            vnfs=vnfs, capacities=capacities, chains=chains
        )
        placement_result = self._placement.place(problem)

        schedule = schedule_all_vnfs(vnfs, requests, self._scheduler)

        state = DeploymentState(
            vnfs=list(vnfs),
            requests=list(requests),
            node_capacities=dict(capacities),
            placement=dict(placement_result.placement),
            schedule=schedule,
        )
        state.validate()
        return JointSolution(
            state=state,
            placement_result=placement_result,
            schedule=schedule,
            link_latency=self._link_latency,
        )


def _distinct_chains(requests: Sequence[Request]) -> Tuple[ServiceChain, ...]:
    """The distinct service chains of a request set, in first-seen order."""
    seen = set()
    chains = []
    for request in requests:
        key = request.chain.vnf_names
        if key not in seen:
            seen.add(key)
            chains.append(request.chain)
    return tuple(chains)
