"""End-to-end evaluation of a joint deployment.

:func:`evaluate_deployment` scores a complete
:class:`~repro.nfv.state.DeploymentState` on every metric the paper's
evaluation section uses, in one pass:

* placement quality (Eqs. 13/14 + resource occupation),
* scheduling quality (Eq. 15, per-instance utilizations),
* the coordinated objective (Eq. 16) with link latency ``L``,
* job rejection rate under admission control.

The hot path runs on the state's cached columnar view
(:mod:`repro.core.arrays`): instance rates, utilizations and the Eq. (12)
response times are segment sums over the schedule's index arrays, and
the Eq. (16) communication term is one pass over the chain CSR.  Only
when admission control actually has to shed load does the evaluation
drop to the per-object path, which models the greedy per-instance
rejection exactly.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.core import objectives
from repro.core.admission import (
    DEFAULT_TARGET_UTILIZATION,
    apply_admission_control,
)
from repro.nfv.state import DeploymentState
from repro.topology.graph import DEFAULT_LINK_LATENCY


@dataclass(frozen=True)
class EvaluationReport:
    """Every paper metric for one joint solution."""

    # Placement metrics (Figs. 5-9)
    average_node_utilization: float
    nodes_in_service: int
    resource_occupation: float
    # Scheduling metrics (Figs. 11-14)
    average_response_latency: float
    max_instance_utilization: float
    # Coordinated objective (Eq. 16)
    total_latency: float
    average_total_latency: float
    # Admission (Figs. 15-16)
    num_rejected: int
    rejection_rate: float

    def is_stable(self) -> bool:
        """Whether every serving instance has a steady state."""
        return math.isfinite(self.average_response_latency)


def _resource_occupation(state: DeploymentState) -> float:
    """Sum of ``A_v`` over nodes in service."""
    arrays = state.arrays()
    try:
        placement_vec = arrays.placement_vector(state.placement)
    except KeyError:
        return sum(
            state.node_capacities[v] for v in state.nodes_in_service()
        )
    return float(arrays.A_v[arrays.used_node_mask(placement_vec)].sum())


def evaluate_deployment(
    state: DeploymentState,
    link_latency: float = DEFAULT_LINK_LATENCY,
    with_admission: bool = True,
    topology=None,
) -> EvaluationReport:
    """Score a complete deployment on all paper metrics.

    Parameters
    ----------
    state:
        The joint solution; it is structurally validated first.
    link_latency:
        The per-hop constant ``L`` of Eq. (16).
    with_admission:
        When True, rejection metrics come from running admission control
        over the scheduled instances (the analytic state itself is left
        untouched — latency metrics describe the *admitted* load only if
        shedding was required).
    topology:
        Optional :class:`~repro.topology.graph.DatacenterTopology` (or
        its arrays).  When given, Eq. (16)'s communication term charges
        the fabric's measured shortest-path latency per inter-node
        transition instead of the flat ``link_latency`` constant; every
        placement node must be a compute node of the fabric.  ``None``
        (the default) keeps the paper's flat-``L`` model exactly.
    """
    state.validate()
    arrays = state.arrays()
    sched = state.schedule_arrays()
    equivalent, external, counts = arrays.instance_rates(sched)
    serving = counts > 0
    utilization = arrays.instance_utilizations(equivalent)

    if with_admission and bool(
        (equivalent[serving] > arrays.mu_inst[serving]
         * DEFAULT_TARGET_UTILIZATION).any()
    ):
        # Some instance must shed load: the greedy per-request rejection
        # policy is inherently sequential, so run the object path.
        return _evaluate_with_shedding(state, link_latency, topology)

    max_util = (
        float(utilization[serving].max()) if serving.any() else 0.0
    )

    if serving.any() and bool((utilization[serving] < 1.0).all()):
        instance_w = arrays.instance_response_times(equivalent, external)
        w = instance_w[serving]
        avg_w = float(w.sum() / len(w))
    else:
        instance_w = None
        avg_w = math.inf

    if math.isfinite(avg_w):
        response = arrays.response_per_request(sched, instance_w)
        placement_vec = arrays.placement_vector(state.placement)
        if topology is None:
            hops = arrays.hops_per_request(placement_vec)
            comm = hops * link_latency
        else:
            comm = arrays.topology_latency_per_request(
                placement_vec, topology
            )
        total = float(np.sum(response + comm))
        avg_total = total / len(state.requests) if state.requests else 0.0
    else:
        total = math.inf
        avg_total = math.inf

    return EvaluationReport(
        average_node_utilization=state.average_node_utilization(),
        nodes_in_service=state.total_nodes_in_service(),
        resource_occupation=_resource_occupation(state),
        average_response_latency=avg_w,
        max_instance_utilization=max_util,
        total_latency=total,
        average_total_latency=avg_total,
        num_rejected=0,
        rejection_rate=0.0,
    )


def _evaluate_with_shedding(
    state: DeploymentState, link_latency: float, topology=None
) -> EvaluationReport:
    """The pre-vectorization object path, for deployments that shed."""
    instances = state.instances()
    serving = [inst for inst in instances if inst.requests]

    outcome = apply_admission_control(serving)
    num_rejected = outcome.num_rejected
    rejection_rate = outcome.rejection_rate
    latency_instances = [inst for inst in outcome.instances if inst.requests]

    if latency_instances and all(i.is_stable for i in latency_instances):
        avg_w = sum(i.mean_response_time for i in latency_instances) / len(
            latency_instances
        )
    else:
        avg_w = math.inf

    max_util = max((i.utilization for i in serving), default=0.0)

    if math.isfinite(avg_w) and not num_rejected:
        if topology is None:
            total = objectives.total_latency(state, link_latency)
        else:
            from repro.core.topology_eval import total_latency_on_topology

            total = total_latency_on_topology(state, topology)
        avg_total = total / len(state.requests) if state.requests else 0.0
    elif math.isfinite(avg_w):
        # Shedding occurred: approximate per-request totals over admitted
        # load by rebuilding a shed-aware latency sum.
        total = _total_latency_after_admission(
            state, latency_instances, link_latency, topology
        )
        avg_total = total
    else:
        total = math.inf
        avg_total = math.inf

    return EvaluationReport(
        average_node_utilization=state.average_node_utilization(),
        nodes_in_service=state.total_nodes_in_service(),
        resource_occupation=_resource_occupation(state),
        average_response_latency=avg_w,
        max_instance_utilization=max_util,
        total_latency=total,
        average_total_latency=avg_total,
        num_rejected=num_rejected,
        rejection_rate=rejection_rate,
    )


def _total_latency_after_admission(
    state, instances, link_latency, topology=None
) -> float:
    """Mean per-admitted-request latency when some requests were shed."""
    instance_w = {
        inst.key: inst.mean_response_time for inst in instances if inst.requests
    }
    admitted = {
        request.request_id
        for inst in instances
        for request in inst.requests
    }
    router = None
    if topology is not None:
        from repro.core.topology_eval import request_path_latency
        from repro.topology.routing import Router

        router = Router(topology)
    total = 0.0
    counted = 0
    for request in state.requests:
        if request.request_id not in admitted:
            continue
        ok = True
        response = 0.0
        for vnf_name in request.chain:
            k = state.schedule.get((request.request_id, vnf_name))
            w = instance_w.get((vnf_name, k))
            if w is None:
                ok = False
                break
            response += w
        if not ok:
            continue
        if router is not None:
            comm = request_path_latency(state, router, request.request_id)
        else:
            comm = state.inter_node_hops(request.request_id) * link_latency
        total += response + comm
        counted += 1
    if counted == 0:
        return math.inf
    return total / counted


def evaluate_columns(
    arrays,
    placement_vec: np.ndarray,
    sched,
    link_latency: float = DEFAULT_LINK_LATENCY,
    topology=None,
) -> EvaluationReport:
    """State-free :func:`evaluate_deployment` over raw columns.

    The million-request path: scores a ``(ScenarioArrays,
    placement-vector, ScheduleArrays)`` triple without ever building a
    :class:`~repro.nfv.state.DeploymentState` (whose dict-shaped
    ``placement``/``schedule`` would cost more than the evaluation
    itself at scale).  Matches ``evaluate_deployment(state,
    with_admission=False)`` to float64 round-off on the same solution —
    pinned by ``tests/core/test_dtypes.py`` and
    ``tests/scheduling/test_schedule_columns.py``.  Admission control is not
    modeled here: callers arrange stability up front (e.g.
    :func:`repro.workload.stream.rescale_to_stability`), so the
    rejection metrics are reported as zero exactly as the
    ``with_admission=False`` route does.
    """
    equivalent, external, counts = arrays.instance_rates(sched)
    serving = counts > 0
    utilization = arrays.instance_utilizations(equivalent)
    max_util = (
        float(utilization[serving].max()) if serving.any() else 0.0
    )

    if serving.any() and bool((utilization[serving] < 1.0).all()):
        instance_w = arrays.instance_response_times(equivalent, external)
        w = instance_w[serving]
        avg_w = float(w.sum() / len(w))
    else:
        instance_w = None
        avg_w = math.inf

    num_requests = len(arrays.request_ids)
    if math.isfinite(avg_w):
        response = arrays.response_per_request(sched, instance_w)
        if topology is None:
            comm = arrays.hops_per_request(placement_vec) * link_latency
        else:
            comm = arrays.topology_latency_per_request(
                placement_vec, topology
            )
        total = float(np.sum(response + comm))
        avg_total = total / num_requests if num_requests else 0.0
    else:
        total = math.inf
        avg_total = math.inf

    loads = arrays.node_loads(placement_vec)
    used_mask = arrays.used_node_mask(placement_vec)
    if used_mask.any():
        capacities = arrays.A_v[used_mask]
        with np.errstate(divide="ignore", invalid="ignore"):
            node_util = np.where(
                capacities > 0.0, loads[used_mask] / capacities, 0.0
            )
        avg_node_util = float(node_util.sum() / used_mask.sum())
    else:
        avg_node_util = 0.0

    return EvaluationReport(
        average_node_utilization=avg_node_util,
        nodes_in_service=int(used_mask.sum()),
        resource_occupation=float(arrays.A_v[used_mask].sum()),
        average_response_latency=avg_w,
        max_instance_utilization=max_util,
        total_latency=total,
        average_total_latency=avg_total,
        num_rejected=0,
        rejection_rate=0.0,
    )
