"""Columnar scenario representation — the vectorized evaluation core.

Every metric in the paper's evaluation pipeline (Eqs. 7, 12-16) reduces
to segment sums over three entity tables: VNFs ``F`` (``M_f``, ``D_f``,
``mu_f``), compute nodes ``V`` (``A_v``) and requests ``R``
(``lambda_r``, ``P_r``).  :class:`ScenarioArrays` materializes those
tables once as numpy columns — plus a CSR view of the request chains
(the ``U_r^f`` incidence, in chain order) and a global service-instance
index — so the hot metric paths become ``np.bincount`` / gather
operations instead of per-object Python loops.

Caching contract
----------------
The *static* columns depend only on the entity sets, which are immutable
on every owning object (``PlacementProblem`` and ``SchedulingProblem``
are frozen; ``DeploymentState.vnfs``/``requests``/``node_capacities``
are never replaced in-repo).  Owners therefore build a
:class:`ScenarioArrays` lazily on first use and cache it forever.

One exception: the *request rows* (and their chain CSR) support
in-place mutation through :meth:`ScenarioArrays.append_request` /
:meth:`ScenarioArrays.remove_request` — the substrate of the
incremental :class:`~repro.core.incremental.DeploymentEngine`, where
the request set churns while VNFs and nodes stay fixed.  Appends write
into amortized-doubling backing buffers (the public columns are slices
of them), removes shift the tail rows down, and both invalidate the
two request-derived CSR caches (``vnf_requests`` /
``vnf_chain_neighbors``) so the next query rebuilds them.  A mutated
instance is column-for-column identical (exact, not approximate) to a
from-scratch :meth:`ScenarioArrays.build` over the surviving request
sequence — pinned by ``tests/core/test_arrays_mutation.py``.  The
VNF/node columns and their caches (``node_str_rank``, topology
attachment) remain immutable forever.

The *dynamic* decision variables — the ``vnf_name -> node`` placement
dict and the ``(request_id, vnf_name) -> k`` schedule dict — are
mutable (e.g. :func:`repro.core.local_search.refine_placement` edits the
placement in place).  They are converted to index vectors per call:

* :meth:`ScenarioArrays.placement_vector` is O(|F|) — cheap enough to
  rebuild on every metric evaluation, so placement mutation needs no
  invalidation at all.
* :meth:`ScenarioArrays.schedule_arrays` is O(|z|); owners that hold a
  schedule (``DeploymentState``) cache the result keyed on the dict's
  identity and length and expose ``invalidate_arrays()`` for the one
  unsupported pattern (mutating schedule *values* in place).

Adding a new vectorized metric (see ``docs/ARRAYS_CORE.md``) is: fetch
the owner's cached ``ScenarioArrays``, convert the decision dicts with
the two methods above, then express the metric as numpy reductions over
the columns.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Hashable, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.core.dtypes import ensure_index_capacity, resolve_policy
from repro.exceptions import SchedulingError, ValidationError
from repro.queueing.mm1 import mm1_mean_response_times, mm1_utilizations


@dataclass
class ScheduleArrays:
    """Index form of the ``z`` map: one row per (request, VNF) entry.

    ``req``/``vnf``/``k`` hold the request index, VNF index and
    instance-within-VNF index of each schedule entry; ``inst`` is the
    global instance index (``instance_offset[vnf] + k``) used for
    segment sums over all ``sum_f M_f`` service instances.
    """

    req: np.ndarray
    vnf: np.ndarray
    k: np.ndarray
    inst: np.ndarray
    #: Lazily built sort permutation of ``req * F + vnf`` entry codes,
    #: enabling vectorized (request, vnf) -> instance lookups.
    _codes_sorted: Optional[np.ndarray] = field(default=None, repr=False)
    _order: Optional[np.ndarray] = field(default=None, repr=False)

    def __len__(self) -> int:
        return int(self.req.shape[0])

    def sorted_codes(self, num_vnfs: int) -> Tuple[np.ndarray, np.ndarray]:
        """The entry codes ``req * F + vnf`` sorted, with the sort order."""
        if self._codes_sorted is None:
            codes = self.req * np.int64(num_vnfs) + self.vnf
            order = np.argsort(codes, kind="stable")
            self._codes_sorted = codes[order]
            self._order = order
        return self._codes_sorted, self._order


@dataclass
class ScenarioArrays:
    """Columnar view of one scenario's entity tables.

    Attributes mirror the paper's symbols: ``M_f``/``D_f``/``mu_f`` per
    VNF, ``A_v`` per node, ``lambda_r``/``P_r`` and the loss-feedback
    effective rate ``lambda_r / P_r`` per request.  ``chain_req`` /
    ``chain_vnf`` list every (request, chain-position) pair in
    request-major chain order — the CSR row pointers are ``chain_ptr``.
    """

    # --- VNF columns -------------------------------------------------
    vnf_names: Tuple[str, ...]
    vnf_index: Dict[str, int]
    M_f: np.ndarray
    D_f: np.ndarray
    mu_f: np.ndarray
    total_demand_f: np.ndarray
    #: Exclusive prefix sum of ``M_f`` (length ``F + 1``): instance
    #: ``(f, k)`` has global index ``instance_offset[f] + k``.
    instance_offset: np.ndarray
    num_instances: int
    #: Per global instance: owning VNF index and its ``mu_f``.
    inst_vnf: np.ndarray
    mu_inst: np.ndarray

    # --- node columns ------------------------------------------------
    node_keys: Tuple[Hashable, ...]
    node_index: Dict[Hashable, int]
    A_v: np.ndarray

    # --- request columns ---------------------------------------------
    request_ids: Tuple[str, ...]
    request_index: Dict[str, int]
    lambda_r: np.ndarray
    P_r: np.ndarray
    eff_rate: np.ndarray

    # --- chain incidence (CSR, request-major, chain order) -----------
    chain_req: np.ndarray
    chain_vnf: np.ndarray
    chain_ptr: np.ndarray
    #: VNF name per chain entry (for error reporting; ``chain_vnf`` is
    #: ``-1`` when the name is unknown).
    chain_names: Tuple[str, ...]
    #: True when some chain references a VNF name absent from ``vnfs``
    #: (``chain_vnf`` holds ``-1`` there); vectorized consumers must
    #: fall back to the scalar path so legacy errors are preserved.
    chain_has_unknown: bool = False

    # --- inverted chain views (static, lazily built) -----------------
    #: Cached ``vnf_requests()`` CSR: (ptr, req) or ``None``.
    _vnf_req_csr: Optional[Tuple[np.ndarray, np.ndarray]] = field(
        default=None, repr=False
    )
    #: Cached ``vnf_chain_neighbors()`` CSR: (ptr, nbr) or ``None``.
    _vnf_nbr_csr: Optional[Tuple[np.ndarray, np.ndarray]] = field(
        default=None, repr=False
    )
    #: Cached ``node_str_rank()`` vector or ``None``.
    _node_str_rank: Optional[np.ndarray] = field(default=None, repr=False)
    #: Cached topology attachment: ``(topology_arrays, node_compute)``
    #: where ``node_compute[i]`` is the compute index of scenario node
    #: ``i`` in that fabric.  Keyed by identity — re-attached when a
    #: different topology is queried.
    _topo_attach: Optional[Tuple[object, np.ndarray]] = field(
        default=None, repr=False
    )

    # --- request-row mutation buffers (``None`` until first mutation) --
    #: Amortized-doubling backing stores; the public request/chain
    #: columns become slices of these after ``_ensure_mutable()``.
    _lambda_buf: Optional[np.ndarray] = field(default=None, repr=False)
    _P_buf: Optional[np.ndarray] = field(default=None, repr=False)
    _eff_buf: Optional[np.ndarray] = field(default=None, repr=False)
    _chain_req_buf: Optional[np.ndarray] = field(default=None, repr=False)
    _chain_vnf_buf: Optional[np.ndarray] = field(default=None, repr=False)
    _chain_ptr_buf: Optional[np.ndarray] = field(default=None, repr=False)

    # ------------------------------------------------------------------
    # Builders
    # ------------------------------------------------------------------
    @classmethod
    def build(
        cls,
        vnfs: Sequence,
        requests: Sequence,
        node_capacities: Mapping[Hashable, float],
        dtypes=None,
    ) -> "ScenarioArrays":
        """Materialize the static columns from the entity objects.

        ``dtypes`` is an optional
        :class:`~repro.core.dtypes.DtypePolicy`; ``None`` keeps the
        historical ``int64``/``float64`` columns byte-identical.  The
        lean ``int32`` policy is guarded against index overflow at
        construction (see :func:`~repro.core.dtypes.ensure_index_capacity`).
        """
        policy = resolve_policy(dtypes)
        idt = policy.index_dtype
        fdt = policy.float_dtype
        vnf_names = tuple(f.name for f in vnfs)
        vnf_index = {name: i for i, name in enumerate(vnf_names)}
        M_f = np.array([f.num_instances for f in vnfs], dtype=idt)
        D_f = np.array([f.demand_per_instance for f in vnfs], dtype=fdt)
        mu_f = np.array([f.service_rate for f in vnfs], dtype=fdt)
        total_demand_f = np.array(
            [f.total_demand for f in vnfs], dtype=fdt
        )
        instance_offset = np.zeros(len(vnfs) + 1, dtype=idt)
        num_instances = int(np.sum(M_f, dtype=np.int64))
        ensure_index_capacity(num_instances, idt, "service instance table")
        np.cumsum(M_f, out=instance_offset[1:])
        inst_vnf = np.repeat(np.arange(len(vnfs), dtype=idt), M_f)
        mu_inst = mu_f[inst_vnf] if len(vnfs) else np.zeros(0, dtype=fdt)

        node_keys = tuple(node_capacities.keys())
        node_index = {key: i for i, key in enumerate(node_keys)}
        ensure_index_capacity(len(node_keys), idt, "node table")
        A_v = np.array(
            [node_capacities[key] for key in node_keys], dtype=fdt
        )

        request_ids = tuple(r.request_id for r in requests)
        request_index = {rid: i for i, rid in enumerate(request_ids)}
        ensure_index_capacity(len(request_ids), idt, "request table")
        lambda_r = np.array([r.arrival_rate for r in requests], dtype=fdt)
        P_r = np.array(
            [r.delivery_probability for r in requests], dtype=fdt
        )
        # Elementwise division matches the scalar lambda_r / P_r exactly.
        eff_rate = lambda_r / P_r if len(requests) else np.zeros(0, dtype=fdt)

        chain_req_list = []
        chain_vnf_list = []
        chain_name_list = []
        chain_ptr = np.zeros(len(requests) + 1, dtype=idt)
        has_unknown = False
        for i, request in enumerate(requests):
            for name in request.chain:
                idx = vnf_index.get(name, -1)
                if idx < 0:
                    has_unknown = True
                chain_req_list.append(i)
                chain_vnf_list.append(idx)
                chain_name_list.append(name)
            chain_ptr[i + 1] = len(chain_req_list)
        ensure_index_capacity(len(chain_req_list), idt, "chain CSR table")
        chain_req = np.array(chain_req_list, dtype=idt)
        chain_vnf = np.array(chain_vnf_list, dtype=idt)

        return cls(
            vnf_names=vnf_names,
            vnf_index=vnf_index,
            M_f=M_f,
            D_f=D_f,
            mu_f=mu_f,
            total_demand_f=total_demand_f,
            instance_offset=instance_offset,
            num_instances=num_instances,
            inst_vnf=inst_vnf,
            mu_inst=mu_inst,
            node_keys=node_keys,
            node_index=node_index,
            A_v=A_v,
            request_ids=request_ids,
            request_index=request_index,
            lambda_r=lambda_r,
            P_r=P_r,
            eff_rate=eff_rate,
            chain_req=chain_req,
            chain_vnf=chain_vnf,
            chain_ptr=chain_ptr,
            chain_names=tuple(chain_name_list),
            chain_has_unknown=has_unknown,
        )

    @classmethod
    def from_columns(
        cls,
        vnfs: Sequence,
        node_capacities: Mapping[Hashable, float],
        request_ids,
        request_index,
        lambda_r: np.ndarray,
        P_r: np.ndarray,
        chain_req: np.ndarray,
        chain_vnf: np.ndarray,
        chain_ptr: np.ndarray,
        chain_names,
        dtypes=None,
    ) -> "ScenarioArrays":
        """Assemble a scenario from prebuilt *request* columns.

        The object-free construction path
        (:mod:`repro.workload.stream`) samples the request table as
        numpy columns directly; this builder attaches them to the
        VNF/node columns without ever walking per-request objects.  The
        request columns must satisfy the exact :meth:`build` invariants
        (chain CSR in request-major chain order, ``eff_rate`` computed
        as the elementwise ``lambda_r / P_r``); the construction-parity
        suite pins that streamed columns equal :meth:`build` over the
        materialized request sequence.  ``request_ids`` /
        ``request_index`` / ``chain_names`` may be lazy sequence/mapping
        views — at million-request scale the eager tuple+dict cost more
        than every numpy column combined.
        """
        policy = resolve_policy(dtypes)
        idt = policy.index_dtype
        fdt = policy.float_dtype
        base = cls.build(vnfs, (), node_capacities, dtypes=policy)
        n = len(request_ids)
        ensure_index_capacity(n, idt, "request table")
        ensure_index_capacity(len(chain_req), idt, "chain CSR table")
        if not (
            len(lambda_r) == len(P_r) == n
            and len(chain_ptr) == n + 1
            and len(chain_req) == len(chain_vnf) == len(chain_names)
        ):
            raise ValidationError(
                "request column lengths are inconsistent with the id table"
            )
        base.request_ids = request_ids
        base.request_index = request_index
        base.lambda_r = np.ascontiguousarray(lambda_r, dtype=fdt)
        base.P_r = np.ascontiguousarray(P_r, dtype=fdt)
        base.eff_rate = base.lambda_r / base.P_r
        base.chain_req = np.ascontiguousarray(chain_req, dtype=idt)
        base.chain_vnf = np.ascontiguousarray(chain_vnf, dtype=idt)
        base.chain_ptr = np.ascontiguousarray(chain_ptr, dtype=idt)
        base.chain_names = chain_names
        base.chain_has_unknown = bool(len(chain_vnf)) and bool(
            (base.chain_vnf < 0).any()
        )
        return base

    # ------------------------------------------------------------------
    # Dtype policy (derived from the columns themselves)
    # ------------------------------------------------------------------
    @property
    def index_dtype(self) -> np.dtype:
        """The active index-column dtype (``int64`` unless lean-built)."""
        return self.chain_req.dtype

    @property
    def float_dtype(self) -> np.dtype:
        """The active float-column dtype (``float64`` unless lean-built)."""
        return self.lambda_r.dtype

    @classmethod
    def from_placement_problem(cls, problem) -> "ScenarioArrays":
        """Columns for a :class:`~repro.placement.base.PlacementProblem`."""
        return cls.build(problem.vnfs, (), problem.capacities)

    @classmethod
    def from_scheduling_problem(cls, problem) -> "ScenarioArrays":
        """Columns for a :class:`~repro.scheduling.base.SchedulingProblem`."""
        return cls.build((problem.vnf,), problem.requests, {})

    @classmethod
    def from_deployment_state(cls, state) -> "ScenarioArrays":
        """Columns for a :class:`~repro.nfv.state.DeploymentState`."""
        return cls.build(state.vnfs, state.requests, state.node_capacities)

    # ------------------------------------------------------------------
    # Decision-variable conversion (dynamic, rebuilt per call)
    # ------------------------------------------------------------------
    def placement_vector(self, placement: Mapping[str, Hashable]) -> np.ndarray:
        """Node index per VNF; ``-1`` for an unplaced VNF.

        Raises
        ------
        KeyError
            If some VNF is placed on a node absent from the capacity map
            (callers fall back to the scalar path to surface the legacy
            error for that case).
        """
        vec = np.empty(len(self.vnf_names), dtype=np.int64)
        node_index = self.node_index
        for i, name in enumerate(self.vnf_names):
            node = placement.get(name)
            vec[i] = -1 if node is None else node_index[node]
        return vec

    def schedule_arrays(
        self, schedule: Mapping[Tuple[str, str], int]
    ) -> ScheduleArrays:
        """Convert the ``(request_id, vnf_name) -> k`` map to index form.

        Raises
        ------
        ValidationError
            If an entry references an unknown request or an instance
            outside ``[0, M_f)`` — mirroring
            :meth:`~repro.nfv.state.DeploymentState.instances`.
        """
        n = len(schedule)
        idt = self.index_dtype
        req = np.empty(n, dtype=idt)
        vnf = np.empty(n, dtype=idt)
        k = np.empty(n, dtype=idt)
        request_index = self.request_index
        vnf_index = self.vnf_index
        M_f = self.M_f
        for i, ((request_id, vnf_name), kk) in enumerate(schedule.items()):
            ri = request_index.get(request_id)
            if ri is None:
                raise ValidationError(
                    f"schedule references unknown request {request_id!r}"
                )
            fi = vnf_index.get(vnf_name)
            if fi is None or not 0 <= kk < M_f[fi]:
                raise ValidationError(
                    f"schedule references unknown instance ({vnf_name!r}, {kk})"
                )
            req[i] = ri
            vnf[i] = fi
            k[i] = kk
        inst = self.instance_offset[vnf] + k
        return ScheduleArrays(req=req, vnf=vnf, k=k, inst=inst)

    # ------------------------------------------------------------------
    # Placement metrics (Eqs. 13/14, Fig. 9)
    # ------------------------------------------------------------------
    def node_loads(self, placement_vec: np.ndarray) -> np.ndarray:
        """Placed demand per node: ``sum_f x_v^f M_f D_f`` (length |V|)."""
        mask = placement_vec >= 0
        return np.bincount(
            placement_vec[mask],
            weights=self.total_demand_f[mask],
            minlength=len(self.node_keys),
        )

    def used_node_mask(self, placement_vec: np.ndarray) -> np.ndarray:
        """Boolean ``y_v`` per node (Eq. 1): hosts at least one VNF."""
        mask = placement_vec >= 0
        counts = np.bincount(
            placement_vec[mask], minlength=len(self.node_keys)
        )
        return counts > 0

    # ------------------------------------------------------------------
    # Instance aggregates (Eqs. 7/9/12)
    # ------------------------------------------------------------------
    def instance_rates(
        self, sched: ScheduleArrays
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Per-instance ``(Lambda_k^f, external rate, request count)``.

        ``Lambda_k^f = sum_r z_{r,k}^f lambda_r / P_r`` (Eq. 7); the
        external rate is the same sum over the raw ``lambda_r``.
        """
        equivalent = np.bincount(
            sched.inst,
            weights=self.eff_rate[sched.req],
            minlength=self.num_instances,
        )
        external = np.bincount(
            sched.inst,
            weights=self.lambda_r[sched.req],
            minlength=self.num_instances,
        )
        counts = np.bincount(sched.inst, minlength=self.num_instances)
        return equivalent, external, counts

    def instance_utilizations(self, equivalent: np.ndarray) -> np.ndarray:
        """``rho_k^f = Lambda_k^f / mu_f`` (Eq. 9) for every instance."""
        return mm1_utilizations(equivalent, self.mu_inst)

    def instance_response_times(
        self, equivalent: np.ndarray, external: np.ndarray
    ) -> np.ndarray:
        """``W(f,k)`` per instance (Eq. 12); ``inf`` where unstable.

        Entries for idle instances (zero external rate) are ``nan`` and
        must be masked by the caller.
        """
        return mm1_mean_response_times(equivalent, self.mu_inst, external)

    # ------------------------------------------------------------------
    # Chain traversal (Eq. 16's communication term)
    # ------------------------------------------------------------------
    def chain_instances(self, sched: ScheduleArrays) -> np.ndarray:
        """Global instance index per chain entry; ``-1`` where the
        (request, VNF) pair has no schedule entry."""
        num_vnfs = len(self.vnf_names)
        codes_sorted, order = sched.sorted_codes(num_vnfs)
        chain_codes = self.chain_req * np.int64(num_vnfs) + self.chain_vnf
        pos = np.searchsorted(codes_sorted, chain_codes)
        pos_clipped = np.minimum(pos, max(len(sched) - 1, 0))
        if len(sched):
            found = (codes_sorted[pos_clipped] == chain_codes) & (
                self.chain_vnf >= 0
            )
            inst = np.where(found, sched.inst[order[pos_clipped]], -1)
        else:
            inst = np.full(len(chain_codes), -1, dtype=np.int64)
        return inst

    def hops_per_request(self, placement_vec: np.ndarray) -> np.ndarray:
        """Eq. (16)'s ``(sum_v eta_v^r - 1)`` with consecutive-duplicate
        collapsing: inter-node transitions along each chain."""
        node_seq = placement_vec[self.chain_vnf]
        if len(node_seq) < 2:
            return np.zeros(len(self.request_ids), dtype=np.int64)
        same_request = self.chain_req[1:] == self.chain_req[:-1]
        transition = same_request & (node_seq[1:] != node_seq[:-1])
        return np.bincount(
            self.chain_req[1:][transition], minlength=len(self.request_ids)
        )

    def topology_view(self, topology) -> Tuple[object, np.ndarray]:
        """Attach a fabric: its arrays + scenario-node -> compute map.

        ``topology`` is a ``DatacenterTopology`` or its
        ``TopologyArrays`` (duck-typed; :mod:`repro.core` never imports
        :mod:`repro.topology`).  Every scenario node key must name a
        compute node of the fabric.  The mapping is cached per fabric
        identity, so repeated evaluations against the same topology pay
        the key lookups once.
        """
        topo = topology.arrays() if hasattr(topology, "arrays") else topology
        if self._topo_attach is not None and self._topo_attach[0] is topo:
            return self._topo_attach
        node_compute = np.empty(len(self.node_keys), dtype=np.int64)
        for i, key in enumerate(self.node_keys):
            ci = topo.compute_index.get(key)
            if ci is None:
                ci = topo.compute_index.get(str(key))
            if ci is None:
                raise ValidationError(
                    f"scenario node {key!r} is not a compute node of "
                    f"topology arrays with {len(topo.compute_keys)} "
                    f"compute nodes"
                )
            node_compute[i] = ci
        self._topo_attach = (topo, node_compute)
        return self._topo_attach

    def topology_latency_per_request(
        self, placement_vec: np.ndarray, topology
    ) -> np.ndarray:
        """Eq. (16)'s communication term on a real fabric, per request.

        The flat-fabric term is ``hops_per_request(...) * L``; here each
        inter-node transition instead contributes the measured
        shortest-path latency between the two hosting nodes — gathered
        from the fabric's dense compute-pair matrix in one shot.  All
        chain VNFs must be placed (callers gate exactly as they do for
        :meth:`hops_per_request`).
        """
        topo, node_compute = self.topology_view(topology)
        node_seq = placement_vec[self.chain_vnf]
        num_requests = len(self.request_ids)
        if len(node_seq) < 2:
            return np.zeros(num_requests, dtype=np.float64)
        same_request = self.chain_req[1:] == self.chain_req[:-1]
        transition = same_request & (node_seq[1:] != node_seq[:-1])
        src = node_compute[node_seq[:-1][transition]]
        dst = node_compute[node_seq[1:][transition]]
        return np.bincount(
            self.chain_req[1:][transition],
            weights=topo.latency[src, dst],
            minlength=num_requests,
        )

    # ------------------------------------------------------------------
    # Inverted chain views (delta evaluation, see docs/ARRAYS_CORE.md)
    # ------------------------------------------------------------------
    def vnf_requests(self) -> Tuple[np.ndarray, np.ndarray]:
        """CSR of the inverted ``U_r^f`` incidence: VNF -> request indices.

        Returns ``(ptr, req)`` where ``req[ptr[f]:ptr[f+1]]`` lists the
        (ascending, deduplicated) indices of the requests whose chains
        include VNF ``f``.  This is the touch set of a relocate move:
        moving ``f`` can only change the hop counts of these requests.
        Static — chains never change on an owner — so it is built once
        and cached.  Entries with unknown VNF names (``chain_vnf < 0``)
        are skipped; consumers must gate on ``chain_has_unknown``.
        """
        if self._vnf_req_csr is None:
            num_vnfs = len(self.vnf_names)
            known = self.chain_vnf >= 0
            codes = np.unique(
                self.chain_vnf[known] * np.int64(len(self.request_ids) + 1)
                + self.chain_req[known]
            )
            vnf = codes // np.int64(len(self.request_ids) + 1)
            req = codes % np.int64(len(self.request_ids) + 1)
            ptr = np.zeros(num_vnfs + 1, dtype=np.int64)
            np.cumsum(np.bincount(vnf, minlength=num_vnfs), out=ptr[1:])
            self._vnf_req_csr = (ptr, req)
        return self._vnf_req_csr

    def vnf_chain_neighbors(self) -> Tuple[np.ndarray, np.ndarray]:
        """CSR of chain-adjacent VNF pairs: VNF -> neighbor VNF indices.

        Returns ``(ptr, nbr)`` where ``nbr[ptr[f]:ptr[f+1]]`` lists, with
        multiplicity, the VNF index on the other side of every adjacent
        same-request chain pair involving ``f`` exactly once (pairs of
        ``f`` with itself transfer no hops and are dropped).  The hop
        delta of relocating ``f`` from node ``s`` to node ``t`` is then

            ``count(placement[nbr] == s) - count(placement[nbr] == t)``

        — the entire Eq. (16) communication-term delta in two bincount
        lookups.  Static per scenario; built once and cached.  Only
        valid when ``chain_has_unknown`` is False.
        """
        if self._vnf_nbr_csr is None:
            num_vnfs = len(self.vnf_names)
            if len(self.chain_vnf) < 2:
                empty = np.zeros(0, dtype=np.int64)
                self._vnf_nbr_csr = (
                    np.zeros(num_vnfs + 1, dtype=np.int64),
                    empty,
                )
                return self._vnf_nbr_csr
            a = self.chain_vnf[:-1]
            b = self.chain_vnf[1:]
            pair = (
                (self.chain_req[1:] == self.chain_req[:-1])
                & (a != b)
                & (a >= 0)
                & (b >= 0)
            )
            owners = np.concatenate([a[pair], b[pair]])
            neighbors = np.concatenate([b[pair], a[pair]])
            order = np.argsort(owners, kind="stable")
            ptr = np.zeros(num_vnfs + 1, dtype=np.int64)
            np.cumsum(np.bincount(owners, minlength=num_vnfs), out=ptr[1:])
            self._vnf_nbr_csr = (ptr, neighbors[order])
        return self._vnf_nbr_csr

    def node_str_rank(self) -> np.ndarray:
        """Rank of each node in the stable ``str(node_key)`` ordering.

        ``node_str_rank()[i]`` is the position of ``node_keys[i]`` when
        the keys are sorted by their string form — the deterministic
        tie-break BFDSU's candidate ordering uses.  Static per scenario;
        built once and cached.
        """
        if self._node_str_rank is None:
            rank = np.empty(len(self.node_keys), dtype=np.int64)
            rank[
                sorted(
                    range(len(self.node_keys)),
                    key=lambda i: str(self.node_keys[i]),
                )
            ] = np.arange(len(self.node_keys))
            self._node_str_rank = rank
        return self._node_str_rank

    # ------------------------------------------------------------------
    # Request-row mutation (incremental serving)
    # ------------------------------------------------------------------
    def _ensure_mutable(self) -> None:
        """Switch the request/chain columns onto growable backing buffers.

        Idempotent; called by the first :meth:`append_request` /
        :meth:`remove_request`.  ``request_ids``/``chain_names`` become
        lists, the numpy request columns become slices of
        amortized-doubling buffers.
        """
        if self._lambda_buf is not None:
            return
        self.request_ids = list(self.request_ids)
        self.chain_names = list(self.chain_names)
        if not isinstance(self.request_index, dict):
            # Streamed scenarios carry a lazy id->index mapping view;
            # mutation needs a real dict it can assign into.
            self.request_index = dict(self.request_index)
        n = len(self.request_ids)
        c = len(self.chain_req)
        rcap = max(4, 2 * n)
        ccap = max(8, 2 * c)
        fdt = self.float_dtype
        idt = self.index_dtype
        self._lambda_buf = np.zeros(rcap, dtype=fdt)
        self._P_buf = np.zeros(rcap, dtype=fdt)
        self._eff_buf = np.zeros(rcap, dtype=fdt)
        self._chain_ptr_buf = np.zeros(rcap + 1, dtype=idt)
        self._chain_req_buf = np.zeros(ccap, dtype=idt)
        self._chain_vnf_buf = np.zeros(ccap, dtype=idt)
        self._lambda_buf[:n] = self.lambda_r
        self._P_buf[:n] = self.P_r
        self._eff_buf[:n] = self.eff_rate
        self._chain_ptr_buf[: n + 1] = self.chain_ptr
        self._chain_req_buf[:c] = self.chain_req
        self._chain_vnf_buf[:c] = self.chain_vnf
        self._reslice(n, c)

    @staticmethod
    def _grown(buf: np.ndarray, need: int) -> np.ndarray:
        """``buf`` itself, or a doubled copy with room for ``need``."""
        if need <= len(buf):
            return buf
        new = np.zeros(max(need, 2 * len(buf)), dtype=buf.dtype)
        new[: len(buf)] = buf
        return new

    def _reslice(self, num_requests: int, num_chain: int) -> None:
        """Point the public columns at the live buffer prefixes."""
        self.lambda_r = self._lambda_buf[:num_requests]
        self.P_r = self._P_buf[:num_requests]
        self.eff_rate = self._eff_buf[:num_requests]
        self.chain_ptr = self._chain_ptr_buf[: num_requests + 1]
        self.chain_req = self._chain_req_buf[:num_chain]
        self.chain_vnf = self._chain_vnf_buf[:num_chain]

    def _invalidate_request_caches(self) -> None:
        self._vnf_req_csr = None
        self._vnf_nbr_csr = None

    def append_request(self, request) -> int:
        """Append one request row (+ its chain entries); returns its index.

        Amortized O(|chain|) via the doubling buffers.  The appended
        columns are exactly what :meth:`build` would compute for the
        extended request sequence (same IEEE ``lambda / P`` division),
        and the request-derived CSR caches are invalidated.

        Raises
        ------
        ValidationError
            If ``request.request_id`` is already present.
        """
        rid = request.request_id
        if rid in self.request_index:
            raise ValidationError(
                f"duplicate request id {rid!r} appended to ScenarioArrays"
            )
        self._ensure_mutable()
        n = len(self.request_ids)
        c = int(self.chain_ptr[n])
        names = list(request.chain)
        m = len(names)
        self._lambda_buf = self._grown(self._lambda_buf, n + 1)
        self._P_buf = self._grown(self._P_buf, n + 1)
        self._eff_buf = self._grown(self._eff_buf, n + 1)
        self._chain_ptr_buf = self._grown(self._chain_ptr_buf, n + 2)
        self._chain_req_buf = self._grown(self._chain_req_buf, c + m)
        self._chain_vnf_buf = self._grown(self._chain_vnf_buf, c + m)
        ensure_index_capacity(c + m, self.index_dtype, "chain CSR table")
        ensure_index_capacity(n + 1, self.index_dtype, "request table")
        fdt = self.float_dtype.type
        lam = fdt(request.arrival_rate)
        p = fdt(request.delivery_probability)
        self._lambda_buf[n] = lam
        self._P_buf[n] = p
        self._eff_buf[n] = lam / p
        idxs = [self.vnf_index.get(name, -1) for name in names]
        self._chain_req_buf[c : c + m] = n
        self._chain_vnf_buf[c : c + m] = idxs
        self._chain_ptr_buf[n + 1] = c + m
        self.request_ids.append(rid)
        self.chain_names.extend(names)
        self.request_index[rid] = n
        if any(i < 0 for i in idxs):
            self.chain_has_unknown = True
        self._reslice(n + 1, c + m)
        self._invalidate_request_caches()
        return n

    def remove_request(self, request_id: str) -> int:
        """Remove one request row; returns the index it occupied.

        Later rows shift down one slot (their chain entries shift with
        them), so the surviving columns are exactly what :meth:`build`
        would produce for the surviving request sequence.  O(rows after
        the removed one); the request-derived CSR caches are
        invalidated.

        Raises
        ------
        ValidationError
            If ``request_id`` is unknown.
        """
        i = self.request_index.get(request_id)
        if i is None:
            raise ValidationError(
                f"cannot remove unknown request {request_id!r}"
            )
        self._ensure_mutable()
        n = len(self.request_ids)
        c = int(self.chain_ptr[n])
        lo = int(self.chain_ptr[i])
        hi = int(self.chain_ptr[i + 1])
        gap = hi - lo
        for buf in (self._lambda_buf, self._P_buf, self._eff_buf):
            buf[i : n - 1] = buf[i + 1 : n].copy()
        # Shifted chain entries all belong to requests after ``i``.
        self._chain_req_buf[lo : c - gap] = self._chain_req_buf[hi:c] - 1
        self._chain_vnf_buf[lo : c - gap] = self._chain_vnf_buf[hi:c].copy()
        self._chain_ptr_buf[i:n] = self._chain_ptr_buf[i + 1 : n + 1] - gap
        del self.request_ids[i]
        del self.chain_names[lo:hi]
        del self.request_index[request_id]
        for rid in self.request_ids[i:]:
            self.request_index[rid] -= 1
        self._reslice(n - 1, c - gap)
        self.chain_has_unknown = bool((self.chain_vnf < 0).any())
        self._invalidate_request_caches()
        return i

    def response_per_request(
        self,
        sched: ScheduleArrays,
        instance_w: np.ndarray,
    ) -> np.ndarray:
        """First term of Eq. (16): summed ``W(f,k)`` along each chain.

        Raises
        ------
        SchedulingError
            If some chain entry has no schedule assignment (mirroring
            :func:`repro.core.objectives.per_request_response_time`).
        """
        inst = self.chain_instances(sched)
        missing = inst < 0
        if missing.any():
            entry = int(np.argmax(missing))
            request_id = self.request_ids[int(self.chain_req[entry])]
            vnf_name = self.chain_names[entry]
            raise SchedulingError(
                f"request {request_id!r} unscheduled on "
                f"VNF {vnf_name!r}"
            )
        return np.bincount(
            self.chain_req,
            weights=instance_w[inst],
            minlength=len(self.request_ids),
        )


def cached_arrays(owner, builder) -> ScenarioArrays:
    """Fetch/build the ``ScenarioArrays`` cached on ``owner``.

    Works for frozen dataclasses too (attribute set bypasses
    ``__setattr__``).  ``builder`` is called once with ``owner``.
    """
    arrays = getattr(owner, "_scenario_arrays", None)
    if arrays is None:
        arrays = builder(owner)
        object.__setattr__(owner, "_scenario_arrays", arrays)
    return arrays
