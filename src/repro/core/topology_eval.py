"""Topology-aware evaluation of Eq. (16).

:func:`evaluate_deployment` charges a flat constant ``L`` per inter-node
hop, matching the paper's model.  When an actual fabric is available,
the communication term can instead use the *measured* shortest-path
latency between the nodes a chain traverses — this module provides that
refinement, so consolidation quality can be judged against real path
lengths (same-rack vs cross-fabric hops differ).

:func:`total_latency_on_topology` is vectorized: the response term comes
from the scenario's cached column arrays and the communication term is
one gather from the fabric's dense compute-pair latency matrix
(:meth:`ScenarioArrays.topology_latency_per_request
<repro.core.arrays.ScenarioArrays.topology_latency_per_request>`) —
no per-request Router loop.  The original per-request walk survives as
:func:`total_latency_on_topology_scalar`, the parity reference, and as
the fallback for degenerate states (unknown chain VNFs, unplaced chain
VNFs) so legacy errors surface unchanged.
"""

from __future__ import annotations

import math
from typing import Dict

import numpy as np

from repro.core.objectives import (
    _instance_response_times,
    per_request_response_time,
)
from repro.exceptions import SchedulingError, ValidationError
from repro.nfv.state import DeploymentState
from repro.topology.graph import DatacenterTopology
from repro.topology.routing import Router


def request_path_latency(
    state: DeploymentState,
    router: Router,
    request_id: str,
) -> float:
    """Total link latency of one request's node path over the fabric."""
    return router.path_latency(
        [str(n) for n in state.nodes_traversed(request_id)]
    )


def _check_nodes(state: DeploymentState, topology: DatacenterTopology) -> None:
    caps = topology.capacities()
    for node in state.nodes_in_service():
        if str(node) not in caps:
            raise ValidationError(
                f"placement node {node!r} is not a compute node of "
                f"{topology.name!r}"
            )


def total_latency_on_topology(
    state: DeploymentState,
    topology: DatacenterTopology,
) -> float:
    """Eq. (16) with real shortest-path latencies instead of a flat ``L``.

    Parameters
    ----------
    state:
        A complete, validated deployment whose node keys are compute
        nodes of ``topology``.
    topology:
        The fabric supplying link latencies.

    Raises
    ------
    ValidationError
        If a placement node is not a compute node of the topology.
    """
    _check_nodes(state, topology)
    arrays, sched, instance_w, _ = _instance_response_times(state)
    response = arrays.response_per_request(sched, instance_w)

    placement_vec = None
    if not arrays.chain_has_unknown:
        try:
            placement_vec = arrays.placement_vector(state.placement)
        except KeyError:
            placement_vec = None
        if placement_vec is not None and bool(
            (placement_vec[arrays.chain_vnf] < 0).any()
        ):
            placement_vec = None
    if placement_vec is not None:
        if np.isinf(response).any():
            return math.inf
        comm = arrays.topology_latency_per_request(placement_vec, topology)
        return float(np.sum(response + comm))

    return _total_latency_scalar_walk(state, topology, response, arrays)


def total_latency_on_topology_scalar(
    state: DeploymentState,
    topology: DatacenterTopology,
) -> float:
    """The per-request Router walk — the parity reference for
    :func:`total_latency_on_topology` (identical contract)."""
    _check_nodes(state, topology)
    response = per_request_response_time(state)
    router = Router(topology)
    total = 0.0
    for request in state.requests:
        w = response[request.request_id]
        if math.isinf(w):
            return math.inf
        total += w + request_path_latency(state, router, request.request_id)
    return total


def _total_latency_scalar_walk(state, topology, response, arrays) -> float:
    """Fallback walk for degenerate states (surfaces legacy errors)."""
    router = Router(topology)
    total = 0.0
    for i, request in enumerate(state.requests):
        w = float(response[i])
        if math.isinf(w):
            return math.inf
        total += w + request_path_latency(state, router, request.request_id)
    return total


def average_total_latency_on_topology(
    state: DeploymentState,
    topology: DatacenterTopology,
) -> float:
    """Per-request mean of :func:`total_latency_on_topology`."""
    if not state.requests:
        raise SchedulingError("deployment has no requests")
    return total_latency_on_topology(state, topology) / len(state.requests)


def communication_breakdown(
    state: DeploymentState,
    topology: DatacenterTopology,
) -> Dict[str, float]:
    """Per-request link-latency totals over the fabric (diagnostics)."""
    router = Router(topology)
    return {
        request.request_id: request_path_latency(
            state, router, request.request_id
        )
        for request in state.requests
    }
