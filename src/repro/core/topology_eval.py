"""Topology-aware evaluation of Eq. (16).

:func:`evaluate_deployment` charges a flat constant ``L`` per inter-node
hop, matching the paper's model.  When an actual fabric is available,
the communication term can instead use the *measured* shortest-path
latency between the nodes a chain traverses — this module provides that
refinement, so consolidation quality can be judged against real path
lengths (same-rack vs cross-fabric hops differ).
"""

from __future__ import annotations

import math
from typing import Dict

from repro.core.objectives import per_request_response_time
from repro.exceptions import SchedulingError, ValidationError
from repro.nfv.state import DeploymentState
from repro.topology.graph import DatacenterTopology
from repro.topology.routing import Router


def request_path_latency(
    state: DeploymentState,
    router: Router,
    request_id: str,
) -> float:
    """Total link latency of one request's node path over the fabric."""
    return router.path_latency(
        [str(n) for n in state.nodes_traversed(request_id)]
    )


def total_latency_on_topology(
    state: DeploymentState,
    topology: DatacenterTopology,
) -> float:
    """Eq. (16) with real shortest-path latencies instead of a flat ``L``.

    Parameters
    ----------
    state:
        A complete, validated deployment whose node keys are compute
        nodes of ``topology``.
    topology:
        The fabric supplying link latencies.

    Raises
    ------
    ValidationError
        If a placement node is not a compute node of the topology.
    """
    caps = topology.capacities()
    for node in state.nodes_in_service():
        if str(node) not in caps:
            raise ValidationError(
                f"placement node {node!r} is not a compute node of "
                f"{topology.name!r}"
            )
    router = Router(topology)
    response = per_request_response_time(state)
    total = 0.0
    for request in state.requests:
        w = response[request.request_id]
        if math.isinf(w):
            return math.inf
        total += w + request_path_latency(state, router, request.request_id)
    return total


def average_total_latency_on_topology(
    state: DeploymentState,
    topology: DatacenterTopology,
) -> float:
    """Per-request mean of :func:`total_latency_on_topology`."""
    if not state.requests:
        raise SchedulingError("deployment has no requests")
    return total_latency_on_topology(state, topology) / len(state.requests)


def communication_breakdown(
    state: DeploymentState,
    topology: DatacenterTopology,
) -> Dict[str, float]:
    """Per-request link-latency totals over the fabric (diagnostics)."""
    router = Router(topology)
    return {
        request.request_id: request_path_latency(
            state, router, request.request_id
        )
        for request in state.requests
    }
