"""Admission control: shedding load from overloaded service instances.

The paper (Sections I and III-B): "When the arrival rate is larger than
the service rate, the admission control mechanism will drop some requests
to ensure the normal operation of the services."  The *job rejection
rate* — rejected requests over offered requests — is the metric of
Figs. 15-16.

Policy implemented here: per overloaded instance, requests are rejected
in decreasing effective-rate order (shedding the heaviest flows first
restores stability with the fewest rejections) until the instance's
utilization drops below ``target_utilization``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from repro.exceptions import ValidationError
from repro.nfv.instance import ServiceInstance
from repro.nfv.request import Request

#: Default post-admission utilization ceiling.  Strictly below 1 so the
#: M/M/1 steady state exists after shedding.
DEFAULT_TARGET_UTILIZATION = 0.999


def power_of_two_admit(
    loads: np.ndarray,
    rate: float,
    rng: np.random.Generator,
    capacity: Optional[float] = None,
    fit_eps: float = 1e-9,
) -> int:
    """Power-of-two-choices warm-start admit: probe two, join the lighter.

    The classic load-balancing result (Mitzenmacher): sampling *two*
    uniform instances and joining the less loaded one drops the maximum
    load from ``Theta(log M / log log M)`` to ``Theta(log log M)`` —
    near-least-loaded quality at O(1) probe cost instead of the O(M)
    argmin scan of :func:`~repro.scheduling.least_loaded
    .least_loaded_admit`.

    Two ``rng.integers`` probes are consumed per call (also when the
    join is ultimately rejected), so the stream position is a pure
    function of the admit sequence.  Ties — including probing the same
    instance twice — resolve to the lower index, matching the argmin
    convention.  With ``capacity`` given the winner must stay within
    ``capacity + fit_eps`` (the Eq. (6) slack); a winner with
    non-finite load (a masked/down instance) is rejected.  Returns the
    instance index, or ``-1`` for rejection with every caller-side
    residual untouched.
    """
    m = len(loads)
    if not m:
        return -1
    picks = rng.integers(0, m, size=2)
    i, j = int(picks[0]), int(picks[1])
    if loads[i] < loads[j]:
        k = i
    elif loads[j] < loads[i]:
        k = j
    else:
        k = min(i, j)
    if not np.isfinite(loads[k]):
        return -1
    if capacity is not None and loads[k] + rate > capacity + fit_eps:
        return -1
    return k


@dataclass(frozen=True)
class AdmissionOutcome:
    """Result of applying admission control to a set of instances."""

    #: The instances with rejected requests removed (new objects; the
    #: inputs are not mutated).
    instances: List[ServiceInstance]
    #: All rejected requests, across instances.
    rejected: List[Request]

    @property
    def num_rejected(self) -> int:
        """Count of rejected requests."""
        return len(self.rejected)

    @property
    def num_admitted(self) -> int:
        """Count of requests still scheduled after shedding."""
        return sum(len(inst.requests) for inst in self.instances)

    @property
    def rejection_rate(self) -> float:
        """Rejected over offered (the Figs. 15-16 metric)."""
        offered = self.num_admitted + self.num_rejected
        if offered == 0:
            return 0.0
        return self.num_rejected / offered


def apply_admission_control(
    instances: Sequence[ServiceInstance],
    target_utilization: float = DEFAULT_TARGET_UTILIZATION,
) -> AdmissionOutcome:
    """Shed requests from overloaded instances until all are stable.

    Parameters
    ----------
    instances:
        Service instances with their scheduled requests.  Not mutated.
    target_utilization:
        Post-shedding utilization ceiling in ``(0, 1)``.

    Returns
    -------
    AdmissionOutcome
        Stabilized instances plus the rejected requests.
    """
    if not 0.0 < target_utilization < 1.0:
        raise ValidationError(
            f"target utilization must be in (0, 1), got {target_utilization!r}"
        )
    stabilized: List[ServiceInstance] = []
    rejected: List[Request] = []
    for instance in instances:
        capacity = instance.vnf.service_rate * target_utilization
        kept = ServiceInstance(vnf=instance.vnf, index=instance.index)
        # Admit in increasing effective-rate order, so when shedding is
        # necessary the heaviest flows are the ones rejected.
        load = 0.0
        overflow: List[Request] = []
        for request in sorted(instance.requests, key=lambda r: r.effective_rate):
            if load + request.effective_rate <= capacity:
                kept.assign(request)
                load += request.effective_rate
            else:
                overflow.append(request)
        rejected.extend(overflow)
        stabilized.append(kept)
    return AdmissionOutcome(instances=stabilized, rejected=rejected)
