"""The paper's primary contribution: the two-phase joint optimizer.

* :mod:`repro.core.admission` — admission control: overloaded service
  instances shed requests until stable, producing the job-rejection-rate
  metric.
* :mod:`repro.core.objectives` — evaluators for the paper's objective
  functions, Eqs. (13)-(16).
* :mod:`repro.core.evaluation` — end-to-end evaluation of a joint
  solution against the open-Jackson-network analytics.
* :mod:`repro.core.joint` — :class:`JointOptimizer`, the two-phase
  pipeline (place with BFDSU, then schedule with RCKK) with pluggable
  algorithms.
"""

from repro.core.admission import AdmissionOutcome, apply_admission_control
from repro.core.evaluation import EvaluationReport, evaluate_deployment
from repro.core.joint import JointOptimizer, JointSolution
from repro.core.objectives import (
    average_node_utilization,
    average_response_latency,
    total_latency,
    total_nodes_in_service,
)
from repro.core.scaling import (
    ScaleOutPlan,
    required_instances,
    scale_out,
    size_instances,
)
from repro.core.local_search import RefinementReport, refine_placement
from repro.core.incremental import (
    AdmitReport,
    DeploymentEngine,
    RebalanceReport,
    solve_joint,
)
from repro.core.online import OnlineScheduler
from repro.core.topology_eval import (
    average_total_latency_on_topology,
    total_latency_on_topology,
)

__all__ = [
    "JointOptimizer",
    "JointSolution",
    "apply_admission_control",
    "AdmissionOutcome",
    "evaluate_deployment",
    "EvaluationReport",
    "average_node_utilization",
    "total_nodes_in_service",
    "average_response_latency",
    "total_latency",
    "required_instances",
    "size_instances",
    "scale_out",
    "ScaleOutPlan",
    "total_latency_on_topology",
    "average_total_latency_on_topology",
    "refine_placement",
    "RefinementReport",
    "OnlineScheduler",
    "DeploymentEngine",
    "AdmitReport",
    "RebalanceReport",
    "solve_joint",
]
