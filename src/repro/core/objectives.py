"""Evaluators for the paper's objective functions, Eqs. (13)-(16).

These functions score a complete :class:`~repro.nfv.state.DeploymentState`:

* Eq. (13): maximize the average resource utilization of nodes in service.
* Eq. (14): minimize the number of nodes in service (complementary).
* Eq. (15): minimize the average response latency per service instance.
* Eq. (16): minimize the total latency of all requests — per-request
  instance response times plus ``(sum_v eta_v^r - 1) * L`` link latency.

All four run on the state's cached :class:`~repro.core.arrays.ScenarioArrays`
(segment sums over instance/request columns); degenerate states — an
unplaced chain VNF, a node missing from the capacity map — drop to the
scalar walk so the legacy error surfaces unchanged.
"""

from __future__ import annotations

import math
from typing import Dict, Tuple

import numpy as np

from repro.exceptions import SchedulingError
from repro.nfv.state import DeploymentState


def average_node_utilization(state: DeploymentState) -> float:
    """Objective 1 (Eq. 13): mean load/capacity over used nodes."""
    return state.average_node_utilization()


def total_nodes_in_service(state: DeploymentState) -> int:
    """The complementary objective (Eq. 14): ``sum_v y_v``."""
    return state.total_nodes_in_service()


def _instance_response_times(state: DeploymentState) -> Tuple:
    """``(arrays, sched, instance_w, serving)`` for the current schedule.

    ``instance_w`` holds ``W(f,k)`` per global instance — ``inf`` for an
    unstable serving instance, ``nan`` for an idle one.
    """
    arrays = state.arrays()
    sched = state.schedule_arrays()
    equivalent, external, counts = arrays.instance_rates(sched)
    instance_w = arrays.instance_response_times(equivalent, external)
    return arrays, sched, instance_w, counts > 0


def average_response_latency(state: DeploymentState) -> float:
    """Objective 2 (Eq. 15): mean ``W(f,k)`` over serving instances.

    Instances with no scheduled requests are skipped (their ``W`` is
    undefined); an unstable serving instance yields ``inf``.
    """
    _, _, instance_w, serving = _instance_response_times(state)
    if not serving.any():
        raise SchedulingError("no instance serves any request")
    w = instance_w[serving]
    if np.isinf(w).any():
        return math.inf
    return float(w.sum() / len(w))


def per_request_response_time(state: DeploymentState) -> Dict[str, float]:
    """Each request's summed instance response times along its chain.

    The first term of Eq. (16): ``sum_f sum_k z_{r,k}^f U_r^f W(f,k)``.
    """
    arrays, sched, instance_w, _ = _instance_response_times(state)
    totals = arrays.response_per_request(sched, instance_w)
    return {
        request_id: float(total)
        for request_id, total in zip(arrays.request_ids, totals)
    }


def total_latency(state: DeploymentState, link_latency: float) -> float:
    """Eq. (16): summed response + communication latency of all requests.

    Parameters
    ----------
    state:
        A complete, validated deployment.
    link_latency:
        The per-hop constant ``L`` (propagation + transmission).
    """
    arrays, sched, instance_w, _ = _instance_response_times(state)
    response = arrays.response_per_request(sched, instance_w)

    placement_vec = None
    if not arrays.chain_has_unknown:
        try:
            placement_vec = arrays.placement_vector(state.placement)
        except KeyError:
            placement_vec = None
        if placement_vec is not None and bool(
            (placement_vec[arrays.chain_vnf] < 0).any()
        ):
            placement_vec = None
    if placement_vec is not None:
        hops = arrays.hops_per_request(placement_vec)
        return float(np.sum(response + hops * link_latency))

    # Scalar fallback: surfaces the legacy unplaced-VNF error.
    total = 0.0
    for i, request in enumerate(state.requests):
        hops = state.inter_node_hops(request.request_id)
        total += float(response[i]) + hops * link_latency
    return total


def average_total_latency(state: DeploymentState, link_latency: float) -> float:
    """Eq. (16) normalized per request — the paper's headline latency."""
    n = len(state.requests)
    if n == 0:
        raise SchedulingError("deployment has no requests")
    return total_latency(state, link_latency) / n
