"""Evaluators for the paper's objective functions, Eqs. (13)-(16).

These functions score a complete :class:`~repro.nfv.state.DeploymentState`:

* Eq. (13): maximize the average resource utilization of nodes in service.
* Eq. (14): minimize the number of nodes in service (complementary).
* Eq. (15): minimize the average response latency per service instance.
* Eq. (16): minimize the total latency of all requests — per-request
  instance response times plus ``(sum_v eta_v^r - 1) * L`` link latency.
"""

from __future__ import annotations

import math
from typing import Dict, Tuple

from repro.exceptions import SchedulingError
from repro.nfv.state import DeploymentState


def average_node_utilization(state: DeploymentState) -> float:
    """Objective 1 (Eq. 13): mean load/capacity over used nodes."""
    return state.average_node_utilization()


def total_nodes_in_service(state: DeploymentState) -> int:
    """The complementary objective (Eq. 14): ``sum_v y_v``."""
    return state.total_nodes_in_service()


def average_response_latency(state: DeploymentState) -> float:
    """Objective 2 (Eq. 15): mean ``W(f,k)`` over serving instances.

    Instances with no scheduled requests are skipped (their ``W`` is
    undefined); an unstable serving instance yields ``inf``.
    """
    serving = [inst for inst in state.instances() if inst.requests]
    if not serving:
        raise SchedulingError("no instance serves any request")
    if not all(inst.is_stable for inst in serving):
        return math.inf
    return sum(inst.mean_response_time for inst in serving) / len(serving)


def per_request_response_time(state: DeploymentState) -> Dict[str, float]:
    """Each request's summed instance response times along its chain.

    The first term of Eq. (16): ``sum_f sum_k z_{r,k}^f U_r^f W(f,k)``.
    """
    instance_w: Dict[Tuple[str, int], float] = {}
    for inst in state.instances():
        if inst.requests:
            instance_w[inst.key] = (
                inst.mean_response_time if inst.is_stable else math.inf
            )
    totals: Dict[str, float] = {}
    for request in state.requests:
        total = 0.0
        for vnf_name in request.chain:
            k = state.schedule.get((request.request_id, vnf_name))
            if k is None:
                raise SchedulingError(
                    f"request {request.request_id!r} unscheduled on "
                    f"VNF {vnf_name!r}"
                )
            total += instance_w[(vnf_name, k)]
        totals[request.request_id] = total
    return totals


def total_latency(state: DeploymentState, link_latency: float) -> float:
    """Eq. (16): summed response + communication latency of all requests.

    Parameters
    ----------
    state:
        A complete, validated deployment.
    link_latency:
        The per-hop constant ``L`` (propagation + transmission).
    """
    response = per_request_response_time(state)
    total = 0.0
    for request in state.requests:
        hops = state.inter_node_hops(request.request_id)
        total += response[request.request_id] + hops * link_latency
    return total


def average_total_latency(state: DeploymentState, link_latency: float) -> float:
    """Eq. (16) normalized per request — the paper's headline latency."""
    n = len(state.requests)
    if n == 0:
        raise SchedulingError("deployment has no requests")
    return total_latency(state, link_latency) / n
