"""Shared solver delta kernels — the incremental-update building blocks.

PR 3's array-native solvers all reduce to the same handful of
incremental primitives: a bincount over chain-neighbor placements that
scores every relocate target at once, an O(1) capacity fit check
against a running load vector, trial-commit/revert bookkeeping against
per-link bandwidth residuals, and a prefix-max record-breaker replay of
the legacy sequential acceptance rule.  They used to live as private
helpers inside :mod:`repro.core.local_search` and
:mod:`repro.scheduling.swap_refine`; this module promotes them to a
public, shared surface so the batch solvers and the incremental
:class:`~repro.core.incremental.DeploymentEngine` run the *same* code.

Byte-identity contract
----------------------
Every function here was moved verbatim (same numpy op sequence, same
accumulation order, same tie-breaking) from its original call site.
The batch solvers wired on top — ``refine_placement``,
``swap_placement``, ``refine_assignment``, BFDSU — therefore remain
byte-identical per seed to the pre-refactor implementations, which is
pinned by ``tests/core/test_solver_kernel_parity.py`` against the
legacy loops in ``benchmarks/_reference_impl.py``.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

#: Capacity slack absorbing float accumulation error (the Eq. (6)
#: convention).  BFDSU and the relocate/swap passes all compare against
#: ``capacity + FIT_EPS``; :mod:`repro.placement.bfdsu` re-exports this
#: for backward compatibility.
FIT_EPS = 1e-9


def relocate_scores(
    placement_vec: np.ndarray,
    nbr: np.ndarray,
    demand: float,
    loads: np.ndarray,
    capacity_slack: np.ndarray,
    num_nodes: int,
    source: int,
) -> tuple:
    """Score every relocate target of one VNF in two bincount-style ops.

    ``nbr`` is the VNF's chain-neighbor multiset slice
    (:meth:`ScenarioArrays.vnf_chain_neighbors`); the hop delta of
    moving the VNF from ``source`` to node ``t`` is
    ``count(placement[nbr] == source) - count(placement[nbr] == t)``,
    so ``neighbor_counts`` ranks all targets at once.  Targets without
    capacity room (``loads + demand > capacity + FIT_EPS``) and the
    source itself score ``-1``.

    Returns ``(neighbor_counts, scores)``; a move to ``t`` improves the
    Eq. (16) total iff ``scores[t] > neighbor_counts[source]``.
    """
    neighbor_counts = np.bincount(
        placement_vec[nbr], minlength=num_nodes
    )
    fits = loads + demand <= capacity_slack
    scores = np.where(fits, neighbor_counts, -1)
    scores[source] = -1
    return neighbor_counts, scores


def best_allowed_target(
    scores: np.ndarray, allowed: Optional[np.ndarray] = None
) -> int:
    """Best-scoring feasible target under an optional allow-mask.

    The selection half of a masked relocate: ``scores`` follows the
    :func:`relocate_scores` convention (``-1`` marks an infeasible
    target), ``allowed`` is a boolean node mask (e.g. the non-failed
    nodes during crash recovery — :mod:`repro.faults.recovery`).
    Returns the argmax over the allowed feasible targets, first index
    on ties (the deterministic ``np.argmax`` rule), or ``-1`` when no
    target survives the mask.
    """
    if allowed is not None:
        scores = np.where(allowed, scores, -1)
    t = int(np.argmax(scores))
    return t if scores[t] >= 0 else -1


def best_bandwidth_feasible(
    network,
    fi: int,
    source: int,
    placement_vec: np.ndarray,
    link_loads: np.ndarray,
    scores: np.ndarray,
    source_score: int,
) -> Optional[int]:
    """Best improving target that also passes the link-bandwidth check.

    Scans candidates in descending score (ties in node order — the same
    ranking the unconstrained argmax applies) and returns the first that
    fits, with ``link_loads`` updated to the committed move; returns
    ``None`` (state untouched) when no improving target fits.
    """
    # Retract f's routed flows so the residuals describe "f unplaced".
    network.add_flows(fi, source, placement_vec, link_loads, -1.0)
    placement_vec[fi] = -1
    chosen: Optional[int] = None
    for t in np.argsort(-scores, kind="stable"):
        t = int(t)
        if scores[t] <= source_score:
            break
        if network.fits(fi, t, placement_vec, link_loads):
            chosen = t
            break
    if chosen is None:
        placement_vec[fi] = source
        network.add_flows(fi, source, placement_vec, link_loads, 1.0)
        return None
    network.add_flows(fi, chosen, placement_vec, link_loads, 1.0)
    return chosen


def try_swap_bandwidth(
    network, f: int, g: int, s: int, t: int, pl: np.ndarray, link_loads
) -> bool:
    """Trial-commit the swap against link bandwidth; False reverts all.

    On True, ``link_loads`` reflects the swapped flows and ``pl`` holds
    the swapped nodes (the caller's subsequent assignment is a no-op).
    """
    network.add_flows(f, s, pl, link_loads, -1.0)
    pl[f] = -1
    network.add_flows(g, t, pl, link_loads, -1.0)
    pl[g] = -1
    if not network.fits(f, t, pl, link_loads):
        network.add_flows(g, t, pl, link_loads, 1.0)
        pl[g] = t
        network.add_flows(f, s, pl, link_loads, 1.0)
        pl[f] = s
        return False
    network.add_flows(f, t, pl, link_loads, 1.0)
    pl[f] = t
    if not network.fits(g, s, pl, link_loads):
        network.add_flows(f, t, pl, link_loads, -1.0)
        pl[f] = -1
        network.add_flows(g, t, pl, link_loads, 1.0)
        pl[g] = t
        network.add_flows(f, s, pl, link_loads, 1.0)
        pl[f] = s
        return False
    network.add_flows(g, s, pl, link_loads, 1.0)
    pl[g] = s
    return True


def select_improving_record_breaker(
    deltas: np.ndarray, margin: float = 1e-12
) -> int:
    """Replay the legacy sequential acceptance rule on a delta vector.

    The legacy candidate scans accepted ``delta > best + margin`` with
    ``best`` updated on accept — so the accepted candidates are all
    strict prefix-maximum record breakers.  A ``maximum.accumulate``
    prefix scan extracts the record breakers; the margin rule replayed
    on that short list selects the identical winner.  Returns the flat
    index of the winning candidate, or ``-1`` when none improves.
    """
    prev = np.concatenate(
        ([-np.inf], np.maximum.accumulate(deltas)[:-1])
    )
    best_delta = 0.0
    sel = -1
    for i in np.flatnonzero(deltas > prev):
        if deltas[i] > best_delta + margin:
            best_delta = float(deltas[i])
            sel = int(i)
    return sel


class UniformBlock:
    """Batched ``uniform(0, 1)`` draws, bit-identical to scalar draws.

    ``Generator.uniform(0.0, s)`` computes ``s * random()`` — one double
    off the bit stream — and ``Generator.random(n)`` fills ``n`` doubles
    from the *same* stream in the same order as ``n`` scalar calls.
    Pre-drawing a block and scaling each value by the per-draw weight
    sum therefore reproduces every legacy ``xi`` exactly, while
    amortizing the per-call Generator dispatch over ``block`` draws —
    which dominates the BFDSU hot loop at million-draw scale.

    The block may over-consume the underlying stream by up to
    ``block - 1`` doubles relative to scalar drawing; callers that
    share an RNG with non-block consumers must route *every* draw
    through the block (as :class:`~repro.placement.bfdsu.BFDSUPlacement`
    does) so the k-th draw always reads the k-th stream double.
    """

    __slots__ = ("_rng", "_block", "_buf", "_pos")

    def __init__(self, rng: np.random.Generator, block: int = 4096) -> None:
        if block < 1:
            raise ValueError(f"block must be >= 1, got {block!r}")
        self._rng = rng
        self._block = int(block)
        self._buf = np.empty(0)
        self._pos = 0

    def next(self) -> float:
        """The next uniform(0, 1) double of the underlying stream."""
        if self._pos >= len(self._buf):
            self._buf = self._rng.random(self._block)
            self._pos = 0
        u = self._buf[self._pos]
        self._pos += 1
        return float(u)


def weighted_draw_index(
    residuals: np.ndarray,
    demand: float,
    rng: Optional[np.random.Generator] = None,
    offset: float = 1.0,
    u01: Optional[float] = None,
) -> int:
    """Draw a position from ``residuals`` (ascending-RST candidate order).

    The kernel form of BFDSU Algorithm 1's lines 12-16: weights
    ``1 / (offset + RST(v) - D_f^sum)``, one ``uniform(0, sum(weights))``
    RNG consumption, selection by ``searchsorted`` over the cumulative
    weights.  The cumulative sum accumulates left-to-right exactly like
    the legacy running total, so the same ``xi`` selects the same
    position.  The floating-point edge ``xi == sum(weights)`` returns
    the last candidate, as the legacy loop's fall-through did.

    ``u01`` supplies a pre-drawn uniform(0, 1) double (see
    :class:`UniformBlock`) instead of consuming ``rng``;
    ``sum(weights) * u01`` is bitwise what ``uniform(0, sum)`` computes,
    so both forms select identical positions.
    """
    weights = 1.0 / (offset + residuals - demand)
    cumulative = weights.cumsum()
    if u01 is None:
        xi = rng.uniform(0.0, float(cumulative[-1]))
    else:
        xi = float(cumulative[-1]) * u01
    pos = int(cumulative.searchsorted(xi, side="right"))
    return min(pos, len(weights) - 1)
