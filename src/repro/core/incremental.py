"""Incremental deployment engine — admit/depart/rebalance over churn.

The paper's two-phase optimizer solves placement and scheduling for a
*known* request set; in operation requests arrive and depart
continuously (the online joint placement regime of Xu et al. and the
incremental-embedding loop of B-JointSP).  :class:`DeploymentEngine`
turns the batch machinery into a long-running service:

* **admit(request)** — O(chain) warm-start join: each chain VNF picks
  its least-loaded instance (:func:`~repro.scheduling.least_loaded
  .least_loaded_admit`), gated by the Eq. (9) utilization cap and, with
  a fabric attached, by the per-link bandwidth residuals
  (:meth:`~repro.topology.network.NetworkModel.chain_fits`).  A
  rejected admit leaves every residual untouched.
* **depart(request_id)** — exact inverse: instance loads and routed
  chain flows are retracted, the request row leaves the columnar
  scenario (:meth:`~repro.core.arrays.ScenarioArrays.remove_request`).
* **rebalance()** — periodic re-optimization: a from-scratch two-phase
  solve (BFDSU + the configured scheduler) over the *surviving*
  requests with a fresh seeded RNG, reporting how many VNFs moved and
  how many schedule entries migrated.

Determinism contract
--------------------
``rebalance()`` re-solves with ``np.random.default_rng(seed)`` — the
same seed every time — over the survivors in arrival order.  The state
after any admit/depart sequence followed by ``rebalance()`` is
therefore *identical* to :func:`solve_joint` on the surviving request
set, with and without ``bandwidth=`` (pinned by
``tests/core/test_incremental.py``).  Between rebalances the engine's
residual bookkeeping (instance loads, link loads) matches a
from-scratch recompute to float accumulation error.

The solvers underneath run the exact kernels of the batch path
(:mod:`repro.core.deltas`); see ``docs/SERVING.md`` for the full
contract (what is O(1), what triggers a rebuild).

Failure support (PR 9)
----------------------
:meth:`fail_node` / :meth:`fail_instance` mass-evict every chain
touching the failed component with the exact :meth:`depart` retraction
and mark it unschedulable; :meth:`recover_node` /
:meth:`recover_instance` restore it.  :meth:`move_vnf` relocates one
VNF's instances (the repair primitive of :mod:`repro.faults.recovery`),
and :meth:`rebalance` accepts a migration-cost ``budget``.  With no
failures injected and no budget, every code path is byte-identical to
the pre-fault engine — see ``docs/RESILIENCE.md``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Hashable, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.core.admission import (
    DEFAULT_TARGET_UTILIZATION,
    power_of_two_admit,
)
from repro.core.arrays import ScenarioArrays
from repro.core.deltas import FIT_EPS
from repro.exceptions import InfeasiblePlacementError, SchedulingError
from repro.nfv.request import Request
from repro.nfv.state import DeploymentState
from repro.nfv.vnf import VNF
from repro.placement.base import PlacementProblem
from repro.placement.bfdsu import BFDSUPlacement
from repro.scheduling.base import SchedulingAlgorithm, schedule_all_vnfs
from repro.scheduling.least_loaded import least_loaded_admit
from repro.scheduling.rckk import RCKKScheduler
from repro.seeding import DEFAULT_SEED, RngLike, resolve_rng

#: Admission policies :class:`DeploymentEngine` knows how to run.
ADMISSION_POLICIES = ("least-loaded", "power-of-two")

__all__ = [
    "ADMISSION_POLICIES",
    "AdmitReport",
    "DeploymentEngine",
    "RebalanceReport",
    "solve_joint",
]


def _fresh_rng(seed: Optional[int]) -> np.random.Generator:
    """The engine's seed policy: one fixed seed, fresh stream per solve."""
    return np.random.default_rng(DEFAULT_SEED if seed is None else int(seed))


def _distinct_chains(requests: Sequence[Request]) -> tuple:
    """Distinct service chains in first-seen order (JointOptimizer's rule)."""
    seen = set()
    chains = []
    for request in requests:
        key = request.chain.vnf_names
        if key not in seen:
            seen.add(key)
            chains.append(request.chain)
    return tuple(chains)


def solve_joint(
    vnfs: Sequence[VNF],
    requests: Sequence[Request],
    node_capacities: Mapping[Hashable, float],
    *,
    seed: Optional[int] = None,
    scheduler: Optional[SchedulingAlgorithm] = None,
    topology=None,
    bandwidth=None,
) -> DeploymentState:
    """One from-scratch two-phase solve under the engine's seed policy.

    This is exactly what :meth:`DeploymentEngine.rebalance` runs over
    the surviving request set: BFDSU with ``default_rng(seed)`` (with a
    bandwidth-constrained candidate filter when ``topology`` is given)
    followed by the scheduler over the requests *in the given order*.
    Exposed so the identity between the engine under churn and a batch
    re-solve is checkable — and so callers can price that re-solve.
    """
    from repro.topology.network import NetworkModel

    chains = _distinct_chains(requests)
    problem = PlacementProblem(
        vnfs=vnfs, capacities=node_capacities, chains=chains
    )
    network = None
    if topology is not None:
        network = NetworkModel.for_problem(
            problem, topology, requests=requests, bandwidth=bandwidth
        )
    placement_result = BFDSUPlacement(
        rng=_fresh_rng(seed), network=network
    ).place(problem)
    algorithm = scheduler if scheduler is not None else RCKKScheduler()
    schedule = schedule_all_vnfs(vnfs, requests, algorithm)
    state = DeploymentState(
        vnfs=list(vnfs),
        requests=list(requests),
        node_capacities=dict(node_capacities),
        placement=dict(placement_result.placement),
        schedule=schedule,
    )
    state.validate()
    return state


@dataclass(frozen=True)
class AdmitReport:
    """Outcome of one :meth:`DeploymentEngine.admit` call."""

    request_id: str
    admitted: bool
    #: ``vnf_name -> instance k`` for an admitted request; empty else.
    assignment: Dict[str, int] = field(default_factory=dict)
    #: ``None`` when admitted; ``"capacity"`` / ``"bandwidth"`` /
    #: ``"unavailable"`` (a chain VNF sits on a failed node or has all
    #: instances down) else.
    reason: Optional[str] = None


@dataclass(frozen=True)
class RebalanceReport:
    """Outcome of one :meth:`DeploymentEngine.rebalance` call."""

    #: VNFs whose hosting node changed.
    placement_moves: int
    #: Surviving ``(request, vnf)`` entries whose instance changed.
    schedule_migrations: int
    #: Requests active at rebalance time.
    active_requests: int
    #: False when the solve was skipped — over the migration budget or
    #: infeasible on the surviving (non-failed) nodes; engine state is
    #: then unchanged.
    committed: bool = True

    @property
    def total_migrations(self) -> int:
        return self.placement_moves + self.schedule_migrations


class DeploymentEngine:
    """Mutable joint deployment under request churn.

    Owns the placement vector, per-instance load residuals, the
    ``(request_id, vnf_name) -> k`` schedule and (with a fabric) the
    per-link routed-flow residuals, all kept incrementally consistent
    by :meth:`admit` / :meth:`depart` and reset to the batch optimum by
    :meth:`rebalance`.

    Parameters
    ----------
    vnfs, node_capacities:
        The static infrastructure (``F`` and ``A_v``); immutable for
        the engine's lifetime — only requests churn.
    requests:
        Initially active requests; the engine starts from a full
        re-solve over them.
    seed:
        The rebalance seed policy (default
        :data:`~repro.seeding.DEFAULT_SEED`); every rebalance re-solves
        with a fresh ``default_rng(seed)``.
    scheduler:
        Rebalance-time scheduling algorithm (default RCKK).  Admits
        use the warm-start least-loaded rule regardless.
    topology, bandwidth:
        Optional fabric: admits gain a link-bandwidth gate and
        rebalances run bandwidth-constrained BFDSU.  ``bandwidth``
        follows :meth:`NetworkModel.build`'s convention.
    target_utilization:
        Admission cap per instance: a chain VNF join is rejected when
        its least-loaded instance would exceed
        ``mu_f * target_utilization`` (the Eq. (9) stability margin of
        :mod:`repro.core.admission`).  ``None`` disables the cap.
    admission:
        Instance-selection rule for admits: ``"least-loaded"``
        (default; :func:`~repro.scheduling.least_loaded
        .least_loaded_admit`) or ``"power-of-two"``
        (:func:`~repro.core.admission.power_of_two_admit` — two seeded
        uniform probes per chain VNF, lower load wins).
    admission_rng:
        Seed policy for the ``"power-of-two"`` sampler, resolved via
        :func:`repro.seeding.resolve_rng` (``None`` gives the
        documented default stream).  Unused by ``"least-loaded"``.
    """

    def __init__(
        self,
        vnfs: Sequence[VNF],
        node_capacities: Mapping[Hashable, float],
        requests: Sequence[Request] = (),
        *,
        seed: Optional[int] = None,
        scheduler: Optional[SchedulingAlgorithm] = None,
        topology=None,
        bandwidth=None,
        target_utilization: Optional[float] = DEFAULT_TARGET_UTILIZATION,
        admission: str = "least-loaded",
        admission_rng: RngLike = None,
    ) -> None:
        self._vnfs = tuple(vnfs)
        self._capacities = dict(node_capacities)
        self._seed = DEFAULT_SEED if seed is None else int(seed)
        self._scheduler = scheduler if scheduler is not None else RCKKScheduler()
        self._topology = topology
        self._bandwidth = bandwidth
        self._target = target_utilization
        self._arrays = ScenarioArrays.build(
            self._vnfs, requests, self._capacities
        )
        #: Active requests in arrival order (dicts preserve insertion).
        self._requests: Dict[str, Request] = {
            r.request_id: r for r in requests
        }
        if len(self._requests) != len(tuple(requests)):
            raise SchedulingError("duplicate request ids in initial set")
        self._placement: Dict[str, Hashable] = {}
        self._placement_vec = np.full(len(self._vnfs), -1, dtype=np.int64)
        self._schedule: Dict[Tuple[str, str], int] = {}
        self._inst_loads = np.zeros(self._arrays.num_instances)
        self._network = None
        self._link_loads: Optional[np.ndarray] = None
        if admission not in ADMISSION_POLICIES:
            raise SchedulingError(
                f"unknown admission policy {admission!r}; "
                f"expected one of {ADMISSION_POLICIES}"
            )
        self._admission = admission
        self._admission_rng = (
            resolve_rng(admission_rng)
            if admission == "power-of-two"
            else None
        )
        #: Node keys currently marked failed (unschedulable).
        self._failed_nodes: set = set()
        #: Per-global-instance down mask; ``None`` until the first
        #: instance fault so the fault-free path costs nothing.
        self._down_inst: Optional[np.ndarray] = None
        self._resolve()

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def num_active(self) -> int:
        return len(self._requests)

    @property
    def target_utilization(self) -> Optional[float]:
        """The admission cap (``None`` when disabled)."""
        return self._target

    @property
    def active_requests(self) -> Tuple[str, ...]:
        """Active request ids, in arrival order."""
        return tuple(self._requests)

    @property
    def arrays(self) -> ScenarioArrays:
        """The engine's live columnar view (read-only by convention)."""
        return self._arrays

    @property
    def failed_nodes(self) -> frozenset:
        """Node keys currently marked failed."""
        return frozenset(self._failed_nodes)

    @property
    def admission(self) -> str:
        """The configured admission policy name."""
        return self._admission

    def placement_vector(self) -> np.ndarray:
        """VNF index -> node index under the current placement (copy)."""
        return self._placement_vec.copy()

    def down_instances(self) -> np.ndarray:
        """Boolean down-mask per global instance (copy; all-False when
        no instance fault was ever injected)."""
        if self._down_inst is None:
            return np.zeros(self._arrays.num_instances, dtype=bool)
        return self._down_inst.copy()

    @property
    def placement(self) -> Dict[str, Hashable]:
        """``vnf_name -> node`` (copy)."""
        return dict(self._placement)

    def instance_loads(self) -> np.ndarray:
        """Equivalent arrival rate per global instance (copy)."""
        return self._inst_loads.copy()

    def assignment_of(self, request_id: str) -> Dict[str, int]:
        """``vnf_name -> instance k`` of one active request."""
        request = self._requests.get(request_id)
        if request is None:
            raise SchedulingError(f"unknown request {request_id!r}")
        return {
            name: self._schedule[(request_id, name)]
            for name in request.chain
        }

    def state(self) -> DeploymentState:
        """The current deployment as a validated batch-layer object."""
        state = DeploymentState(
            vnfs=list(self._vnfs),
            requests=list(self._requests.values()),
            node_capacities=dict(self._capacities),
            placement=dict(self._placement),
            schedule=dict(self._schedule),
        )
        state.validate()
        return state

    # ------------------------------------------------------------------
    # Churn operations
    # ------------------------------------------------------------------
    def admit(self, request: Request) -> AdmitReport:
        """Warm-start join of one arriving request (O(chain) kernels).

        Each chain VNF joins its least-loaded instance if that keeps
        the instance within ``mu_f * target_utilization``; with a
        fabric, the chain's routed flow must also fit every link's
        residual bandwidth.  On rejection nothing changes.

        Raises
        ------
        SchedulingError
            If the id is already active or the chain references a VNF
            unknown to the engine (caller errors, not admission
            outcomes).
        """
        rid = request.request_id
        if rid in self._requests:
            raise SchedulingError(f"request {rid!r} is already active")
        arrays = self._arrays
        chain_names = list(request.chain)
        chain_idx = np.empty(len(chain_names), dtype=np.int64)
        for i, name in enumerate(chain_names):
            fi = arrays.vnf_index.get(name)
            if fi is None:
                raise SchedulingError(
                    f"request {rid!r} uses unknown VNF {name!r}"
                )
            chain_idx[i] = fi
        eff = float(request.effective_rate)

        if self._failed_nodes:
            for name in chain_names:
                if self._placement.get(name) in self._failed_nodes:
                    return AdmitReport(
                        request_id=rid, admitted=False, reason="unavailable"
                    )

        joins: List[Tuple[int, int]] = []  # (vnf index, instance k)
        for fi in chain_idx:
            fi = int(fi)
            off = int(arrays.instance_offset[fi])
            m = int(arrays.M_f[fi])
            cap = (
                None
                if self._target is None
                else float(arrays.mu_f[fi]) * self._target
            )
            loads = self._inst_loads[off : off + m]
            if self._down_inst is not None:
                down = self._down_inst[off : off + m]
                if down.all():
                    return AdmitReport(
                        request_id=rid, admitted=False, reason="unavailable"
                    )
                if down.any():
                    # Masked copy: down instances can never win the
                    # argmin / probe, the live loads are untouched.
                    loads = np.where(down, np.inf, loads)
            if self._admission == "power-of-two":
                k = power_of_two_admit(
                    loads, eff, self._admission_rng, capacity=cap
                )
            else:
                k = least_loaded_admit(loads, eff, capacity=cap)
            if k < 0 or not np.isfinite(loads[k]):
                return AdmitReport(
                    request_id=rid, admitted=False, reason="capacity"
                )
            joins.append((fi, k))
        if self._network is not None and not self._network.chain_fits(
            chain_idx, self._placement_vec, self._link_loads, eff
        ):
            return AdmitReport(
                request_id=rid, admitted=False, reason="bandwidth"
            )

        # Commit.
        arrays.append_request(request)
        self._requests[rid] = request
        assignment: Dict[str, int] = {}
        for (fi, k), name in zip(joins, chain_names):
            self._schedule[(rid, name)] = k
            self._inst_loads[int(arrays.instance_offset[fi]) + k] += eff
            assignment[name] = k
        if self._network is not None:
            self._network.add_chain_flows(
                chain_idx, self._placement_vec, self._link_loads, eff
            )
        return AdmitReport(
            request_id=rid, admitted=True, assignment=assignment
        )

    def depart(self, request_id: str) -> None:
        """Retract one active request — the exact inverse of its admit.

        Raises
        ------
        SchedulingError
            If ``request_id`` is not active.
        """
        request = self._requests.pop(request_id, None)
        if request is None:
            raise SchedulingError(f"unknown request {request_id!r}")
        arrays = self._arrays
        eff = float(request.effective_rate)
        chain_names = list(request.chain)
        chain_idx = np.empty(len(chain_names), dtype=np.int64)
        for i, name in enumerate(chain_names):
            fi = arrays.vnf_index[name]
            chain_idx[i] = fi
            k = self._schedule.pop((request_id, name))
            self._inst_loads[int(arrays.instance_offset[fi]) + k] -= eff
        if self._network is not None:
            self._network.add_chain_flows(
                chain_idx, self._placement_vec, self._link_loads, eff, -1.0
            )
        arrays.remove_request(request_id)

    # ------------------------------------------------------------------
    # Failure operations (repro.faults)
    # ------------------------------------------------------------------
    def evict(self, request_ids) -> List[Request]:
        """Mass-depart a set of active requests; returns them in
        arrival order.

        Each eviction is the exact :meth:`depart` retraction (instance
        loads and routed chain flows), so evicting any subset leaves
        the residuals bit-identical to an engine rebuilt from the
        survivors (pinned by ``tests/core/test_incremental.py``).

        Raises
        ------
        SchedulingError
            If some id is not active.
        """
        wanted = set(request_ids)
        unknown = wanted - set(self._requests)
        if unknown:
            raise SchedulingError(
                f"cannot evict unknown requests {sorted(unknown)!r}"
            )
        evicted = [
            request
            for rid, request in list(self._requests.items())
            if rid in wanted
        ]
        for request in evicted:
            self.depart(request.request_id)
        return evicted

    def fail_node(self, node) -> List[Request]:
        """Crash one compute node: evict every chain it touches and
        mark it unschedulable.

        Every active request whose chain includes a VNF placed on
        ``node`` is evicted (exact retraction, arrival order) and
        returned so a recovery policy can re-admit it; subsequent
        admits of such chains are rejected ``"unavailable"`` and
        re-solves exclude the node until :meth:`recover_node`.
        Failing an already-failed node is a no-op returning ``[]``.
        """
        if node not in self._capacities:
            raise SchedulingError(f"unknown node {node!r}")
        if node in self._failed_nodes:
            return []
        self._failed_nodes.add(node)
        down_vnfs = {
            name
            for name, placed in self._placement.items()
            if placed == node
        }
        if not down_vnfs:
            return []
        victims = [
            rid
            for rid, request in self._requests.items()
            if any(name in down_vnfs for name in request.chain)
        ]
        return self.evict(victims)

    def recover_node(self, node) -> None:
        """Mark a failed node schedulable again (state is otherwise
        untouched; re-placing VNFs onto it is the recovery policy's or
        the next rebalance's job)."""
        if node not in self._capacities:
            raise SchedulingError(f"unknown node {node!r}")
        self._failed_nodes.discard(node)

    def fail_instance(self, vnf_name: str, k: int) -> List[Request]:
        """Crash one service instance: evict its requests and mask it.

        Active requests scheduled on instance ``k`` of ``vnf_name``
        are evicted and returned; the instance is excluded from
        admission until :meth:`recover_instance`.  Failing a
        down instance again is a no-op returning ``[]``.
        """
        fi = self._arrays.vnf_index.get(vnf_name)
        if fi is None:
            raise SchedulingError(f"unknown VNF {vnf_name!r}")
        if not 0 <= k < int(self._arrays.M_f[fi]):
            raise SchedulingError(
                f"VNF {vnf_name!r} has no instance {k!r}"
            )
        if self._down_inst is None:
            self._down_inst = np.zeros(
                self._arrays.num_instances, dtype=bool
            )
        gi = int(self._arrays.instance_offset[fi]) + k
        if self._down_inst[gi]:
            return []
        self._down_inst[gi] = True
        victims = [
            rid
            for rid in self._requests
            if self._schedule.get((rid, vnf_name)) == k
        ]
        return self.evict(victims)

    def recover_instance(self, vnf_name: str, k: int) -> None:
        """Clear the down mask of one instance."""
        fi = self._arrays.vnf_index.get(vnf_name)
        if fi is None:
            raise SchedulingError(f"unknown VNF {vnf_name!r}")
        if not 0 <= k < int(self._arrays.M_f[fi]):
            raise SchedulingError(
                f"VNF {vnf_name!r} has no instance {k!r}"
            )
        if self._down_inst is not None:
            self._down_inst[int(self._arrays.instance_offset[fi]) + k] = False

    def move_vnf(self, vnf_name: str, node) -> bool:
        """Relocate one VNF (all its instances) to another node.

        The repair primitive behind :mod:`repro.faults.recovery`:
        checks the target is healthy and has capacity headroom for the
        VNF's ``M_f D_f``, then re-routes the chain flows of every
        active request using the VNF (retract at the old node, re-add
        at the new one, gated by the per-link residuals).  Returns
        ``False`` — state untouched — when the move does not fit;
        moving onto the current node is a trivial ``True``.
        """
        arrays = self._arrays
        fi = arrays.vnf_index.get(vnf_name)
        if fi is None:
            raise SchedulingError(f"unknown VNF {vnf_name!r}")
        ni = arrays.node_index.get(node)
        if ni is None:
            raise SchedulingError(f"unknown node {node!r}")
        node = arrays.node_keys[ni]
        if node in self._failed_nodes:
            return False
        source = int(self._placement_vec[fi])
        if source == ni:
            return True
        loads = arrays.node_loads(self._placement_vec)
        demand = float(arrays.total_demand_f[fi])
        if loads[ni] + demand > float(arrays.A_v[ni]) + FIT_EPS:
            return False

        affected = []
        if self._network is not None:
            for request in self._requests.values():
                if vnf_name not in request.chain:
                    continue
                chain_idx = np.asarray(
                    [arrays.vnf_index[n] for n in request.chain],
                    dtype=np.int64,
                )
                affected.append((chain_idx, float(request.effective_rate)))
            for chain_idx, eff in affected:
                self._network.add_chain_flows(
                    chain_idx, self._placement_vec, self._link_loads, eff, -1.0
                )
        self._placement_vec[fi] = ni
        if self._network is not None:
            added = []
            for chain_idx, eff in affected:
                if not self._network.chain_fits(
                    chain_idx, self._placement_vec, self._link_loads, eff
                ):
                    # Revert: drop what we re-added, restore the source
                    # placement and every retracted flow.
                    for c, e in added:
                        self._network.add_chain_flows(
                            c, self._placement_vec, self._link_loads, e, -1.0
                        )
                    self._placement_vec[fi] = source
                    for c, e in affected:
                        self._network.add_chain_flows(
                            c, self._placement_vec, self._link_loads, e
                        )
                    return False
                self._network.add_chain_flows(
                    chain_idx, self._placement_vec, self._link_loads, eff
                )
                added.append((chain_idx, eff))
        self._placement[vnf_name] = node
        return True

    def request_response_times(
        self, link_latency: float = 0.0
    ) -> Tuple[Tuple[str, ...], np.ndarray]:
        """Live Eq. (14/16)-style latency per active request.

        Each chain VNF contributes the M/M/1 sojourn of its assigned
        instance under the *current* equivalent loads,
        ``1 / (mu_f - Lambda_k^f)`` (``inf`` when saturated), and with
        ``link_latency > 0`` every inter-node hop of the placed chain
        adds that many seconds (the Eq. (16) communication term on a
        hop-count fabric).  Returns ``(request_ids, latencies)`` in the
        engine's columnar order — the SLA tracker's sampling hook.
        """
        arrays = self._arrays
        ids = arrays.request_ids
        if not self._schedule or not len(ids):
            return tuple(ids), np.zeros(len(ids))
        sched = arrays.schedule_arrays(self._schedule)
        inst = arrays.chain_instances(sched)
        with np.errstate(divide="ignore"):
            sojourn = np.where(
                self._inst_loads < arrays.mu_inst,
                1.0 / (arrays.mu_inst - self._inst_loads),
                np.inf,
            )
        latency = np.bincount(
            arrays.chain_req,
            weights=sojourn[inst],
            minlength=len(ids),
        )
        if link_latency:
            latency = latency + link_latency * arrays.hops_per_request(
                self._placement_vec
            )
        return tuple(ids), latency

    def rebalance(self, budget=None) -> RebalanceReport:
        """Re-solve both phases over the survivors (fresh seeded RNG).

        The resulting state is byte-identical to :func:`solve_joint`
        over the surviving requests in arrival order — warm-start
        drift from admits/departs is fully reset.  Failed nodes are
        excluded from the re-solve's candidate set.

        ``budget`` is an optional migration-cost budget (anything with
        ``try_charge(migrations, moved_load) -> bool``, e.g.
        :class:`repro.faults.recovery.MigrationBudget`): the solve is
        computed as a dry run first, its cost — one migration per
        placement move / schedule migration, moved load ``M_f D_f`` per
        moved VNF plus the effective rate per migrated request — is
        charged against the budget, and the whole rebalance is skipped
        (``committed=False``, state unchanged) when it does not fit.
        An infeasible solve (survivor demand exceeding the healthy
        nodes) is likewise reported uncommitted rather than raised.
        """
        old_placement = dict(self._placement)
        old_schedule = dict(self._schedule)
        try:
            solved = self._solve()
        except InfeasiblePlacementError:
            return RebalanceReport(
                placement_moves=0,
                schedule_migrations=0,
                active_requests=len(self._requests),
                committed=False,
            )
        placement, schedule = solved[0], solved[2]
        moved_names = [
            name
            for name, node in placement.items()
            if old_placement.get(name) != node
        ]
        migrated_keys = [
            key
            for key, k in schedule.items()
            if key in old_schedule and old_schedule[key] != k
        ]
        committed = True
        if budget is not None:
            arrays = self._arrays
            moved_load = sum(
                float(arrays.total_demand_f[arrays.vnf_index[name]])
                for name in moved_names
            ) + sum(
                float(self._requests[rid].effective_rate)
                for rid, _ in migrated_keys
            )
            committed = budget.try_charge(
                len(moved_names) + len(migrated_keys), moved_load
            )
        if committed:
            self._commit(*solved)
        return RebalanceReport(
            placement_moves=len(moved_names),
            schedule_migrations=len(migrated_keys),
            active_requests=len(self._requests),
            committed=committed,
        )

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _solve(self) -> tuple:
        """Dry-run two-phase solve over the active set.

        Pure: computes the batch solution without touching engine
        state, so :meth:`rebalance` can price it against a migration
        budget before (or instead of) committing.  Failed nodes are
        excluded from the placement candidates; with no failures the
        solve is the exact pre-fault code path.

        Raises
        ------
        InfeasiblePlacementError
            When the surviving demand does not fit the healthy nodes
            (also raised for the degenerate all-nodes-failed case).
        """
        from repro.topology.network import NetworkModel

        survivors = list(self._requests.values())
        chains = _distinct_chains(survivors)
        capacities = self._capacities
        if self._failed_nodes:
            capacities = {
                node: cap
                for node, cap in self._capacities.items()
                if node not in self._failed_nodes
            }
            if not capacities:
                raise InfeasiblePlacementError(
                    "every compute node is marked failed"
                )
        problem = PlacementProblem(
            vnfs=self._vnfs, capacities=capacities, chains=chains
        )
        solve_network = None
        if self._topology is not None:
            solve_network = NetworkModel.for_problem(
                problem,
                self._topology,
                requests=survivors,
                bandwidth=self._bandwidth,
            )
        placement_result = BFDSUPlacement(
            rng=_fresh_rng(self._seed), network=solve_network
        ).place(problem)
        placement = dict(placement_result.placement)
        placement_vec = self._arrays.placement_vector(placement)
        schedule = schedule_all_vnfs(self._vnfs, survivors, self._scheduler)
        if schedule:
            sched = self._arrays.schedule_arrays(schedule)
            inst_loads, _, _ = self._arrays.instance_rates(sched)
        else:
            inst_loads = np.zeros(self._arrays.num_instances)
        network = solve_network
        if solve_network is not None and self._failed_nodes:
            # The solve ran on the reduced node set, so its node
            # indexing differs from the engine's full-fleet arrays;
            # rebuild the bookkeeping model over every node key so the
            # incremental paths keep indexing ``placement_vec`` into it.
            network = NetworkModel.build(
                self._topology,
                self._arrays.vnf_names,
                self._arrays.node_keys,
                (
                    (list(r.chain), float(r.effective_rate))
                    for r in survivors
                ),
                bandwidth=self._bandwidth,
            )
        link_loads = (
            network.link_loads(placement_vec)
            if network is not None
            else None
        )
        return (
            placement,
            placement_vec,
            schedule,
            inst_loads,
            network,
            link_loads,
        )

    def _commit(
        self, placement, placement_vec, schedule, inst_loads, network, link_loads
    ) -> None:
        """Install one :meth:`_solve` result as the engine state."""
        self._placement = placement
        self._placement_vec = placement_vec
        self._schedule = schedule
        self._inst_loads = inst_loads
        self._network = network
        self._link_loads = link_loads

    def _resolve(self) -> None:
        """Full two-phase solve over the active set; resets residuals."""
        self._commit(*self._solve())
