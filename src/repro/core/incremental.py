"""Incremental deployment engine — admit/depart/rebalance over churn.

The paper's two-phase optimizer solves placement and scheduling for a
*known* request set; in operation requests arrive and depart
continuously (the online joint placement regime of Xu et al. and the
incremental-embedding loop of B-JointSP).  :class:`DeploymentEngine`
turns the batch machinery into a long-running service:

* **admit(request)** — O(chain) warm-start join: each chain VNF picks
  its least-loaded instance (:func:`~repro.scheduling.least_loaded
  .least_loaded_admit`), gated by the Eq. (9) utilization cap and, with
  a fabric attached, by the per-link bandwidth residuals
  (:meth:`~repro.topology.network.NetworkModel.chain_fits`).  A
  rejected admit leaves every residual untouched.
* **depart(request_id)** — exact inverse: instance loads and routed
  chain flows are retracted, the request row leaves the columnar
  scenario (:meth:`~repro.core.arrays.ScenarioArrays.remove_request`).
* **rebalance()** — periodic re-optimization: a from-scratch two-phase
  solve (BFDSU + the configured scheduler) over the *surviving*
  requests with a fresh seeded RNG, reporting how many VNFs moved and
  how many schedule entries migrated.

Determinism contract
--------------------
``rebalance()`` re-solves with ``np.random.default_rng(seed)`` — the
same seed every time — over the survivors in arrival order.  The state
after any admit/depart sequence followed by ``rebalance()`` is
therefore *identical* to :func:`solve_joint` on the surviving request
set, with and without ``bandwidth=`` (pinned by
``tests/core/test_incremental.py``).  Between rebalances the engine's
residual bookkeeping (instance loads, link loads) matches a
from-scratch recompute to float accumulation error.

The solvers underneath run the exact kernels of the batch path
(:mod:`repro.core.deltas`); see ``docs/SERVING.md`` for the full
contract (what is O(1), what triggers a rebuild).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Hashable, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.core.admission import DEFAULT_TARGET_UTILIZATION
from repro.core.arrays import ScenarioArrays
from repro.exceptions import SchedulingError
from repro.nfv.request import Request
from repro.nfv.state import DeploymentState
from repro.nfv.vnf import VNF
from repro.placement.base import PlacementProblem
from repro.placement.bfdsu import BFDSUPlacement
from repro.scheduling.base import SchedulingAlgorithm, schedule_all_vnfs
from repro.scheduling.least_loaded import least_loaded_admit
from repro.scheduling.rckk import RCKKScheduler
from repro.seeding import DEFAULT_SEED

__all__ = [
    "AdmitReport",
    "DeploymentEngine",
    "RebalanceReport",
    "solve_joint",
]


def _fresh_rng(seed: Optional[int]) -> np.random.Generator:
    """The engine's seed policy: one fixed seed, fresh stream per solve."""
    return np.random.default_rng(DEFAULT_SEED if seed is None else int(seed))


def _distinct_chains(requests: Sequence[Request]) -> tuple:
    """Distinct service chains in first-seen order (JointOptimizer's rule)."""
    seen = set()
    chains = []
    for request in requests:
        key = request.chain.vnf_names
        if key not in seen:
            seen.add(key)
            chains.append(request.chain)
    return tuple(chains)


def solve_joint(
    vnfs: Sequence[VNF],
    requests: Sequence[Request],
    node_capacities: Mapping[Hashable, float],
    *,
    seed: Optional[int] = None,
    scheduler: Optional[SchedulingAlgorithm] = None,
    topology=None,
    bandwidth=None,
) -> DeploymentState:
    """One from-scratch two-phase solve under the engine's seed policy.

    This is exactly what :meth:`DeploymentEngine.rebalance` runs over
    the surviving request set: BFDSU with ``default_rng(seed)`` (with a
    bandwidth-constrained candidate filter when ``topology`` is given)
    followed by the scheduler over the requests *in the given order*.
    Exposed so the identity between the engine under churn and a batch
    re-solve is checkable — and so callers can price that re-solve.
    """
    from repro.topology.network import NetworkModel

    chains = _distinct_chains(requests)
    problem = PlacementProblem(
        vnfs=vnfs, capacities=node_capacities, chains=chains
    )
    network = None
    if topology is not None:
        network = NetworkModel.for_problem(
            problem, topology, requests=requests, bandwidth=bandwidth
        )
    placement_result = BFDSUPlacement(
        rng=_fresh_rng(seed), network=network
    ).place(problem)
    algorithm = scheduler if scheduler is not None else RCKKScheduler()
    schedule = schedule_all_vnfs(vnfs, requests, algorithm)
    state = DeploymentState(
        vnfs=list(vnfs),
        requests=list(requests),
        node_capacities=dict(node_capacities),
        placement=dict(placement_result.placement),
        schedule=schedule,
    )
    state.validate()
    return state


@dataclass(frozen=True)
class AdmitReport:
    """Outcome of one :meth:`DeploymentEngine.admit` call."""

    request_id: str
    admitted: bool
    #: ``vnf_name -> instance k`` for an admitted request; empty else.
    assignment: Dict[str, int] = field(default_factory=dict)
    #: ``None`` when admitted; ``"capacity"`` / ``"bandwidth"`` else.
    reason: Optional[str] = None


@dataclass(frozen=True)
class RebalanceReport:
    """Outcome of one :meth:`DeploymentEngine.rebalance` call."""

    #: VNFs whose hosting node changed.
    placement_moves: int
    #: Surviving ``(request, vnf)`` entries whose instance changed.
    schedule_migrations: int
    #: Requests active at rebalance time.
    active_requests: int

    @property
    def total_migrations(self) -> int:
        return self.placement_moves + self.schedule_migrations


class DeploymentEngine:
    """Mutable joint deployment under request churn.

    Owns the placement vector, per-instance load residuals, the
    ``(request_id, vnf_name) -> k`` schedule and (with a fabric) the
    per-link routed-flow residuals, all kept incrementally consistent
    by :meth:`admit` / :meth:`depart` and reset to the batch optimum by
    :meth:`rebalance`.

    Parameters
    ----------
    vnfs, node_capacities:
        The static infrastructure (``F`` and ``A_v``); immutable for
        the engine's lifetime — only requests churn.
    requests:
        Initially active requests; the engine starts from a full
        re-solve over them.
    seed:
        The rebalance seed policy (default
        :data:`~repro.seeding.DEFAULT_SEED`); every rebalance re-solves
        with a fresh ``default_rng(seed)``.
    scheduler:
        Rebalance-time scheduling algorithm (default RCKK).  Admits
        use the warm-start least-loaded rule regardless.
    topology, bandwidth:
        Optional fabric: admits gain a link-bandwidth gate and
        rebalances run bandwidth-constrained BFDSU.  ``bandwidth``
        follows :meth:`NetworkModel.build`'s convention.
    target_utilization:
        Admission cap per instance: a chain VNF join is rejected when
        its least-loaded instance would exceed
        ``mu_f * target_utilization`` (the Eq. (9) stability margin of
        :mod:`repro.core.admission`).  ``None`` disables the cap.
    """

    def __init__(
        self,
        vnfs: Sequence[VNF],
        node_capacities: Mapping[Hashable, float],
        requests: Sequence[Request] = (),
        *,
        seed: Optional[int] = None,
        scheduler: Optional[SchedulingAlgorithm] = None,
        topology=None,
        bandwidth=None,
        target_utilization: Optional[float] = DEFAULT_TARGET_UTILIZATION,
    ) -> None:
        self._vnfs = tuple(vnfs)
        self._capacities = dict(node_capacities)
        self._seed = DEFAULT_SEED if seed is None else int(seed)
        self._scheduler = scheduler if scheduler is not None else RCKKScheduler()
        self._topology = topology
        self._bandwidth = bandwidth
        self._target = target_utilization
        self._arrays = ScenarioArrays.build(
            self._vnfs, requests, self._capacities
        )
        #: Active requests in arrival order (dicts preserve insertion).
        self._requests: Dict[str, Request] = {
            r.request_id: r for r in requests
        }
        if len(self._requests) != len(tuple(requests)):
            raise SchedulingError("duplicate request ids in initial set")
        self._placement: Dict[str, Hashable] = {}
        self._placement_vec = np.full(len(self._vnfs), -1, dtype=np.int64)
        self._schedule: Dict[Tuple[str, str], int] = {}
        self._inst_loads = np.zeros(self._arrays.num_instances)
        self._network = None
        self._link_loads: Optional[np.ndarray] = None
        self._resolve()

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def num_active(self) -> int:
        return len(self._requests)

    @property
    def target_utilization(self) -> Optional[float]:
        """The admission cap (``None`` when disabled)."""
        return self._target

    @property
    def active_requests(self) -> Tuple[str, ...]:
        """Active request ids, in arrival order."""
        return tuple(self._requests)

    @property
    def placement(self) -> Dict[str, Hashable]:
        """``vnf_name -> node`` (copy)."""
        return dict(self._placement)

    def instance_loads(self) -> np.ndarray:
        """Equivalent arrival rate per global instance (copy)."""
        return self._inst_loads.copy()

    def assignment_of(self, request_id: str) -> Dict[str, int]:
        """``vnf_name -> instance k`` of one active request."""
        request = self._requests.get(request_id)
        if request is None:
            raise SchedulingError(f"unknown request {request_id!r}")
        return {
            name: self._schedule[(request_id, name)]
            for name in request.chain
        }

    def state(self) -> DeploymentState:
        """The current deployment as a validated batch-layer object."""
        state = DeploymentState(
            vnfs=list(self._vnfs),
            requests=list(self._requests.values()),
            node_capacities=dict(self._capacities),
            placement=dict(self._placement),
            schedule=dict(self._schedule),
        )
        state.validate()
        return state

    # ------------------------------------------------------------------
    # Churn operations
    # ------------------------------------------------------------------
    def admit(self, request: Request) -> AdmitReport:
        """Warm-start join of one arriving request (O(chain) kernels).

        Each chain VNF joins its least-loaded instance if that keeps
        the instance within ``mu_f * target_utilization``; with a
        fabric, the chain's routed flow must also fit every link's
        residual bandwidth.  On rejection nothing changes.

        Raises
        ------
        SchedulingError
            If the id is already active or the chain references a VNF
            unknown to the engine (caller errors, not admission
            outcomes).
        """
        rid = request.request_id
        if rid in self._requests:
            raise SchedulingError(f"request {rid!r} is already active")
        arrays = self._arrays
        chain_names = list(request.chain)
        chain_idx = np.empty(len(chain_names), dtype=np.int64)
        for i, name in enumerate(chain_names):
            fi = arrays.vnf_index.get(name)
            if fi is None:
                raise SchedulingError(
                    f"request {rid!r} uses unknown VNF {name!r}"
                )
            chain_idx[i] = fi
        eff = float(request.effective_rate)

        joins: List[Tuple[int, int]] = []  # (vnf index, instance k)
        for fi in chain_idx:
            fi = int(fi)
            off = int(arrays.instance_offset[fi])
            m = int(arrays.M_f[fi])
            cap = (
                None
                if self._target is None
                else float(arrays.mu_f[fi]) * self._target
            )
            k = least_loaded_admit(
                self._inst_loads[off : off + m], eff, capacity=cap
            )
            if k < 0:
                return AdmitReport(
                    request_id=rid, admitted=False, reason="capacity"
                )
            joins.append((fi, k))
        if self._network is not None and not self._network.chain_fits(
            chain_idx, self._placement_vec, self._link_loads, eff
        ):
            return AdmitReport(
                request_id=rid, admitted=False, reason="bandwidth"
            )

        # Commit.
        arrays.append_request(request)
        self._requests[rid] = request
        assignment: Dict[str, int] = {}
        for (fi, k), name in zip(joins, chain_names):
            self._schedule[(rid, name)] = k
            self._inst_loads[int(arrays.instance_offset[fi]) + k] += eff
            assignment[name] = k
        if self._network is not None:
            self._network.add_chain_flows(
                chain_idx, self._placement_vec, self._link_loads, eff
            )
        return AdmitReport(
            request_id=rid, admitted=True, assignment=assignment
        )

    def depart(self, request_id: str) -> None:
        """Retract one active request — the exact inverse of its admit.

        Raises
        ------
        SchedulingError
            If ``request_id`` is not active.
        """
        request = self._requests.pop(request_id, None)
        if request is None:
            raise SchedulingError(f"unknown request {request_id!r}")
        arrays = self._arrays
        eff = float(request.effective_rate)
        chain_names = list(request.chain)
        chain_idx = np.empty(len(chain_names), dtype=np.int64)
        for i, name in enumerate(chain_names):
            fi = arrays.vnf_index[name]
            chain_idx[i] = fi
            k = self._schedule.pop((request_id, name))
            self._inst_loads[int(arrays.instance_offset[fi]) + k] -= eff
        if self._network is not None:
            self._network.add_chain_flows(
                chain_idx, self._placement_vec, self._link_loads, eff, -1.0
            )
        arrays.remove_request(request_id)

    def rebalance(self) -> RebalanceReport:
        """Re-solve both phases over the survivors (fresh seeded RNG).

        The resulting state is byte-identical to :func:`solve_joint`
        over the surviving requests in arrival order — warm-start
        drift from admits/departs is fully reset.
        """
        old_placement = dict(self._placement)
        old_schedule = dict(self._schedule)
        self._resolve()
        moves = sum(
            1
            for name, node in self._placement.items()
            if old_placement.get(name) != node
        )
        migrations = sum(
            1
            for key, k in self._schedule.items()
            if key in old_schedule and old_schedule[key] != k
        )
        return RebalanceReport(
            placement_moves=moves,
            schedule_migrations=migrations,
            active_requests=len(self._requests),
        )

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _resolve(self) -> None:
        """Full two-phase solve over the active set; resets residuals."""
        from repro.topology.network import NetworkModel

        survivors = list(self._requests.values())
        chains = _distinct_chains(survivors)
        problem = PlacementProblem(
            vnfs=self._vnfs, capacities=self._capacities, chains=chains
        )
        network = None
        if self._topology is not None:
            network = NetworkModel.for_problem(
                problem,
                self._topology,
                requests=survivors,
                bandwidth=self._bandwidth,
            )
        placement_result = BFDSUPlacement(
            rng=_fresh_rng(self._seed), network=network
        ).place(problem)
        self._placement = dict(placement_result.placement)
        self._placement_vec = self._arrays.placement_vector(self._placement)
        self._schedule = schedule_all_vnfs(
            self._vnfs, survivors, self._scheduler
        )
        if self._schedule:
            sched = self._arrays.schedule_arrays(self._schedule)
            self._inst_loads, _, _ = self._arrays.instance_rates(sched)
        else:
            self._inst_loads = np.zeros(self._arrays.num_instances)
        self._network = network
        self._link_loads = (
            network.link_loads(self._placement_vec)
            if network is not None
            else None
        )
