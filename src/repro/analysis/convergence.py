"""Sequential Monte-Carlo convergence tracking.

The paper averages 1000 runs per point; often far fewer suffice.  A
:class:`ConvergenceTracker` consumes samples one at a time, maintains the
running mean/variance (Welford), and reports when the confidence
interval's half-width falls below a target relative precision — the
standard sequential stopping rule the ``--paper`` harness can use to
stop early without biasing the estimate materially.
"""

from __future__ import annotations

import math
from typing import Optional, Tuple

from repro.analysis.stats import _Z_SCORES
from repro.exceptions import ValidationError


class ConvergenceTracker:
    """Running mean/variance with a relative-precision stopping rule.

    Parameters
    ----------
    relative_precision:
        Target half-width of the CI as a fraction of the mean (e.g.
        0.01 for +/-1%).
    confidence:
        CI level; one of 0.90, 0.95, 0.99.
    min_samples:
        Never report convergence before this many samples (guards
        against lucky early agreement).
    """

    def __init__(
        self,
        relative_precision: float = 0.01,
        confidence: float = 0.95,
        min_samples: int = 30,
    ) -> None:
        if relative_precision <= 0.0:
            raise ValidationError(
                f"relative precision must be positive, got {relative_precision!r}"
            )
        if confidence not in _Z_SCORES:
            raise ValidationError(
                f"unsupported confidence {confidence!r}; "
                f"choose from {sorted(_Z_SCORES)}"
            )
        if min_samples < 2:
            raise ValidationError(
                f"min_samples must be >= 2, got {min_samples!r}"
            )
        self._precision = relative_precision
        self._z = _Z_SCORES[confidence]
        self._min_samples = min_samples
        self._count = 0
        self._mean = 0.0
        self._m2 = 0.0

    def add(self, sample: float) -> None:
        """Consume one sample (Welford's update)."""
        if not math.isfinite(sample):
            raise ValidationError(f"sample must be finite, got {sample!r}")
        self._count += 1
        delta = sample - self._mean
        self._mean += delta / self._count
        self._m2 += delta * (sample - self._mean)

    @property
    def count(self) -> int:
        """Samples consumed."""
        return self._count

    @property
    def mean(self) -> float:
        """Running mean."""
        if self._count == 0:
            raise ValidationError("no samples yet")
        return self._mean

    @property
    def std(self) -> float:
        """Running sample standard deviation (ddof=1)."""
        if self._count < 2:
            return 0.0
        return math.sqrt(self._m2 / (self._count - 1))

    def half_width(self) -> float:
        """Current CI half-width."""
        if self._count < 2:
            return math.inf
        return self._z * self.std / math.sqrt(self._count)

    def interval(self) -> Tuple[float, float]:
        """Current confidence interval for the mean."""
        h = self.half_width()
        return (self.mean - h, self.mean + h)

    def converged(self) -> bool:
        """Whether the stopping rule is satisfied.

        True when ``half_width <= relative_precision * |mean|`` after at
        least ``min_samples`` samples.  A zero mean converges only once
        the half-width itself is (numerically) zero.
        """
        if self._count < self._min_samples:
            return False
        target = self._precision * abs(self._mean)
        if target == 0.0:
            return self.half_width() <= 1e-15
        return self.half_width() <= target

    def estimated_samples_needed(self) -> Optional[int]:
        """Projected total samples for convergence at the current variance.

        ``n >= (z s / (precision |mean|))^2``; None before two samples or
        when the mean is zero.
        """
        if self._count < 2 or self._mean == 0.0:
            return None
        needed = (self._z * self.std / (self._precision * abs(self._mean))) ** 2
        return max(self._min_samples, math.ceil(needed))
