"""Summary statistics for Monte-Carlo experiment results.

The paper reports means over 1000 runs plus 99th-percentile tails
(Section V-C); these helpers compute exactly those quantities with a
normal-approximation confidence interval for the mean.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence, Tuple

import numpy as np

from repro.exceptions import ValidationError

#: Two-sided z-scores for the confidence levels experiments use.
_Z_SCORES = {0.90: 1.6449, 0.95: 1.9600, 0.99: 2.5758}


@dataclass(frozen=True)
class SummaryStats:
    """Mean, spread and tail statistics of a sample."""

    count: int
    mean: float
    std: float
    minimum: float
    maximum: float
    p50: float
    p95: float
    p99: float

    def ci95(self) -> Tuple[float, float]:
        """95% normal-approximation confidence interval for the mean."""
        return confidence_interval(self.mean, self.std, self.count, 0.95)


def percentile(samples: Sequence[float], q: float) -> float:
    """The ``q``-th percentile (``q`` in [0, 100]), linear interpolation."""
    if not samples:
        raise ValidationError("cannot take a percentile of an empty sample")
    if not 0.0 <= q <= 100.0:
        raise ValidationError(f"percentile must be in [0, 100], got {q!r}")
    return float(np.percentile(np.asarray(samples, dtype=float), q))


def summarize(samples: Sequence[float]) -> SummaryStats:
    """Compute :class:`SummaryStats` for a sample."""
    if not samples:
        raise ValidationError("cannot summarize an empty sample")
    arr = np.asarray(samples, dtype=float)
    return SummaryStats(
        count=int(arr.size),
        mean=float(arr.mean()),
        std=float(arr.std(ddof=1)) if arr.size > 1 else 0.0,
        minimum=float(arr.min()),
        maximum=float(arr.max()),
        p50=float(np.percentile(arr, 50)),
        p95=float(np.percentile(arr, 95)),
        p99=float(np.percentile(arr, 99)),
    )


def confidence_interval(
    mean: float, std: float, count: int, level: float = 0.95
) -> Tuple[float, float]:
    """Normal-approximation CI for a sample mean.

    Parameters
    ----------
    mean, std, count:
        Sample statistics (``std`` with ``ddof=1``).
    level:
        One of 0.90, 0.95, 0.99.
    """
    if count < 1:
        raise ValidationError(f"count must be >= 1, got {count!r}")
    z = _Z_SCORES.get(level)
    if z is None:
        raise ValidationError(
            f"unsupported confidence level {level!r}; "
            f"choose from {sorted(_Z_SCORES)}"
        )
    if count == 1:
        return (mean, mean)
    half = z * std / math.sqrt(count)
    return (mean - half, mean + half)
