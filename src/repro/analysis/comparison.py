"""Paired algorithm comparison — the statistics behind "A beats B".

Experiments run two algorithms on *the same* Monte-Carlo instances, so
the right test is paired: compare per-instance differences, not the two
marginal distributions.  :func:`paired_comparison` reports the mean
difference with its CI, the win rate, and the paper-style enhancement
ratio — everything a claims table needs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.analysis.stats import confidence_interval
from repro.exceptions import ValidationError


@dataclass(frozen=True)
class PairedComparison:
    """Paired comparison of metric samples from two algorithms.

    "Improvement" means ``baseline - candidate`` for a smaller-is-better
    metric (latency, nodes in service): positive numbers favour the
    candidate.
    """

    count: int
    mean_baseline: float
    mean_candidate: float
    mean_difference: float
    ci_low: float
    ci_high: float
    win_rate: float
    enhancement_ratio: float

    @property
    def significant(self) -> bool:
        """Whether the CI for the mean difference excludes zero."""
        return self.ci_low > 0.0 or self.ci_high < 0.0

    def summary(self) -> str:
        """One-line human-readable verdict."""
        direction = (
            "improves on" if self.mean_difference > 0 else "trails"
        )
        sig = "significant" if self.significant else "not significant"
        return (
            f"candidate {direction} baseline by "
            f"{self.enhancement_ratio:+.1%} "
            f"(wins {self.win_rate:.0%} of {self.count} paired runs; {sig})"
        )


def paired_comparison(
    baseline: Sequence[float],
    candidate: Sequence[float],
    confidence: float = 0.95,
) -> PairedComparison:
    """Compare paired metric samples (smaller is better).

    Parameters
    ----------
    baseline, candidate:
        Same-length sequences, index-aligned by Monte-Carlo instance.
    confidence:
        CI level for the mean difference.
    """
    if len(baseline) != len(candidate):
        raise ValidationError(
            f"paired samples must align: {len(baseline)} vs {len(candidate)}"
        )
    if len(baseline) == 0:
        raise ValidationError("cannot compare empty samples")
    base = np.asarray(baseline, dtype=float)
    cand = np.asarray(candidate, dtype=float)
    if not (np.all(np.isfinite(base)) and np.all(np.isfinite(cand))):
        raise ValidationError("samples must be finite")

    differences = base - cand
    mean_diff = float(differences.mean())
    std_diff = float(differences.std(ddof=1)) if len(differences) > 1 else 0.0
    ci_low, ci_high = confidence_interval(
        mean_diff, std_diff, len(differences), confidence
    )
    wins = float(np.mean(differences > 0.0))
    mean_base = float(base.mean())
    enhancement = mean_diff / mean_base if mean_base != 0.0 else 0.0
    return PairedComparison(
        count=len(differences),
        mean_baseline=mean_base,
        mean_candidate=float(cand.mean()),
        mean_difference=mean_diff,
        ci_low=ci_low,
        ci_high=ci_high,
        win_rate=wins,
        enhancement_ratio=enhancement,
    )
