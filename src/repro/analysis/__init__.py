"""Statistics helpers for experiment aggregation."""

from repro.analysis.comparison import PairedComparison, paired_comparison
from repro.analysis.convergence import ConvergenceTracker
from repro.analysis.stats import (
    SummaryStats,
    confidence_interval,
    percentile,
    summarize,
)

__all__ = [
    "SummaryStats",
    "summarize",
    "percentile",
    "confidence_interval",
    "paired_comparison",
    "PairedComparison",
    "ConvergenceTracker",
]
