"""Datacenter network topologies.

The paper models the datacenter as a connected graph ``G = (V, E)`` of
computing nodes joined through switch nodes, assumes switch capacity and
bandwidth are plentiful, and charges a flat latency ``L`` (propagation +
transmission) per inter-node hop (Eq. 16).  This package provides:

* :mod:`repro.topology.graph` — the core :class:`DatacenterTopology`
  (compute nodes with capacities, switches, weighted links).
* :mod:`repro.topology.arrays` — the array-native view: all-pairs
  shortest-path latency/hop matrices, the link index, and the path-link
  CSR the vectorized evaluation and bandwidth accounting gather from
  (see ``docs/TOPOLOGY.md``).
* :mod:`repro.topology.network` — per-link bandwidth accounting
  (:class:`NetworkModel`): routed chain flows, residual fit checks for
  the solvers, oversubscription diagnostics.
* :mod:`repro.topology.fattree` — k-ary fat-tree generator.
* :mod:`repro.topology.leafspine` — leaf-spine generator.
* :mod:`repro.topology.bcube` — BCube generator.
* :mod:`repro.topology.random_topology` — SNDlib-style random connected
  graphs (the paper's 4-50 node topologies, substituted per DESIGN.md).
* :mod:`repro.topology.routing` — scalar shortest-path queries over the
  precomputed arrays (bounded path cache).
* :mod:`repro.topology.io` — GraphML round-trip plus the vendored
  Abilene (Internet2) reference WAN.
"""

from repro.topology.arrays import TopologyArrays
from repro.topology.bcube import bcube
from repro.topology.fattree import fat_tree
from repro.topology.graph import ComputeNode, DatacenterTopology, Switch
from repro.topology.io import abilene, load_graphml, save_graphml
from repro.topology.leafspine import leaf_spine
from repro.topology.network import NetworkModel
from repro.topology.random_topology import random_datacenter
from repro.topology.routing import Router

__all__ = [
    "DatacenterTopology",
    "ComputeNode",
    "Switch",
    "TopologyArrays",
    "NetworkModel",
    "fat_tree",
    "leaf_spine",
    "bcube",
    "random_datacenter",
    "Router",
    "abilene",
    "load_graphml",
    "save_graphml",
]
