"""Datacenter network topologies.

The paper models the datacenter as a connected graph ``G = (V, E)`` of
computing nodes joined through switch nodes, assumes switch capacity and
bandwidth are plentiful, and charges a flat latency ``L`` (propagation +
transmission) per inter-node hop (Eq. 16).  This package provides:

* :mod:`repro.topology.graph` — the core :class:`DatacenterTopology`
  (compute nodes with capacities, switches, weighted links).
* :mod:`repro.topology.fattree` — k-ary fat-tree generator.
* :mod:`repro.topology.leafspine` — leaf-spine generator.
* :mod:`repro.topology.random_topology` — SNDlib-style random connected
  graphs (the paper's 4-50 node topologies, substituted per DESIGN.md).
* :mod:`repro.topology.routing` — shortest-path routing and hop/latency
  queries.
"""

from repro.topology.bcube import bcube
from repro.topology.fattree import fat_tree
from repro.topology.graph import ComputeNode, DatacenterTopology, Switch
from repro.topology.leafspine import leaf_spine
from repro.topology.random_topology import random_datacenter
from repro.topology.routing import Router

__all__ = [
    "DatacenterTopology",
    "ComputeNode",
    "Switch",
    "fat_tree",
    "leaf_spine",
    "bcube",
    "random_datacenter",
    "Router",
]
