"""Core datacenter-topology data model.

A :class:`DatacenterTopology` is a connected undirected graph whose
vertices are either :class:`ComputeNode` (capacity-bearing, placeable)
or :class:`Switch` (pure forwarding, excluded from the placement set
``V`` per the paper's model).  Links carry a latency — the per-hop ``L``
of Eq. (16) — and a nominal bandwidth which the paper assumes plentiful.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List

import networkx as nx

from repro.exceptions import ValidationError

#: Default per-hop latency (seconds): propagation + transmission, the
#: constant ``L`` of Eq. (16).  0.1 ms is a typical intra-DC figure.
DEFAULT_LINK_LATENCY = 1e-4

#: Default link bandwidth (packets/s); plentiful per the paper's model.
DEFAULT_LINK_BANDWIDTH = 1e9


@dataclass(frozen=True)
class ComputeNode:
    """A commodity server with a CPU-bounded resource capacity ``A_v``."""

    key: str
    capacity: float

    def __post_init__(self) -> None:
        if not self.key:
            raise ValidationError("compute node key must be non-empty")
        if self.capacity <= 0.0:
            raise ValidationError(
                f"node {self.key!r}: capacity must be positive, "
                f"got {self.capacity!r}"
            )


@dataclass(frozen=True)
class Switch:
    """A pure forwarding element; never hosts VNFs."""

    key: str

    def __post_init__(self) -> None:
        if not self.key:
            raise ValidationError("switch key must be non-empty")


class DatacenterTopology:
    """A connected graph of compute nodes and switches.

    Construction is incremental (:meth:`add_compute_node`,
    :meth:`add_switch`, :meth:`add_link`); :meth:`validate` checks
    connectivity once building is done.
    """

    def __init__(self, name: str = "datacenter") -> None:
        self.name = name
        self._graph = nx.Graph()
        self._compute: Dict[str, ComputeNode] = {}
        self._switches: Dict[str, Switch] = {}
        self._topology_arrays = None

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def add_compute_node(self, key: str, capacity: float) -> ComputeNode:
        """Add a compute node; keys must be unique across all vertices."""
        self._check_new_key(key)
        node = ComputeNode(key=key, capacity=capacity)
        self._compute[key] = node
        self._graph.add_node(key, kind="compute")
        self._topology_arrays = None
        return node

    def add_switch(self, key: str) -> Switch:
        """Add a switch vertex."""
        self._check_new_key(key)
        switch = Switch(key=key)
        self._switches[key] = switch
        self._graph.add_node(key, kind="switch")
        self._topology_arrays = None
        return switch

    def add_link(
        self,
        a: str,
        b: str,
        latency: float = DEFAULT_LINK_LATENCY,
        bandwidth: float = DEFAULT_LINK_BANDWIDTH,
    ) -> None:
        """Connect two existing vertices with a weighted link."""
        for key in (a, b):
            if key not in self._graph:
                raise ValidationError(f"unknown vertex {key!r}")
        if a == b:
            raise ValidationError(f"self-loop on {a!r} not allowed")
        if latency < 0.0:
            raise ValidationError(f"latency must be non-negative, got {latency!r}")
        if bandwidth <= 0.0:
            raise ValidationError(f"bandwidth must be positive, got {bandwidth!r}")
        self._graph.add_edge(a, b, latency=latency, bandwidth=bandwidth)
        self._topology_arrays = None

    def _check_new_key(self, key: str) -> None:
        if key in self._graph:
            raise ValidationError(f"vertex key {key!r} already in topology")

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    @property
    def graph(self) -> nx.Graph:
        """The underlying networkx graph (read-only by convention)."""
        return self._graph

    def compute_nodes(self) -> List[ComputeNode]:
        """All compute nodes, in insertion order."""
        return list(self._compute.values())

    def compute_node(self, key: str) -> ComputeNode:
        """Look up one compute node."""
        try:
            return self._compute[key]
        except KeyError:
            raise ValidationError(f"unknown compute node {key!r}") from None

    def switches(self) -> List[Switch]:
        """All switches, in insertion order."""
        return list(self._switches.values())

    def capacities(self) -> Dict[str, float]:
        """``A_v`` per compute node key — what placement consumes."""
        return {key: node.capacity for key, node in self._compute.items()}

    @property
    def num_compute_nodes(self) -> int:
        """``|V|`` in the paper's model."""
        return len(self._compute)

    @property
    def num_switches(self) -> int:
        """Number of switch vertices."""
        return len(self._switches)

    @property
    def num_links(self) -> int:
        """``|E|``."""
        return self._graph.number_of_edges()

    def neighbors(self, key: str) -> Iterator[str]:
        """Adjacent vertex keys."""
        if key not in self._graph:
            raise ValidationError(f"unknown vertex {key!r}")
        return iter(self._graph.neighbors(key))

    def link_latency(self, a: str, b: str) -> float:
        """Latency of the direct link between ``a`` and ``b``."""
        data = self._graph.get_edge_data(a, b)
        if data is None:
            raise ValidationError(f"no link between {a!r} and {b!r}")
        return data["latency"]

    def link_bandwidth(self, a: str, b: str) -> float:
        """Bandwidth of the direct link between ``a`` and ``b``."""
        data = self._graph.get_edge_data(a, b)
        if data is None:
            raise ValidationError(f"no link between {a!r} and {b!r}")
        return data["bandwidth"]

    def links(self):
        """``(a, b, latency, bandwidth)`` per link, in insertion order."""
        return [
            (a, b, data["latency"], data["bandwidth"])
            for a, b, data in self._graph.edges(data=True)
        ]

    def arrays(self):
        """The cached :class:`~repro.topology.arrays.TopologyArrays`.

        Built (and connectivity-validated) on first use; any mutation of
        the topology invalidates the cache, so the snapshot always
        reflects the current graph.
        """
        from repro.topology.arrays import TopologyArrays

        if self._topology_arrays is None:
            self._topology_arrays = TopologyArrays.build(self)
        return self._topology_arrays

    def total_capacity(self) -> float:
        """Aggregate compute capacity ``sum_v A_v``."""
        return sum(node.capacity for node in self._compute.values())

    # ------------------------------------------------------------------
    # Validation
    # ------------------------------------------------------------------
    def validate(self) -> None:
        """Check the invariants the paper's model assumes.

        Raises
        ------
        ValidationError
            If the topology has no compute nodes or is disconnected.
        """
        if not self._compute:
            raise ValidationError("topology has no compute nodes")
        if self._graph.number_of_nodes() > 1 and not nx.is_connected(self._graph):
            raise ValidationError("topology is not connected")

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"DatacenterTopology(name={self.name!r}, "
            f"compute={self.num_compute_nodes}, switches={self.num_switches}, "
            f"links={self.num_links})"
        )
