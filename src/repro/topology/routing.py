"""Shortest-path routing over a datacenter topology.

Routes minimize total link latency; :class:`Router` caches per-source
Dijkstra runs so request-path queries during evaluation stay cheap.
Compute-to-compute queries are what Eq. (16) consumes: the latency of a
request's inter-node transfers.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

import networkx as nx

from repro.exceptions import ValidationError
from repro.topology.graph import DatacenterTopology


class Router:
    """Latency-weighted shortest-path queries over a topology."""

    def __init__(self, topology: DatacenterTopology) -> None:
        topology.validate()
        self._topology = topology
        self._cache: Dict[str, Tuple[Dict[str, float], Dict[str, list]]] = {}

    def _run_dijkstra(self, source: str) -> Tuple[Dict[str, float], Dict[str, list]]:
        if source not in self._topology.graph:
            raise ValidationError(f"unknown vertex {source!r}")
        if source not in self._cache:
            distances, paths = nx.single_source_dijkstra(
                self._topology.graph, source, weight="latency"
            )
            self._cache[source] = (distances, paths)
        return self._cache[source]

    def path(self, source: str, target: str) -> List[str]:
        """The minimum-latency vertex path from ``source`` to ``target``."""
        _, paths = self._run_dijkstra(source)
        try:
            return list(paths[target])
        except KeyError:
            raise ValidationError(
                f"no path from {source!r} to {target!r}"
            ) from None

    def latency(self, source: str, target: str) -> float:
        """Total link latency along the shortest path."""
        distances, _ = self._run_dijkstra(source)
        try:
            return float(distances[target])
        except KeyError:
            raise ValidationError(
                f"no path from {source!r} to {target!r}"
            ) from None

    def hop_count(self, source: str, target: str) -> int:
        """Number of links on the shortest path."""
        return max(0, len(self.path(source, target)) - 1)

    def path_latency(self, waypoints: Sequence[str]) -> float:
        """Total latency visiting ``waypoints`` in order via shortest paths.

        This is the communication-latency term of Eq. (16) for a request
        whose chain traverses the given sequence of compute nodes.
        """
        total = 0.0
        for a, b in zip(waypoints[:-1], waypoints[1:]):
            if a != b:
                total += self.latency(a, b)
        return total

    def average_pairwise_latency(self) -> float:
        """Mean shortest-path latency over compute-node pairs.

        A topology-derived estimate of the flat per-hop constant ``L``
        used by Eq. (16) when a caller wants ``L`` calibrated to an actual
        fabric rather than supplied as a parameter.
        """
        nodes = [n.key for n in self._topology.compute_nodes()]
        if len(nodes) < 2:
            return 0.0
        total = 0.0
        pairs = 0
        for i, a in enumerate(nodes):
            distances, _ = self._run_dijkstra(a)
            for b in nodes[i + 1 :]:
                total += distances[b]
                pairs += 1
        return total / pairs
