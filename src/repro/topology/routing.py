"""Shortest-path routing over a datacenter topology.

Routes minimize total link latency.  :class:`Router` is the scalar
query API over the topology's precomputed all-pairs shortest-path
arrays (:meth:`DatacenterTopology.arrays
<repro.topology.graph.DatacenterTopology.arrays>`): latency and hop
queries are O(1) matrix lookups, and vertex paths are reconstructed
from the predecessor matrix behind a bounded LRU (the previous
implementation cached one full ``single_source_dijkstra`` result per
queried source, unbounded — on a 10k-vertex fabric that cache alone
outgrew the graph).  Compute-to-compute queries are what Eq. (16)
consumes: the latency of a request's inter-node transfers.  Hot paths
that need *every* pair should gather from the arrays directly
(:mod:`repro.topology.arrays`) instead of looping over a Router.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import List, Sequence

from repro.exceptions import ValidationError
from repro.topology.graph import DatacenterTopology

#: Bound on the path-reconstruction LRU (vertex paths only; latency and
#: hop queries never allocate).
DEFAULT_PATH_CACHE_SIZE = 4096


class Router:
    """Latency-weighted shortest-path queries over a topology."""

    def __init__(
        self,
        topology: DatacenterTopology,
        path_cache_size: int = DEFAULT_PATH_CACHE_SIZE,
    ) -> None:
        if path_cache_size < 1:
            raise ValidationError(
                f"path cache size must be >= 1, got {path_cache_size!r}"
            )
        if hasattr(topology, "arrays"):
            topology.validate()
            self._arrays = topology.arrays()
        else:  # a prebuilt TopologyArrays snapshot
            self._arrays = topology
        self._topology = topology
        self._path_cache: OrderedDict = OrderedDict()
        self._path_cache_size = path_cache_size

    def _vertex(self, key: str) -> int:
        index = self._arrays.vertex_index.get(key)
        if index is None:
            raise ValidationError(f"unknown vertex {key!r}")
        return index

    def path(self, source: str, target: str) -> List[str]:
        """The minimum-latency vertex path from ``source`` to ``target``."""
        s = self._vertex(source)
        t = self._vertex(target)
        cached = self._path_cache.get((s, t))
        if cached is not None:
            self._path_cache.move_to_end((s, t))
            return list(cached)
        vertices = self._arrays.vertex_path(s, t)
        keys = [self._arrays.vertex_keys[v] for v in vertices.tolist()]
        self._path_cache[(s, t)] = keys
        if len(self._path_cache) > self._path_cache_size:
            self._path_cache.popitem(last=False)
        return list(keys)

    def latency(self, source: str, target: str) -> float:
        """Total link latency along the shortest path."""
        value = float(
            self._arrays.dist[self._vertex(source), self._vertex(target)]
        )
        if value == float("inf"):
            raise ValidationError(
                f"no path from {source!r} to {target!r}"
            )
        return value

    def hop_count(self, source: str, target: str) -> int:
        """Number of links on the shortest path."""
        s = self._vertex(source)
        t = self._vertex(target)
        if self._arrays.dist[s, t] == float("inf"):
            raise ValidationError(
                f"no path from {source!r} to {target!r}"
            )
        return int(_hops_all(self._arrays)[s, t])

    def path_latency(self, waypoints: Sequence[str]) -> float:
        """Total latency visiting ``waypoints`` in order via shortest paths.

        This is the communication-latency term of Eq. (16) for a request
        whose chain traverses the given sequence of compute nodes.
        """
        total = 0.0
        for a, b in zip(waypoints[:-1], waypoints[1:]):
            if a != b:
                total += self.latency(a, b)
        return total

    def average_pairwise_latency(self) -> float:
        """Mean shortest-path latency over compute-node pairs.

        A topology-derived estimate of the flat per-hop constant ``L``
        used by Eq. (16) when a caller wants ``L`` calibrated to an actual
        fabric rather than supplied as a parameter.
        """
        return self._arrays.mean_compute_latency()


def _hops_all(arrays):
    """Vertex-level hop matrix, derived once from the predecessors."""
    if arrays._hops_all is None:
        from repro.topology.arrays import _hop_counts

        arrays._hops_all = _hop_counts(arrays.pred)
    return arrays._hops_all
