"""BCube(n, k) topology generator — a server-centric datacenter fabric.

BCube recursively builds levels of n-port switches: BCube(n, 0) is n
servers on one switch; BCube(n, k) is n BCube(n, k-1) cells whose
servers each also connect to one of ``n^k`` level-k switches.  Total:
``n^(k+1)`` servers, each with ``k+1`` links, and ``(k+1) n^k``
switches.  Included as a third fabric family (alongside fat-tree and
leaf-spine) for topology-sensitivity studies.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.exceptions import ValidationError
from repro.topology.graph import DEFAULT_LINK_LATENCY, DatacenterTopology


def bcube(
    n: int,
    k: int,
    capacity: float = 1000.0,
    capacity_fn: Optional[Callable[[int], float]] = None,
    link_latency: float = DEFAULT_LINK_LATENCY,
) -> DatacenterTopology:
    """Build a BCube(n, k) fabric.

    Parameters
    ----------
    n:
        Switch port count / cell fan-out; must be >= 2.
    k:
        Recursion depth; 0 gives the base cell.  Keep ``n^(k+1)``
        reasonable — BCube(4, 1) is 16 servers, BCube(4, 2) is 64.
    capacity / capacity_fn:
        Uniform capacity, or per-server capacity by server index.
    link_latency:
        Per-link latency.
    """
    if n < 2:
        raise ValidationError(f"BCube n must be >= 2, got {n!r}")
    if k < 0:
        raise ValidationError(f"BCube k must be >= 0, got {k!r}")
    num_servers = n ** (k + 1)
    if num_servers > 4096:
        raise ValidationError(
            f"BCube({n}, {k}) has {num_servers} servers; refusing > 4096"
        )
    topo = DatacenterTopology(name=f"bcube-{n}-{k}")
    for s in range(num_servers):
        cap = capacity_fn(s) if capacity_fn else capacity
        topo.add_compute_node(f"server{s}", cap)
    # Level-l switch j connects the servers whose base-n digit l equals
    # every value while the other digits identify the switch.
    for level in range(k + 1):
        num_switches = n**k
        stride = n**level
        for j in range(num_switches):
            switch_key = f"sw{level}-{j}"
            topo.add_switch(switch_key)
            # Decompose j into the k digits excluding position `level`.
            high, low = divmod(j, stride)
            base = high * stride * n + low
            for port in range(n):
                server = base + port * stride
                topo.add_link(switch_key, f"server{server}", latency=link_latency)
    topo.validate()
    return topo
