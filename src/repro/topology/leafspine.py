"""Leaf-spine (two-tier Clos) topology generator.

Every leaf switch connects to every spine switch; servers hang off the
leaves.  The default dimensioning gives full bisection bandwidth, matching
the paper's "sufficient switch capacities" assumption.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.exceptions import ValidationError
from repro.topology.graph import DEFAULT_LINK_LATENCY, DatacenterTopology


def leaf_spine(
    num_leaves: int,
    num_spines: int,
    servers_per_leaf: int,
    capacity: float = 1000.0,
    capacity_fn: Optional[Callable[[int], float]] = None,
    link_latency: float = DEFAULT_LINK_LATENCY,
) -> DatacenterTopology:
    """Build a leaf-spine fabric.

    Parameters
    ----------
    num_leaves, num_spines:
        Switch counts; both must be >= 1.
    servers_per_leaf:
        Compute nodes attached to each leaf; must be >= 1.
    capacity / capacity_fn:
        Uniform capacity, or per-server capacity by global server index.
    link_latency:
        Per-link latency.
    """
    if num_leaves < 1:
        raise ValidationError(f"need >= 1 leaf, got {num_leaves!r}")
    if num_spines < 1:
        raise ValidationError(f"need >= 1 spine, got {num_spines!r}")
    if servers_per_leaf < 1:
        raise ValidationError(
            f"need >= 1 server per leaf, got {servers_per_leaf!r}"
        )
    topo = DatacenterTopology(
        name=f"leaf-spine-{num_leaves}x{num_spines}"
    )
    spines = []
    for s in range(num_spines):
        key = f"spine{s}"
        topo.add_switch(key)
        spines.append(key)
    server_index = 0
    for leaf_index in range(num_leaves):
        leaf = f"leaf{leaf_index}"
        topo.add_switch(leaf)
        for spine in spines:
            topo.add_link(leaf, spine, latency=link_latency)
        for _ in range(servers_per_leaf):
            cap = capacity_fn(server_index) if capacity_fn else capacity
            key = f"server{server_index}"
            topo.add_compute_node(key, cap)
            topo.add_link(leaf, key, latency=link_latency)
            server_index += 1
    topo.validate()
    return topo
