"""Array-native topology view — dense all-pairs shortest paths + links.

The scalar :class:`~repro.topology.routing.Router` answers one
``(source, target)`` query at a time through networkx Dijkstra runs; the
evaluation and solver hot paths need *every* compute-pair latency as a
gatherable array.  :class:`TopologyArrays` materializes, once per
topology:

* ``dist``/``pred`` — dense ``(V, V)`` shortest-path latency and
  predecessor matrices over **all** vertices (compute nodes and
  switches), computed by one batched Dijkstra sweep
  (:func:`scipy.sparse.csgraph.dijkstra` when scipy is available, a
  heapq sweep otherwise — identical distances either way);
* ``latency``/``hops`` — the compute-node submatrices Eq. (16) consumes:
  ``latency[i, j]`` is the shortest-path latency between compute nodes
  ``i`` and ``j`` (float64, so gathers match the scalar Dijkstra sums
  bit for bit), ``hops[i, j]`` the link count of the materialized route;
* a **link index** — ``link_u``/``link_v``/``link_latency``/
  ``link_bandwidth`` columns in ``graph.edges`` order plus a CSR
  adjacency, giving every link a stable integer id that bandwidth
  accounting can ``bincount`` over;
* a **path-link CSR** over compute pairs — ``path_links[path_ptr[p] :
  path_ptr[p + 1]]`` lists the link ids on the routed path of compute
  pair ``p = i * C + j``, which turns "charge this flow on every link of
  its route" into one ``np.repeat`` + ``np.bincount``.

Routes are unique per (source, target) — whatever tie-break the Dijkstra
sweep applied — so link-load accounting is deterministic.  Latency
gathers are tie-independent (all shortest paths cost the same); hop
counts and link loads describe the materialized route.

Build cost is ``O(V * E log V)`` time and ``O(V^2)`` memory; the repo's
fabrics (tens to a few thousand vertices) fit comfortably.  The arrays
are immutable snapshots: :meth:`DatacenterTopology.arrays
<repro.topology.graph.DatacenterTopology.arrays>` caches one per
topology and invalidates it on mutation.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Dict, Hashable, Optional, Tuple

import numpy as np

from repro.exceptions import ValidationError

try:  # pragma: no cover - exercised implicitly by every build
    from scipy.sparse import coo_matrix
    from scipy.sparse.csgraph import dijkstra as _scipy_dijkstra

    _HAVE_SCIPY = True
except ImportError:  # pragma: no cover - scipy is in the default image
    _HAVE_SCIPY = False

#: ``pred`` sentinel for "no predecessor" (source itself); matches
#: :func:`scipy.sparse.csgraph.dijkstra`.
NO_PREDECESSOR = -9999


@dataclass
class TopologyArrays:
    """Immutable columnar snapshot of one :class:`DatacenterTopology`."""

    # --- vertex index (all vertices, graph insertion order) ----------
    vertex_keys: Tuple[str, ...]
    vertex_index: Dict[str, int]
    #: True per vertex that is a compute node.
    is_compute: np.ndarray

    # --- compute-node index (insertion order, = compute_nodes()) -----
    compute_keys: Tuple[str, ...]
    compute_index: Dict[str, int]
    #: Vertex index of each compute node.
    compute_vertex: np.ndarray
    #: ``A_v`` per compute node.
    capacity: np.ndarray

    # --- link columns (graph.edges order; one id per undirected link) -
    link_u: np.ndarray
    link_v: np.ndarray
    link_latency: np.ndarray
    link_bandwidth: np.ndarray

    # --- CSR adjacency over vertices (both directions per link) ------
    adj_ptr: np.ndarray
    adj_vertex: np.ndarray
    adj_link: np.ndarray

    # --- all-pairs shortest paths over vertices -----------------------
    #: ``(V, V)`` float64 shortest-path latency.
    dist: np.ndarray
    #: ``(V, V)`` int32 predecessor matrix (``pred[s, t]`` is the vertex
    #: before ``t`` on the route from ``s``; ``NO_PREDECESSOR`` at the
    #: source).
    pred: np.ndarray

    # --- compute-pair views (what Eq. (16) gathers) -------------------
    #: ``(C, C)`` float64 compute-to-compute shortest-path latency.
    latency: np.ndarray
    #: ``(C, C)`` int32 link count of the materialized route.
    hops: np.ndarray

    # --- path-link CSR over compute pairs (lazily built) --------------
    _path_csr: Optional[Tuple[np.ndarray, np.ndarray]] = field(
        default=None, repr=False
    )
    #: Vertex-level hop matrix (the compute ``hops`` is its submatrix);
    #: kept for scalar Router queries that may touch switches.
    _hops_all: Optional[np.ndarray] = field(default=None, repr=False)

    # ------------------------------------------------------------------
    # Builder
    # ------------------------------------------------------------------
    @classmethod
    def build(cls, topology) -> "TopologyArrays":
        """Materialize the arrays from a validated topology."""
        topology.validate()
        graph = topology.graph
        vertex_keys = tuple(graph.nodes)
        vertex_index = {key: i for i, key in enumerate(vertex_keys)}
        num_vertices = len(vertex_keys)
        compute_keys = tuple(n.key for n in topology.compute_nodes())
        compute_index = {key: i for i, key in enumerate(compute_keys)}
        compute_vertex = np.array(
            [vertex_index[key] for key in compute_keys], dtype=np.int64
        )
        is_compute = np.zeros(num_vertices, dtype=bool)
        is_compute[compute_vertex] = True
        capacity = np.array(
            [n.capacity for n in topology.compute_nodes()], dtype=np.float64
        )

        edges = list(graph.edges(data=True))
        link_u = np.array(
            [vertex_index[a] for a, _, _ in edges], dtype=np.int64
        )
        link_v = np.array(
            [vertex_index[b] for _, b, _ in edges], dtype=np.int64
        )
        link_latency = np.array(
            [data["latency"] for _, _, data in edges], dtype=np.float64
        )
        link_bandwidth = np.array(
            [data["bandwidth"] for _, _, data in edges], dtype=np.float64
        )

        # CSR adjacency: every link appears in both endpoint rows.
        ends = np.concatenate([link_u, link_v])
        other = np.concatenate([link_v, link_u])
        link_ids = np.concatenate(
            [np.arange(len(edges), dtype=np.int64)] * 2
        ) if edges else np.zeros(0, dtype=np.int64)
        order = np.argsort(ends, kind="stable")
        adj_ptr = np.zeros(num_vertices + 1, dtype=np.int64)
        np.cumsum(
            np.bincount(ends, minlength=num_vertices), out=adj_ptr[1:]
        )
        adj_vertex = other[order]
        adj_link = link_ids[order]

        dist, pred = _all_pairs_dijkstra(
            num_vertices, link_u, link_v, link_latency
        )

        hops_all = _hop_counts(pred)
        latency = dist[np.ix_(compute_vertex, compute_vertex)].copy()
        hops = hops_all[np.ix_(compute_vertex, compute_vertex)].copy()

        return cls(
            vertex_keys=vertex_keys,
            vertex_index=vertex_index,
            is_compute=is_compute,
            compute_keys=compute_keys,
            compute_index=compute_index,
            compute_vertex=compute_vertex,
            capacity=capacity,
            link_u=link_u,
            link_v=link_v,
            link_latency=link_latency,
            link_bandwidth=link_bandwidth,
            adj_ptr=adj_ptr,
            adj_vertex=adj_vertex,
            adj_link=adj_link,
            dist=dist,
            pred=pred,
            latency=latency,
            hops=hops,
            _hops_all=hops_all,
        )

    # ------------------------------------------------------------------
    # Dimensions
    # ------------------------------------------------------------------
    @property
    def num_vertices(self) -> int:
        return len(self.vertex_keys)

    @property
    def num_compute(self) -> int:
        return len(self.compute_keys)

    @property
    def num_links(self) -> int:
        return int(self.link_u.shape[0])

    # ------------------------------------------------------------------
    # Path reconstruction
    # ------------------------------------------------------------------
    def vertex_path(self, source: int, target: int) -> np.ndarray:
        """Vertex indices along the route ``source -> target``.

        Raises
        ------
        ValidationError
            If ``target`` is unreachable from ``source``.
        """
        if source == target:
            return np.array([source], dtype=np.int64)
        if not np.isfinite(self.dist[source, target]):
            raise ValidationError(
                f"no path from {self.vertex_keys[source]!r} to "
                f"{self.vertex_keys[target]!r}"
            )
        out = [target]
        cur = target
        while True:
            cur = int(self.pred[source, cur])
            if cur == NO_PREDECESSOR:
                break
            out.append(cur)
        return np.array(out[::-1], dtype=np.int64)

    def path_link_csr(self) -> Tuple[np.ndarray, np.ndarray]:
        """CSR of link ids per compute pair (built once, cached).

        Returns ``(ptr, links)`` where
        ``links[ptr[i * C + j] : ptr[i * C + j + 1]]`` are the link ids
        on the route from compute node ``i`` to compute node ``j`` (empty
        for ``i == j``).  Total size is ``sum(hops)``.
        """
        if self._path_csr is not None:
            return self._path_csr
        C = self.num_compute
        num_pairs = C * C
        lens = self.hops.reshape(-1).astype(np.int64)
        ptr = np.zeros(num_pairs + 1, dtype=np.int64)
        np.cumsum(lens, out=ptr[1:])
        links = np.empty(int(ptr[-1]), dtype=np.int64)

        # Walk every pair's predecessor chain simultaneously, one hop
        # level per iteration: at each step the current frontier vertex
        # steps to its predecessor and the traversed link is recorded
        # back-to-front in the pair's CSR slot.
        src = np.repeat(self.compute_vertex, C)
        cur = np.tile(self.compute_vertex, C)
        remaining = lens.copy()
        active = np.nonzero(remaining > 0)[0]
        while len(active):
            step = self.pred[src[active], cur[active]]
            remaining[active] -= 1
            slot = ptr[active] + remaining[active]
            links[slot] = self._edge_ids(step, cur[active])
            cur[active] = step
            active = active[remaining[active] > 0]
        self._path_csr = (ptr, links)
        return self._path_csr

    def _edge_ids(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """Vectorized link-id lookup for direct links ``a[i] - b[i]``."""
        if not hasattr(self, "_edge_code_sorted"):
            V = np.int64(self.num_vertices)
            lo = np.minimum(self.link_u, self.link_v)
            hi = np.maximum(self.link_u, self.link_v)
            codes = lo * V + hi
            order = np.argsort(codes, kind="stable")
            self._edge_code_sorted = codes[order]
            self._edge_code_order = order
        V = np.int64(self.num_vertices)
        codes = np.minimum(a, b) * V + np.maximum(a, b)
        pos = np.searchsorted(self._edge_code_sorted, codes)
        return self._edge_code_order[pos]

    # ------------------------------------------------------------------
    # Gathers (the hot-path API)
    # ------------------------------------------------------------------
    def gather_latency(
        self, src: np.ndarray, dst: np.ndarray
    ) -> np.ndarray:
        """``latency[src[i], dst[i]]`` for compute-index vectors."""
        return self.latency[src, dst]

    def links_on_pairs(
        self, src: np.ndarray, dst: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Concatenated link ids of the routes ``src[i] -> dst[i]``.

        Returns ``(link_ids, pair_of_link)``: for each traversed link,
        its id and the index ``i`` of the pair that traverses it.  Feed
        ``np.bincount(link_ids, weights=flow[pair_of_link])`` to charge
        per-pair flows onto links.
        """
        ptr, links = self.path_link_csr()
        pair = src * np.int64(self.num_compute) + dst
        starts = ptr[pair]
        lens = ptr[pair + 1] - starts
        total = int(lens.sum())
        if not total:
            empty = np.zeros(0, dtype=np.int64)
            return empty, empty
        # Standard CSR multi-slice gather: output position t of slice i
        # reads links[starts[i] + (t - out_start[i])].
        out_start = np.cumsum(lens) - lens
        idx = np.arange(total, dtype=np.int64) + np.repeat(
            starts - out_start, lens
        )
        pair_of_link = np.repeat(
            np.arange(len(pair), dtype=np.int64), lens
        )
        return links[idx], pair_of_link

    def mean_compute_latency(self) -> float:
        """Mean shortest-path latency over distinct compute pairs."""
        C = self.num_compute
        if C < 2:
            return 0.0
        total = float(self.latency.sum())  # diagonal is zero
        return total / (C * (C - 1))


def _all_pairs_dijkstra(
    num_vertices: int,
    link_u: np.ndarray,
    link_v: np.ndarray,
    link_latency: np.ndarray,
) -> Tuple[np.ndarray, np.ndarray]:
    """Dense APSP ``(dist, pred)`` over an undirected weighted graph."""
    if _HAVE_SCIPY:
        rows = np.concatenate([link_u, link_v])
        cols = np.concatenate([link_v, link_u])
        data = np.concatenate([link_latency, link_latency])
        csgraph = coo_matrix(
            (data, (rows, cols)), shape=(num_vertices, num_vertices)
        ).tocsr()
        dist, pred = _scipy_dijkstra(
            csgraph, directed=True, return_predecessors=True
        )
        return dist, pred.astype(np.int32, copy=False)
    return _heapq_apsp(num_vertices, link_u, link_v, link_latency)


def _heapq_apsp(
    num_vertices: int,
    link_u: np.ndarray,
    link_v: np.ndarray,
    link_latency: np.ndarray,
) -> Tuple[np.ndarray, np.ndarray]:  # pragma: no cover - scipy fallback
    """Pure-python Dijkstra sweep (same contract as the scipy path)."""
    adjacency: list = [[] for _ in range(num_vertices)]
    for u, v, w in zip(
        link_u.tolist(), link_v.tolist(), link_latency.tolist()
    ):
        adjacency[u].append((v, w))
        adjacency[v].append((u, w))
    dist = np.full((num_vertices, num_vertices), np.inf)
    pred = np.full((num_vertices, num_vertices), NO_PREDECESSOR, np.int32)
    for s in range(num_vertices):
        d = dist[s]
        p = pred[s]
        d[s] = 0.0
        heap = [(0.0, s)]
        done = np.zeros(num_vertices, dtype=bool)
        while heap:
            du, u = heapq.heappop(heap)
            if done[u]:
                continue
            done[u] = True
            for v, w in adjacency[u]:
                nd = du + w
                if nd < d[v]:
                    d[v] = nd
                    p[v] = u
                    heapq.heappush(heap, (nd, v))
    return dist, pred


def _hop_counts(pred: np.ndarray) -> np.ndarray:
    """Link counts of every route, from the predecessor matrix.

    One vectorized predecessor step per hop level: entries still short
    of their source step to their predecessor and increment.  Iteration
    count equals the routed diameter.
    """
    num_vertices = pred.shape[0]
    hops = np.zeros((num_vertices, num_vertices), dtype=np.int32)
    row = np.arange(num_vertices)[:, None]
    cur = np.broadcast_to(
        np.arange(num_vertices), (num_vertices, num_vertices)
    ).copy()
    while True:
        step = pred[row, cur]
        live = step != NO_PREDECESSOR
        if not live.any():
            break
        hops[live] += 1
        cur = np.where(live, step, cur)
    return hops
