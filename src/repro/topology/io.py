"""GraphML ingestion and export for datacenter topologies.

Real fabrics (SNDlib / Topology Zoo / B-JointSP's ``parameters/``
networks) ship as GraphML; this module round-trips
:class:`~repro.topology.graph.DatacenterTopology` through that format so
generated and real topologies flow through one pipeline:

* :func:`save_graphml` writes a topology with its ``kind``/``capacity``
  node attributes and ``latency``/``bandwidth`` edge attributes;
* :func:`load_graphml` reads one back — files from other tools are
  accepted too: a node is a compute node when it carries a positive
  ``capacity`` (or its ``kind`` says so), a switch otherwise, and
  missing link attributes fall back to the model defaults;
* :func:`abilene` loads the vendored Abilene (Internet2) backbone — the
  11-PoP / 14-link reference WAN every NFV placement paper evaluates on
  — with link latencies set to geographic propagation delays.

Vendored fixtures live in ``repro/topology/data/``.
"""

from __future__ import annotations

from pathlib import Path
from typing import Optional, Union

import networkx as nx

from repro.exceptions import ValidationError
from repro.topology.graph import (
    DEFAULT_LINK_BANDWIDTH,
    DEFAULT_LINK_LATENCY,
    DatacenterTopology,
)

#: Directory of vendored topology fixtures.
DATA_DIR = Path(__file__).resolve().parent / "data"


def save_graphml(
    topology: DatacenterTopology, path: Union[str, Path]
) -> None:
    """Write ``topology`` to ``path`` as GraphML.

    Node attributes: ``kind`` (``compute``/``switch``) and ``capacity``
    (compute nodes only).  Edge attributes: ``latency``, ``bandwidth``.
    """
    topology.validate()
    graph = nx.Graph(name=topology.name)
    for node in topology.compute_nodes():
        graph.add_node(node.key, kind="compute", capacity=float(node.capacity))
    for switch in topology.switches():
        graph.add_node(switch.key, kind="switch")
    for a, b, latency, bandwidth in topology.links():
        graph.add_edge(
            a, b, latency=float(latency), bandwidth=float(bandwidth)
        )
    nx.write_graphml(graph, str(path))


def load_graphml(
    path: Union[str, Path],
    name: Optional[str] = None,
    default_capacity: float = 1000.0,
    default_latency: float = DEFAULT_LINK_LATENCY,
    default_bandwidth: float = DEFAULT_LINK_BANDWIDTH,
) -> DatacenterTopology:
    """Load a GraphML file as a :class:`DatacenterTopology`.

    Parameters
    ----------
    path:
        The GraphML file.
    name:
        Topology name; defaults to the graph's own name or the file stem.
    default_capacity:
        ``A_v`` for compute nodes whose file carries no ``capacity``
        attribute (foreign files where every node is placeable).
    default_latency / default_bandwidth:
        Fallbacks for links without ``latency``/``bandwidth`` attributes.

    Notes
    -----
    Classification: a node with ``kind == "switch"`` is a switch; a node
    with ``kind == "compute"``, a positive ``capacity``, or no ``kind``
    at all is a compute node.  Files written by :func:`save_graphml`
    round-trip exactly.
    """
    path = Path(path)
    if not path.exists():
        raise ValidationError(f"no such GraphML file: {str(path)!r}")
    graph = nx.read_graphml(str(path))
    topo = DatacenterTopology(
        name=name or graph.graph.get("name") or path.stem
    )
    for key, data in graph.nodes(data=True):
        kind = data.get("kind")
        if kind == "switch":
            topo.add_switch(str(key))
        else:
            capacity = data.get("capacity")
            if capacity is None:
                capacity = default_capacity
            topo.add_compute_node(str(key), float(capacity))
    for a, b, data in graph.edges(data=True):
        topo.add_link(
            str(a),
            str(b),
            latency=float(data.get("latency", default_latency)),
            bandwidth=float(data.get("bandwidth", default_bandwidth)),
        )
    topo.validate()
    return topo


def abilene(
    capacity: Optional[float] = None,
    bandwidth: Optional[float] = None,
) -> DatacenterTopology:
    """The vendored Abilene (Internet2) backbone fixture.

    11 PoPs, 14 OC-192 links; latencies are geographic propagation
    delays (seconds), capacities and bandwidths are the abstract units
    the rest of the model uses.

    Parameters
    ----------
    capacity:
        Override every PoP's compute capacity.
    bandwidth:
        Override every link's bandwidth (the knob ``topology_compare``
        turns to create contention).
    """
    topo = load_graphml(DATA_DIR / "abilene.graphml", name="abilene")
    if capacity is None and bandwidth is None:
        return topo
    rebuilt = DatacenterTopology(name=topo.name)
    for node in topo.compute_nodes():
        rebuilt.add_compute_node(
            node.key, capacity if capacity is not None else node.capacity
        )
    for switch in topo.switches():
        rebuilt.add_switch(switch.key)
    for a, b, latency, bw in topo.links():
        rebuilt.add_link(
            a,
            b,
            latency=latency,
            bandwidth=bandwidth if bandwidth is not None else bw,
        )
    rebuilt.validate()
    return rebuilt
