"""SNDlib-style random connected datacenter topologies.

The paper adopts connected graphs "based on [SNDlib]" with 4-50 compute
nodes and per-node capacities scaling from 1 to 5000 units.  SNDlib
instances themselves are WAN designs; what the placement/scheduling layer
consumes is only (a) the set of node capacities and (b) connectivity with
per-hop latency.  This generator reproduces exactly those properties:
a random connected graph (random spanning tree + extra random edges)
whose compute nodes draw capacities from a configurable range.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

import numpy as np

from repro.exceptions import ValidationError
from repro.seeding import resolve_rng
from repro.topology.graph import DEFAULT_LINK_LATENCY, DatacenterTopology


def random_datacenter(
    num_nodes: int,
    capacity_range: Tuple[float, float] = (1.0, 5000.0),
    extra_edge_probability: float = 0.3,
    link_latency: float = DEFAULT_LINK_LATENCY,
    rng: Optional[np.random.Generator] = None,
    capacities: Optional[Sequence[float]] = None,
) -> DatacenterTopology:
    """Build a random connected topology of compute nodes.

    Parameters
    ----------
    num_nodes:
        Number of compute nodes (the paper sweeps 4-50).
    capacity_range:
        Inclusive ``(low, high)`` uniform range for ``A_v`` when explicit
        ``capacities`` are not given.
    extra_edge_probability:
        Probability of adding each non-tree edge; 0 yields a tree,
        1 a clique.
    link_latency:
        Per-link latency ``L`` component.
    rng:
        Seeded generator for reproducibility; ``None`` uses the
        documented default seed (``repro.seeding.DEFAULT_SEED``).
    capacities:
        Explicit per-node capacities (overrides ``capacity_range``).

    Notes
    -----
    Connectivity is guaranteed by first wiring a random spanning tree
    (each node ``i > 0`` links to a uniformly random predecessor), then
    sprinkling extra edges.
    """
    if num_nodes < 1:
        raise ValidationError(f"need >= 1 node, got {num_nodes!r}")
    low, high = capacity_range
    if low <= 0.0 or high < low:
        raise ValidationError(
            f"capacity range must satisfy 0 < low <= high, got {capacity_range!r}"
        )
    if not 0.0 <= extra_edge_probability <= 1.0:
        raise ValidationError(
            f"edge probability must be in [0, 1], got {extra_edge_probability!r}"
        )
    if capacities is not None and len(capacities) != num_nodes:
        raise ValidationError(
            f"{len(capacities)} capacities given for {num_nodes} nodes"
        )
    rng = resolve_rng(rng)

    topo = DatacenterTopology(name=f"random-{num_nodes}")
    for i in range(num_nodes):
        if capacities is not None:
            cap = float(capacities[i])
        else:
            cap = float(rng.uniform(low, high))
        topo.add_compute_node(f"node{i}", cap)

    # Random spanning tree.
    for i in range(1, num_nodes):
        j = int(rng.integers(0, i))
        topo.add_link(f"node{i}", f"node{j}", latency=link_latency)
    # Extra random edges.
    for i in range(num_nodes):
        for j in range(i + 1, num_nodes):
            if topo.graph.has_edge(f"node{i}", f"node{j}"):
                continue
            if rng.uniform() < extra_edge_probability:
                topo.add_link(f"node{i}", f"node{j}", latency=link_latency)

    topo.validate()
    return topo
