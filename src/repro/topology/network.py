"""Per-link bandwidth accounting — the network-aware constraint layer.

The paper assumes link bandwidth is plentiful; B-JointSP's overlay/
edge/flow model (and every real fabric) does not.  This module adds the
missing constraint as pure array state:

* **Traffic matrix** — every adjacent chain pair ``(f, g)`` with
  ``f != g`` carries the summed effective rate ``lambda_r / P_r`` of the
  requests whose chains traverse ``f -> g`` (the same equivalent-rate
  convention as Eq. (7); for placement-only problems without requests,
  each chain contributes a unit flow).  Aggregated per *unordered* VNF
  pair, because an undirected link carries both directions.
* **Link loads** — placing ``f`` on node ``u`` and ``g`` on ``v`` routes
  the pair's flow over every link of the precomputed shortest path
  ``u -> v`` (:meth:`TopologyArrays.path_link_csr`), so a full load
  recompute and a per-candidate feasibility check are both one
  ``np.bincount`` over gathered link ids.
* **Fit checks** — :meth:`NetworkModel.fits` answers "can VNF ``f`` sit
  on node ``n`` without oversubscribing any link", the bandwidth
  extension of the solvers' Eq. (6) capacity check.  Solvers keep a
  running per-link load vector and apply :meth:`delta_loads` on every
  accepted move, mirroring their O(1) capacity-vector deltas.

``bandwidth=None`` everywhere means "no bandwidth constraint" and leaves
every solver byte-identical to its unconstrained kernel.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Hashable, Iterable, Mapping, Optional, Sequence, Tuple, Union

import numpy as np

from repro.exceptions import ValidationError

#: Slack absorbing float accumulation error in bandwidth comparisons
#: (the Eq. (6) convention, applied to links).
BANDWIDTH_EPS = 1e-9


def _topology_arrays(topology):
    """Accept a ``DatacenterTopology`` or a ``TopologyArrays``."""
    return topology.arrays() if hasattr(topology, "arrays") else topology


@dataclass
class NetworkModel:
    """Routed-flow bandwidth state for one scenario on one fabric."""

    #: The fabric's array view.
    topo: object
    #: Scenario node index -> compute index in ``topo``.
    node_compute: np.ndarray
    #: Scenario node keys (index-aligned with ``node_compute``).
    node_keys: Tuple[Hashable, ...]
    #: VNF names (index space of all ``vnf`` columns below).
    vnf_names: Tuple[str, ...]
    #: Per-link bandwidth capacity (length ``topo.num_links``).
    bandwidth: np.ndarray
    #: Unordered VNF pair traffic: ``pair_a[i] < pair_b[i]`` with
    #: aggregated flow ``pair_flow[i]``.
    pair_a: np.ndarray
    pair_b: np.ndarray
    pair_flow: np.ndarray
    #: CSR over VNFs: incident pairs of each VNF (peer + flow).
    vnf_ptr: np.ndarray
    vnf_peer: np.ndarray
    vnf_flow: np.ndarray
    #: Cached ``bandwidth + BANDWIDTH_EPS`` comparison threshold.
    _slack: np.ndarray = field(default=None, repr=False)

    # ------------------------------------------------------------------
    # Builders
    # ------------------------------------------------------------------
    @classmethod
    def build(
        cls,
        topology,
        vnf_names: Sequence[str],
        node_keys: Sequence[Hashable],
        chain_flows: Iterable[Tuple[Sequence[str], float]],
        bandwidth: Union[None, float, Sequence[float]] = None,
    ) -> "NetworkModel":
        """Assemble the model from chains annotated with flow rates.

        Parameters
        ----------
        topology:
            A :class:`DatacenterTopology` or its ``TopologyArrays``.
        vnf_names:
            The scenario's VNF index space.
        node_keys:
            The scenario's placement-node keys; each must be a compute
            node of the topology.
        chain_flows:
            ``(vnf_name_sequence, flow)`` per chain/request; adjacent
            distinct pairs accumulate ``flow`` on their unordered pair.
        bandwidth:
            ``None`` uses the topology's per-link bandwidth column, a
            scalar applies uniformly, a sequence gives per-link values
            in link-id order.
        """
        topo = _topology_arrays(topology)
        node_compute = np.empty(len(node_keys), dtype=np.int64)
        for i, key in enumerate(node_keys):
            ci = topo.compute_index.get(key)
            if ci is None:
                ci = topo.compute_index.get(str(key))
            if ci is None:
                raise ValidationError(
                    f"placement node {key!r} is not a compute node of "
                    f"the topology"
                )
            node_compute[i] = ci

        if bandwidth is None:
            bw = topo.link_bandwidth.astype(np.float64, copy=True)
        elif np.isscalar(bandwidth):
            bw = np.full(topo.num_links, float(bandwidth))
        else:
            bw = np.asarray(bandwidth, dtype=np.float64).copy()
            if bw.shape != (topo.num_links,):
                raise ValidationError(
                    f"expected {topo.num_links} per-link bandwidths, "
                    f"got shape {bw.shape}"
                )
        if (bw <= 0.0).any():
            raise ValidationError("link bandwidths must be positive")

        vnf_index = {name: i for i, name in enumerate(vnf_names)}
        a_list, b_list, flow_list = [], [], []
        for chain, flow in chain_flows:
            names = list(chain)
            for x, y in zip(names[:-1], names[1:]):
                if x == y:
                    continue
                fx = vnf_index.get(x)
                fy = vnf_index.get(y)
                if fx is None or fy is None:
                    raise ValidationError(
                        f"chain references unknown VNF "
                        f"{(x if fx is None else y)!r}"
                    )
                a_list.append(min(fx, fy))
                b_list.append(max(fx, fy))
                flow_list.append(float(flow))

        num_vnfs = len(vnf_names)
        if a_list:
            codes = (
                np.asarray(a_list, dtype=np.int64) * np.int64(num_vnfs)
                + np.asarray(b_list, dtype=np.int64)
            )
            uniq, inverse = np.unique(codes, return_inverse=True)
            pair_flow = np.bincount(
                inverse,
                weights=np.asarray(flow_list, dtype=np.float64),
                minlength=len(uniq),
            )
            pair_a = uniq // np.int64(num_vnfs)
            pair_b = uniq % np.int64(num_vnfs)
        else:
            pair_a = np.zeros(0, dtype=np.int64)
            pair_b = np.zeros(0, dtype=np.int64)
            pair_flow = np.zeros(0, dtype=np.float64)

        # Per-VNF CSR: each pair appears under both endpoints.
        owners = np.concatenate([pair_a, pair_b])
        peers = np.concatenate([pair_b, pair_a])
        flows = np.concatenate([pair_flow, pair_flow])
        order = np.argsort(owners, kind="stable")
        vnf_ptr = np.zeros(num_vnfs + 1, dtype=np.int64)
        np.cumsum(np.bincount(owners, minlength=num_vnfs), out=vnf_ptr[1:])

        return cls(
            topo=topo,
            node_compute=node_compute,
            node_keys=tuple(node_keys),
            vnf_names=tuple(vnf_names),
            bandwidth=bw,
            pair_a=pair_a,
            pair_b=pair_b,
            pair_flow=pair_flow,
            vnf_ptr=vnf_ptr,
            vnf_peer=peers[order],
            vnf_flow=flows[order],
            _slack=bw + BANDWIDTH_EPS,
        )

    @classmethod
    def for_deployment(
        cls,
        state,
        topology,
        bandwidth: Union[None, float, Sequence[float]] = None,
    ) -> "NetworkModel":
        """Model for a :class:`DeploymentState`: request-rate flows."""
        arrays = state.arrays()
        return cls.build(
            topology,
            arrays.vnf_names,
            arrays.node_keys,
            (
                (list(r.chain), float(rate))
                for r, rate in zip(state.requests, arrays.eff_rate)
            ),
            bandwidth=bandwidth,
        )

    @classmethod
    def for_problem(
        cls,
        problem,
        topology,
        requests: Optional[Sequence] = None,
        bandwidth: Union[None, float, Sequence[float]] = None,
    ) -> "NetworkModel":
        """Model for a :class:`PlacementProblem`.

        With ``requests`` the flows are their effective rates; without,
        every problem chain carries a unit flow (relative contention
        only — the right scale for capacity-free feasibility shaping).
        """
        names = tuple(f.name for f in problem.vnfs)
        node_keys = tuple(problem.capacities.keys())
        if requests is not None:
            chain_flows = [
                (list(r.chain), float(r.effective_rate)) for r in requests
            ]
        else:
            chain_flows = [(list(chain), 1.0) for chain in problem.chains]
        return cls.build(
            topology, names, node_keys, chain_flows, bandwidth=bandwidth
        )

    # ------------------------------------------------------------------
    # Dimensions
    # ------------------------------------------------------------------
    @property
    def num_links(self) -> int:
        return int(self.bandwidth.shape[0])

    @property
    def num_pairs(self) -> int:
        return int(self.pair_flow.shape[0])

    # ------------------------------------------------------------------
    # Load accounting
    # ------------------------------------------------------------------
    def _pair_links(self, a: np.ndarray, b: np.ndarray):
        """Link ids of the canonical routes between compute-index pairs.

        Shortest-path ties are broken per Dijkstra source row, so the
        materialized route ``a -> b`` can differ from ``b -> a``.  Flows
        are undirected, and every accounting call must charge one and
        the same route per *unordered* node pair — otherwise an
        incremental retract from the other endpoint would drain
        different links than the add filled.  Canonical direction:
        ``min(a, b) -> max(a, b)``.
        """
        return self.topo.links_on_pairs(
            np.minimum(a, b), np.maximum(a, b)
        )

    def link_loads(self, placement_vec: np.ndarray) -> np.ndarray:
        """Routed flow per link for a full placement (index vector).

        Unplaced VNFs (``-1``) and colocated pairs contribute nothing.
        """
        u = placement_vec[self.pair_a]
        v = placement_vec[self.pair_b]
        active = (u >= 0) & (v >= 0) & (u != v)
        if not active.any():
            return np.zeros(self.num_links, dtype=np.float64)
        src = self.node_compute[u[active]]
        dst = self.node_compute[v[active]]
        ids, owner = self._pair_links(src, dst)
        return np.bincount(
            ids,
            weights=self.pair_flow[active][owner],
            minlength=self.num_links,
        )

    def delta_loads(
        self, fi: int, at_node: int, placement_vec: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Link ids + flows for VNF ``fi``'s pairs if it sat on ``at_node``.

        Only pairs whose peer is placed on a *different* node route any
        flow.  Feed the result to ``np.add.at`` (commit) or
        :meth:`fits` (check).
        """
        lo, hi = int(self.vnf_ptr[fi]), int(self.vnf_ptr[fi + 1])
        if lo == hi:
            empty = np.zeros(0, dtype=np.int64)
            return empty, np.zeros(0, dtype=np.float64)
        peer_nodes = placement_vec[self.vnf_peer[lo:hi]]
        flows = self.vnf_flow[lo:hi]
        mask = (peer_nodes >= 0) & (peer_nodes != at_node)
        if not mask.any():
            empty = np.zeros(0, dtype=np.int64)
            return empty, np.zeros(0, dtype=np.float64)
        src = np.full(
            int(mask.sum()), self.node_compute[at_node], dtype=np.int64
        )
        dst = self.node_compute[peer_nodes[mask]]
        ids, owner = self._pair_links(src, dst)
        return ids, flows[mask][owner]

    def fits(
        self,
        fi: int,
        at_node: int,
        placement_vec: np.ndarray,
        loads: np.ndarray,
    ) -> bool:
        """Whether placing ``fi`` on ``at_node`` oversubscribes no link.

        ``loads`` must not yet include ``fi``'s own contributions (a
        relocate check removes them first — see :meth:`delta_loads`).
        """
        ids, flows = self.delta_loads(fi, at_node, placement_vec)
        if not len(ids):
            return True
        add = np.bincount(ids, weights=flows, minlength=self.num_links)
        touched = np.unique(ids)
        return bool(
            (loads[touched] + add[touched] <= self._slack[touched]).all()
        )

    def add_flows(
        self,
        fi: int,
        at_node: int,
        placement_vec: np.ndarray,
        loads: np.ndarray,
        sign: float = 1.0,
    ) -> None:
        """Commit (or with ``sign=-1`` retract) ``fi``'s routed flows."""
        ids, flows = self.delta_loads(fi, at_node, placement_vec)
        if len(ids):
            np.add.at(loads, ids, sign * flows)

    def remove_flows(
        self,
        fi: int,
        at_node: int,
        placement_vec: np.ndarray,
        loads: np.ndarray,
    ) -> None:
        """The exact inverse of :meth:`add_flows`.

        Retracting charges the identical link set with the identical
        per-link flow values (the canonical min->max pair routing makes
        the route endpoint-order-free), so each load entry receives
        ``x + f - f`` — an exact float round trip whenever the add was
        the latest change to those links, and the same retract the
        solvers' trial-commit kernels already rely on.  Pinned by the
        round-trip tests in ``tests/topology/test_network.py``.
        """
        self.add_flows(fi, at_node, placement_vec, loads, -1.0)

    # ------------------------------------------------------------------
    # Per-request chain flows (incremental admit/depart)
    # ------------------------------------------------------------------
    def chain_link_flows(
        self,
        vnf_idx_seq: np.ndarray,
        placement_vec: np.ndarray,
        flow: float,
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Link ids + flows of ONE chain routed on a placement.

        ``vnf_idx_seq`` is the chain as VNF indices (one request's
        ``chain_vnf`` slice).  Every adjacent distinct pair placed on
        distinct nodes charges ``flow`` along its canonical route —
        the single-request slice of the aggregate traffic matrix, so an
        engine can admit/depart requests against a running ``loads``
        vector without rebuilding :attr:`pair_flow`.
        """
        seq = np.asarray(vnf_idx_seq, dtype=np.int64)
        empty = np.zeros(0, dtype=np.int64)
        if len(seq) < 2:
            return empty, np.zeros(0, dtype=np.float64)
        a = seq[:-1]
        b = seq[1:]
        u = placement_vec[a]
        v = placement_vec[b]
        mask = (a != b) & (u >= 0) & (v >= 0) & (u != v)
        if not mask.any():
            return empty, np.zeros(0, dtype=np.float64)
        src = self.node_compute[u[mask]]
        dst = self.node_compute[v[mask]]
        ids, owner = self._pair_links(src, dst)
        return ids, np.full(len(ids), float(flow), dtype=np.float64)

    def chain_fits(
        self,
        vnf_idx_seq: np.ndarray,
        placement_vec: np.ndarray,
        loads: np.ndarray,
        flow: float,
    ) -> bool:
        """Whether routing one chain's ``flow`` oversubscribes no link."""
        ids, flows = self.chain_link_flows(vnf_idx_seq, placement_vec, flow)
        if not len(ids):
            return True
        add = np.bincount(ids, weights=flows, minlength=self.num_links)
        touched = np.unique(ids)
        return bool(
            (loads[touched] + add[touched] <= self._slack[touched]).all()
        )

    def add_chain_flows(
        self,
        vnf_idx_seq: np.ndarray,
        placement_vec: np.ndarray,
        loads: np.ndarray,
        flow: float,
        sign: float = 1.0,
    ) -> None:
        """Commit (``sign=1``) or retract (``sign=-1``) one chain's flow."""
        ids, flows = self.chain_link_flows(vnf_idx_seq, placement_vec, flow)
        if len(ids):
            np.add.at(loads, ids, sign * flows)

    # ------------------------------------------------------------------
    # Diagnostics
    # ------------------------------------------------------------------
    def oversubscribed_links(
        self, placement_vec: np.ndarray
    ) -> np.ndarray:
        """Indices of links whose routed load exceeds their bandwidth."""
        loads = self.link_loads(placement_vec)
        return np.nonzero(loads > self._slack)[0]

    def max_link_utilization(self, placement_vec: np.ndarray) -> float:
        """Peak routed-load / bandwidth over all links."""
        loads = self.link_loads(placement_vec)
        if not len(loads):
            return 0.0
        return float((loads / self.bandwidth).max())

    def placement_vector(
        self, placement: Mapping[str, Hashable]
    ) -> np.ndarray:
        """Scenario-node index per VNF (``-1`` unplaced), for callers
        holding a ``vnf_name -> node_key`` dict."""
        node_index = {key: i for i, key in enumerate(self.node_keys)}
        vec = np.empty(len(self.vnf_names), dtype=np.int64)
        for i, name in enumerate(self.vnf_names):
            node = placement.get(name)
            if node is None:
                vec[i] = -1
            else:
                idx = node_index.get(node)
                if idx is None:
                    raise ValidationError(
                        f"placement node {node!r} unknown to the network "
                        f"model"
                    )
                vec[i] = idx
        return vec
