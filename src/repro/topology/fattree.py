"""k-ary fat-tree topology generator.

The canonical datacenter fabric: ``k`` pods, each with ``k/2`` edge and
``k/2`` aggregation switches, ``(k/2)^2`` core switches, and ``k^3/4``
servers.  Provides the high bisection bandwidth the paper assumes.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.exceptions import ValidationError
from repro.topology.graph import (
    DEFAULT_LINK_LATENCY,
    DatacenterTopology,
)


def fat_tree(
    k: int,
    capacity: float = 1000.0,
    capacity_fn: Optional[Callable[[int], float]] = None,
    link_latency: float = DEFAULT_LINK_LATENCY,
    max_servers: Optional[int] = None,
) -> DatacenterTopology:
    """Build a k-ary fat tree.

    Parameters
    ----------
    k:
        Pod count; must be even and >= 2.
    capacity:
        Uniform server capacity ``A_v`` when ``capacity_fn`` is not given.
    capacity_fn:
        Optional per-server capacity by server index (for heterogeneous
        instances like the paper's 1-5000 unit range).
    link_latency:
        Per-link latency (the constant ``L`` building block).
    max_servers:
        Truncate to this many servers (keeps the fabric; useful for the
        paper's 4-50 node sweeps without jumping in k-granularity).
    """
    if k < 2 or k % 2 != 0:
        raise ValidationError(f"fat-tree k must be even and >= 2, got {k!r}")
    topo = DatacenterTopology(name=f"fat-tree-k{k}")
    half = k // 2

    core = []
    for i in range(half * half):
        key = f"core{i}"
        topo.add_switch(key)
        core.append(key)

    server_index = 0
    server_budget = max_servers if max_servers is not None else k * half * half
    for pod in range(k):
        aggs = []
        edges = []
        for a in range(half):
            key = f"pod{pod}-agg{a}"
            topo.add_switch(key)
            aggs.append(key)
        for e in range(half):
            key = f"pod{pod}-edge{e}"
            topo.add_switch(key)
            edges.append(key)
        # Full bipartite agg <-> edge inside the pod.
        for agg in aggs:
            for edge in edges:
                topo.add_link(agg, edge, latency=link_latency)
        # Each aggregation switch uplinks to half of the core.
        for a, agg in enumerate(aggs):
            for c in range(half):
                topo.add_link(agg, core[a * half + c], latency=link_latency)
        # Servers hang off edge switches.
        for edge in edges:
            for _ in range(half):
                if server_index >= server_budget:
                    break
                cap = capacity_fn(server_index) if capacity_fn else capacity
                key = f"server{server_index}"
                topo.add_compute_node(key, cap)
                topo.add_link(edge, key, latency=link_latency)
                server_index += 1

    if server_index == 0:
        raise ValidationError(
            "fat-tree configuration produced no servers; "
            "check max_servers"
        )
    topo.validate()
    return topo
