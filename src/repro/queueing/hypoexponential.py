"""Hypoexponential chain latency — analytic end-to-end tails.

In a tandem of M/M/1 stations, each station's sojourn time is
exponential with rate ``theta_i = mu_i - lambda_i``; by queue-output
independence (Burke), the end-to-end latency is the *sum* of independent
exponentials — a hypoexponential distribution.  This module provides its
CDF and quantiles, so chain-level tail latencies (the 99th percentiles
of Section V-C) can be computed analytically instead of only per
instance.

For distinct rates the CDF has the classic partial-fraction closed form

    ``F(t) = 1 - sum_i C_i exp(-theta_i t)``,
    ``C_i = prod_{j != i} theta_j / (theta_j - theta_i)``;

repeated rates are handled by infinitesimally perturbing duplicates —
numerically indistinguishable from the Erlang limit at double precision
for the scales involved.
"""

from __future__ import annotations

import math
from typing import List, Sequence

from repro.exceptions import UnstableQueueError, ValidationError


class HypoexponentialLatency:
    """End-to-end latency of a chain of M/M/1 stations.

    Parameters
    ----------
    arrival_rates:
        Per-station equivalent arrival rates ``lambda_i``.
    service_rates:
        Per-station service rates ``mu_i``; all stations must be stable.
    """

    def __init__(
        self,
        arrival_rates: Sequence[float],
        service_rates: Sequence[float],
    ) -> None:
        if len(arrival_rates) != len(service_rates):
            raise ValidationError(
                f"{len(arrival_rates)} arrival rates vs "
                f"{len(service_rates)} service rates"
            )
        if not arrival_rates:
            raise ValidationError("chain must have at least one station")
        thetas: List[float] = []
        for lam, mu in zip(arrival_rates, service_rates):
            if mu <= 0.0 or lam < 0.0:
                raise ValidationError(
                    f"invalid station rates lambda={lam!r}, mu={mu!r}"
                )
            if lam >= mu:
                raise UnstableQueueError(
                    f"station with lambda={lam:.6g} >= mu={mu:.6g} has no "
                    "steady state"
                )
            thetas.append(mu - lam)
        self._thetas = _deduplicate(thetas)
        self._coefficients = _partial_fractions(self._thetas)

    @property
    def mean(self) -> float:
        """``E[T] = sum_i 1/theta_i`` — the Eq. (12) chain sum."""
        return sum(1.0 / t for t in self._thetas)

    @property
    def variance(self) -> float:
        """``Var[T] = sum_i 1/theta_i^2`` (independent stages)."""
        return sum(1.0 / (t * t) for t in self._thetas)

    def cdf(self, t: float) -> float:
        """``P[T <= t]``."""
        if t <= 0.0:
            return 0.0
        total = 0.0
        for theta, coeff in zip(self._thetas, self._coefficients):
            total += coeff * math.exp(-theta * t)
        return min(1.0, max(0.0, 1.0 - total))

    def survival(self, t: float) -> float:
        """``P[T > t]`` — the tail probability."""
        return 1.0 - self.cdf(t)

    def percentile(self, q: float) -> float:
        """Inverse CDF by bisection; ``q`` in ``[0, 1)``.

        Bisection is exact enough (1e-12 relative) and unconditionally
        robust, unlike Newton near coefficient cancellations.
        """
        if not 0.0 <= q < 1.0:
            raise ValidationError(f"percentile must be in [0, 1), got {q!r}")
        if q == 0.0:
            return 0.0
        lo, hi = 0.0, self.mean
        while self.cdf(hi) < q:
            hi *= 2.0
            if hi > 1e12 * self.mean:
                raise ValidationError("percentile search diverged")
        for _ in range(200):
            mid = 0.5 * (lo + hi)
            if self.cdf(mid) < q:
                lo = mid
            else:
                hi = mid
            if hi - lo <= 1e-12 * max(1.0, hi):
                break
        return 0.5 * (lo + hi)


def _deduplicate(thetas: Sequence[float]) -> List[float]:
    """Perturb duplicate rates so the partial fractions are defined."""
    out: List[float] = []
    for theta in sorted(thetas):
        candidate = theta
        while any(abs(candidate - existing) < 1e-9 * candidate for existing in out):
            candidate *= 1.0 + 1e-7
        out.append(candidate)
    return out


def _partial_fractions(thetas: Sequence[float]) -> List[float]:
    """``C_i = prod_{j != i} theta_j / (theta_j - theta_i)``."""
    coefficients = []
    for i, ti in enumerate(thetas):
        c = 1.0
        for j, tj in enumerate(thetas):
            if i != j:
                c *= tj / (tj - ti)
        coefficients.append(c)
    return coefficients
