"""M/G/1 queue (Pollaczek-Khinchine) — service-distribution sensitivity.

The paper's model assumes exponential service; real packet-processing
times are often less variable (near-deterministic per-packet work) or
more (mixed packet sizes).  The Pollaczek-Khinchine mean-value formula
quantifies what that assumption is worth:

    ``Wq = lambda E[S^2] / (2 (1 - rho))``
    ``W  = Wq + E[S]``

parameterized by the squared coefficient of variation ``cs2`` of the
service time (``cs2 = 1`` recovers M/M/1, ``cs2 = 0`` is M/D/1).  Used
by the sensitivity tests bounding the model error when service is not
exponential.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.exceptions import UnstableQueueError, ValidationError


@dataclass(frozen=True)
class MG1Queue:
    """Mean-value analytics for an M/G/1 queue.

    Parameters
    ----------
    arrival_rate:
        Poisson arrival rate ``lambda``.
    service_rate:
        ``mu = 1 / E[S]``; the mean service rate.
    service_cv2:
        Squared coefficient of variation of the service time,
        ``Var[S] / E[S]^2``; 1 for exponential, 0 for deterministic.
    """

    arrival_rate: float
    service_rate: float
    service_cv2: float = 1.0

    def __post_init__(self) -> None:
        if self.service_rate <= 0.0:
            raise ValidationError(
                f"service rate must be positive, got {self.service_rate!r}"
            )
        if self.arrival_rate < 0.0:
            raise ValidationError(
                f"arrival rate must be non-negative, got {self.arrival_rate!r}"
            )
        if self.service_cv2 < 0.0:
            raise ValidationError(
                f"squared CV must be non-negative, got {self.service_cv2!r}"
            )

    @property
    def rho(self) -> float:
        """Offered load ``lambda / mu``."""
        return self.arrival_rate / self.service_rate

    @property
    def is_stable(self) -> bool:
        """Whether a steady state exists (``rho < 1``)."""
        return self.rho < 1.0

    def _require_stable(self) -> None:
        if not self.is_stable:
            raise UnstableQueueError(
                f"M/G/1 queue with rho={self.rho:.6g} has no steady state"
            )

    @property
    def mean_waiting_time(self) -> float:
        """Pollaczek-Khinchine: ``Wq = rho (1 + cs2) / (2 mu (1 - rho))``.

        (Equivalent to ``lambda E[S^2] / (2 (1 - rho))`` with
        ``E[S^2] = (1 + cs2) / mu^2``.)
        """
        self._require_stable()
        return (
            self.rho
            * (1.0 + self.service_cv2)
            / (2.0 * self.service_rate * (1.0 - self.rho))
        )

    @property
    def mean_response_time(self) -> float:
        """``W = Wq + 1/mu``."""
        return self.mean_waiting_time + 1.0 / self.service_rate

    @property
    def mean_number_in_system(self) -> float:
        """Little: ``N = lambda W``."""
        return self.arrival_rate * self.mean_response_time

    @property
    def mean_queue_length(self) -> float:
        """Little: ``Nq = lambda Wq``."""
        return self.arrival_rate * self.mean_waiting_time

    def exponential_model_error(self) -> float:
        """Relative error of assuming M/M/1 for this service distribution.

        ``(W_MM1 - W) / W`` — positive when the exponential assumption
        over-estimates latency (cs2 < 1), negative when it
        under-estimates (cs2 > 1).
        """
        self._require_stable()
        w_mm1 = 1.0 / (self.service_rate - self.arrival_rate)
        w = self.mean_response_time
        return (w_mm1 - w) / w
