"""Analytic M/M/1 queue — the model of one VNF service instance.

The paper (Section III-B) models every service instance of a VNF as an
M/M/1 queue: Poisson packet arrivals at an equivalent total rate
``Lambda_k^f`` (several request flows merged via Kleinrock's
approximation, each inflated by its loss feedback) and an exponential
single server with rate ``mu_f``.

:class:`MM1Queue` exposes every steady-state quantity the evaluation
needs: utilization (Eq. 9), queue-length distribution (Eq. 8), mean
number in system (Eq. 10) and mean response time (Eqs. 11/12), plus
response-time percentiles used for the tail-latency analysis in
Section V-C.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.exceptions import UnstableQueueError, ValidationError
from repro.queueing import littles_law


@dataclass(frozen=True)
class MM1Queue:
    """Steady-state analytics for an M/M/1 queue.

    Parameters
    ----------
    arrival_rate:
        Equivalent total Poisson arrival rate ``Lambda`` (packets/s).
    service_rate:
        Exponential service rate ``mu`` (packets/s).

    The queue may be constructed in an unstable configuration
    (``arrival_rate >= service_rate``); :attr:`is_stable` reports this and
    the steady-state accessors raise :class:`UnstableQueueError`.  This
    mirrors the paper's admission-control story: overload is a legal state
    of the *system* (requests get rejected), just not one with steady-state
    statistics.
    """

    arrival_rate: float
    service_rate: float

    def __post_init__(self) -> None:
        if self.service_rate <= 0.0:
            raise ValidationError(
                f"service rate must be positive, got {self.service_rate!r}"
            )
        if self.arrival_rate < 0.0:
            raise ValidationError(
                f"arrival rate must be non-negative, got {self.arrival_rate!r}"
            )

    # ------------------------------------------------------------------
    # Load
    # ------------------------------------------------------------------
    @property
    def rho(self) -> float:
        """Offered load ``rho = Lambda / mu`` (Eq. 9)."""
        return self.arrival_rate / self.service_rate

    @property
    def is_stable(self) -> bool:
        """Whether a steady state exists (``rho < 1``)."""
        return self.rho < 1.0

    def _require_stable(self) -> None:
        if not self.is_stable:
            raise UnstableQueueError(
                f"M/M/1 queue with Lambda={self.arrival_rate:.6g}, "
                f"mu={self.service_rate:.6g} (rho={self.rho:.6g}) has no steady state"
            )

    # ------------------------------------------------------------------
    # Queue-length distribution (Eq. 8)
    # ------------------------------------------------------------------
    def prob_n_in_system(self, n: int) -> float:
        """Steady-state probability ``pi(n) = (1 - rho) rho^n`` of Eq. (8)."""
        if n < 0:
            raise ValidationError(f"n must be non-negative, got {n!r}")
        self._require_stable()
        rho = self.rho
        return (1.0 - rho) * rho**n

    def prob_empty(self) -> float:
        """Probability the instance is idle, ``pi(0) = 1 - rho``."""
        return self.prob_n_in_system(0)

    def prob_more_than(self, n: int) -> float:
        """Tail probability ``P[N > n] = rho^(n+1)``."""
        if n < 0:
            raise ValidationError(f"n must be non-negative, got {n!r}")
        self._require_stable()
        return self.rho ** (n + 1)

    # ------------------------------------------------------------------
    # Means (Eqs. 10-12)
    # ------------------------------------------------------------------
    @property
    def mean_number_in_system(self) -> float:
        """Mean packets in the instance, ``N = rho / (1 - rho)`` (Eq. 10)."""
        self._require_stable()
        return self.rho / (1.0 - self.rho)

    @property
    def mean_queue_length(self) -> float:
        """Mean packets waiting in the buffer, ``Nq = rho^2/(1-rho)``."""
        return littles_law.mean_queue_length(self.arrival_rate, self.service_rate)

    @property
    def mean_response_time(self) -> float:
        """Mean sojourn time ``W = 1/(mu - Lambda)`` (Eq. 12 with P=1)."""
        self._require_stable()
        return 1.0 / (self.service_rate - self.arrival_rate)

    @property
    def mean_waiting_time(self) -> float:
        """Mean buffer time ``Wq = rho/(mu - Lambda)``."""
        return littles_law.mean_waiting_time(self.arrival_rate, self.service_rate)

    # ------------------------------------------------------------------
    # Response-time distribution
    # ------------------------------------------------------------------
    def response_time_cdf(self, t: float) -> float:
        """CDF of the sojourn time: ``F(t) = 1 - exp(-(mu - Lambda) t)``.

        The M/M/1 sojourn time is exponential with rate ``mu - Lambda``.
        """
        if t < 0.0:
            return 0.0
        self._require_stable()
        return 1.0 - math.exp(-(self.service_rate - self.arrival_rate) * t)

    def response_time_percentile(self, q: float) -> float:
        """Inverse CDF of the sojourn time; ``q`` in ``[0, 1)``.

        Used for the paper's 99th-percentile tail analysis:
        ``t_q = -ln(1 - q) / (mu - Lambda)``.
        """
        if not 0.0 <= q < 1.0:
            raise ValidationError(f"percentile must be in [0, 1), got {q!r}")
        self._require_stable()
        return -math.log(1.0 - q) / (self.service_rate - self.arrival_rate)

    # ------------------------------------------------------------------
    # Convenience
    # ------------------------------------------------------------------
    def with_arrival_rate(self, arrival_rate: float) -> "MM1Queue":
        """Return a copy of this queue with a different arrival rate."""
        return MM1Queue(arrival_rate=arrival_rate, service_rate=self.service_rate)

    def headroom(self) -> float:
        """Remaining service capacity ``mu - Lambda`` (may be negative)."""
        return self.service_rate - self.arrival_rate


# ----------------------------------------------------------------------
# Vectorized forms — one entry per service instance
# ----------------------------------------------------------------------
def mm1_utilizations(
    arrival_rates: np.ndarray, service_rates: np.ndarray
) -> np.ndarray:
    """Elementwise ``rho = Lambda / mu`` (Eq. 9) over instance columns."""
    return np.asarray(arrival_rates) / np.asarray(service_rates)


def mm1_mean_numbers_in_system(
    arrival_rates: np.ndarray, service_rates: np.ndarray
) -> np.ndarray:
    """Elementwise ``N = rho / (1 - rho)`` (Eq. 10); ``inf`` if unstable.

    The arithmetic mirrors :attr:`MM1Queue.mean_number_in_system` op for
    op, so stable entries are bit-identical to the scalar path.
    """
    rho = mm1_utilizations(arrival_rates, service_rates)
    with np.errstate(divide="ignore", invalid="ignore"):
        n = rho / (1.0 - rho)
    return np.where(rho < 1.0, n, np.inf)


def mm1_mean_response_times(
    arrival_rates: np.ndarray,
    service_rates: np.ndarray,
    external_rates: np.ndarray,
) -> np.ndarray:
    """Elementwise ``W = N / external`` (Eqs. 11/12); ``inf`` if unstable.

    ``external_rates`` is the raw (pre-feedback) arrival rate the mean
    packet count is amortized over, per Eq. (11).  Entries with a zero
    external rate (idle instances, where ``W`` is undefined) come back
    ``nan`` and must be masked by the caller.
    """
    n = mm1_mean_numbers_in_system(arrival_rates, service_rates)
    external = np.asarray(external_rates, dtype=np.float64)
    with np.errstate(divide="ignore", invalid="ignore"):
        w = n / external
    return np.where(external > 0.0, w, np.nan)
