"""Loss-feedback effective arrival rates (Burke's theorem at steady state).

Section III-B of the paper analyses a request whose packets are delivered
correctly with probability ``P``; lost packets trigger a NACK and are
retransmitted from the source.  At steady state the flow conservation
equation ``lambda_0 + (1 - P) lambda = lambda`` gives the *equivalent*
arrival rate seen by every VNF on the chain:

    ``lambda = lambda_0 / P``

Eq. (7) sums these per-request effective rates into the equivalent total
rate at each service instance:

    ``Lambda_k^f = sum_r (lambda_r / P_r) z_{r,k}^f``
"""

from __future__ import annotations

from typing import Iterable, Sequence, Tuple

import numpy as np

from repro.exceptions import ValidationError


def validate_delivery_probability(p: float) -> None:
    """Raise unless ``p`` is a valid delivery probability in ``(0, 1]``."""
    if not 0.0 < p <= 1.0:
        raise ValidationError(
            f"delivery probability must be in (0, 1], got {p!r}"
        )


def effective_arrival_rate(external_rate: float, delivery_probability: float) -> float:
    """Effective per-request rate ``lambda = lambda_0 / P`` with loss feedback.

    Parameters
    ----------
    external_rate:
        The external (fresh-packet) Poisson arrival rate ``lambda_0``.
    delivery_probability:
        Probability ``P`` a packet is received correctly end to end;
        ``1 - P`` of packets are retransmitted.
    """
    if external_rate < 0.0:
        raise ValidationError(
            f"external arrival rate must be non-negative, got {external_rate!r}"
        )
    validate_delivery_probability(delivery_probability)
    return external_rate / delivery_probability


def retransmission_rate(external_rate: float, delivery_probability: float) -> float:
    """Rate of retransmitted packets, ``lambda - lambda_0 = lambda_0 (1-P)/P``."""
    return (
        effective_arrival_rate(external_rate, delivery_probability) - external_rate
    )


def merged_effective_rate(
    flows: Iterable[Tuple[float, float]],
) -> float:
    """Equivalent total arrival rate at one service instance (Eq. 7).

    Parameters
    ----------
    flows:
        Iterable of ``(lambda_r, P_r)`` pairs — one per request scheduled
        onto the instance.

    Returns
    -------
    float
        ``Lambda = sum_r lambda_r / P_r``.
    """
    total = 0.0
    for rate, p in flows:
        total += effective_arrival_rate(rate, p)
    return total


def expected_transmissions(delivery_probability: float) -> float:
    """Expected number of end-to-end transmissions per packet, ``1 / P``.

    The number of attempts until first success is geometric with success
    probability ``P``.
    """
    validate_delivery_probability(delivery_probability)
    return 1.0 / delivery_probability


def effective_arrival_rates(
    external_rates: Sequence[float],
    delivery_probabilities: Sequence[float],
) -> np.ndarray:
    """Vectorized :func:`effective_arrival_rate` — one entry per request.

    The columnar form of Eq. (7)'s ingredients, ``lambda_r / P_r``;
    the trace-driven simulation backend and its benchmarks use it to
    size scenarios and cross-check measured utilizations against the
    closed form.
    """
    lam = np.asarray(external_rates, dtype=np.float64)
    p = np.asarray(delivery_probabilities, dtype=np.float64)
    if lam.shape != p.shape:
        raise ValidationError(
            f"rate and probability columns must align, got shapes "
            f"{lam.shape} and {p.shape}"
        )
    if np.any(lam < 0.0):
        raise ValidationError("external arrival rates must be non-negative")
    if np.any((p <= 0.0) | (p > 1.0)):
        raise ValidationError("delivery probabilities must be in (0, 1]")
    return lam / p


def aggregate_external_rate(rates: Sequence[float]) -> float:
    """Sum of external rates (additivity of independent Poisson streams)."""
    for rate in rates:
        if rate < 0.0:
            raise ValidationError(f"arrival rate must be non-negative, got {rate!r}")
    return float(sum(rates))
